"""Grade-Cast (Feldman-Micali [14]) — the graded broadcast of Fig. 5 step 7.

"Grade-Cast is the three level-outcome primitive ... the sender sends
his/her value to the rest of the players.  In the next round everybody
echoes, and this is followed by another round of echos.  Each player
outputs a value v, which is the view of the grade-casted message, and a
confidence value conf in {0, 1, 2} indicating how certain (s)he is that
the grade-cast was received by all players.  A confidence of 2 indicates
that all other honest players have seen the value v."

Guarantees for ``n >= 3t+1``:

* honest sender with value v: every honest player outputs (v, 2);
* if any honest player outputs (v, 2), every honest player outputs
  (v, grade >= 1) — in particular they all hold the same value v.

This module implements ``n`` *parallel* grade-casts (every player is the
sender of its own instance) in 3 rounds with merged echo messages, which
is what produces Theorem 2's "n^2 messages each of size ntk" accounting
for the clique-distribution step.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.net.simulator import multicast
from repro.obs.phases import register_tag_phase
from repro.protocols.common import filter_tag, is_hashable

GradedValue = Tuple[Optional[Any], int]  # (value, confidence in {0,1,2})

# the three grade-cast rounds: value, echo, re-echo
register_tag_phase("gradecast", suffix="/v")
register_tag_phase("gradecast", suffix="/echo")
register_tag_phase("gradecast", suffix="/echo2")


def parallel_gradecast(
    n: int,
    t: int,
    me: int,
    my_value: Any,
    tag: str = "gc",
) -> Generator:
    """Run n simultaneous grade-casts; player ``j`` is sender of instance j.

    Returns ``{sender_id: (value, confidence)}`` for all n instances.
    ``my_value`` must be hashable (the wire convention's nested tuples
    are); values from other players are validated for hashability before
    any counting.
    """
    # Round 1: every sender multicasts its own value.
    inbox = yield [multicast((tag + "/v", my_value))]
    first: Dict[int, Any] = {
        src: val
        for src, val in filter_tag(inbox, tag + "/v").items()
        if is_hashable(val)
    }

    # Round 2: echo everything received, merged into one message.
    echo_body = tuple(sorted(first.items()))
    inbox = yield [multicast((tag + "/echo", echo_body))]
    echoes = filter_tag(inbox, tag + "/echo")
    # counts[sender][value] = number of distinct echoers
    counts: Dict[int, Dict[Any, int]] = {}
    for src, body in echoes.items():
        for sender, value in _parse_echo(body, n):
            per = counts.setdefault(sender, {})
            per[value] = per.get(value, 0) + 1

    # Round 3: re-echo values supported by >= n - t echoers.
    supported = tuple(
        sorted(
            (sender, value)
            for sender, per in counts.items()
            for value, count in per.items()
            if count >= n - t
        )
    )
    inbox = yield [multicast((tag + "/echo2", supported))]
    echo2 = filter_tag(inbox, tag + "/echo2")
    counts2: Dict[int, Dict[Any, int]] = {}
    for src, body in echo2.items():
        for sender, value in _parse_echo(body, n):
            per = counts2.setdefault(sender, {})
            per[value] = per.get(value, 0) + 1

    # Grading.
    result: Dict[int, GradedValue] = {}
    for sender in range(1, n + 1):
        per = counts2.get(sender, {})
        graded: GradedValue = (None, 0)
        for value, count in per.items():
            if count >= n - t:
                graded = (value, 2)
                break
            if count >= t + 1 and graded[1] == 0:
                graded = (value, 1)
        result[sender] = graded
    return result


def _parse_echo(body: Any, n: int):
    """Validate an echo body: a tuple of (sender_id, hashable_value) pairs,
    at most one entry per sender."""
    if not isinstance(body, tuple):
        return
    seen = set()
    for item in body:
        if (
            isinstance(item, tuple)
            and len(item) == 2
            and isinstance(item[0], int)
            and not isinstance(item[0], bool)
            and 1 <= item[0] <= n
            and item[0] not in seen
            and is_hashable(item[1])
        ):
            seen.add(item[0])
            yield item[0], item[1]
