"""Protocol VSS (Fig. 2): verify a single Shamir sharing.

Broadcast-channel model, ``n >= 3t+1`` (Section 3).  Players hold shares
``alpha_i = f(i)`` previously distributed by the dealer.  The dealer then
shares a companion random polynomial ``g``; a secret k-ary coin is exposed
as the challenge scalar ``r``; every player broadcasts
``nu_i = alpha_i + r * beta_i``; everyone interpolates F through the
``nu``'s and accepts iff ``deg(F) <= t``.

Soundness (Lemma 1): a dealer whose shares do NOT lie on a degree-t
polynomial is accepted with probability at most 1/p, because it must have
fixed ``g``'s offending coefficient to ``-a_j / r`` before ``r`` was
exposed.  Privacy: ``nu_i`` reveals only ``f(i) + r g(i)``, masked by the
one-time companion ``g``.

Cost (Lemma 2): n + (k log k) + 1 additions and 2 interpolations per
player; 2 rounds; n messages of size k per round (broadcast counted once).

Two acceptance modes are provided:

* ``robust=False`` — the figure verbatim: interpolate through *all* n
  broadcast values.  A single faulty player can then veto an honest
  dealer by broadcasting garbage (the paper notes players "can only check
  that at most n-t of the shares satisfy the requirements" without care).
* ``robust=True`` — accept iff a degree-t polynomial matches at least
  ``n - t`` broadcast values (Berlekamp-Welch), the criterion Fig. 4
  adopts; an honest dealer is then always accepted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, Optional, Tuple

from repro.fields.base import Element, Field
from repro.poly.berlekamp_welch import DecodingError, berlekamp_welch
from repro.poly.lagrange import interpolate
from repro.poly.polynomial import Polynomial
from repro.net.simulator import Send, broadcast, unicast
from repro.net.metrics import NetworkMetrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.context import ProtocolContext
from repro.sharing.shamir import ShamirScheme
from repro.protocols.coin_expose import CoinShare, coin_expose, make_dealer_coin
from repro.protocols.common import filter_tag, valid_element


@dataclass(frozen=True)
class VSSResult:
    """A player's verdict on the dealer's sharing."""

    accepted: bool
    challenge: Optional[Element]  # the exposed coin r (None if expose failed)


def vss_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    dealer: int,
    alpha: Optional[Element],
    coin: CoinShare,
    g_poly: Optional[Polynomial] = None,
    tag: str = "vss",
    robust: bool = False,
) -> Generator:
    """One player's side of Protocol VSS.

    ``alpha`` is the share of ``f`` this player already holds (the
    protocol's "given"); the dealer additionally passes its companion
    polynomial ``g_poly``.
    """
    scheme = ShamirScheme(field, n, t)

    # Step 1: the dealer shares the companion polynomial g.
    sends = []
    if me == dealer:
        if g_poly is None:
            raise ValueError("dealer must supply the companion polynomial g")
        sends = [
            unicast(j, (tag + "/g", g_poly(scheme.point(j))))
            for j in range(1, n + 1)
        ]
    inbox = yield sends
    beta = filter_tag(inbox, tag + "/g").get(dealer)
    if not valid_element(field, beta):
        beta = None

    # Step 2: expose the secret k-ary coin -> challenge r.
    r = yield from coin_expose(field, me, coin)

    # Step 3: broadcast nu_i = alpha_i + r * beta_i.
    sends = []
    if r is not None and alpha is not None and beta is not None:
        nu = field.add(alpha, field.mul(r, beta))
        sends = [broadcast((tag + "/nu", nu))]
    inbox = yield sends
    if r is None:
        return VSSResult(False, None)
    votes = filter_tag(inbox, tag + "/nu")
    points = [
        (scheme.point(j), votes[j])
        for j in range(1, n + 1)
        if j in votes and valid_element(field, votes[j])
    ]

    # Step 4: interpolate F through the broadcast values and check degree.
    accepted = _check_degree(field, points, t, n, robust)
    return VSSResult(accepted, r)


def _check_degree(field, points, t, n, robust) -> bool:
    if robust:
        if len(points) < n - t:
            return False
        try:
            _, good = berlekamp_welch(field, points, t)
        except DecodingError:
            return False
        return len(good) >= n - t
    if len(points) < n:
        return False
    poly = interpolate(field, points)
    return poly.degree <= t


# ---------------------------------------------------------------------------
# whole-protocol runner (builds the network, deals f, runs VSS)
# ---------------------------------------------------------------------------

def run_vss(
    field,
    n: Optional[int] = None,
    t: Optional[int] = None,
    dealer: int = 1,
    secret: Optional[Element] = None,
    seed: int = 0,
    cheat_shares: Optional[Dict[int, Element]] = None,
    cheat_offsets: Optional[Dict[int, Element]] = None,
    cheat_g: Optional[Polynomial] = None,
    robust: bool = False,
    faulty_programs: Optional[Dict[int, Generator]] = None,
    context: Optional["ProtocolContext"] = None,
) -> Tuple[Dict[int, VSSResult], NetworkMetrics]:
    """Run Protocol VSS end to end on a fresh synchronous network.

    ``cheat_shares`` overrides individual players' alpha values, modelling
    a dealer whose dealing does not lie on a degree-t polynomial;
    ``cheat_offsets`` adds per-player offsets instead (Lemma 1's optimal
    cheater adds ``d * i^(t+1)`` and crafts ``cheat_g`` to cancel it for
    one guessed challenge value); ``cheat_g`` substitutes the dealer's
    companion polynomial.  Returns per-player results and metrics.
    """
    from repro.protocols.context import as_context

    ctx = context if context is not None else as_context(field, n, t, seed=seed)
    field, n, t, rng = ctx.field, ctx.n, ctx.t, ctx.rng
    scheme = ShamirScheme(field, n, t)
    if secret is None:
        secret = field.random(rng)
    _, shares = scheme.deal(secret, rng)
    alphas = {s.player_id: s.value for s in shares}
    if cheat_shares:
        alphas.update(cheat_shares)
    if cheat_offsets:
        for pid, offset in cheat_offsets.items():
            alphas[pid] = field.add(alphas[pid], offset)
    g_poly = cheat_g if cheat_g is not None else Polynomial.random(field, t, rng)
    _, coin_shares = make_dealer_coin(field, n, t, "vss-challenge", rng)

    network = ctx.network()
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, n + 1):
        if pid in faulty_programs:
            if faulty_programs[pid] is not None:
                programs[pid] = faulty_programs[pid]
            continue
        programs[pid] = vss_program(
            field,
            n,
            t,
            pid,
            dealer,
            alphas[pid],
            coin_shares[pid],
            g_poly=g_poly if pid == dealer else None,
            robust=robust,
        )
    honest = [pid for pid in programs if pid not in faulty_programs]
    outputs = network.run(programs, wait_for=honest)
    ctx.absorb(network.metrics)
    return outputs, network.metrics
