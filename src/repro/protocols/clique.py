"""Consistency graph and clique finding (Fig. 5 steps 4-6).

Each player builds a directed graph over players — an edge ``j -> k``
meaning "player k's announced share fits dealer j's decoded polynomial" —
then keeps the mutual edges and finds a large clique.

"Due to the above, there is a clique of size at least n - t in G.
Utilizing the protocol of Gabril ([Garey & Johnson], p. 134), a clique can
be found of size at least n - 2t."  Gavril's trick: take a *maximal
matching* in the complement graph; the unmatched vertices are pairwise
adjacent in G (otherwise the matching wasn't maximal), i.e. a clique, and
the matching has at most ``t`` edges whenever G contains an (n-t)-clique
(the complement then has a vertex cover of size t), so at least ``n - 2t``
vertices remain unmatched.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

Edge = Tuple[int, int]


def mutual_graph(n: int, directed_edges: Iterable[Edge]) -> Dict[int, Set[int]]:
    """Undirected graph keeping only mutually-directed edges (Fig. 5 step 5)."""
    directed = set(directed_edges)
    adjacency: Dict[int, Set[int]] = {v: set() for v in range(1, n + 1)}
    for j, k in directed:
        if j != k and (k, j) in directed:
            adjacency[j].add(k)
            adjacency[k].add(j)
    return adjacency


def gavril_clique(adjacency: Dict[int, Set[int]]) -> List[int]:
    """A clique of size >= n - 2 * (complement vertex cover) via Gavril.

    Deterministic (greedy matching over lexicographically ordered vertex
    pairs) so that all honest players with the same view compute the same
    clique.  Returns the clique as a sorted list.
    """
    vertices = sorted(adjacency)
    matched: Set[int] = set()
    for i, u in enumerate(vertices):
        if u in matched:
            continue
        for v in vertices[i + 1 :]:
            if v in matched:
                continue
            if v not in adjacency[u]:  # edge in the complement graph
                matched.add(u)
                matched.add(v)
                break
    clique = [v for v in vertices if v not in matched]
    return clique


def is_clique(adjacency: Dict[int, Set[int]], members: Iterable[int]) -> bool:
    """Are all members pairwise adjacent?"""
    members = list(members)
    return all(
        b in adjacency.get(a, ())
        for i, a in enumerate(members)
        for b in members[i + 1 :]
    )
