"""Shared plumbing for protocol programs.

Wire conventions
----------------
Every payload is a ``(tag, body)`` pair whose ``tag`` is a string unique to
one protocol phase (e.g. ``"coingen/nu"``).  Honest programs filter their
inbox by tag, so stray or malicious messages with foreign tags are simply
ignored — exactly the robustness the synchronous model requires.

Bodies consist only of ints, strings, and (nested) tuples, so they are
hashable (needed for vote counting) and meterable (see
:mod:`repro.net.metrics`).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.fields.base import Element, Field


def filter_tag(inbox: Dict[Any, List[Any]], tag: str) -> Dict[int, Any]:
    """Extract ``{src: body}`` for the first payload per source matching ``tag``."""
    out: Dict[int, Any] = {}
    for src, payloads in inbox.items():
        if not isinstance(src, int):
            continue  # e.g. the simulator's rush_peek entry
        for payload in payloads:
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and payload[0] == tag
            ):
                out[src] = payload[1]
                break
    return out


def valid_element(field: Field, value: Any) -> bool:
    """Is ``value`` a well-formed element of ``field``?

    Faulty players may send arbitrary objects; honest code validates every
    field element before using it.
    """
    if isinstance(value, bool):
        return False
    return value in field


def valid_element_tuple(field: Field, value: Any, length: int) -> bool:
    """Is ``value`` a tuple of exactly ``length`` valid field elements?"""
    return (
        isinstance(value, tuple)
        and len(value) == length
        and all(valid_element(field, v) for v in value)
    )


def is_hashable(value: Any) -> bool:
    """Can ``value`` be used as a vote/counting key?"""
    try:
        hash(value)
    except TypeError:
        return False
    return True


def plurality(votes: Dict[int, Any]) -> Optional[Tuple[Any, int]]:
    """The most frequent hashable vote value and its count (ties broken
    deterministically by repr), or None when there are no valid votes."""
    counts: Dict[Any, int] = {}
    for value in votes.values():
        if is_hashable(value):
            counts[value] = counts.get(value, 0) + 1
    if not counts:
        return None
    best = max(counts.items(), key=lambda item: (item[1], repr(item[0])))
    return best
