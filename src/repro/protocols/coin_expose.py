"""Protocol Coin-Expose (Fig. 6): reveal a secretly-held shared coin.

Every qualified holder sends its share of the coin's polynomial to all
players; everyone decodes with the Berlekamp-Welch decoder and takes
``F(0)`` (``F(0) mod 2`` for a binary coin).  One round, ``|S| * n``
point-to-point messages of size ``k``, one interpolation per player —
"it is equivalent in computation to the interpolation of the shares being
examined" (Section 3.1).

Robust acceptance rule
----------------------
The paper's Fig. 6 takes exactly 3t+1 senders.  Our senders *self-select*
(a holder abstains when its own shares failed verification — see
DESIGN.md Section 5), so the receiver accepts a decoded polynomial only if
it matches at least ``max(2t+1, N-t)`` of the ``N`` valid shares received.
Such a polynomial is unique and identical across honest receivers'
(possibly different) views, because any two qualifying polynomials agree
on at least t+1 honestly-sent (hence common) points.  This preserves
unanimity even when faulty senders equivocate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.fields.base import Element, Field
from repro.obs.phases import register_tag_phase
from repro.poly.berlekamp_welch import DecodingError, berlekamp_welch
from repro.net.simulator import Send, multicast
from repro.protocols.common import filter_tag, valid_element

# every Coin-Expose message (seed challenges, leader coins, generated
# batches) is tagged "expose/<coin_id>"
register_tag_phase("expose", prefix="expose/")


@dataclass(frozen=True)
class CoinShare:
    """One player's local piece of a shared (sealed) k-ary coin.

    Attributes
    ----------
    coin_id:
        Globally unique identifier; doubles as the expose message tag, so
        all honest players must agree on it (they do: it is derived from
        common protocol state).
    senders:
        The qualified set whose members hold shares and send them at
        expose time (the trusted dealer's seed coins use all players; a
        Coin-Gen batch uses the agreed clique).
    t:
        Degree of the sharing polynomial = maximum faults tolerated.
    my_value:
        This player's share, or None when the player holds no (valid)
        share and must abstain.
    """

    coin_id: str
    senders: frozenset
    t: int
    my_value: Optional[Element] = None


def coin_expose(
    field: Field, me: int, coin: CoinShare
) -> Generator:
    """Sub-protocol generator: expose ``coin``; returns ``F(0)`` or None.

    Usable via ``yield from`` inside a larger player program.  Takes
    exactly one communication round.  Returns None (an unusable coin) only
    when decoding fails, which for a correctly generated coin happens with
    probability 0.
    """
    values = yield from coin_expose_many(field, me, [coin])
    return values[0]


def coin_expose_many(field: Field, me: int, coins) -> Generator:
    """Expose several coins in a single communication round.

    Returns a list of exposed values (None entries for failures).  Used by
    the ``shared_challenge=False`` ablation of Coin-Gen, where every
    Bit-Gen instance consumes its own challenge coin.
    """
    sends = []
    for coin in coins:
        if me in coin.senders and coin.my_value is not None:
            sends.append(multicast(("expose/" + coin.coin_id, coin.my_value)))
    inbox = yield sends

    values = []
    for coin in coins:
        received = filter_tag(inbox, "expose/" + coin.coin_id)
        points = [
            (field.element_point(src), value)
            for src, value in sorted(received.items())
            if src in coin.senders and valid_element(field, value)
        ]
        values.append(decode_exposed(field, points, coin.t))
    return values


def decode_exposed(field: Field, points, t: int) -> Optional[Element]:
    """Robustly decode the exposed shares; None when undecodable.

    The Berlekamp-Welch call below takes its optimistic fast path in the
    common no-fault case: an inversion-free cached barycentric build
    through the first t+1 shares, checked against the rest.  Because the
    bootstrap source exposes many coins against the *same* qualified set,
    every exposure after the first reuses the cached weights — the
    per-coin cost drops to one dot product plus the match check.
    """
    n_valid = len(points)
    threshold = max(2 * t + 1, n_valid - t) if t > 0 else n_valid
    if n_valid == 0 or n_valid < threshold:
        return None
    max_errors = n_valid - threshold
    try:
        poly, good = berlekamp_welch(field, points, t, max_errors)
    except DecodingError:
        return None
    if len(good) < threshold:
        return None
    return poly(field.zero)


def coin_to_index(field: Field, value: Element, n: int) -> int:
    """Fig. 5 step 9: ``l = coin mod n``, mapping 0 to n (ids are 1-based)."""
    l = field.to_int(value) % n
    return n if l == 0 else l


def make_dealer_coin(
    field: Field,
    n: int,
    t: int,
    coin_id: str,
    rng,
):
    """A trusted-dealer seed coin (Rabin [17], used once to bootstrap).

    Returns ``(secret, {player_id: CoinShare})``.  The dealer samples a
    uniform field element, Shamir-shares it with degree ``t``, and every
    player becomes a qualified sender.  "In our approach the services of a
    trusted dealer would be used only once, and for a small number of
    coins" (Section 1.2).
    """
    from repro.sharing.shamir import ShamirScheme

    scheme = ShamirScheme(field, n, t)
    secret = field.random(rng)
    _, shares = scheme.deal(secret, rng)
    everyone = frozenset(range(1, n + 1))
    coin_shares = {
        share.player_id: CoinShare(coin_id, everyone, t, share.value)
        for share in shares
    }
    return secret, coin_shares
