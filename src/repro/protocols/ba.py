"""Deterministic Byzantine agreement: the phase-king protocol.

Fig. 5 step 10 runs "any BA protocol"; the paper assumes "for simplicity
... that deterministic BA is carried out".  We implement the phase-king
protocol (Berman-Garay-Perry): ``t+1`` phases of two rounds each, plain
point-to-point messages, no broadcast channel needed.

The two-round variant implemented here is correct for ``n > 4t`` (the
constant-fraction regime of Section 4, where ``n >= 6t+1``, satisfies
this with room to spare):

* **validity** — if every honest player starts with ``b`` they decide ``b``;
* **agreement** — all honest players decide the same bit;
* **termination** — exactly ``2(t+1)`` rounds.

Why n > 4t suffices: if some honest player keeps its own majority value
(multiplicity >= n - t), then at least ``n - 2t`` honest players voted for
it, so every player — including the phase king — counted at least
``n - 2t > n/2 + t`` votes... i.e. the king's majority agrees, and players
adopting the king's value coincide with players keeping their own.
A phase whose king is honest therefore ends with all honest players
holding the same bit, and that bit then persists.  With ``t+1`` phases,
some king is honest.
"""

from __future__ import annotations

from typing import Dict, Generator

from repro.net.simulator import multicast
from repro.obs.phases import register_tag_phase
from repro.protocols.common import filter_tag

# phase-king rounds: all-to-all votes, then the king's announcement
register_tag_phase("ba", suffix="/vote")
register_tag_phase("ba", suffix="/king")


def _valid_bit(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value in (0, 1)


def phase_king(
    n: int,
    t: int,
    me: int,
    value: int,
    tag: str = "ba",
) -> Generator:
    """One player's side of phase-king BA on a bit; returns the decision.

    ``value`` is this player's input bit.  Requires ``n > 4t``.
    """
    if n <= 4 * t:
        raise ValueError(f"phase king requires n > 4t (n={n}, t={t})")
    pref = 1 if value else 0

    for phase in range(1, t + 2):
        # Round 1: universal exchange of preferences.
        inbox = yield [multicast((f"{tag}/p{phase}/vote", pref))]
        votes = filter_tag(inbox, f"{tag}/p{phase}/vote")
        ones = sum(1 for v in votes.values() if _valid_bit(v) and v == 1)
        zeros = sum(1 for v in votes.values() if _valid_bit(v) and v == 0)
        majority = 1 if ones > zeros else 0
        multiplicity = max(ones, zeros)

        # Round 2: the phase king (player id == phase) announces its majority.
        king = phase
        sends = []
        if me == king:
            sends = [multicast((f"{tag}/p{phase}/king", majority))]
        inbox = yield sends
        king_value = filter_tag(inbox, f"{tag}/p{phase}/king").get(king)
        if not _valid_bit(king_value):
            king_value = 0
        pref = majority if multiplicity >= n - t else king_value

    return pref


def run_phase_king(n, t, inputs: Dict[int, int], field=None, faulty=None,
                   tag="ba", context=None):
    """Standalone runner for tests/benches; returns (decisions, metrics).

    Pass ``context=`` (a :class:`~repro.protocols.context.ProtocolContext`)
    to run under its scheduler/fault plane/tracer.
    """
    from repro.net.simulator import SynchronousNetwork

    faulty = faulty or {}
    if context is not None:
        network = context.network(allow_broadcast=False)
    else:
        network = SynchronousNetwork(n, field=field, allow_broadcast=False)
    programs = {}
    for pid in range(1, n + 1):
        if pid in faulty:
            if faulty[pid] is not None:
                programs[pid] = faulty[pid]
            continue
        programs[pid] = phase_king(n, t, pid, inputs[pid], tag)
    honest = [pid for pid in programs if pid not in faulty]
    outputs = network.run(programs, wait_for=honest)
    if context is not None:
        context.absorb(network.metrics)
    return outputs, network.metrics
