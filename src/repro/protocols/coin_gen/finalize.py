"""Coin-Gen finalization and whole-protocol runners (Fig. 5 step 12).

On success the h-th coin is the sealed value ``sum_{k in C_l} f_{k,h}(0)``
(at least one clique dealer is honest, so the sum is uniform and secret);
a player's coin share is the corresponding sum of its raw shares, which it
will only send at expose time if its own shares passed the consistency
check against the agreed polynomials (self-verification — see DESIGN.md
Section 5 for why this, plus Coin-Expose's robust acceptance rule, yields
unanimity without a common 3t+1 sender set).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.net.metrics import NetworkMetrics
from repro.poly.polynomial import Polynomial
from repro.protocols.coin_expose import (
    CoinShare,
    coin_expose,
    make_dealer_coin,
)
from repro.protocols.coin_gen.agreement import dealing_agreement_program
from repro.protocols.context import ProtocolContext, as_context


@dataclass
class CoinGenOutput:
    """A player's local outcome of one Coin-Gen run."""

    success: bool
    #: the commonly agreed clique C_l (empty tuple on failure)
    clique: Tuple[int, ...] = ()
    #: this player's shares of the M generated sealed coins
    coins: List[CoinShare] = dataclass_field(default_factory=list)
    #: number of leader-election/BA iterations executed (Lemma 8)
    iterations: int = 0
    #: seed coins consumed (challenges + leader elections)
    seed_coins_used: int = 0
    #: the exposed batching challenge(s)
    challenge: Optional[Element] = None
    #: whether this player's own shares verified (it will send at expose)
    self_ok: bool = False
    #: the agreed (public) batched polynomials per clique dealer — common
    #: knowledge after the grade-cast; retained for analysis and tests
    public_polys: Dict[int, "Polynomial"] = dataclass_field(default_factory=dict)


def coin_gen_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    M: int,
    seed_coins: Sequence[CoinShare],
    rng: random.Random,
    tag: str = "cg",
    blinding: bool = True,
    shared_challenge: bool = True,
) -> Generator:
    """One player's side of Protocol Coin-Gen.

    ``seed_coins`` supplies the secret k-ary coins the protocol consumes:
    the first 1 (or n when ``shared_challenge=False``) as batching
    challenges, the rest one per leader-election iteration.  ``tag`` must
    be unique per run — it namespaces the generated coins' identifiers.
    """
    total = M + (1 if blinding else 0)
    agreement = yield from dealing_agreement_program(
        field, n, t, me, total, seed_coins, rng, tag,
        shared_challenge=shared_challenge,
    )
    if not agreement.success:
        return CoinGenOutput(
            False,
            iterations=agreement.iterations,
            seed_coins_used=agreement.seed_coins_used,
        )

    # ---- Step 12: each player's share of coin h is the sum of its raw
    # shares from the clique dealers (sealed value sum_{k in C_l} f_{k,h}(0)).
    coins: List[CoinShare] = []
    members = frozenset(agreement.clique)
    for h in range(M):
        sigma: Optional[Element] = None
        if agreement.self_ok:
            sigma = field.zero
            for k in agreement.clique:
                sigma = field.add(sigma, agreement.shares_from[k][h])
        coins.append(CoinShare(f"{tag}/c{h}", members, t, sigma))
    return CoinGenOutput(
        True,
        clique=agreement.clique,
        coins=coins,
        iterations=agreement.iterations,
        seed_coins_used=agreement.seed_coins_used,
        challenge=agreement.challenge,
        self_ok=agreement.self_ok,
        public_polys=agreement.polys,
    )


# ---------------------------------------------------------------------------
# whole-protocol runners
# ---------------------------------------------------------------------------

def make_seed_coins(
    field: Field, n: int, t: int, count: int, rng, prefix: str = "seed"
) -> Dict[int, List[CoinShare]]:
    """Trusted-dealer seed coins for bootstrapping: {player: [CoinShare]}.

    "The initial set of coins can be obtained from a trusted third party,
    as in the case of Rabin [17]" (Section 1.2).
    """
    per_player: Dict[int, List[CoinShare]] = {
        pid: [] for pid in range(1, n + 1)
    }
    for index in range(count):
        _, shares = make_dealer_coin(field, n, t, f"{prefix}{index}", rng)
        for pid, share in shares.items():
            per_player[pid].append(share)
    return per_player


def run_coin_gen(
    field,
    n: Optional[int] = None,
    t: Optional[int] = None,
    M: int = 1,
    seed: int = 0,
    max_iterations: Optional[int] = None,
    blinding: bool = True,
    shared_challenge: bool = True,
    faulty_programs: Optional[Dict[int, Generator]] = None,
    tag: str = "cg",
    context: Optional[ProtocolContext] = None,
) -> Tuple[Dict[int, CoinGenOutput], NetworkMetrics]:
    """Run Coin-Gen end to end with fresh trusted-dealer seed coins.

    Accepts either the legacy ``(field, n, t, ...)`` convention or a
    ready :class:`ProtocolContext` (as ``field`` or via ``context=``),
    whose scheduler, fault plane, and tracer are wired through.  Returns
    per-player outputs and network metrics.  Faulty players are supplied
    as complete replacement programs, as None for crashed-from-the-start,
    or as a *factory* — a callable receiving the player's honest program
    and returning the program to run instead.  The factory form is how
    wrapping adversaries (equivocators, crash-at-round-r) get the
    player's dealt seed-coin shares without re-deriving them.
    """
    ctx = context if context is not None else as_context(field, n, t, seed=seed)
    if max_iterations is None:
        max_iterations = 2 * ctx.t + 4
    num_challenges = 1 if shared_challenge else ctx.n
    seed_coins = make_seed_coins(
        ctx.field, ctx.n, ctx.t, num_challenges + max_iterations, ctx.rng,
        prefix=f"{tag}-seed",
    )

    network = ctx.network(allow_broadcast=False)
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, ctx.n + 1):
        honest_program = None
        if pid not in faulty_programs or callable(faulty_programs.get(pid)):
            honest_program = coin_gen_program(
                ctx.field,
                ctx.n,
                ctx.t,
                pid,
                M,
                seed_coins[pid],
                ctx.player_rng(pid),
                tag=tag,
                blinding=blinding,
                shared_challenge=shared_challenge,
            )
        if pid in faulty_programs:
            supplied = faulty_programs[pid]
            if supplied is None:
                continue
            # factory form: wrap the player's honest program
            programs[pid] = (
                supplied(honest_program) if callable(supplied) else supplied
            )
            continue
        programs[pid] = honest_program
    honest = [pid for pid in programs if pid not in faulty_programs]
    with ctx.recorder.span("coin_gen", "protocol",
                           n=ctx.n, t=ctx.t, M=M) as span:
        outputs = network.run(programs, wait_for=honest)
        if ctx.recorder.enabled:
            sample = next(
                (outputs[pid] for pid in honest if outputs.get(pid)), None
            )
            span.set(
                iterations=sample.iterations if sample else 0,
                success=bool(sample and sample.success),
            )
    ctx.absorb(network.metrics)
    return outputs, network.metrics


def expose_coin(
    field,
    n: Optional[int] = None,
    outputs: Optional[Dict[int, CoinGenOutput]] = None,
    h: int = 0,
    t: Optional[int] = None,
    faulty_programs: Optional[Dict[int, Generator]] = None,
    context: Optional[ProtocolContext] = None,
) -> Tuple[Dict[int, Optional[Element]], NetworkMetrics]:
    """Run Coin-Expose (Fig. 6) for the h-th coin of a Coin-Gen result."""
    ctx = context if context is not None else as_context(field, n, t)
    if outputs is None:
        raise TypeError("expose_coin requires the Coin-Gen outputs")
    network = ctx.network(allow_broadcast=False)
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, ctx.n + 1):
        if pid in faulty_programs:
            supplied = faulty_programs[pid]
            if supplied is None:
                continue
            if callable(supplied):
                if pid not in outputs or not outputs[pid].success:
                    continue
                supplied = supplied(
                    coin_expose(ctx.field, pid, outputs[pid].coins[h])
                )
            programs[pid] = supplied
            continue
        if pid not in outputs or not outputs[pid].success:
            continue
        programs[pid] = coin_expose(ctx.field, pid, outputs[pid].coins[h])
    honest = [pid for pid in programs if pid not in faulty_programs]
    # how many honest programs will actually send (self-selected senders)
    senders_total = sum(
        1 for pid in honest
        if pid in outputs and outputs[pid].success
        and pid in outputs[pid].coins[h].senders
        and outputs[pid].coins[h].my_value is not None
    )
    with ctx.recorder.span("expose", "protocol", n=ctx.n, coins=1,
                           senders_total=senders_total):
        results = network.run(programs, wait_for=honest)
    ctx.absorb(network.metrics)
    return results, network.metrics
