"""Coin-Gen clique agreement: reconcile local views (Fig. 5 steps 6-11).

Because there is no broadcast channel, two honest players may hold
different dealing views; this phase makes the outcome common.  Step
numbering follows Fig. 5:

6.  build the consistency graph and find a Gavril clique over it;
7.  grade-cast the proposal (clique + decoded polynomials);
9.  expose a seed coin to elect a random leader l;
10. run one deterministic Byzantine agreement on whether player l's
    grade-cast proposal is acceptable;
11. repeat 9-10 until a BA outputs 1.

A player's BA input is 1 iff (Fig. 5 step 10):

  i)   its confidence in P_l's grade-cast is 2;
  ii)  the proposed clique C_l has size >= n - 2t (>= 4t+1);
  iii) at least 3t+1 members j of C_l pass, in this player's own view,
       the full consistency check: for every k in C_l, the combination
       nu_j announced by j for dealer k satisfies F_k(j) = nu_j, where
       F_k is the polynomial l grade-cast.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.poly.polynomial import Polynomial
from repro.protocols.ba import phase_king
from repro.protocols.clique import gavril_clique, mutual_graph
from repro.protocols.coin_expose import CoinShare, coin_expose, coin_to_index
from repro.protocols.common import valid_element
from repro.protocols.gradecast import parallel_gradecast
from repro.protocols.coin_gen.dealing import DealingState, verified_dealing


def validate_proposal(field: Field, n: int, t: int, value, vanish_at=None):
    """Check a grade-cast proposal's structure and degree bounds.

    Returns ``(clique, {dealer: Polynomial})`` or None.  Purely a function
    of the (common) grade-cast value, so all honest players agree on it.
    With ``vanish_at`` set, the batched polynomials must vanish at that
    point (share-refresh mode: the origin; share-recovery mode: the
    recovering player's point).
    """
    if (
        not isinstance(value, tuple)
        or len(value) != 3
        or value[0] != "prop"
        or not isinstance(value[1], tuple)
        or not isinstance(value[2], tuple)
    ):
        return None
    clique_raw, polys_raw = value[1], value[2]
    clique: List[int] = []
    for j in clique_raw:
        if not isinstance(j, int) or isinstance(j, bool) or not 1 <= j <= n:
            return None
        clique.append(j)
    if len(set(clique)) != len(clique) or len(clique) < n - 2 * t:
        return None
    polys: Dict[int, Polynomial] = {}
    for item in polys_raw:
        if not (isinstance(item, tuple) and len(item) == 2):
            return None
        j, coeffs = item
        if j not in clique or j in polys:
            return None
        if not isinstance(coeffs, tuple) or len(coeffs) > t + 1:
            return None
        if not all(valid_element(field, c) for c in coeffs):
            return None
        poly = Polynomial(field, list(coeffs))
        if vanish_at is not None and poly(vanish_at) != field.zero:
            return None
        polys[j] = poly
    if set(polys) != set(clique):
        return None
    return sorted(clique), polys


@dataclass
class DealingAgreement:
    """Common outcome of the verified-parallel-dealing sub-protocol.

    Produced by :func:`dealing_agreement_program`: all honest players hold
    the same ``clique``, ``polys``, and ``iterations``; ``shares_from``
    and ``self_ok`` are local.
    """

    success: bool
    clique: Tuple[int, ...] = ()
    polys: Dict[int, Polynomial] = dataclass_field(default_factory=dict)
    shares_from: Dict[int, Tuple[Element, ...]] = dataclass_field(default_factory=dict)
    self_ok: bool = False
    iterations: int = 0
    seed_coins_used: int = 0
    challenge: Optional[Element] = None


def consistency_clique(field: Field, n: int, state: DealingState) -> List[int]:
    """Fig. 5 step 6: consistency graph and Gavril clique (local view).

    Each decoded polynomial is checked against every announcer with one
    batched evaluation sweep.
    """
    directed = []
    announcers = sorted(state.nu_recv)
    announcer_points = [state.points[k] for k in announcers]
    for j in range(1, n + 1):
        poly_j = state.decoded[j]
        if poly_j is None:
            continue
        evals = poly_j.evaluate_many(announcer_points)
        for k, expected in zip(announcers, evals):
            value = state.nu_recv[k][j - 1]
            if valid_element(field, value) and expected == value:
                directed.append((j, k))
    adjacency = mutual_graph(n, directed)
    return [j for j in gavril_clique(adjacency) if state.decoded[j] is not None]


def proposal_support(
    field: Field, t: int, state: DealingState, clique: List[int],
    polys: Dict[int, Polynomial],
) -> int:
    """Count clique members passing the full step-10(iii) consistency check.

    Evaluates each proposed polynomial at every clique point once
    (shared-Horner), then checks all ``|clique|^2`` pairs against the
    announced combinations in this player's own view.
    """
    clique_points = [state.points[j] for j in clique]
    expected = {k: polys[k].evaluate_many(clique_points) for k in clique}
    passing = [
        j
        for idx, j in enumerate(clique)
        if j in state.nu_recv
        and all(
            valid_element(field, state.nu_recv[j][k - 1])
            and expected[k][idx] == state.nu_recv[j][k - 1]
            for k in clique
        )
    ]
    return len(passing)


def dealing_agreement_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    total: int,
    seed_coins: Sequence[CoinShare],
    rng,
    tag: str,
    shared_challenge: bool = True,
    vanish_at: Optional[Element] = None,
) -> Generator:
    """The heart of Fig. 5: n parallel verified dealings + clique agreement.

    Every player deals ``total`` degree-t polynomials; dealings are
    batch-verified with one exposed challenge, reconciled through the
    consistency graph, Gavril clique, grade-cast, leader election, and
    one BA per iteration.  Returns a :class:`DealingAgreement`.

    With ``vanish_at`` set, the dealt polynomials (and the acceptance
    checks) additionally vanish at that point — the origin for the
    proactive share-refresh protocol (the dealings must not change the
    refreshed secret), or a player's evaluation point for share recovery
    (the dealings must not leak that player's share).
    """
    if n < 6 * t + 1:
        raise ValueError(f"Coin-Gen requires n >= 6t+1 (n={n}, t={t})")
    num_challenges = 1 if shared_challenge else n
    if len(seed_coins) < num_challenges + 1:
        raise ValueError("not enough seed coins")

    # ---- Steps 1-5: verified parallel dealing + local decoding.
    state: DealingState = yield from verified_dealing(
        field, n, t, me, total, seed_coins, rng, tag,
        shared_challenge=shared_challenge, vanish_at=vanish_at,
    )
    if not state.ok:
        return DealingAgreement(False, seed_coins_used=state.seed_coins_used)

    # ---- Step 6: consistency graph and Gavril clique.
    my_clique = consistency_clique(field, n, state)

    # ---- Step 7: grade-cast the proposal (clique + decoded polynomials).
    proposal = (
        "prop",
        tuple(my_clique),
        tuple((j, state.decoded[j].coeffs) for j in my_clique),
    )
    graded = yield from parallel_gradecast(n, t, me, proposal, tag + "/gc")

    # ---- Steps 9-11: leader election + BA until acceptance.
    leader_coins = list(seed_coins[num_challenges:])
    for iteration, leader_coin in enumerate(leader_coins):
        elected = yield from coin_expose(field, me, leader_coin)
        used = num_challenges + iteration + 1
        if elected is None:
            return DealingAgreement(
                False, iterations=iteration + 1, seed_coins_used=used
            )
        leader = coin_to_index(field, elected, n)

        value, confidence = graded[leader]
        parsed = validate_proposal(field, n, t, value, vanish_at=vanish_at)
        my_input = 0
        if confidence == 2 and parsed is not None:
            clique, polys = parsed
            if proposal_support(field, t, state, clique, polys) >= 3 * t + 1:
                my_input = 1

        decision = yield from phase_king(
            n, t, me, my_input, f"{tag}/ba{iteration}"
        )
        if decision != 1:
            continue

        # BA accepted: some honest player verified, hence (grade-cast
        # guarantee) every honest player holds the same proposal value.
        if parsed is None:
            # Unreachable for honest players when BA's precondition held;
            # kept as a safe local failure.
            return DealingAgreement(
                False, iterations=iteration + 1, seed_coins_used=used
            )
        clique, polys = parsed

        # Self-verification: do my raw shares match the agreed polynomials?
        self_ok = me in clique and all(
            k in state.shares_from
            and valid_element(field, state.nu_mine[k - 1])
            and polys[k](state.points[me]) == state.nu_mine[k - 1]
            for k in clique
        )
        return DealingAgreement(
            True,
            clique=tuple(clique),
            polys=polys,
            shares_from=state.shares_from,
            self_ok=self_ok,
            iterations=iteration + 1,
            seed_coins_used=used,
            challenge=state.challenges[0],
        )

    return DealingAgreement(
        False,
        iterations=len(leader_coins),
        seed_coins_used=len(seed_coins),
    )
