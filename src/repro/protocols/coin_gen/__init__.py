"""Protocol Coin-Gen (Fig. 5): generate M sealed shared coins.

Point-to-point model, ``n >= 6t+1``.  The protocol is decomposed into
phase modules mirroring Fig. 5's structure:

* :mod:`~repro.protocols.coin_gen.dealing` — steps 1-5: n parallel
  verified dealings, one shared batching challenge, local decoding;
* :mod:`~repro.protocols.coin_gen.agreement` — steps 6-11: consistency
  graph, Gavril clique, grade-cast, leader election + BA loop;
* :mod:`~repro.protocols.coin_gen.finalize` — step 12 plus whole-protocol
  runners: coin-share assembly, trusted-dealer seed coins, ``run_coin_gen``
  and ``expose_coin``.

This package re-exports the historical ``repro.protocols.coin_gen``
module surface, so existing imports keep working unchanged.
"""

from repro.protocols.coin_gen.dealing import (
    DealingState,
    random_vanishing,
    _random_vanishing,
    verified_dealing,
)
from repro.protocols.coin_gen.agreement import (
    DealingAgreement,
    consistency_clique,
    dealing_agreement_program,
    proposal_support,
    validate_proposal,
)
from repro.protocols.coin_gen.finalize import (
    CoinGenOutput,
    coin_gen_program,
    expose_coin,
    make_seed_coins,
    run_coin_gen,
)

__all__ = [
    "DealingState",
    "random_vanishing",
    "_random_vanishing",
    "verified_dealing",
    "DealingAgreement",
    "consistency_clique",
    "dealing_agreement_program",
    "proposal_support",
    "validate_proposal",
    "CoinGenOutput",
    "coin_gen_program",
    "expose_coin",
    "make_seed_coins",
    "run_coin_gen",
]
