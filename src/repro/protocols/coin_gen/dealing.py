"""Coin-Gen dealing phase: n parallel verified dealings (Fig. 5 steps 1-5).

Every player acts as a Bit-Gen dealer in parallel; all instances reuse
one exposed challenge coin r ("using the same coin r for all
invocations", saving n-1 interpolations).  Step numbering follows Fig. 5:

1.  every player deals ``total`` degree-t polynomials — each evaluated at
    all n points in one shared-Horner sweep (Bit-Gen step 1);
2.  a seed coin is exposed as the batching challenge r (one coin, or one
    per dealer in the ``shared_challenge=False`` ablation);
3.  every player announces the vector of Horner combinations (one per
    dealer), n^2 messages of size nk (Theorem 2);
4-5. every Bit-Gen instance is locally decoded with Berlekamp-Welch
    (Fig. 4 steps 4-5).

The phase's outcome is a :class:`DealingState` — the local view that the
agreement phase (:mod:`repro.protocols.coin_gen.agreement`) reconciles
into a common clique.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.obs.phases import register_tag_phase
from repro.poly.polynomial import (
    Polynomial,
    evaluate_polys,
    horner_batch,
    horner_batch_many,
)
from repro.net.simulator import multicast, unicast
from repro.sharing.shamir import ShamirScheme
from repro.protocols.bit_gen import decode_batched_many
from repro.protocols.coin_expose import CoinShare, coin_expose_many
from repro.protocols.common import filter_tag, valid_element, valid_element_tuple

# share distribution ("<tag>/sh") and combination-vector announcements
# ("<tag>/nu") — the same suffix convention Bit-Gen and Batch-VSS use
register_tag_phase("deal", suffix="/sh")
register_tag_phase("clique", suffix="/nu")


@dataclass
class DealingState:
    """One player's local view after the dealing phase (Fig. 5 steps 1-5)."""

    ok: bool
    #: seed coins consumed so far (the batching challenge(s))
    seed_coins_used: int = 0
    #: the exposed batching challenge(s); [0] is the shared one
    challenges: List[Optional[Element]] = dataclass_field(default_factory=list)
    #: raw share tuples received from each dealer (validated)
    shares_from: Dict[int, Tuple[Element, ...]] = dataclass_field(
        default_factory=dict
    )
    #: the combination vector this player announced ("missing" markers kept)
    nu_mine: List[object] = dataclass_field(default_factory=list)
    #: combination vectors received from each announcer
    nu_recv: Dict[int, tuple] = dataclass_field(default_factory=dict)
    #: per-dealer decoded batched polynomial (None = the paper's "bot")
    decoded: Dict[int, Optional[Polynomial]] = dataclass_field(
        default_factory=dict
    )
    #: evaluation point of every player id
    points: Dict[int, Element] = dataclass_field(default_factory=dict)


def random_vanishing(field: Field, t: int, rng, vanish_at=None) -> Polynomial:
    """A uniform degree-<=t polynomial, optionally vanishing at a point.

    ``vanish_at=None`` -> unconstrained; zero -> zero constant term;
    other point x0 -> (x - x0) * q(x) with q uniform of degree t-1.
    """
    if vanish_at is None:
        return Polynomial.random(field, t, rng)
    if vanish_at == field.zero:
        return Polynomial.random(field, t, rng, constant=field.zero)
    q = Polynomial.random(field, t - 1, rng)
    linear = Polynomial(field, [field.neg(vanish_at), field.one])
    return linear * q


#: historical name, kept for callers that imported the private helper
_random_vanishing = random_vanishing


def verified_dealing(
    field: Field,
    n: int,
    t: int,
    me: int,
    total: int,
    seed_coins: Sequence[CoinShare],
    rng,
    tag: str,
    shared_challenge: bool = True,
    vanish_at: Optional[Element] = None,
) -> Generator:
    """Generator for Fig. 5 steps 1-5; returns a :class:`DealingState`.

    With ``vanish_at`` set, the dealt polynomials must vanish at that
    point (share-refresh mode: the origin; share-recovery mode: the
    recovering player's point) — and so must every decoded instance, or
    it is rejected as a cheat (evaded with probability <= total/p,
    Lemma 3).
    """
    scheme = ShamirScheme(field, n, t)
    points = {j: scheme.point(j) for j in range(1, n + 1)}
    num_challenges = 1 if shared_challenge else n

    # ---- Step 1: every player deals its polynomials (Bit-Gen step 1).
    # Each polynomial is evaluated at all n points in one shared-Horner
    # sweep rather than n separate scalar evaluations.
    my_polys = [
        random_vanishing(field, t, rng, vanish_at) for _ in range(total)
    ]
    point_list = [points[j] for j in range(1, n + 1)]
    rows = evaluate_polys(field, my_polys, point_list)
    sends = [
        unicast(j, (tag + "/sh", tuple(row[j - 1] for row in rows)))
        for j in range(1, n + 1)
    ]
    inbox = yield sends
    raw = filter_tag(inbox, tag + "/sh")
    shares_from: Dict[int, Tuple[Element, ...]] = {
        j: raw[j] for j in raw if valid_element_tuple(field, raw[j], total)
    }

    # ---- Step 2: expose the batching challenge(s).
    challenges = yield from coin_expose_many(
        field, me, list(seed_coins[:num_challenges])
    )
    if any(c is None for c in challenges):
        # A seed coin failed to decode; with valid seeds this cannot
        # happen, and when it does every honest player sees the same
        # failure (Coin-Expose unanimity) and aborts together.
        return DealingState(
            False, seed_coins_used=num_challenges, challenges=challenges
        )
    r_for = (
        {j: challenges[0] for j in range(1, n + 1)}
        if shared_challenge
        else {j: challenges[j - 1] for j in range(1, n + 1)}
    )

    # ---- Step 3: announce the vector of Horner combinations (one per
    # dealer), n^2 messages of size nk (Theorem 2).
    # With the shared challenge (the paper's default) every present
    # dealer's combination uses the same r, so the Horner chains batch
    # into one wide dot against the shared power basis r^1..r^M.
    nu_mine: List[object] = ["missing"] * n
    if shared_challenge:
        present = sorted(shares_from)
        combos = horner_batch_many(
            field,
            [list(shares_from[j]) for j in present],
            r_for[present[0]] if present else challenges[0],
        )
        for j, combo in zip(present, combos):
            nu_mine[j - 1] = combo
    else:
        for j in range(1, n + 1):
            if j in shares_from:
                nu_mine[j - 1] = horner_batch(
                    field, list(shares_from[j]), r_for[j]
                )
    inbox = yield [multicast((tag + "/nu", tuple(nu_mine)))]
    nu_recv: Dict[int, tuple] = {
        src: body
        for src, body in filter_tag(inbox, tag + "/nu").items()
        if isinstance(body, tuple) and len(body) == n
    }

    # ---- Steps 4-5: local decoding of every Bit-Gen instance.  The n
    # per-dealer decodes are independent, so their optimistic candidates
    # are verified in one bulk sweep.
    point_sets = [
        [
            (points[src], vec[j - 1])
            for src, vec in sorted(nu_recv.items())
            if valid_element(field, vec[j - 1])
        ]
        for j in range(1, n + 1)
    ]
    decoded: Dict[int, Optional[Polynomial]] = {}
    for j, poly in enumerate(decode_batched_many(field, point_sets, t, n), 1):
        if (
            poly is not None
            and vanish_at is not None
            and poly(vanish_at) != field.zero
        ):
            # the dealing must combine to zero at the protected point; a
            # cheat evades this with probability <= total/p (Lemma 3)
            poly = None
        decoded[j] = poly

    return DealingState(
        True,
        seed_coins_used=num_challenges,
        challenges=challenges,
        shares_from=shares_from,
        nu_mine=nu_mine,
        nu_recv=nu_recv,
        decoded=decoded,
        points=points,
    )
