"""Protocol Batch-VSS (Fig. 3): verify M sharings with one interpolation.

Broadcast-channel model, ``n >= 3t+1`` (Section 3.2).  Player ``P_i``
holds shares ``alpha_i1 .. alpha_iM`` of M dealings.  A secret coin is
exposed as the scalar ``r``; each player broadcasts the Horner combination
``nu_i = r^M alpha_iM + ... + r alpha_i1``; everyone interpolates a single
polynomial F through the ``nu``'s and accepts iff ``deg(F) <= t``.

Soundness (Lemma 3): if any dealing has degree > t, acceptance requires
``r`` to be a root of a fixed degree-M polynomial, so the error is at
most M/p.  Cost (Lemma 4): 2 M k log k additions and 2 interpolations per
player, two rounds of n messages, 2nk bits total — i.e. amortized
``O(1)`` communication per verified secret (Corollary 1).

Privacy note (see DESIGN.md Section 5): the interpolated F reveals the
combination ``sum_j r^j f_j(0)`` of the secrets.  When the secrets must
stay private, set ``blinding=True`` in the runner: the dealer appends one
extra random dealing that one-time-pads the combination, at O(1) extra
cost — the batch analogue of Fig. 2's companion polynomial ``g``.

``Batch-VSS(l)`` (the partial-acceptance variant the paper defines after
Fig. 3) is exposed through the ``accept_subset`` parameter: accept when a
degree-t polynomial fits the values of at least ``l`` given players.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, Optional, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.poly.barycentric import interpolate_cached
from repro.poly.berlekamp_welch import DecodingError, berlekamp_welch
from repro.poly.polynomial import Polynomial, horner_batch
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import broadcast
from repro.obs.phases import register_tag_phase

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.context import ProtocolContext

register_tag_phase("clique", suffix="/nu")
from repro.sharing.shamir import ShamirScheme
from repro.protocols.coin_expose import CoinShare, coin_expose, make_dealer_coin
from repro.protocols.common import filter_tag, valid_element


@dataclass(frozen=True)
class BatchVSSResult:
    """A player's verdict on the dealer's M sharings."""

    accepted: bool
    challenge: Optional[Element]


def batch_vss_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    alphas: Sequence[Element],
    coin: CoinShare,
    tag: str = "batchvss",
    accept_subset: Optional[Sequence[int]] = None,
) -> Generator:
    """One player's side of Protocol Batch-VSS.

    ``alphas`` are this player's shares of the M dealings (already held).
    With ``accept_subset`` (a list of player ids of length ``l``), runs
    the Batch-VSS(l) variant: accept iff a degree-t polynomial fits the
    broadcast values of those players.
    """
    scheme = ShamirScheme(field, n, t)

    # Step 1: expose the secret k-ary coin -> challenge r.
    r = yield from coin_expose(field, me, coin)

    # Step 2+3: Horner-combine own shares and broadcast.
    sends = []
    if r is not None and alphas is not None:
        nu = horner_batch(field, list(alphas), r)
        sends = [broadcast((tag + "/nu", nu))]
    inbox = yield sends
    if r is None:
        return BatchVSSResult(False, None)
    votes = filter_tag(inbox, tag + "/nu")
    points = {
        j: votes[j]
        for j in range(1, n + 1)
        if j in votes and valid_element(field, votes[j])
    }

    # Step 4: single interpolation, degree check.
    if accept_subset is not None:
        subset_pts = [
            (scheme.point(j), points[j]) for j in accept_subset if j in points
        ]
        if len(subset_pts) < len(accept_subset):
            return BatchVSSResult(False, r)
        accepted = _fits_degree(field, subset_pts, t)
    else:
        if len(points) < n:
            return BatchVSSResult(False, r)
        all_pts = [(scheme.point(j), v) for j, v in sorted(points.items())]
        # cached barycentric build over the fixed point set {1..n}: zero
        # inversions after the first batch verified in this field
        poly = interpolate_cached(field, all_pts)
        accepted = poly.degree <= t
    return BatchVSSResult(accepted, r)


def _fits_degree(field, pts, t) -> bool:
    if len(pts) <= t + 1:
        return True
    try:
        _, good = berlekamp_welch(field, pts, t, max_errors=0)
    except DecodingError:
        return False
    return len(good) == len(pts)


# ---------------------------------------------------------------------------
# whole-protocol runner
# ---------------------------------------------------------------------------

def run_batch_vss(
    field,
    n: Optional[int] = None,
    t: Optional[int] = None,
    M: int = 1,
    seed: int = 0,
    cheat_dealings: Optional[Dict[int, Dict[int, Element]]] = None,
    cheat_offsets: Optional[Dict[int, Dict[int, Element]]] = None,
    blinding: bool = False,
    accept_subset: Optional[Sequence[int]] = None,
    faulty_programs: Optional[Dict[int, Generator]] = None,
    context: Optional["ProtocolContext"] = None,
) -> Tuple[Dict[int, BatchVSSResult], NetworkMetrics]:
    """Run Protocol Batch-VSS over M fresh dealings.

    ``cheat_dealings`` maps a dealing index (0-based) to per-player share
    overrides, modelling dealings that do not lie on degree-t polynomials.
    ``cheat_offsets`` instead *adds* per-player offsets to the honest
    shares — this is how Lemma 3's optimal cheater is built: offsets of
    the form ``c_idx * i^(t+1)`` give the combined polynomial an x^(t+1)
    coefficient ``sum_idx r^(idx+1) c_idx``, which the cheater can arrange
    to have up to M roots.  With ``blinding=True``, an extra random
    dealing is appended to mask the combination of secrets (see module
    docstring).
    """
    from repro.protocols.context import as_context

    ctx = context if context is not None else as_context(field, n, t, seed=seed)
    field, n, t, rng = ctx.field, ctx.n, ctx.t, ctx.rng
    scheme = ShamirScheme(field, n, t)
    total = M + (1 if blinding else 0)
    share_table: Dict[int, list] = {pid: [] for pid in range(1, n + 1)}
    _, share_lists = scheme.deal_random_many(total, rng)
    for idx in range(total):
        values = {s.player_id: s.value for s in share_lists[idx]}
        if cheat_dealings and idx in cheat_dealings:
            values.update(cheat_dealings[idx])
        if cheat_offsets and idx in cheat_offsets:
            for pid, offset in cheat_offsets[idx].items():
                values[pid] = field.add(values[pid], offset)
        for pid in range(1, n + 1):
            share_table[pid].append(values[pid])

    _, coin_shares = make_dealer_coin(field, n, t, "batchvss-challenge", rng)
    network = ctx.network()
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, n + 1):
        if pid in faulty_programs:
            if faulty_programs[pid] is not None:
                programs[pid] = faulty_programs[pid]
            continue
        programs[pid] = batch_vss_program(
            field,
            n,
            t,
            pid,
            share_table[pid],
            coin_shares[pid],
            accept_subset=accept_subset,
        )
    honest = [pid for pid in programs if pid not in faulty_programs]
    with ctx.recorder.span("batch_vss", "protocol", n=n, t=t, M=M):
        outputs = network.run(programs, wait_for=honest)
    ctx.absorb(network.metrics)
    return outputs, network.metrics
