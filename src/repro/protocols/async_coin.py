"""Asynchronous shared-coin exposure: Coin-Expose ported off lockstep.

The paper's Fig. 6 exposure is one *synchronous* round: every qualified
holder multicasts its share, everyone decodes.  Asynchronously there are
no rounds — a player acts when *enough* shares have arrived.  This
module is that port, in the guarded style of :mod:`repro.net.guards`:
wait for an ``n - t`` quorum on the coin's expose tag, decode from the
cumulative inbox, and re-arm one sender higher if the decode doesn't
yet meet the robust acceptance threshold.

Unanimity under arbitrary delivery orders with ≤ t crashed players
follows from the same acceptance rule the synchronous exposure uses
(:func:`~repro.protocols.coin_expose.decode_exposed`): a decoded
polynomial is accepted only when it matches ``max(2t+1, N-t)`` of the
``N`` valid shares in view, and any two qualifying polynomials agree on
t+1 honestly-sent common points — so players decoding from *different*
``n - t``-share prefixes of the delivery order still land on the same
``F(0)``.  This is the approximate-agreement-free core of the async
coin targets in PAPERS.md (*Distributed Randomness from Approximate
Agreement*, *Subcubic Coin Tossing in Asynchrony without PKI*): with a
dealer-seeded sharing, exposure alone needs no extra agreement round.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Generator, Optional, Tuple

from repro.fields.base import Element, Field
from repro.net.async_runtime import AsyncRuntime
from repro.net.faults import FaultPlane
from repro.net.guards import guarded
from repro.net.scheduler import Scheduler
from repro.net.transport import multicast
from repro.protocols.coin_expose import CoinShare, decode_exposed, make_dealer_coin
from repro.protocols.common import filter_tag, valid_element
from repro.protocols.context import as_context


def async_coin_program(
    field: Field, n: int, me: int, coin: CoinShare
) -> Generator:
    """One player's async exposure of ``coin``; returns ``F(0)``.

    Multicast my share (if I hold one), then sleep until a
    ``|senders| - t`` quorum of expose messages is in; decode from the
    cumulative inbox and re-arm one sender higher until the robust
    threshold accepts.  Runs unchanged on both runtimes: under lockstep
    the quorum is satisfied at the first round boundary after the
    sends, reproducing the paper's one-round exposure.
    """
    tag = "expose/" + coin.coin_id
    sends = []
    if me in coin.senders and coin.my_value is not None:
        sends.append(multicast((tag, coin.my_value)))
    quorum = max(len(coin.senders) - coin.t, 2 * coin.t + 1)
    while True:
        inbox = yield guarded(sends, tags=tag, quorum=quorum)
        sends = []
        received = filter_tag(inbox, tag)
        points = [
            (field.element_point(src), value)
            for src, value in sorted(received.items())
            if src in coin.senders and valid_element(field, value)
        ]
        value = decode_exposed(field, points, coin.t)
        if value is not None:
            return value
        # not decodable from this prefix of the delivery order (faulty
        # shares in view): wait for one more distinct expose sender
        quorum = len(received) + 1


def run_async_coin(
    ctx_or_field,
    n: Optional[int] = None,
    t: Optional[int] = None,
    seed: int = 0,
    coin_id: str = "async-coin",
    scheduler: Optional[Scheduler] = None,
    faults: Optional[FaultPlane] = None,
    crashed=(),
    rng: Optional[random.Random] = None,
    **context_kwargs,
) -> Tuple[Dict[int, Any], Element, AsyncRuntime]:
    """Deal one trusted-dealer coin and expose it on an :class:`AsyncRuntime`.

    Accepts a :class:`~repro.protocols.context.ProtocolContext` or the
    legacy ``(field, n, t, seed=...)`` form.  ``scheduler`` defaults to
    a :class:`~repro.net.scheduler.RandomOrderScheduler` seeded from the
    context seed — pass your own to sweep delivery orders.  ``crashed``
    players never run (crash-from-start); ``faults`` layers mid-run
    crash/drop/delay rules on top.

    Returns ``(outputs, secret, runtime)``: per-player exposed values
    (unanimously ``secret`` for ≤ t crashes), the dealt secret, and the
    runtime (``runtime.logical_time`` / ``runtime.delivery_count`` are
    the async makespan).
    """
    ctx = as_context(ctx_or_field, n, t, seed=seed, **context_kwargs)
    dealer_rng = rng if rng is not None else ctx.child_rng()
    secret, shares = make_dealer_coin(
        ctx.field, ctx.n, ctx.t, coin_id, dealer_rng
    )
    crashed = set(crashed)
    if crashed:
        # route crash-from-start players through the fault plane instead
        # of silently omitting their programs: delivery order, metrics
        # and outputs are unchanged (a player crashed at time 1 never
        # runs and is never waited for), but the crash is now *visible*
        # — a "crash" FAULT event lands in flight logs and lets the
        # liveness watchdog classify the stalls it causes
        faults = faults if faults is not None else FaultPlane()
        for pid in crashed:
            faults.crash(pid, 1)
    runtime = ctx.async_runtime(scheduler=scheduler, faults=faults)
    programs = {
        pid: async_coin_program(ctx.field, ctx.n, pid, shares[pid])
        for pid in range(1, ctx.n + 1)
    }
    with ctx.recorder.span("async_coin", "protocol", n=ctx.n, t=ctx.t):
        outputs = runtime.run(programs)
    ctx.absorb(runtime.metrics)
    return outputs, secret, runtime


def async_coin_bit(value: Element, field: Field) -> int:
    """A fair bit from an exposed k-ary coin value (``F(0) mod 2``)."""
    return field.to_int(value) & 1
