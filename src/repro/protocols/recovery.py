"""Share recovery: re-provision a player that lost its coin shares.

In the proactive setting (Section 1.2), a player that was corrupted
during a batch holds no shares of that batch's coins once the intruder
moves on.  Refresh (``repro.protocols.refresh``) makes *old* shares
useless; this protocol gives the recovered player *new* ones — without
revealing the coin to anyone, including the helpers.

Construction (standard proactive-recovery idea, built from the same
verified-dealing machinery as Coin-Gen):

1. every player deals, per coin ``h``, a degree-t polynomial ``z_h``
   vanishing at the recovering player's point ``x_0`` (plus a blinder),
   verified and reconciled via :func:`dealing_agreement_program` with
   ``vanish_at=x_0``;
2. every self-verified helper ``j`` sends the recovering player the
   masked value ``m_j = share_j + sum_{k in C_l} z_{k,h}(j)``;
3. the masked values lie on ``f_h + Z_h`` — a *fresh uniformly random*
   degree-t polynomial conditioned only on agreeing with ``f_h`` at
   ``x_0`` — so the recovering player Berlekamp-Welch-decodes it and
   evaluates at ``x_0`` to get exactly its lost share ``f_h(x_0)``,
   while learning nothing about ``f_h(0)``.

Like refresh, recovery targets coins whose sender set is all n players.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import unicast
from repro.poly.berlekamp_welch import DecodingError, berlekamp_welch
from repro.protocols.coin_expose import CoinShare
from repro.protocols.coin_gen import DealingAgreement, dealing_agreement_program
from repro.protocols.common import filter_tag, valid_element_tuple
from repro.sharing.shamir import ShamirScheme

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.context import ProtocolContext


@dataclass
class RecoveryOutput:
    """A player's local outcome of one recovery run."""

    success: bool
    #: at the recovering player: its recovered coin shares; elsewhere: the
    #: unchanged input shares
    coins: List[CoinShare] = dataclass_field(default_factory=list)
    clique: Tuple[int, ...] = ()
    iterations: int = 0
    seed_coins_used: int = 0


def recovery_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    recovering: int,
    coins: Sequence[CoinShare],
    seed_coins: Sequence[CoinShare],
    rng: random.Random,
    tag: str = "recover",
    blinding: bool = True,
) -> Generator:
    """One player's side of the share-recovery protocol.

    ``recovering`` is the player being re-provisioned (a protocol
    parameter all players agree on); ``coins`` are this player's shares
    of the affected coins (the recovering player passes its — possibly
    value-less — CoinShare handles so it knows ids and metadata).
    """
    everyone = frozenset(range(1, n + 1))
    for coin in coins:
        if coin.senders != everyone:
            raise ValueError(
                f"recovery requires full-holder coins; {coin.coin_id} is "
                f"held by {sorted(coin.senders)}"
            )
    scheme = ShamirScheme(field, n, t)
    x0 = scheme.point(recovering)
    H = len(coins)
    total = H + (1 if blinding else 0)

    agreement: DealingAgreement = yield from dealing_agreement_program(
        field, n, t, me, total, seed_coins, rng, tag,
        vanish_at=x0,
    )
    if not agreement.success:
        return RecoveryOutput(
            False,
            iterations=agreement.iterations,
            seed_coins_used=agreement.seed_coins_used,
        )

    # ---- masked-share round: helpers -> recovering player (private).
    sends = []
    if (
        me != recovering
        and agreement.self_ok
        and all(coin.my_value is not None for coin in coins)
    ):
        masked = []
        for h, coin in enumerate(coins):
            value = coin.my_value
            for k in agreement.clique:
                value = field.add(value, agreement.shares_from[k][h])
            masked.append(value)
        sends = [unicast(recovering, (tag + "/mask", tuple(masked)))]
    inbox = yield sends

    if me != recovering:
        return RecoveryOutput(
            True,
            coins=list(coins),
            clique=agreement.clique,
            iterations=agreement.iterations,
            seed_coins_used=agreement.seed_coins_used,
        )

    # ---- recovering player: decode each masked polynomial at x0.
    received = {
        src: body
        for src, body in filter_tag(inbox, tag + "/mask").items()
        if valid_element_tuple(field, body, H)
    }
    recovered: List[CoinShare] = []
    ok = True
    for h, coin in enumerate(coins):
        pts = [
            (scheme.point(src), vec[h]) for src, vec in sorted(received.items())
        ]
        value = _decode_at(field, pts, t, x0)
        if value is None:
            ok = False
            recovered.append(coin)
        else:
            recovered.append(
                CoinShare(coin.coin_id, coin.senders, coin.t, value)
            )
    return RecoveryOutput(
        ok,
        coins=recovered,
        clique=agreement.clique,
        iterations=agreement.iterations,
        seed_coins_used=agreement.seed_coins_used,
    )


def _decode_at(field: Field, points, t: int, x0) -> Optional[Element]:
    """Robust decode with the Coin-Expose acceptance rule, evaluated at x0."""
    n_valid = len(points)
    threshold = max(2 * t + 1, n_valid - t) if t > 0 else n_valid
    if n_valid == 0 or n_valid < threshold:
        return None
    try:
        poly, good = berlekamp_welch(field, points, t, n_valid - threshold)
    except DecodingError:
        return None
    if len(good) < threshold:
        return None
    return poly(x0)


def run_recovery(
    field,
    n: Optional[int] = None,
    t: Optional[int] = None,
    recovering: int = 1,
    coin_table: Optional[Dict[int, List[CoinShare]]] = None,
    seed: int = 0,
    max_iterations: Optional[int] = None,
    faulty_programs: Optional[Dict[int, Generator]] = None,
    tag: str = "recover",
    context: Optional["ProtocolContext"] = None,
) -> Tuple[Dict[int, RecoveryOutput], NetworkMetrics]:
    """Run one recovery for ``recovering`` over ``coin_table``.

    Accepts either the legacy ``(field, n, t, ...)`` convention or a
    ready :class:`~repro.protocols.context.ProtocolContext`.
    """
    from repro.protocols.coin_gen import make_seed_coins
    from repro.protocols.context import as_context

    if coin_table is None:
        raise TypeError("run_recovery requires a coin_table")
    ctx = context if context is not None else as_context(field, n, t, seed=seed)
    field, n, t, rng = ctx.field, ctx.n, ctx.t, ctx.rng
    if max_iterations is None:
        max_iterations = 2 * t + 4
    seed_coins = make_seed_coins(
        field, n, t, 1 + max_iterations, rng, prefix=f"{tag}-seed"
    )

    network = ctx.network(allow_broadcast=False)
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, n + 1):
        if pid in faulty_programs:
            if faulty_programs[pid] is not None:
                programs[pid] = faulty_programs[pid]
            continue
        programs[pid] = recovery_program(
            field,
            n,
            t,
            pid,
            recovering,
            coin_table[pid],
            seed_coins[pid],
            ctx.player_rng(pid),
            tag=tag,
        )
    honest = [pid for pid in programs if pid not in faulty_programs]
    outputs = network.run(programs, wait_for=honest)
    ctx.absorb(network.metrics)
    return outputs, network.metrics
