"""Proactive share refresh (Herzberg-Jarecki-Krawczyk-Yung [16] style).

The paper motivates its design with proactive security: "intruders are
allowed to move over time" (Section 1.2).  A mobile adversary that
corrupts player A in epoch 1 and player B in epoch 2 eventually collects
``> t`` shares of a long-lived sealed coin — unless the shares are
*refreshed* between epochs so that old shares become useless.

Refresh = every player deals a batch of degree-t polynomials with a
**zero** constant term (one per coin being refreshed, plus a blinder);
the dealings are verified and reconciled with exactly the Coin-Gen
machinery (batch check under an exposed challenge, consistency graph,
Gavril clique, grade-cast, leader election, BA) with one extra predicate:
the batched polynomial must vanish at the origin, so the refresh cannot
alter the coins' values.  Each holder then adds the agreed clique's
zero-shares to its coin share:

    new_share_i = old_share_i + sum_{k in C_l} z_{k,h}(i)

The coin's polynomial becomes ``f + sum z`` — same secret, freshly
random — and shares recorded before the refresh no longer combine with
shares recorded after it.

Scope: refresh targets coins whose qualified sender set is *all players*
(trusted-dealer seeds, or coins re-shared to everyone); for a generated
coin held by a 4t+1 clique, the intersection of old holders with a fresh
clique can drop below the 2t+1 good senders reconstruction needs, so the
protocol refuses such inputs rather than silently weakening them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING, Dict, Generator, List, Optional, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.net.metrics import NetworkMetrics
from repro.protocols.coin_expose import CoinShare
from repro.protocols.coin_gen import DealingAgreement, dealing_agreement_program

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.context import ProtocolContext


@dataclass
class RefreshOutput:
    """A player's local outcome of one refresh run."""

    success: bool
    #: the refreshed shares, same coin ids, re-randomized values
    coins: List[CoinShare] = dataclass_field(default_factory=list)
    #: the commonly agreed refresh clique
    clique: Tuple[int, ...] = ()
    iterations: int = 0
    seed_coins_used: int = 0
    self_ok: bool = False


def refresh_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    coins: Sequence[CoinShare],
    seed_coins: Sequence[CoinShare],
    rng: random.Random,
    tag: str = "refresh",
    blinding: bool = True,
) -> Generator:
    """One player's side of the proactive refresh protocol.

    ``coins`` are this player's shares of the sealed coins to refresh
    (their ``senders`` must be all n players); ``seed_coins`` supply the
    challenge + leader-election randomness exactly as in Coin-Gen.
    """
    everyone = frozenset(range(1, n + 1))
    for coin in coins:
        if coin.senders != everyone:
            raise ValueError(
                f"refresh requires full-holder coins; {coin.coin_id} is "
                f"held by {sorted(coin.senders)}"
            )
    H = len(coins)
    total = H + (1 if blinding else 0)

    agreement: DealingAgreement = yield from dealing_agreement_program(
        field, n, t, me, total, seed_coins, rng, tag,
        vanish_at=field.zero,
    )
    if not agreement.success:
        return RefreshOutput(
            False,
            iterations=agreement.iterations,
            seed_coins_used=agreement.seed_coins_used,
        )

    refreshed: List[CoinShare] = []
    for h, coin in enumerate(coins):
        new_value: Optional[Element] = None
        if agreement.self_ok and coin.my_value is not None:
            new_value = coin.my_value
            for k in agreement.clique:
                new_value = field.add(
                    new_value, agreement.shares_from[k][h]
                )
        refreshed.append(
            CoinShare(
                f"{coin.coin_id}@{tag}",
                coin.senders,
                coin.t,
                new_value,
            )
        )
    return RefreshOutput(
        True,
        coins=refreshed,
        clique=agreement.clique,
        iterations=agreement.iterations,
        seed_coins_used=agreement.seed_coins_used,
        self_ok=agreement.self_ok,
    )


def run_refresh(
    field,
    n: Optional[int] = None,
    t: Optional[int] = None,
    coin_table: Optional[Dict[int, List[CoinShare]]] = None,
    seed: int = 0,
    max_iterations: Optional[int] = None,
    faulty_programs: Optional[Dict[int, Generator]] = None,
    tag: str = "refresh",
    context: Optional["ProtocolContext"] = None,
) -> Tuple[Dict[int, RefreshOutput], NetworkMetrics]:
    """Run one refresh over ``coin_table`` ({player: its coin shares}).

    Fresh trusted-dealer seed coins drive the challenge/leader draws (in
    a bootstrapped system these come from the previous batch instead).
    Accepts either the legacy ``(field, n, t, ...)`` convention or a
    ready :class:`~repro.protocols.context.ProtocolContext`.
    """
    from repro.protocols.coin_gen import make_seed_coins
    from repro.protocols.context import as_context

    if coin_table is None:
        raise TypeError("run_refresh requires a coin_table")
    ctx = context if context is not None else as_context(field, n, t, seed=seed)
    field, n, t, rng = ctx.field, ctx.n, ctx.t, ctx.rng
    if max_iterations is None:
        max_iterations = 2 * t + 4
    seed_coins = make_seed_coins(
        field, n, t, 1 + max_iterations, rng, prefix=f"{tag}-seed"
    )

    network = ctx.network(allow_broadcast=False)
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, n + 1):
        if pid in faulty_programs:
            if faulty_programs[pid] is not None:
                programs[pid] = faulty_programs[pid]
            continue
        programs[pid] = refresh_program(
            field,
            n,
            t,
            pid,
            coin_table[pid],
            seed_coins[pid],
            ctx.player_rng(pid),
            tag=tag,
        )
    honest = [pid for pid in programs if pid not in faulty_programs]
    outputs = network.run(programs, wait_for=honest)
    ctx.absorb(network.metrics)
    return outputs, network.metrics
