"""The paper's protocols (Figs. 2-6) and their agreement substrates.

Broadcast-channel model (Section 3, ``n >= 3t+1``):

* :mod:`repro.protocols.vss` — Protocol VSS (Fig. 2)
* :mod:`repro.protocols.batch_vss` — Protocol Batch-VSS (Fig. 3)

Point-to-point model (Section 4, ``n >= 6t+1``):

* :mod:`repro.protocols.bit_gen` — Protocol Bit-Gen (Fig. 4)
* :mod:`repro.protocols.coin_gen` — Protocol Coin-Gen (Fig. 5)
* :mod:`repro.protocols.coin_expose` — Protocol Coin-Expose (Fig. 6)

Substrates:

* :mod:`repro.protocols.gradecast` — Feldman-Micali Grade-Cast
* :mod:`repro.protocols.ba` — deterministic Byzantine agreement (phase king)
* :mod:`repro.protocols.clique` — consistency graph + Gavril clique finding

Asynchronous model (guarded programs, see :mod:`repro.net.guards`):

* :mod:`repro.protocols.broadcast` — Bracha-style reliable broadcast
  (``reliable_broadcast_program``)
* :mod:`repro.protocols.async_coin` — shared-coin exposure under
  adversarial message-at-a-time delivery
"""

from repro.protocols.context import ProtocolContext, as_context
from repro.protocols.coin_expose import CoinShare, coin_expose, make_dealer_coin
from repro.protocols.vss import run_vss, vss_program, VSSResult
from repro.protocols.vss_complaints import (
    run_vss_with_complaints,
    vss_complaints_program,
    ComplaintVSSResult,
)
from repro.protocols.batch_vss import run_batch_vss, batch_vss_program
from repro.protocols.gradecast import parallel_gradecast
from repro.protocols.ba import phase_king
from repro.protocols.eig import eig_program, run_eig
from repro.protocols.broadcast import (
    broadcast_program,
    reliable_broadcast_program,
    run_broadcast,
    run_reliable_broadcast,
)
from repro.protocols.async_coin import (
    async_coin_bit,
    async_coin_program,
    run_async_coin,
)
from repro.protocols.clique import gavril_clique, mutual_graph
from repro.protocols.bit_gen import run_bit_gen, BitGenOutput
from repro.protocols.coin_gen import run_coin_gen, coin_gen_program, CoinGenOutput
from repro.protocols.refresh import run_refresh, refresh_program, RefreshOutput
from repro.protocols.recovery import run_recovery, recovery_program, RecoveryOutput

__all__ = [
    "ProtocolContext",
    "as_context",
    "CoinShare",
    "coin_expose",
    "make_dealer_coin",
    "run_vss",
    "vss_program",
    "VSSResult",
    "run_vss_with_complaints",
    "vss_complaints_program",
    "ComplaintVSSResult",
    "run_batch_vss",
    "batch_vss_program",
    "parallel_gradecast",
    "phase_king",
    "eig_program",
    "run_eig",
    "broadcast_program",
    "run_broadcast",
    "reliable_broadcast_program",
    "run_reliable_broadcast",
    "async_coin_program",
    "run_async_coin",
    "async_coin_bit",
    "gavril_clique",
    "mutual_graph",
    "run_bit_gen",
    "BitGenOutput",
    "run_coin_gen",
    "coin_gen_program",
    "CoinGenOutput",
    "run_refresh",
    "refresh_program",
    "RefreshOutput",
    "run_recovery",
    "recovery_program",
    "RecoveryOutput",
]
