"""Byzantine broadcast from Grade-Cast + BA (substrate S10).

The Section 3 protocols *assume* a broadcast channel ("for Section 3 we
assume that a broadcast channel facility is in place; we will show in
Section 4 how this assumption can be replaced by point-to-point
communication").  The simulator provides that assumed channel as an
ideal primitive; this module provides the *realization* the paper
alludes to: a full broadcast protocol over point-to-point links, built
from the same substrates Coin-Gen uses.

Construction (classic gradecast-based reduction, n > 4t here because it
reuses phase-king BA):

1. the sender grade-casts its value;
2. every player runs BA with input 1 iff its confidence is 2;
3. if BA outputs 1, output the grade-cast value (common at every honest
   player by the gradecast soundness property), else output the default.

Guarantees: an honest sender's value is delivered identically to all
honest players (validity); for any sender, all honest players output the
same value (agreement).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.net.metrics import NetworkMetrics
from repro.net.simulator import SynchronousNetwork
from repro.protocols.ba import phase_king
from repro.protocols.gradecast import parallel_gradecast

#: returned when broadcast fails to establish a common value
DEFAULT = ("broadcast-default",)


def broadcast_program(
    n: int,
    t: int,
    me: int,
    sender: int,
    value: Any = None,
    tag: str = "bcast",
) -> Generator:
    """One player's side of Byzantine broadcast; returns the common value.

    ``value`` is meaningful only at the sender.  Requires ``n > 4t``
    (inherited from phase-king).
    """
    own = value if me == sender else ("no-value",)
    graded = yield from parallel_gradecast(n, t, me, own, tag + "/gc")
    received, confidence = graded[sender]
    ba_input = 1 if confidence == 2 else 0
    decision = yield from phase_king(n, t, me, ba_input, tag + "/ba")
    if decision == 1 and confidence >= 1:
        return received
    return DEFAULT


def run_broadcast(
    n: int,
    t: int,
    sender: int,
    value: Any,
    field=None,
    faulty_programs: Optional[Dict[int, Generator]] = None,
    tag: str = "bcast",
) -> Tuple[Dict[int, Any], NetworkMetrics]:
    """Run one Byzantine broadcast over a point-to-point network."""
    network = SynchronousNetwork(n, field=field, allow_broadcast=False)
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, n + 1):
        if pid in faulty_programs:
            if faulty_programs[pid] is not None:
                programs[pid] = faulty_programs[pid]
            continue
        programs[pid] = broadcast_program(
            n, t, pid, sender, value if pid == sender else None, tag
        )
    honest = [pid for pid in programs if pid not in faulty_programs]
    outputs = network.run(programs, wait_for=honest)
    return outputs, network.metrics
