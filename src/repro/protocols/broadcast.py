"""Byzantine broadcast from Grade-Cast + BA (substrate S10).

The Section 3 protocols *assume* a broadcast channel ("for Section 3 we
assume that a broadcast channel facility is in place; we will show in
Section 4 how this assumption can be replaced by point-to-point
communication").  The simulator provides that assumed channel as an
ideal primitive; this module provides the *realization* the paper
alludes to: a full broadcast protocol over point-to-point links, built
from the same substrates Coin-Gen uses.

Construction (classic gradecast-based reduction, n > 4t here because it
reuses phase-king BA):

1. the sender grade-casts its value;
2. every player runs BA with input 1 iff its confidence is 2;
3. if BA outputs 1, output the grade-cast value (common at every honest
   player by the gradecast soundness property), else output the default.

Guarantees: an honest sender's value is delivered identically to all
honest players (validity); for any sender, all honest players output the
same value (agreement).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.net.guards import Wait, guarded, wait_any
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import SynchronousNetwork, multicast
from repro.obs.phases import register_tag_phase
from repro.protocols.ba import phase_king
from repro.protocols.common import filter_tag, plurality
from repro.protocols.gradecast import parallel_gradecast

# Bracha reliable-broadcast traffic is broadcast-substrate work, same
# pipeline stage as the gradecast echoes it generalizes
register_tag_phase("gradecast", suffix="/init")
register_tag_phase("gradecast", suffix="/ready")

#: returned when broadcast fails to establish a common value
DEFAULT = ("broadcast-default",)


def broadcast_program(
    n: int,
    t: int,
    me: int,
    sender: int,
    value: Any = None,
    tag: str = "bcast",
) -> Generator:
    """One player's side of Byzantine broadcast; returns the common value.

    ``value`` is meaningful only at the sender.  Requires ``n > 4t``
    (inherited from phase-king).
    """
    own = value if me == sender else ("no-value",)
    graded = yield from parallel_gradecast(n, t, me, own, tag + "/gc")
    received, confidence = graded[sender]
    ba_input = 1 if confidence == 2 else 0
    decision = yield from phase_king(n, t, me, ba_input, tag + "/ba")
    if decision == 1 and confidence >= 1:
        return received
    return DEFAULT


def reliable_broadcast_program(
    n: int,
    t: int,
    me: int,
    sender: int,
    value: Any = None,
    tag: str = "rbc",
) -> Generator:
    """Bracha-style reliable broadcast, written in the guarded style.

    The async-portable sibling of :func:`broadcast_program`: echo/ready
    quorums instead of round structure, so the same body runs under both
    the lockstep and the event-driven runtime (see
    :mod:`repro.net.guards`).  Requires ``n > 3t``.

    * the sender multicasts ``<tag>/init v``;
    * on the sender's init, multicast ``<tag>/echo v``;
    * on ``n - t`` echoes for ``v`` — or ``t + 1`` readies (the
      amplification step) — multicast ``<tag>/ready v``;
    * on ``n - t`` readies for ``v``, output ``v``.

    Guards wait on *tag counts* (distinct senders of a tag); the value
    thresholds are re-checked by the body against its cumulative inbox,
    and a wake that finds the tag count satisfied but no value at
    threshold re-arms the guard one sender higher — so a Byzantine
    equivocation can delay a wake but never spin it.

    With an honest sender and ≤ t crashed players, every live player
    outputs the sender's value under any delivery order; a crashed
    *sender* leaves the protocol (correctly) never terminating.
    """
    if n <= 3 * t:  # eager: raise at construction, not at first step
        raise ValueError("reliable broadcast needs n > 3t")
    return _reliable_broadcast(n, t, me, sender, value, tag)


def _reliable_broadcast(
    n: int, t: int, me: int, sender: int, value: Any, tag: str
) -> Generator:
    init_tag, echo_tag = tag + "/init", tag + "/echo"
    ready_tag = tag + "/ready"
    quorum = n - t

    def _next(tag_count: int, threshold: int) -> int:
        return threshold if tag_count < threshold else tag_count + 1

    sends = [multicast((init_tag, value))] if me == sender else []
    echoed = False
    readied = False
    inbox: Dict[Any, Any] = {}
    while True:
        inits = filter_tag(inbox, init_tag)
        if not echoed and sender in inits:
            sends.append(multicast((echo_tag, inits[sender])))
            echoed = True
        echoes = filter_tag(inbox, echo_tag)
        readies = filter_tag(inbox, ready_tag)
        echo_best = plurality(echoes)
        ready_best = plurality(readies)
        if not readied:
            if echo_best is not None and echo_best[1] >= quorum:
                sends.append(multicast((ready_tag, echo_best[0])))
                readied = True
            elif ready_best is not None and ready_best[1] >= t + 1:
                sends.append(multicast((ready_tag, ready_best[0])))
                readied = True
        if readied and ready_best is not None and ready_best[1] >= quorum:
            if sends:
                # flush this wake's emissions (my own ready may complete
                # someone else's quorum) before returning
                yield guarded(sends, tags=ready_tag, quorum=0)
            return ready_best[0]
        # re-arm: wait for whichever tag count could advance this state,
        # one past its current count when the threshold already fired
        if not echoed:
            wait = Wait((init_tag,), _next(len(inits), 1))
        elif not readied:
            wait = wait_any(
                Wait((echo_tag,), _next(len(echoes), quorum)),
                Wait((ready_tag,), _next(len(readies), t + 1)),
            )
        else:
            wait = Wait((ready_tag,), _next(len(readies), quorum))
        inbox = yield guarded(sends, wait=wait)
        sends = []


def run_reliable_broadcast(
    n: int,
    t: int,
    sender: int,
    value: Any,
    field=None,
    runtime=None,
    crashed=(),
    tag: str = "rbc",
) -> Dict[int, Any]:
    """Run one Bracha reliable broadcast; ``{pid: value}`` for live players.

    ``runtime`` is any :class:`~repro.net.runtime.RuntimeBase` — pass an
    :class:`~repro.net.async_runtime.AsyncRuntime` for adversarial
    delivery orders, or None for a default lockstep network.  ``crashed``
    players get no program at all (the simplest crash-from-start model;
    use a :class:`~repro.net.faults.FaultPlane` on the runtime for
    mid-run crashes).
    """
    if runtime is None:
        runtime = SynchronousNetwork(n, field=field)
    crashed = set(crashed)
    programs = {
        pid: reliable_broadcast_program(
            n, t, pid, sender, value if pid == sender else None, tag
        )
        for pid in range(1, n + 1)
        if pid not in crashed
    }
    return runtime.run(programs)


def run_broadcast(
    n: int,
    t: int,
    sender: int,
    value: Any,
    field=None,
    faulty_programs: Optional[Dict[int, Generator]] = None,
    tag: str = "bcast",
) -> Tuple[Dict[int, Any], NetworkMetrics]:
    """Run one Byzantine broadcast over a point-to-point network."""
    network = SynchronousNetwork(n, field=field, allow_broadcast=False)
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, n + 1):
        if pid in faulty_programs:
            if faulty_programs[pid] is not None:
                programs[pid] = faulty_programs[pid]
            continue
        programs[pid] = broadcast_program(
            n, t, pid, sender, value if pid == sender else None, tag
        )
    honest = [pid for pid in programs if pid not in faulty_programs]
    outputs = network.run(programs, wait_for=honest)
    return outputs, network.metrics
