"""Protocol Coin-Gen (Fig. 5): generate M sealed shared coins.

Point-to-point model, ``n >= 6t+1``.  Every player acts as a Bit-Gen
dealer in parallel (all instances reuse one exposed challenge coin r —
"using the same coin r for all invocations", saving n-1 interpolations);
each player decodes every instance, builds the consistency graph, finds a
Gavril clique, grade-casts its proposal (clique + decoded polynomials),
and the players then repeatedly (a) expose a seed coin to elect a random
leader l and (b) run one deterministic Byzantine agreement on whether
player l's grade-cast proposal is acceptable, until a BA outputs 1.

A player's BA input is 1 iff (Fig. 5 step 10):

  i)   its confidence in P_l's grade-cast is 2;
  ii)  the proposed clique C_l has size >= n - 2t (>= 4t+1);
  iii) at least 3t+1 members j of C_l pass, in this player's own view,
       the full consistency check: for every k in C_l, the combination
       nu_j announced by j for dealer k satisfies F_k(j) = nu_j, where
       F_k is the polynomial l grade-cast.

On success the h-th coin is the sealed value ``sum_{k in C_l} f_{k,h}(0)``
(at least one clique dealer is honest, so the sum is uniform and secret);
a player's coin share is the corresponding sum of its raw shares, which it
will only send at expose time if its own shares passed the consistency
check against the agreed polynomials (self-verification — see DESIGN.md
Section 5 for why this, plus Coin-Expose's robust acceptance rule, yields
unanimity without a common 3t+1 sender set).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.poly.polynomial import Polynomial, horner_batch
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import SynchronousNetwork, multicast, unicast
from repro.sharing.shamir import ShamirScheme
from repro.protocols.ba import phase_king
from repro.protocols.bit_gen import decode_batched
from repro.protocols.clique import gavril_clique, mutual_graph
from repro.protocols.coin_expose import (
    CoinShare,
    coin_expose,
    coin_expose_many,
    coin_to_index,
    make_dealer_coin,
)
from repro.protocols.common import filter_tag, valid_element, valid_element_tuple
from repro.protocols.gradecast import parallel_gradecast


@dataclass
class CoinGenOutput:
    """A player's local outcome of one Coin-Gen run."""

    success: bool
    #: the commonly agreed clique C_l (empty tuple on failure)
    clique: Tuple[int, ...] = ()
    #: this player's shares of the M generated sealed coins
    coins: List[CoinShare] = dataclass_field(default_factory=list)
    #: number of leader-election/BA iterations executed (Lemma 8)
    iterations: int = 0
    #: seed coins consumed (challenges + leader elections)
    seed_coins_used: int = 0
    #: the exposed batching challenge(s)
    challenge: Optional[Element] = None
    #: whether this player's own shares verified (it will send at expose)
    self_ok: bool = False
    #: the agreed (public) batched polynomials per clique dealer — common
    #: knowledge after the grade-cast; retained for analysis and tests
    public_polys: Dict[int, "Polynomial"] = dataclass_field(default_factory=dict)


def validate_proposal(field: Field, n: int, t: int, value, vanish_at=None):
    """Check a grade-cast proposal's structure and degree bounds.

    Returns ``(clique, {dealer: Polynomial})`` or None.  Purely a function
    of the (common) grade-cast value, so all honest players agree on it.
    With ``vanish_at`` set, the batched polynomials must vanish at that
    point (share-refresh mode: the origin; share-recovery mode: the
    recovering player's point).
    """
    if (
        not isinstance(value, tuple)
        or len(value) != 3
        or value[0] != "prop"
        or not isinstance(value[1], tuple)
        or not isinstance(value[2], tuple)
    ):
        return None
    clique_raw, polys_raw = value[1], value[2]
    clique: List[int] = []
    for j in clique_raw:
        if not isinstance(j, int) or isinstance(j, bool) or not 1 <= j <= n:
            return None
        clique.append(j)
    if len(set(clique)) != len(clique) or len(clique) < n - 2 * t:
        return None
    polys: Dict[int, Polynomial] = {}
    for item in polys_raw:
        if not (isinstance(item, tuple) and len(item) == 2):
            return None
        j, coeffs = item
        if j not in clique or j in polys:
            return None
        if not isinstance(coeffs, tuple) or len(coeffs) > t + 1:
            return None
        if not all(valid_element(field, c) for c in coeffs):
            return None
        poly = Polynomial(field, list(coeffs))
        if vanish_at is not None and poly(vanish_at) != field.zero:
            return None
        polys[j] = poly
    if set(polys) != set(clique):
        return None
    return sorted(clique), polys


@dataclass
class DealingAgreement:
    """Common outcome of the verified-parallel-dealing sub-protocol.

    Produced by :func:`dealing_agreement_program`: all honest players hold
    the same ``clique``, ``polys``, and ``iterations``; ``shares_from``
    and ``self_ok`` are local.
    """

    success: bool
    clique: Tuple[int, ...] = ()
    polys: Dict[int, Polynomial] = dataclass_field(default_factory=dict)
    shares_from: Dict[int, Tuple[Element, ...]] = dataclass_field(default_factory=dict)
    self_ok: bool = False
    iterations: int = 0
    seed_coins_used: int = 0
    challenge: Optional[Element] = None


def dealing_agreement_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    total: int,
    seed_coins: Sequence[CoinShare],
    rng: random.Random,
    tag: str,
    shared_challenge: bool = True,
    vanish_at: Optional[Element] = None,
) -> Generator:
    """The heart of Fig. 5: n parallel verified dealings + clique agreement.

    Every player deals ``total`` degree-t polynomials; dealings are
    batch-verified with one exposed challenge, reconciled through the
    consistency graph, Gavril clique, grade-cast, leader election, and
    one BA per iteration.  Returns a :class:`DealingAgreement`.

    With ``vanish_at`` set, the dealt polynomials (and the acceptance
    checks) additionally vanish at that point — the origin for the
    proactive share-refresh protocol (the dealings must not change the
    refreshed secret), or a player's evaluation point for share recovery
    (the dealings must not leak that player's share).
    """
    if n < 6 * t + 1:
        raise ValueError(f"Coin-Gen requires n >= 6t+1 (n={n}, t={t})")
    scheme = ShamirScheme(field, n, t)
    points = {j: scheme.point(j) for j in range(1, n + 1)}
    num_challenges = 1 if shared_challenge else n
    if len(seed_coins) < num_challenges + 1:
        raise ValueError("not enough seed coins")

    # ---- Round 1: every player deals its polynomials (Bit-Gen step 1).
    # Each polynomial is evaluated at all n points in one shared-Horner
    # sweep rather than n separate scalar evaluations.
    my_polys = [
        _random_vanishing(field, t, rng, vanish_at) for _ in range(total)
    ]
    point_list = [points[j] for j in range(1, n + 1)]
    rows = [p.evaluate_many(point_list) for p in my_polys]
    sends = [
        unicast(j, (tag + "/sh", tuple(row[j - 1] for row in rows)))
        for j in range(1, n + 1)
    ]
    inbox = yield sends
    raw = filter_tag(inbox, tag + "/sh")
    shares_from: Dict[int, Tuple[Element, ...]] = {
        j: raw[j] for j in raw if valid_element_tuple(field, raw[j], total)
    }

    # ---- Round 2: expose the batching challenge(s).
    challenges = yield from coin_expose_many(
        field, me, list(seed_coins[:num_challenges])
    )
    if any(c is None for c in challenges):
        # A seed coin failed to decode; with valid seeds this cannot
        # happen, and when it does every honest player sees the same
        # failure (Coin-Expose unanimity) and aborts together.
        return DealingAgreement(False, seed_coins_used=num_challenges)
    r_for = (
        {j: challenges[0] for j in range(1, n + 1)}
        if shared_challenge
        else {j: challenges[j - 1] for j in range(1, n + 1)}
    )

    # ---- Round 3: announce the vector of Horner combinations (one per
    # dealer), n^2 messages of size nk (Theorem 2).
    nu_mine: List[object] = []
    for j in range(1, n + 1):
        if j in shares_from:
            nu_mine.append(horner_batch(field, list(shares_from[j]), r_for[j]))
        else:
            nu_mine.append("missing")
    inbox = yield [multicast((tag + "/nu", tuple(nu_mine)))]
    nu_recv: Dict[int, tuple] = {
        src: body
        for src, body in filter_tag(inbox, tag + "/nu").items()
        if isinstance(body, tuple) and len(body) == n
    }

    # ---- Local decoding of every Bit-Gen instance (Fig. 4 steps 4-5).
    decoded: Dict[int, Optional[Polynomial]] = {}
    for j in range(1, n + 1):
        pts = [
            (points[src], vec[j - 1])
            for src, vec in sorted(nu_recv.items())
            if valid_element(field, vec[j - 1])
        ]
        poly = decode_batched(field, pts, t, n)
        if (
            poly is not None
            and vanish_at is not None
            and poly(vanish_at) != field.zero
        ):
            # the dealing must combine to zero at the protected point; a
            # cheat evades this with probability <= total/p (Lemma 3)
            poly = None
        decoded[j] = poly

    # ---- Steps 4-6: consistency graph and Gavril clique.  Each decoded
    # polynomial is checked against every announcer with one batched
    # evaluation sweep.
    directed = []
    announcers = sorted(nu_recv)
    announcer_points = [points[k] for k in announcers]
    for j in range(1, n + 1):
        poly_j = decoded[j]
        if poly_j is None:
            continue
        evals = poly_j.evaluate_many(announcer_points)
        for k, expected in zip(announcers, evals):
            value = nu_recv[k][j - 1]
            if valid_element(field, value) and expected == value:
                directed.append((j, k))
    adjacency = mutual_graph(n, directed)
    my_clique = [j for j in gavril_clique(adjacency) if decoded[j] is not None]

    # ---- Step 7: grade-cast the proposal (clique + decoded polynomials).
    proposal = (
        "prop",
        tuple(my_clique),
        tuple((j, decoded[j].coeffs) for j in my_clique),
    )
    graded = yield from parallel_gradecast(n, t, me, proposal, tag + "/gc")

    # ---- Steps 9-11: leader election + BA until acceptance.
    leader_coins = list(seed_coins[num_challenges:])
    for iteration, leader_coin in enumerate(leader_coins):
        elected = yield from coin_expose(field, me, leader_coin)
        used = num_challenges + iteration + 1
        if elected is None:
            return DealingAgreement(
                False, iterations=iteration + 1, seed_coins_used=used
            )
        leader = coin_to_index(field, elected, n)

        value, confidence = graded[leader]
        parsed = validate_proposal(field, n, t, value, vanish_at=vanish_at)
        my_input = 0
        if confidence == 2 and parsed is not None:
            clique, polys = parsed
            # evaluate each proposed polynomial at every clique point once
            # (shared-Horner), then check all |clique|^2 pairs
            clique_points = [points[j] for j in clique]
            expected = {
                k: polys[k].evaluate_many(clique_points) for k in clique
            }
            passing = [
                j
                for idx, j in enumerate(clique)
                if j in nu_recv
                and all(
                    valid_element(field, nu_recv[j][k - 1])
                    and expected[k][idx] == nu_recv[j][k - 1]
                    for k in clique
                )
            ]
            if len(passing) >= 3 * t + 1:
                my_input = 1

        decision = yield from phase_king(
            n, t, me, my_input, f"{tag}/ba{iteration}"
        )
        if decision != 1:
            continue

        # BA accepted: some honest player verified, hence (grade-cast
        # guarantee) every honest player holds the same proposal value.
        if parsed is None:
            # Unreachable for honest players when BA's precondition held;
            # kept as a safe local failure.
            return DealingAgreement(
                False, iterations=iteration + 1, seed_coins_used=used
            )
        clique, polys = parsed

        # Self-verification: do my raw shares match the agreed polynomials?
        self_ok = me in clique and all(
            k in shares_from
            and valid_element(field, nu_mine[k - 1])
            and polys[k](points[me]) == nu_mine[k - 1]
            for k in clique
        )
        return DealingAgreement(
            True,
            clique=tuple(clique),
            polys=polys,
            shares_from=shares_from,
            self_ok=self_ok,
            iterations=iteration + 1,
            seed_coins_used=used,
            challenge=challenges[0],
        )

    return DealingAgreement(
        False,
        iterations=len(leader_coins),
        seed_coins_used=len(seed_coins),
    )


def _random_vanishing(field: Field, t: int, rng, vanish_at):
    """A uniform degree-<=t polynomial, optionally vanishing at a point.

    ``vanish_at=None`` -> unconstrained; zero -> zero constant term;
    other point x0 -> (x - x0) * q(x) with q uniform of degree t-1.
    """
    if vanish_at is None:
        return Polynomial.random(field, t, rng)
    if vanish_at == field.zero:
        return Polynomial.random(field, t, rng, constant=field.zero)
    q = Polynomial.random(field, t - 1, rng)
    linear = Polynomial(field, [field.neg(vanish_at), field.one])
    return linear * q


def coin_gen_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    M: int,
    seed_coins: Sequence[CoinShare],
    rng: random.Random,
    tag: str = "cg",
    blinding: bool = True,
    shared_challenge: bool = True,
) -> Generator:
    """One player's side of Protocol Coin-Gen.

    ``seed_coins`` supplies the secret k-ary coins the protocol consumes:
    the first 1 (or n when ``shared_challenge=False``) as batching
    challenges, the rest one per leader-election iteration.  ``tag`` must
    be unique per run — it namespaces the generated coins' identifiers.
    """
    total = M + (1 if blinding else 0)
    agreement = yield from dealing_agreement_program(
        field, n, t, me, total, seed_coins, rng, tag,
        shared_challenge=shared_challenge,
    )
    if not agreement.success:
        return CoinGenOutput(
            False,
            iterations=agreement.iterations,
            seed_coins_used=agreement.seed_coins_used,
        )

    coins: List[CoinShare] = []
    members = frozenset(agreement.clique)
    for h in range(M):
        sigma: Optional[Element] = None
        if agreement.self_ok:
            sigma = field.zero
            for k in agreement.clique:
                sigma = field.add(sigma, agreement.shares_from[k][h])
        coins.append(CoinShare(f"{tag}/c{h}", members, t, sigma))
    return CoinGenOutput(
        True,
        clique=agreement.clique,
        coins=coins,
        iterations=agreement.iterations,
        seed_coins_used=agreement.seed_coins_used,
        challenge=agreement.challenge,
        self_ok=agreement.self_ok,
        public_polys=agreement.polys,
    )


# ---------------------------------------------------------------------------
# whole-protocol runner
# ---------------------------------------------------------------------------

def make_seed_coins(
    field: Field, n: int, t: int, count: int, rng, prefix: str = "seed"
) -> Dict[int, List[CoinShare]]:
    """Trusted-dealer seed coins for bootstrapping: {player: [CoinShare]}.

    "The initial set of coins can be obtained from a trusted third party,
    as in the case of Rabin [17]" (Section 1.2).
    """
    per_player: Dict[int, List[CoinShare]] = {
        pid: [] for pid in range(1, n + 1)
    }
    for index in range(count):
        _, shares = make_dealer_coin(field, n, t, f"{prefix}{index}", rng)
        for pid, share in shares.items():
            per_player[pid].append(share)
    return per_player


def run_coin_gen(
    field: Field,
    n: int,
    t: int,
    M: int,
    seed: int = 0,
    max_iterations: Optional[int] = None,
    blinding: bool = True,
    shared_challenge: bool = True,
    faulty_programs: Optional[Dict[int, Generator]] = None,
    tag: str = "cg",
) -> Tuple[Dict[int, CoinGenOutput], NetworkMetrics]:
    """Run Coin-Gen end to end with fresh trusted-dealer seed coins.

    Returns per-player outputs and network metrics.  Faulty players are
    supplied as complete replacement programs (or None for crashed).
    """
    rng = random.Random(seed)
    if max_iterations is None:
        max_iterations = 2 * t + 4
    num_challenges = 1 if shared_challenge else n
    seed_coins = make_seed_coins(
        field, n, t, num_challenges + max_iterations, rng, prefix=f"{tag}-seed"
    )

    network = SynchronousNetwork(n, field=field, allow_broadcast=False)
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, n + 1):
        if pid in faulty_programs:
            if faulty_programs[pid] is not None:
                programs[pid] = faulty_programs[pid]
            continue
        programs[pid] = coin_gen_program(
            field,
            n,
            t,
            pid,
            M,
            seed_coins[pid],
            random.Random(seed * 1_000_003 + pid),
            tag=tag,
            blinding=blinding,
            shared_challenge=shared_challenge,
        )
    honest = [pid for pid in programs if pid not in faulty_programs]
    outputs = network.run(programs, wait_for=honest)
    return outputs, network.metrics


def expose_coin(
    field: Field,
    n: int,
    outputs: Dict[int, CoinGenOutput],
    h: int,
    t: int,
    faulty_programs: Optional[Dict[int, Generator]] = None,
) -> Tuple[Dict[int, Optional[Element]], NetworkMetrics]:
    """Run Coin-Expose (Fig. 6) for the h-th coin of a Coin-Gen result."""
    network = SynchronousNetwork(n, field=field, allow_broadcast=False)
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, n + 1):
        if pid in faulty_programs:
            if faulty_programs[pid] is not None:
                programs[pid] = faulty_programs[pid]
            continue
        if pid not in outputs or not outputs[pid].success:
            continue
        programs[pid] = coin_expose(field, pid, outputs[pid].coins[h])
    honest = [pid for pid in programs if pid not in faulty_programs]
    results = network.run(programs, wait_for=honest)
    return results, network.metrics
