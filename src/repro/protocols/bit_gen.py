"""Protocol Bit-Gen (Fig. 4): verified dealing of M sealed secrets.

Point-to-point model, ``n >= 6t+1`` (Section 4) — no broadcast channel.
The dealer Shamir-shares M polynomials; a secret coin is exposed as the
batching scalar ``r``; every player sends its Horner combination ``nu_i``
to everyone; each player collects the set S of announced combinations and
Berlekamp-Welch-decodes a polynomial F of degree <= t fitting at least
``n - t`` of them, outputting ``(F, S)`` on success and ``(bot, S)``
otherwise.

Because there is no broadcast, "each player can only reach a local
decision" — two honest players may hold different S sets (a faulty player
may equivocate its nu).  Coin-Gen (Fig. 5) reconciles these local views.

Cost (Lemma 6): ``M t k log k + 2 M k log k`` additions and 2
interpolations per player; 3 rounds; ``n M k + 2 n^2 k`` bits.

Privacy (see DESIGN.md Section 5): the decoded F(0) publishes the
combination ``sum_h r^h f_h(0)`` of the dealt secrets, which would make
the last coin of a batch predictable from the earlier ones.  With
``blinding=True`` (the default) the dealer deals ``M+1`` polynomials and
the extra one — never individually exposed — one-time-pads the
combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, Optional, Tuple

from repro.fields.base import Element, Field
from repro.poly import barycentric
from repro.poly.berlekamp_welch import (
    DecodingError,
    berlekamp_welch,
    full_decode,
    max_correctable_errors,
    optimistic_candidate,
)
from repro.poly.lagrange import _require_distinct
from repro.poly.polynomial import Polynomial, evaluate_polys, horner_batch
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import multicast, unicast
from repro.obs.phases import register_tag_phase

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.context import ProtocolContext
from repro.sharing.shamir import ShamirScheme

register_tag_phase("deal", suffix="/sh")
register_tag_phase("clique", suffix="/nu")
from repro.protocols.coin_expose import CoinShare, coin_expose, make_dealer_coin
from repro.protocols.common import filter_tag, valid_element, valid_element_tuple


@dataclass
class BitGenOutput:
    """A player's local outcome of one Bit-Gen instance."""

    #: the batched verification polynomial F, or None for the paper's "bot"
    poly: Optional[Polynomial]
    #: S — the set of announced combinations this player received
    share_set: Dict[int, Element]
    #: the raw share tuple received from the dealer (None if missing/invalid)
    my_shares: Optional[Tuple[Element, ...]]
    #: the exposed batching scalar r
    challenge: Optional[Element]

    @property
    def accepted(self) -> bool:
        return self.poly is not None


def decode_batched(field: Field, points, t: int, n: int) -> Optional[Polynomial]:
    """Fig. 4 step 5: a degree-<=t polynomial fitting >= n-t of the points.

    Such a polynomial is unique when it exists: two candidates would agree
    on >= 2(n-t) - n = n - 2t > t points.
    """
    if len(points) < n - t:
        return None
    max_errors = len(points) - (n - t)
    try:
        poly, good = berlekamp_welch(field, points, t, max_errors)
    except DecodingError:
        return None
    if len(good) < n - t:
        return None
    return poly


def decode_batched_many(field: Field, point_sets, t: int, n: int):
    """:func:`decode_batched` over many independent point sets at once.

    Result- and op-count-identical to decoding each set in turn, but the
    optimistic Berlekamp-Welch candidates of every set are verified in a
    single bulk evaluation sweep (grouped by shared evaluation points),
    so vectorized field backends see one wide kernel instead of many
    short ones.  Only sets whose candidate fails the match count — i.e.
    actually-corrupted dealings — pay the full key-equation decode.
    """
    if barycentric.cache_mode() == "off":
        return [decode_batched(field, pts, t, n) for pts in point_sets]
    results: list = [None] * len(point_sets)
    attempted = []  # (index, points, candidate)
    for idx, pts in enumerate(point_sets):
        pts = list(pts)
        if len(pts) < n - t:
            continue
        xs = [x for x, _ in pts]
        _require_distinct(xs)
        field.counter.interpolations += 1
        attempted.append((idx, pts, optimistic_candidate(field, pts[: t + 1])))
    by_xs: Dict[tuple, list] = {}
    for entry in attempted:
        by_xs.setdefault(tuple(x for x, _ in entry[1]), []).append(entry)
    for xs, entries in by_xs.items():
        rows = evaluate_polys(
            field, [candidate for _, _, candidate in entries], list(xs)
        )
        for (idx, pts, candidate), values in zip(entries, rows):
            max_errors = min(
                len(pts) - (n - t), max_correctable_errors(len(pts), t)
            )
            good = [
                i for i, (v, (_, y)) in enumerate(zip(values, pts)) if v == y
            ]
            if len(good) < len(pts) - max_errors:
                # corrupted head: same fall-through as berlekamp_welch,
                # without re-paying the optimistic attempt
                try:
                    candidate, good = full_decode(field, pts, t, max_errors)
                except DecodingError:
                    continue
            if len(good) >= n - t:
                results[idx] = candidate
    return results


def bit_gen_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    dealer: int,
    M: int,
    coin: CoinShare,
    dealer_polys=None,
    tag: str = "bitgen",
    blinding: bool = True,
) -> Generator:
    """One player's side of Protocol Bit-Gen (single dealer).

    The dealer passes ``dealer_polys`` — its list of ``M`` (+1 when
    blinding) degree-t dealing polynomials.
    """
    scheme = ShamirScheme(field, n, t)
    total = M + (1 if blinding else 0)

    # Step 1: dealer distributes all share tuples.  Each polynomial is
    # evaluated at all n points in one shared-Horner sweep.
    sends = []
    if me == dealer:
        if dealer_polys is None or len(dealer_polys) != total:
            raise ValueError(f"dealer must supply {total} polynomials")
        all_points = [scheme.point(j) for j in range(1, n + 1)]
        rows = evaluate_polys(field, dealer_polys, all_points)
        sends = [
            unicast(j, (tag + "/sh", tuple(row[j - 1] for row in rows)))
            for j in range(1, n + 1)
        ]
    inbox = yield sends
    raw = filter_tag(inbox, tag + "/sh").get(dealer)
    my_shares = raw if valid_element_tuple(field, raw, total) else None

    # Step 2: expose the secret k-ary coin -> batching scalar r.
    r = yield from coin_expose(field, me, coin)

    # Step 3: Horner-combine and announce point-to-point.
    sends = []
    if r is not None and my_shares is not None:
        nu = horner_batch(field, list(my_shares), r)
        sends = [multicast((tag + "/nu", nu))]
    inbox = yield sends
    if r is None:
        return BitGenOutput(None, {}, my_shares, None)

    # Step 4: S <- the announced combinations received.
    share_set = {
        src: value
        for src, value in filter_tag(inbox, tag + "/nu").items()
        if valid_element(field, value)
    }

    # Step 5: Berlekamp-Welch interpolation through S.
    points = [
        (scheme.point(src), value) for src, value in sorted(share_set.items())
    ]
    poly = decode_batched(field, points, t, n)
    return BitGenOutput(poly, share_set, my_shares, r)


def run_bit_gen(
    field,
    n: Optional[int] = None,
    t: Optional[int] = None,
    M: int = 1,
    dealer: int = 1,
    seed: int = 0,
    blinding: bool = True,
    cheat_polys=None,
    faulty_programs: Optional[Dict[int, Generator]] = None,
    context: Optional["ProtocolContext"] = None,
) -> Tuple[Dict[int, BitGenOutput], NetworkMetrics]:
    """Run one Bit-Gen instance end to end (point-to-point network).

    Accepts either the legacy ``(field, n, t, ...)`` convention or a
    ready :class:`~repro.protocols.context.ProtocolContext` (as ``field``
    or via ``context=``).  ``cheat_polys`` lets a test substitute the
    dealer's polynomials (e.g. degree > t) to exercise Lemma 5's
    soundness bound.
    """
    from repro.protocols.context import as_context

    ctx = context if context is not None else as_context(field, n, t, seed=seed)
    field, n, t, rng = ctx.field, ctx.n, ctx.t, ctx.rng
    total = M + (1 if blinding else 0)
    polys = cheat_polys
    if polys is None:
        polys = [Polynomial.random(field, t, rng) for _ in range(total)]
    _, coin_shares = make_dealer_coin(field, n, t, "bitgen-challenge", rng)

    network = ctx.network(allow_broadcast=False)
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, n + 1):
        if pid in faulty_programs:
            if faulty_programs[pid] is not None:
                programs[pid] = faulty_programs[pid]
            continue
        programs[pid] = bit_gen_program(
            field,
            n,
            t,
            pid,
            dealer,
            M,
            coin_shares[pid],
            dealer_polys=polys if pid == dealer else None,
            blinding=blinding,
        )
    honest = [pid for pid in programs if pid not in faulty_programs]
    with ctx.recorder.span("bit_gen", "protocol", n=n, t=t, M=M,
                           dealer=dealer):
        outputs = network.run(programs, wait_for=honest)
    ctx.absorb(network.metrics)
    return outputs, network.metrics
