"""VSS with complaint resolution — the paper's "two rounds of broadcast".

Section 3.1: "It seems that it would be impossible to grant that all the
n players' shares will satisfy the polynomial, as some of them might be
faulty.  Yet it is easy to see that two rounds of broadcast render this
possible."

This module implements that remark as an extension of Protocol VSS:

1. run Fig. 2's check in robust mode (accept iff a degree-t polynomial F
   fits >= n-t of the broadcast combinations);
2. **complaint round**: every player whose own combination did not match
   F broadcasts a complaint;
3. **resolution round**: the dealer broadcasts, for each complainer, the
   pair ``(f(x_i), g(x_i))``; everyone checks the pair against F
   (``f + r g`` must equal ``F(x_i)``), and the complainer adopts the
   published share.

After resolution, *every* honest player holds a share consistent with
one degree-t polynomial (an honest dealer's secret is unchanged; a
dealer that refuses or publishes inconsistent pairs is rejected).  The
price is that complained shares become public — exactly why the paper's
coin pipeline prefers the n-t criterion plus robust reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Generator, Optional, Tuple

from repro.fields.base import Element, Field
from repro.poly.berlekamp_welch import DecodingError, berlekamp_welch
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import broadcast, unicast

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.context import ProtocolContext
from repro.sharing.shamir import ShamirScheme
from repro.protocols.coin_expose import CoinShare, coin_expose, make_dealer_coin
from repro.protocols.common import filter_tag, valid_element


@dataclass(frozen=True)
class ComplaintVSSResult:
    """Outcome with complaint resolution."""

    accepted: bool
    #: this player's (possibly repaired) share of f
    share: Optional[Element]
    #: players whose shares were published during resolution
    complainers: Tuple[int, ...] = ()


def vss_complaints_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    dealer: int,
    alpha: Optional[Element],
    coin: CoinShare,
    g_poly=None,
    f_poly=None,
    tag: str = "cvss",
) -> Generator:
    """Protocol VSS + two broadcast rounds of complaint resolution.

    The dealer additionally passes its ``f_poly`` so it can answer
    complaints.  Returns :class:`ComplaintVSSResult`.
    """
    scheme = ShamirScheme(field, n, t)

    # --- Fig. 2, steps 1-3 -------------------------------------------------
    sends = []
    if me == dealer:
        if g_poly is None or f_poly is None:
            raise ValueError("dealer must supply f and g")
        sends = [
            unicast(j, (tag + "/g", g_poly(scheme.point(j))))
            for j in range(1, n + 1)
        ]
    inbox = yield sends
    beta = filter_tag(inbox, tag + "/g").get(dealer)
    if not valid_element(field, beta):
        beta = None

    r = yield from coin_expose(field, me, coin)

    sends = []
    nu = None
    if r is not None and alpha is not None and beta is not None:
        nu = field.add(alpha, field.mul(r, beta))
        sends = [broadcast((tag + "/nu", nu))]
    inbox = yield sends
    if r is None:
        return ComplaintVSSResult(False, None)
    votes = filter_tag(inbox, tag + "/nu")
    points = [
        (scheme.point(j), votes[j])
        for j in range(1, n + 1)
        if j in votes and valid_element(field, votes[j])
    ]

    combined = None
    if len(points) >= n - t:
        try:
            candidate, good = berlekamp_welch(field, points, t)
            if len(good) >= n - t:
                combined = candidate
        except DecodingError:
            combined = None

    # --- complaint round (broadcast #1) -------------------------------------
    my_complaint = (
        combined is not None
        and (nu is None or combined(scheme.point(me)) != nu)
    )
    sends = []
    if combined is not None and my_complaint:
        sends = [broadcast((tag + "/complain", 1))]
    inbox = yield sends
    complainers = tuple(
        sorted(
            src
            for src, body in filter_tag(inbox, tag + "/complain").items()
            if body == 1
        )
    )

    # --- resolution round (broadcast #2) -------------------------------------
    sends = []
    if me == dealer and combined is not None and complainers:
        published = tuple(
            (j, f_poly(scheme.point(j)), g_poly(scheme.point(j)))
            for j in complainers
        )
        sends = [broadcast((tag + "/resolve", published))]
    inbox = yield sends
    if combined is None:
        return ComplaintVSSResult(False, None, complainers)

    resolved: Dict[int, Tuple[Element, Element]] = {}
    body = filter_tag(inbox, tag + "/resolve").get(dealer)
    if isinstance(body, tuple):
        for item in body:
            if (
                isinstance(item, tuple)
                and len(item) == 3
                and isinstance(item[0], int)
                and item[0] in complainers
                and valid_element(field, item[1])
                and valid_element(field, item[2])
            ):
                resolved[item[0]] = (item[1], item[2])

    # every complaint must be answered consistently with F
    for j in complainers:
        if j not in resolved:
            return ComplaintVSSResult(False, None, complainers)
        f_j, g_j = resolved[j]
        if field.add(f_j, field.mul(r, g_j)) != combined(scheme.point(j)):
            return ComplaintVSSResult(False, None, complainers)

    share = alpha
    if me in complainers:
        share = resolved[me][0]
    return ComplaintVSSResult(True, share, complainers)


def run_vss_with_complaints(
    field,
    n: Optional[int] = None,
    t: Optional[int] = None,
    secret: Optional[Element] = None,
    seed: int = 0,
    cheat_shares: Optional[Dict[int, Element]] = None,
    dealer_answers: bool = True,
    faulty_programs: Optional[Dict[int, Generator]] = None,
    context: Optional["ProtocolContext"] = None,
) -> Tuple[Dict[int, ComplaintVSSResult], NetworkMetrics]:
    """Run the complaint-resolving VSS end to end (dealer = player 1).

    ``cheat_shares`` mis-deals up to t players (whose complaints the
    honest-polynomial dealer then repairs); ``dealer_answers=False``
    models a dealer that refuses resolution (everyone must reject).
    """
    from repro.poly.polynomial import Polynomial
    from repro.protocols.context import as_context

    ctx = context if context is not None else as_context(field, n, t, seed=seed)
    field, n, t, rng = ctx.field, ctx.n, ctx.t, ctx.rng
    scheme = ShamirScheme(field, n, t)
    if secret is None:
        secret = field.random(rng)
    f_poly, shares = scheme.deal(secret, rng)
    alphas = {s.player_id: s.value for s in shares}
    if cheat_shares:
        alphas.update(cheat_shares)
    g_poly = Polynomial.random(field, t, rng)
    _, coin_shares = make_dealer_coin(field, n, t, "cvss-challenge", rng)

    def silent_dealer_after_round3():
        # behaves honestly through the nu broadcast, then refuses to resolve
        gen = vss_complaints_program(
            field, n, t, 1, 1, alphas[1], coin_shares[1],
            g_poly=g_poly, f_poly=f_poly,
        )
        sends = next(gen)
        for _ in range(3):  # g-round, expose, nu
            inbox = yield sends
            sends = gen.send(inbox)
        yield sends  # complaint round output
        while True:
            yield []  # never resolves

    network = ctx.network()
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, n + 1):
        if pid in faulty_programs:
            if faulty_programs[pid] is not None:
                programs[pid] = faulty_programs[pid]
            continue
        if pid == 1 and not dealer_answers:
            programs[pid] = silent_dealer_after_round3()
            continue
        programs[pid] = vss_complaints_program(
            field, n, t, pid, 1, alphas[pid], coin_shares[pid],
            g_poly=g_poly if pid == 1 else None,
            f_poly=f_poly if pid == 1 else None,
        )
    honest = [
        pid for pid in programs
        if pid not in faulty_programs and (dealer_answers or pid != 1)
    ]
    outputs = network.run(programs, wait_for=honest)
    ctx.absorb(network.metrics)
    return outputs, network.metrics
