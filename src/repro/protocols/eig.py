"""Exponential Information Gathering (EIG) Byzantine agreement.

The phase-king protocol in :mod:`repro.protocols.ba` is cheap but needs
``n > 4t``.  The Section 3 model only guarantees ``n >= 3t+1``, so for
completeness this module provides the classic EIG consensus (Pease-
Shostak-Lamport lineage, as in Attiya & Welch), which is optimal in
resilience: correct for ``n > 3t`` in ``t+1`` rounds, at the price of
messages that grow as O(n^t) — perfectly fine for the small ``t`` of a
committee, and exactly the trade the paper's era textbooks describe.

Each player maintains a tree of labels (sequences of distinct player
ids).  In round ``r`` it relays every depth-``r-1`` entry it holds; an
entry ``tree[pi + (j,)]`` records "j said that tree_j[pi] was v".  After
``t+1`` rounds the tree is resolved bottom-up by majority (with a
default), and all honest players provably resolve the root identically.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.net.simulator import SynchronousNetwork, multicast
from repro.protocols.common import filter_tag

Label = Tuple[int, ...]

#: value used when a relayed entry is missing or malformed
DEFAULT_BIT = 0


def _valid_bit(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value in (0, 1)


def eig_program(
    n: int,
    t: int,
    me: int,
    value: int,
    tag: str = "eig",
) -> Generator:
    """One player's side of EIG consensus on a bit; ``n > 3t`` required."""
    if n <= 3 * t:
        raise ValueError(f"EIG requires n > 3t (n={n}, t={t})")
    my_value = 1 if value else 0

    # tree[label] = value; labels are tuples of distinct player ids whose
    # last element is the player that reported the value.
    tree: Dict[Label, int] = {}

    # Round 1: everybody reports its own input (label = (sender,)).
    inbox = yield [multicast((tag + "/r1", my_value))]
    for src, body in filter_tag(inbox, tag + "/r1").items():
        tree[(src,)] = body if _valid_bit(body) else DEFAULT_BIT
    for pid in range(1, n + 1):
        tree.setdefault((pid,), DEFAULT_BIT)

    # Rounds 2..t+1: relay the previous round's layer.
    for depth in range(1, t + 1):
        layer = tuple(
            (label, val) for label, val in sorted(tree.items())
            if len(label) == depth and me not in label
        )
        inbox = yield [multicast((f"{tag}/r{depth + 1}", layer))]
        reports = filter_tag(inbox, f"{tag}/r{depth + 1}")
        for src, body in reports.items():
            for label, val in _parse_layer(body, n, depth):
                if src in label or src == label[-1]:
                    # src may only relay others' claims about labels not
                    # already containing src; extend with src
                    continue
                tree[label + (src,)] = val if _valid_bit(val) else DEFAULT_BIT
        # fill gaps with the default so resolution is total
        _complete_layer(tree, n, depth + 1, me)

    return _resolve(tree, (), n, t)


def _parse_layer(body, n: int, depth: int):
    """Validate a relayed layer: tuple of ((ids...), bit) pairs."""
    if not isinstance(body, tuple):
        return
    seen = set()
    for item in body:
        if not (isinstance(item, tuple) and len(item) == 2):
            continue
        label, val = item
        if (
            isinstance(label, tuple)
            and len(label) == depth
            and all(
                isinstance(x, int)
                and not isinstance(x, bool)
                and 1 <= x <= n
                for x in label
            )
            and len(set(label)) == depth
            and label not in seen
        ):
            seen.add(label)
            yield label, val


def _complete_layer(tree: Dict[Label, int], n: int, depth: int, me: int) -> None:
    """Ensure every well-formed label of ``depth`` has an entry."""
    def extend(prefix: Label):
        if len(prefix) == depth:
            tree.setdefault(prefix, DEFAULT_BIT)
            return
        for pid in range(1, n + 1):
            if pid not in prefix:
                extend(prefix + (pid,))

    extend(())


def _resolve(tree: Dict[Label, int], label: Label, n: int, t: int) -> int:
    """Bottom-up majority resolution of the EIG tree."""
    if len(label) == t + 1:
        return tree.get(label, DEFAULT_BIT)
    votes = [0, 0]
    for pid in range(1, n + 1):
        if pid not in label:
            votes[_resolve(tree, label + (pid,), n, t)] += 1
    if not label:
        # root: plain majority over first-level resolutions
        return 1 if votes[1] > votes[0] else 0
    return 1 if votes[1] > votes[0] else 0


def run_eig(
    n: int,
    t: int,
    inputs: Dict[int, int],
    faulty: Optional[Dict[int, Generator]] = None,
    tag: str = "eig",
):
    """Standalone EIG runner; returns (decisions, metrics)."""
    faulty = faulty or {}
    network = SynchronousNetwork(n, allow_broadcast=False)
    programs = {}
    for pid in range(1, n + 1):
        if pid in faulty:
            if faulty[pid] is not None:
                programs[pid] = faulty[pid]
            continue
        programs[pid] = eig_program(n, t, pid, inputs[pid], tag)
    honest = [pid for pid in programs if pid not in faulty]
    outputs = network.run(programs, wait_for=honest)
    return {pid: outputs[pid] for pid in honest}, network.metrics
