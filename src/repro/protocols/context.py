"""ProtocolContext: the execution context every protocol runs under.

Protocols used to thread ``field, n, t, rng, metrics, tracer`` by hand
through every runner and player factory.  A :class:`ProtocolContext`
carries them (plus the runtime layers — scheduler and fault plane) as
one object:

* **field, n, t** — the system parameters;
* **rng** — the *single* seeded :class:`random.Random` a run's
  randomness derives from.  Protocol bodies never construct their own
  ``random.Random(seed)``; per-player generators come from
  :meth:`player_rng` and fresh sub-generators from :meth:`child_rng`,
  so an entire run is reproducible from one top-level seed;
* **metrics** — the accumulating :class:`NetworkMetrics` for the
  context's lifetime (individual runs get fresh per-run metrics that
  are merged in);
* **tracer** — an optional :class:`~repro.net.trace.Tracer` attached
  through the runtime, so traces work identically under every scheduler;
* **scheduler / faults** — the delivery policy and fault plane every
  network built from this context uses.

Build networks with :meth:`network` and the layers are wired through
automatically::

    ctx = ProtocolContext.create(field, n=7, t=1, seed=3,
                                 scheduler=PermutedDeliveryScheduler(9))
    net = ctx.network(allow_broadcast=False)
    outputs = net.run(programs)
    ctx.absorb(net.metrics)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from repro.fields.base import Field
from repro.net.faults import FaultPlane
from repro.net.metrics import NetworkMetrics
from repro.net.scheduler import Scheduler
from repro.net.simulator import SynchronousNetwork
from repro.net.trace import Tracer
from repro.obs.bus import EventBus
from repro.obs.spans import NULL_RECORDER, NullRecorder


@dataclass
class ProtocolContext:
    """Everything a protocol execution needs, in one object."""

    field: Field
    n: int
    t: int
    seed: int = 0
    rng: random.Random = None  # type: ignore[assignment]  # derived from seed
    metrics: NetworkMetrics = None  # type: ignore[assignment]
    tracer: Optional[Tracer] = None
    scheduler: Optional[Scheduler] = None
    faults: Optional[FaultPlane] = None
    enforce_codec: bool = False
    #: span recorder threaded into every network this context builds;
    #: the default NULL_RECORDER makes all instrumentation a no-op
    recorder: NullRecorder = NULL_RECORDER
    #: optional shared event bus.  When set, every network built from this
    #: context publishes into it (instead of a private per-run bus), and
    #: the long-lived coin pipeline publishes its health topics there —
    #: this is how flight recorders and health monitors observe a whole
    #: session.  None (the default) keeps runs byte-identical to a
    #: bus-less context.
    bus: Optional[EventBus] = None
    extra_network_kwargs: dict = dataclass_field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("need at least one player")
        if self.t < 0:
            raise ValueError("t must be non-negative")
        if self.rng is None:
            self.rng = random.Random(self.seed)
        if self.metrics is None:
            self.metrics = NetworkMetrics(element_bits=self.field.bit_length)

    @classmethod
    def create(cls, field: Field, n: int, t: int, seed: int = 0,
               **kwargs) -> "ProtocolContext":
        """The usual entry point: parameters + one top-level seed."""
        return cls(field=field, n=n, t=t, seed=seed, **kwargs)

    # -- deterministic randomness -------------------------------------------
    def player_rng(self, pid: int) -> random.Random:
        """The per-player generator for player ``pid``.

        Derived deterministically from the top-level seed (not from the
        master ``rng`` stream, so it is independent of how much of that
        stream the setup consumed).
        """
        return random.Random(self.seed * 1_000_003 + pid)

    def child_rng(self) -> random.Random:
        """A fresh generator drawn from the master stream.

        For sub-executions that need randomness independent of player
        identity (e.g. one generator per Coin-Gen run in a long-lived
        system).  Consumes one draw from ``rng``, so derivation order is
        part of the reproducible run.
        """
        return random.Random(self.rng.randrange(1 << 62))

    # -- runtime construction -----------------------------------------------
    def network(
        self,
        allow_broadcast: bool = True,
        rushing=(),
        metrics: Optional[NetworkMetrics] = None,
        **kwargs,
    ) -> SynchronousNetwork:
        """A network for one protocol run, wired to this context's layers.

        Each call gets a *fresh* per-run metrics object (pass
        ``metrics=`` to override); merge it into the context's
        accumulator with :meth:`absorb` when the run's tallies should
        count toward the context's lifetime totals.
        """
        options = {**self.extra_network_kwargs, **kwargs}
        return SynchronousNetwork(
            self.n,
            field=self.field,
            metrics=metrics,
            rushing=rushing,
            allow_broadcast=allow_broadcast,
            scheduler=self.scheduler,
            faults=self.faults,
            tracer=self.tracer,
            recorder=self.recorder,
            bus=self.bus,
            enforce_codec=self.enforce_codec,
            **options,
        )

    def async_runtime(
        self,
        scheduler: Optional[Scheduler] = None,
        faults: Optional[FaultPlane] = None,
        metrics: Optional[NetworkMetrics] = None,
        **kwargs,
    ):
        """An event-driven runtime for one run, wired to this context.

        The async sibling of :meth:`network`: same layer wiring (fault
        plane, recorder, bus, codec enforcement), but deliveries land
        one at a time in the order an
        :class:`~repro.net.scheduler.RandomOrderScheduler` picks.  When
        neither ``scheduler=`` nor the context's own scheduler is set,
        the delivery order is seeded from the context seed — so a run
        is reproducible from the same top-level seed that drives its
        randomness.
        """
        from repro.net.async_runtime import AsyncRuntime
        from repro.net.scheduler import RandomOrderScheduler

        if scheduler is None:
            scheduler = self.scheduler or RandomOrderScheduler(self.seed)
        return AsyncRuntime(
            self.n,
            field=self.field,
            metrics=metrics,
            scheduler=scheduler,
            faults=faults if faults is not None else self.faults,
            tracer=self.tracer,
            recorder=self.recorder,
            bus=self.bus,
            enforce_codec=self.enforce_codec,
            **kwargs,
        )

    def ensure_bus(self) -> EventBus:
        """The context's shared bus, creating (and attaching) one if unset."""
        if self.bus is None:
            self.bus = EventBus()
        return self.bus

    def absorb(self, run_metrics: NetworkMetrics) -> None:
        """Accumulate one run's tallies into the context's totals."""
        if run_metrics is not self.metrics:
            self.metrics.merged_from(run_metrics)


def as_context(field_or_ctx, n: Optional[int] = None, t: Optional[int] = None,
               seed: int = 0, **kwargs) -> ProtocolContext:
    """Normalize the two calling conventions runners accept.

    Legacy call sites pass ``(field, n, t, seed=...)``; context-native
    call sites pass a ready :class:`ProtocolContext`.  Returns the
    context either way.
    """
    if isinstance(field_or_ctx, ProtocolContext):
        return field_or_ctx
    if n is None or t is None:
        raise TypeError("need n and t when not passing a ProtocolContext")
    return ProtocolContext.create(field_or_ctx, n, t, seed=seed, **kwargs)
