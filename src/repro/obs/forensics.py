"""Byzantine forensics: decide *who* misbehaved from a flight log alone.

The paper's protocols tolerate ``t`` corrupt players without naming
them; operators of a long-lived beacon want names.  This module replays
a :class:`~repro.obs.flight.FlightLog` through a per-player behaviour
model and produces an :class:`AccusationReport` — per-player verdicts
backed by event indices into the log, so every accusation can be
audited against the recorded bytes.

Soundness before completeness: every rule below is chosen so an honest
player following the protocol can *never* trip it, even under
adversarial message schedules.  The rules:

* **equivocation** — a sender multicasts a tag but different receivers
  get different payloads, in a phase whose messages are
  multicast-identical (everything except ``deal``, whose Shamir shares
  are legitimately per-receiver).  This is exactly the behaviour the
  paper's consistency graph exists to catch;
* **silence** — a quorum of at least ``n - t`` distinct senders sent a
  tag this round, and this player sent it to nobody.  Honest players
  are in lockstep, so a quorum round is an all-honest round; missing it
  means crashed, silenced, or withholding.  ``expose`` rounds are
  exempt (holders legitimately abstain when their shares failed
  verification), as are rounds without a quorum (e.g. the phase king's
  solo round);
* **off-protocol** — a tag no protocol registered (classified
  ``"other"``), sent by at most ``t`` distinct players.  When *more*
  than ``t`` players send an unregistered tag it is treated as an
  unregistered honest protocol and nobody is accused;
* **stale-phase** — the Fig. 5 pipeline only ever advances
  (deal -> clique -> gradecast -> ba) within one protocol run; sending
  a tag from an earlier stage after a quorum advanced past it (e.g.
  echoing round-1 ``/sh`` traffic during agreement) is off-protocol
  replay.  ``expose`` rounds interleave freely and carry no ordering;
* **bad-share** — a Coin-Expose share that Berlekamp-Welch excludes
  from the unique decoded polynomial, in a receiver view where decoding
  succeeded.  Honest holders send their true share, which always lies
  on the polynomial;
* **injected** — the fault plane's own player-level ``crash``/
  ``silence`` events name the player directly (ground truth recorded in
  the log).

Validated against every adversary program in
:mod:`repro.net.adversary` plus :class:`~repro.net.faults.FaultPlane`
scenarios: each corrupt player is flagged, no honest player ever is
(see ``tests/test_forensics.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.trace import payload_tag
from repro.obs.flight import FlightLog
from repro.obs.phases import (
    UNICAST_PHASES,
    classify_tag,
    phase_stage,
)

#: accusation kinds, in reporting order
KINDS = ("equivocation", "silence", "off-protocol", "stale-phase",
         "bad-share", "injected")


@dataclass(frozen=True)
class Accusation:
    """One piece of evidence against one player."""

    player: int
    kind: str       #: one of :data:`KINDS`
    run: int
    round: int
    tag: str
    detail: str
    #: index of the flight-log event carrying the evidence
    event_index: int


@dataclass
class AccusationReport:
    """Per-player verdicts with auditable evidence."""

    n: int
    t: int
    accusations: List[Accusation] = dataclass_field(default_factory=list)

    def corrupt_players(self) -> Set[int]:
        return {accusation.player for accusation in self.accusations}

    def verdict(self, player: int) -> str:
        return "corrupt" if player in self.corrupt_players() else "clean"

    def verdicts(self) -> Dict[int, str]:
        corrupt = self.corrupt_players()
        return {pid: "corrupt" if pid in corrupt else "clean"
                for pid in range(1, self.n + 1)}

    def against(self, player: int) -> List[Accusation]:
        return [a for a in self.accusations if a.player == player]

    def summary(self) -> str:
        corrupt = sorted(self.corrupt_players())
        lines = [
            f"forensics: {self.n} players, t={self.t}, "
            f"{len(self.accusations)} accusation(s), "
            f"{len(corrupt)} player(s) implicated"
        ]
        for pid in corrupt:
            for accusation in self.against(pid):
                lines.append(
                    f"  player {pid}: {accusation.kind} in run "
                    f"{accusation.run} round {accusation.round} "
                    f"[{accusation.tag}] — {accusation.detail} "
                    f"(event {accusation.event_index})"
                )
        if not corrupt:
            lines.append("  no player implicated")
        return "\n".join(lines)


def _payload_fingerprint(payload) -> str:
    from repro.net import codec

    try:
        return codec.encode(payload).hex()
    except codec.CodecError:
        return repr(payload)


def analyze_log(log: FlightLog, field=None,
                t: Optional[int] = None) -> AccusationReport:
    """Run every forensic rule over ``log``; returns the report.

    ``field`` (for share decoding) defaults to the log's recorded field
    spec; the bad-share rule is skipped when neither is available.
    ``t`` defaults to the log's.
    """
    from repro.obs.flight import field_from_spec

    if field is None and log.field is not None:
        field = field_from_spec(log.field)
    if t is None:
        t = log.t
    n = log.n
    report = AccusationReport(n=n, t=t)
    quorum = n - t

    # the highest pipeline stage a sender quorum has reached, per run
    run_stage: Dict[int, int] = {}

    for event in log.rounds:
        # sender -> tag -> {dst: [payload fingerprints]}
        by_sender: Dict[int, Dict[str, Dict[int, List[str]]]] = {}
        # tag -> set of senders (for quorum and off-protocol rules)
        senders_of: Dict[str, Set[int]] = {}
        for dst, src, payload in event.deliveries:
            tag = payload_tag(payload)
            by_sender.setdefault(src, {}).setdefault(tag, {}).setdefault(
                dst, []
            ).append(_payload_fingerprint(payload))
            senders_of.setdefault(tag, set()).add(src)

        stage_before = run_stage.get(event.run, -1)

        for tag, senders in sorted(senders_of.items()):
            phase = classify_tag(tag)

            # -- equivocation ---------------------------------------------
            if phase not in UNICAST_PHASES and phase != "other":
                for src in sorted(senders):
                    views = by_sender[src][tag]
                    distinct = {fingerprints[0]
                                for fingerprints in views.values()}
                    if len(views) >= 2 and len(distinct) >= 2:
                        report.accusations.append(Accusation(
                            player=src, kind="equivocation",
                            run=event.run, round=event.round, tag=tag,
                            detail=(
                                f"sent {len(distinct)} distinct payloads "
                                f"to {len(views)} receivers"
                            ),
                            event_index=event.index,
                        ))

            # -- silence (quorum rule) ------------------------------------
            if (phase not in ("expose", "other")
                    and len(senders) >= quorum):
                for pid in range(1, n + 1):
                    if pid not in senders:
                        report.accusations.append(Accusation(
                            player=pid, kind="silence",
                            run=event.run, round=event.round, tag=tag,
                            detail=(
                                f"{len(senders)} players sent the tag "
                                f"(quorum {quorum}); this one did not"
                            ),
                            event_index=event.index,
                        ))

            # -- off-protocol tags ----------------------------------------
            if phase == "other" and len(senders) <= t:
                for src in sorted(senders):
                    report.accusations.append(Accusation(
                        player=src, kind="off-protocol",
                        run=event.run, round=event.round, tag=tag,
                        detail=(
                            f"unregistered tag sent by "
                            f"{len(senders)} <= t player(s)"
                        ),
                        event_index=event.index,
                    ))

            # -- stale-phase replay ---------------------------------------
            stage = phase_stage(phase)
            if stage is not None and stage < stage_before:
                for src in sorted(senders):
                    report.accusations.append(Accusation(
                        player=src, kind="stale-phase",
                        run=event.run, round=event.round, tag=tag,
                        detail=(
                            f"stage-{stage} tag after the run reached "
                            f"stage {stage_before}"
                        ),
                        event_index=event.index,
                    ))

        # advance the run's pipeline stage on a quorum of senders only —
        # a lone corrupt player must not be able to fake an advance and
        # smear honest players still in the real phase
        for tag, senders in senders_of.items():
            stage = phase_stage(classify_tag(tag))
            if stage is not None and len(senders) >= quorum:
                if stage > run_stage.get(event.run, -1):
                    run_stage[event.run] = stage

        # -- bad shares (Berlekamp-Welch exclusion) -----------------------
        if field is not None:
            _accuse_bad_shares(report, event, field, t)

    # -- injected player faults (recorded ground truth) -------------------
    for fault in log.faults:
        if fault.kind in ("crash", "silence") and fault.dst == 0:
            report.accusations.append(Accusation(
                player=fault.src, kind="injected",
                run=fault.run, round=fault.round, tag=fault.kind,
                detail="fault plane suppressed this player",
                event_index=fault.index,
            ))

    report.accusations.sort(
        key=lambda a: (a.event_index, a.player, KINDS.index(a.kind))
    )
    return report


def _accuse_bad_shares(report: AccusationReport, event, field, t: int) -> None:
    """Flag senders whose exposed share lies off the decoded polynomial."""
    from repro.poly.berlekamp_welch import DecodingError, berlekamp_welch
    from repro.protocols.common import valid_element

    # receiver -> coin_id -> {sender: first share seen}
    views: Dict[int, Dict[str, Dict[int, object]]] = {}
    for dst, src, payload in event.deliveries:
        if (isinstance(payload, tuple) and len(payload) == 2
                and isinstance(payload[0], str)
                and payload[0].startswith("expose/")):
            views.setdefault(dst, {}).setdefault(
                payload[0][len("expose/"):], {}
            ).setdefault(src, payload[1])

    accused: Set[Tuple[int, str]] = set()
    for receiver, coins in sorted(views.items()):
        for coin_id, by_sender in sorted(coins.items()):
            sources = [src for src in sorted(by_sender)
                       if valid_element(field, by_sender[src])]
            points = [(field.element_point(src), by_sender[src])
                      for src in sources]
            n_valid = len(points)
            threshold = max(2 * t + 1, n_valid - t) if t > 0 else n_valid
            if n_valid == 0 or n_valid < threshold:
                continue
            try:
                _poly, good = berlekamp_welch(
                    field, points, t, n_valid - threshold
                )
            except DecodingError:
                continue
            if len(good) < threshold:
                continue
            good_set = set(good)
            for position, src in enumerate(sources):
                if position in good_set or (src, coin_id) in accused:
                    continue
                accused.add((src, coin_id))
                report.accusations.append(Accusation(
                    player=src, kind="bad-share",
                    run=event.run, round=event.round,
                    tag=f"expose/{coin_id}",
                    detail=(
                        f"share excluded by Berlekamp-Welch in "
                        f"receiver {receiver}'s view"
                    ),
                    event_index=event.index,
                ))
