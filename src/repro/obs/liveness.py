"""Liveness observatory: guard wait-state telemetry for the runtimes.

An asynchronous coin terminates when ``n - t`` quorums *arrive*, not
when a round boundary fires — so the liveness signals that matter are
"which guard is starving, who completed the quorum, how deep does the
in-flight pool run".  The runtimes publish exactly those on four bus
topics (``GUARD_ARMED`` / ``GUARD_PROGRESS`` / ``GUARD_FIRED`` /
``POOL``, see :mod:`repro.obs.bus`), strictly opt-in so unmonitored
runs stay byte-identical; this module holds the two subscribers that
turn the stream into answers:

* :class:`QuorumLatencyRecorder` — per :class:`~repro.net.guards.Wait`,
  the armed→fired logical-time delta and the **pivotal** sender (the
  distinct matching sender whose delivery completed the quorum).
  Pivotal counts are quorum-level straggler attribution: a player that
  is repeatedly last-in-quorum is the one slowing everyone down, and
  :meth:`~QuorumLatencyRecorder.pivotal_what_if` re-prices the causal
  graph with that player as a straggler via the
  :class:`~repro.obs.critical_path.CostModel` what-if machinery.
* :class:`StallWatchdog` — the *online* complement of the post-mortem
  ``RuntimeExhausted.stuck`` report: flags any guard waiting past a
  logical-time threshold, names the senders still missing from its
  quorum, and cross-references crash events from the
  :class:`~repro.net.faults.FaultPlane` to classify each stall as
  **crash-induced** (a missing sender is known crashed) vs.
  **unexplained** withholding (all missing senders are allegedly alive).

Logical time is the publishing runtime's clock: delivery count for
:class:`~repro.net.async_runtime.AsyncRuntime`, round number for the
lockstep runtime.  Both restart per run; the ``RUN`` topic delimits.

The conformance side lives in :func:`repro.obs.audit.audit_liveness`:
fault-free random-order runs must show zero stalls and every guard
firing at exactly its quorum count of distinct senders.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.obs.bus import (
    FAULT,
    GUARD_ARMED,
    GUARD_FIRED,
    GUARD_PROGRESS,
    POOL,
    RUN,
    EventBus,
)


def default_threshold(n: int) -> int:
    """A generous default watchdog threshold for ``n`` players.

    A fault-free async coin exposure settles every guard within one
    all-to-all multicast — under ``n**2`` deliveries — so ``4 * n**2``
    logical ticks of waiting is far past anything an honest schedule
    produces while still small enough to fire long before
    ``max_deliveries`` exhausts.  Used by the conformance audit and by
    the CLI when ``--watchdog`` is given without a threshold.
    """
    return 4 * n * n


# ---------------------------------------------------------------------------
# quorum-latency attribution
# ---------------------------------------------------------------------------

@dataclass
class WaitRecord:
    """One armed guard's life: armed → (progress ...) → fired.

    ``senders`` is the ordered tuple of distinct matching senders at
    fire time; ``pivotal`` the quorum-completing one; times are the
    publishing runtime's logical clock (``fired_at is None`` while the
    guard is still parked, e.g. in a run that exhausted).
    """

    run: int
    pid: int
    tags: Tuple[str, ...]
    quorum: Optional[int]
    armed_at: int
    fired_at: Optional[int] = None
    senders: Tuple[int, ...] = ()
    #: (time, src) per *new* distinct matching sender, in arrival order
    arrivals: List[Tuple[int, int]] = dataclass_field(default_factory=list)
    pivotal: Optional[int] = None

    @property
    def fired(self) -> bool:
        return self.fired_at is not None

    @property
    def wait_time(self) -> Optional[int]:
        """Armed→fired logical-time delta (None while unfired)."""
        if self.fired_at is None:
            return None
        return self.fired_at - self.armed_at

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run": self.run,
            "pid": self.pid,
            "tags": list(self.tags),
            "quorum": self.quorum,
            "armed_at": self.armed_at,
            "fired_at": self.fired_at,
            "wait_time": self.wait_time,
            "senders": list(self.senders),
            "arrivals": [list(a) for a in self.arrivals],
            "pivotal": self.pivotal,
        }


class QuorumLatencyRecorder:
    """Bus subscriber turning liveness topics into per-wait records.

    Attach before the run (``recorder = QuorumLatencyRecorder().attach(bus)``);
    afterwards :meth:`waits` holds one :class:`WaitRecord` per armed
    guard, :meth:`pivotal_counts` the straggler attribution, and the
    pool gauges (:attr:`pool_peak`, :attr:`backlog_peak`,
    :attr:`pool_depths`) the in-flight depth profile.  Works on both
    runtimes; on lockstep there are no ``POOL`` events.
    """

    def __init__(self) -> None:
        self.records: List[WaitRecord] = []
        #: (run, time, depth) per published pool gauge
        self.pool_depths: List[Tuple[int, int, int]] = []
        #: channel -> max in-flight backlog ever observed
        self.backlog_peak: Dict[str, int] = {}
        self.pool_peak = 0
        self.run_count = 0
        self._open: Dict[int, WaitRecord] = {}
        self._bus: Optional[EventBus] = None

    # -- wiring --------------------------------------------------------------
    def attach(self, bus: EventBus) -> "QuorumLatencyRecorder":
        bus.subscribe(RUN, self._on_run)
        bus.subscribe(GUARD_ARMED, self._on_armed)
        bus.subscribe(GUARD_PROGRESS, self._on_progress)
        bus.subscribe(GUARD_FIRED, self._on_fired)
        bus.subscribe(POOL, self._on_pool)
        self._bus = bus
        return self

    def detach(self) -> "QuorumLatencyRecorder":
        if self._bus is not None:
            self._bus.unsubscribe(RUN, self._on_run)
            self._bus.unsubscribe(GUARD_ARMED, self._on_armed)
            self._bus.unsubscribe(GUARD_PROGRESS, self._on_progress)
            self._bus.unsubscribe(GUARD_FIRED, self._on_fired)
            self._bus.unsubscribe(POOL, self._on_pool)
            self._bus = None
        return self

    # -- topic handlers ------------------------------------------------------
    def _on_run(self, n: int) -> None:
        self.run_count += 1
        self._open = {}

    def _on_armed(self, time: int, pid: int, guard) -> None:
        record = WaitRecord(
            run=self.run_count, pid=pid, tags=tuple(guard.tags),
            quorum=getattr(guard, "quorum", None), armed_at=time,
        )
        self._open[pid] = record
        self.records.append(record)

    def _on_progress(self, time: int, pid: int, src: int,
                     count: int, quorum: int) -> None:
        record = self._open.get(pid)
        if record is None:
            return
        record.quorum = quorum
        known = {s for _, s in record.arrivals}
        if src not in known:
            record.arrivals.append((time, src))
            if record.pivotal is None and count >= quorum:
                record.pivotal = src

    def _on_fired(self, time: int, pid: int, guard, senders) -> None:
        record = self._open.pop(pid, None)
        if record is None:
            return
        record.fired_at = time
        record.senders = tuple(senders)
        if record.pivotal is None and record.arrivals:
            # no single progress event crossed the quorum (e.g. a
            # lockstep round delivering several matching payloads at
            # once): the last new matching sender completed it
            record.pivotal = record.arrivals[-1][1]

    def _on_pool(self, time: int, depth: int, backlog: Dict[str, int]) -> None:
        self.pool_depths.append((self.run_count, time, depth))
        if depth > self.pool_peak:
            self.pool_peak = depth
        for channel, count in backlog.items():
            if count > self.backlog_peak.get(channel, 0):
                self.backlog_peak[channel] = count

    # -- derived views -------------------------------------------------------
    def waits(self) -> List[WaitRecord]:
        return list(self.records)

    def fired_records(self) -> List[WaitRecord]:
        return [r for r in self.records if r.fired]

    def pending_records(self) -> List[WaitRecord]:
        """Guards still parked when their run ended (or is ongoing)."""
        return [r for r in self.records if not r.fired]

    def latencies(self) -> List[int]:
        """Armed→fired logical-time deltas of every fired wait."""
        return [r.wait_time for r in self.records if r.fired]

    def mean_wait(self) -> float:
        waits = self.latencies()
        return sum(waits) / len(waits) if waits else 0.0

    def max_wait(self) -> int:
        return max(self.latencies(), default=0)

    def pivotal_counts(self) -> Dict[int, int]:
        """player -> number of waits it completed (straggler signal)."""
        counts: Dict[int, int] = {}
        for record in self.records:
            if record.pivotal is not None:
                counts[record.pivotal] = counts.get(record.pivotal, 0) + 1
        return counts

    def pivotal_what_if(self, graph, model=None, scale: float = 10.0,
                        top: int = 3) -> Dict[int, Any]:
        """What-if repricing for the most-pivotal players.

        Composes the quorum-level attribution with the PR 5 cost-model
        machinery: the ``top`` players that most often complete quorums
        are each re-priced as a ``scale``× straggler over ``graph``
        (a :class:`~repro.obs.causality.CausalGraph` of the same run),
        returning ``{player: WhatIfResult}`` — "how much slower would
        the run get if its habitual quorum-completer lagged".
        """
        from repro.obs.critical_path import CostModel, what_if

        model = model if model is not None else CostModel()
        counts = self.pivotal_counts()
        ranked = sorted(counts, key=lambda p: (-counts[p], p))[:top]
        return {
            player: what_if(graph, model, player=player, scale=scale)
            for player in ranked
        }

    def table(self) -> str:
        """Human-readable fixed-width wait table for the CLI."""
        header = (
            f"{'run':>3} {'pid':>3} {'tag':<18} {'quorum':>6} "
            f"{'armed':>6} {'fired':>6} {'wait':>5} {'pivotal':>7}"
        )
        lines = [header, "-" * len(header)]
        for r in self.records:
            tag = "/".join(r.tags)
            if len(tag) > 18:
                tag = tag[:15] + "..."
            fired = str(r.fired_at) if r.fired else "-"
            wait = str(r.wait_time) if r.fired else "-"
            pivotal = str(r.pivotal) if r.pivotal is not None else "-"
            quorum = str(r.quorum) if r.quorum is not None else "?"
            lines.append(
                f"{r.run:>3} {r.pid:>3} {tag:<18} {quorum:>6} "
                f"{r.armed_at:>6} {fired:>6} {wait:>5} {pivotal:>7}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# online stall watchdog
# ---------------------------------------------------------------------------

@dataclass
class Stall:
    """One guard flagged for waiting past the watchdog threshold.

    ``missing`` are the players that had not yet contributed a matching
    payload at detection time; ``crashed_missing`` the subset with an
    observed crash fault — non-empty classifies the stall as
    ``"crash"``, empty as ``"unexplained"`` (withholding by allegedly
    live players).  ``resolved_at`` is set if the guard later fired.
    """

    run: int
    pid: int
    tags: Tuple[str, ...]
    quorum: Optional[int]
    armed_at: int
    detected_at: int
    waited: int
    senders: Tuple[int, ...]
    missing: Tuple[int, ...]
    crashed_missing: Tuple[int, ...]
    classification: str
    resolved_at: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run": self.run,
            "pid": self.pid,
            "tags": list(self.tags),
            "quorum": self.quorum,
            "armed_at": self.armed_at,
            "detected_at": self.detected_at,
            "waited": self.waited,
            "senders": list(self.senders),
            "missing": list(self.missing),
            "crashed_missing": list(self.crashed_missing),
            "classification": self.classification,
            "resolved_at": self.resolved_at,
        }


@dataclass
class _Arm:
    """Watchdog-side state of one currently parked guard."""

    tags: Tuple[str, ...]
    quorum: Optional[int]
    armed_at: int
    senders: Set[int] = dataclass_field(default_factory=set)
    stall: Optional[Stall] = None


class StallWatchdog:
    """Online stall detection over the liveness topics.

    Flags every guard that waits more than ``threshold`` logical ticks
    (default :func:`default_threshold`), names the missing senders, and
    classifies the stall by cross-referencing ``FAULT`` crash events:
    a stall with a known-crashed missing sender is ``"crash"``-induced,
    one whose missing senders are all allegedly alive is
    ``"unexplained"`` withholding.  One stall per armed wait, at first
    detection; if the guard later fires, ``resolved_at`` is filled in
    but the stall remains on record.

    The watchdog's clock advances with the liveness events themselves
    (armed/progress/fired and, on the async runtime, the per-tick
    ``POOL`` gauge) — it needs no access to runtime internals, so it
    can watch a live run or a re-published stream equally.  Complements
    the post-mortem ``RuntimeExhausted.stuck`` report: the watchdog
    sees stalls in runs that *eventually* terminate.
    """

    def __init__(self, n: int, threshold: Optional[int] = None) -> None:
        self.n = n
        self.threshold = (
            default_threshold(n) if threshold is None else threshold
        )
        self.stalls: List[Stall] = []
        self.crashed: Set[int] = set()
        self.run_count = 0
        self._open: Dict[int, _Arm] = {}
        self._now = 0
        self._bus: Optional[EventBus] = None

    # -- wiring --------------------------------------------------------------
    def attach(self, bus: EventBus) -> "StallWatchdog":
        bus.subscribe(RUN, self._on_run)
        bus.subscribe(FAULT, self._on_fault)
        bus.subscribe(GUARD_ARMED, self._on_armed)
        bus.subscribe(GUARD_PROGRESS, self._on_progress)
        bus.subscribe(GUARD_FIRED, self._on_fired)
        bus.subscribe(POOL, self._on_pool)
        self._bus = bus
        return self

    def detach(self) -> "StallWatchdog":
        if self._bus is not None:
            self._bus.unsubscribe(RUN, self._on_run)
            self._bus.unsubscribe(FAULT, self._on_fault)
            self._bus.unsubscribe(GUARD_ARMED, self._on_armed)
            self._bus.unsubscribe(GUARD_PROGRESS, self._on_progress)
            self._bus.unsubscribe(GUARD_FIRED, self._on_fired)
            self._bus.unsubscribe(POOL, self._on_pool)
            self._bus = None
        return self

    # -- topic handlers ------------------------------------------------------
    def _on_run(self, n: int) -> None:
        self.run_count += 1
        self._open = {}
        self.crashed = set()
        self._now = 0

    def _on_fault(self, round_no: int, kind: str, src: int, dst: int) -> None:
        if kind == "crash":
            self.crashed.add(src)

    def _on_armed(self, time: int, pid: int, guard) -> None:
        self._open[pid] = _Arm(
            tags=tuple(guard.tags),
            quorum=getattr(guard, "quorum", None),
            armed_at=time,
        )
        self._advance(time)

    def _on_progress(self, time: int, pid: int, src: int,
                     count: int, quorum: int) -> None:
        arm = self._open.get(pid)
        if arm is not None:
            arm.senders.add(src)
            arm.quorum = quorum
        self._advance(time)

    def _on_fired(self, time: int, pid: int, guard, senders) -> None:
        arm = self._open.pop(pid, None)
        if arm is not None and arm.stall is not None:
            arm.stall.resolved_at = time
        self._advance(time)

    def _on_pool(self, time: int, depth: int, backlog: Dict[str, int]) -> None:
        self._advance(time)

    # -- detection -----------------------------------------------------------
    def _advance(self, time: int) -> None:
        if time > self._now:
            self._now = time
        now = self._now
        for pid, arm in self._open.items():
            if arm.stall is not None or now - arm.armed_at <= self.threshold:
                continue
            missing = tuple(
                p for p in range(1, self.n + 1) if p not in arm.senders
            )
            crashed_missing = tuple(
                sorted(set(missing) & self.crashed)
            )
            stall = Stall(
                run=self.run_count, pid=pid, tags=arm.tags,
                quorum=arm.quorum, armed_at=arm.armed_at, detected_at=now,
                waited=now - arm.armed_at,
                senders=tuple(sorted(arm.senders)), missing=missing,
                crashed_missing=crashed_missing,
                classification="crash" if crashed_missing else "unexplained",
            )
            arm.stall = stall
            self.stalls.append(stall)

    # -- derived views -------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.stalls

    def crash_induced(self) -> List[Stall]:
        return [s for s in self.stalls if s.classification == "crash"]

    def unexplained(self) -> List[Stall]:
        return [s for s in self.stalls if s.classification == "unexplained"]

    def unresolved(self) -> List[Stall]:
        """Stalls whose guard never fired (hard liveness failures)."""
        return [s for s in self.stalls if s.resolved_at is None]

    def table(self) -> str:
        """Human-readable fixed-width stall table for the CLI."""
        if not self.stalls:
            return f"no stalls (threshold {self.threshold} logical ticks)"
        header = (
            f"{'run':>3} {'pid':>3} {'waited':>6} {'class':<11} "
            f"{'missing':<16} {'crashed':<10} {'resolved':>8}"
        )
        lines = [header, "-" * len(header)]
        for s in self.stalls:
            missing = ",".join(str(p) for p in s.missing) or "-"
            crashed = ",".join(str(p) for p in s.crashed_missing) or "-"
            resolved = str(s.resolved_at) if s.resolved_at is not None else "no"
            lines.append(
                f"{s.run:>3} {s.pid:>3} {s.waited:>6} {s.classification:<11} "
                f"{missing:<16} {crashed:<10} {resolved:>8}"
            )
        return "\n".join(lines)
