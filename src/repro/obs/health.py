"""Health monitoring for a long-lived coin pipeline.

The paper's Fig. 1 generator is meant to run forever — batches feed
seeds feed batches.  An operator of such a beacon needs to see, while
it runs: is the seed stock draining?  are exposures failing?  are the
emitted bits still unbiased?  :class:`HealthMonitor` answers those from
the health topics a :class:`~repro.core.bootstrap.BootstrapCoinSource`
publishes into its context bus (``"coin"``, ``"batch"``, ``"failure"``,
``"retry"`` — see :mod:`repro.obs.bus`):

* **counters** — coins emitted, batches stretched, leader-election
  iterations, seed coins consumed, exposure failures by kind
  (``unanimity`` / ``decode``), exposure retries;
* **gauges** — sealed/seed coins available (read live from the source),
  seed-stock depletion relative to the initial dealing;
* **rolling statistics** — bias and the :mod:`repro.analysis.stats`
  battery (monobit, serial correlation, longest run, chi-square) over a
  sliding window of the most recently emitted coin bits.

Like every observability component here, the monitor is a plain bus
subscriber: a source running without one attached is byte-identical to
a monitored run.  :meth:`HealthMonitor.prometheus_lines` feeds the
existing Prometheus exposition (:func:`repro.obs.export.to_prometheus`),
and ``repro health`` turns :meth:`check` into a CI-friendly exit code.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.analysis import stats
from repro.obs.bus import BATCH, COIN, FAILURE, RETRY, EventBus


class HealthMonitor:
    """Accumulate pipeline health from the bus; judge it on demand.

    Parameters
    ----------
    source:
        Optional :class:`~repro.core.bootstrap.BootstrapCoinSource`;
        when given, pool/seed gauges are read from it live and coin
        bits for the rolling window are derived via its field.
    field:
        Field used to split emitted elements into bits (defaults to the
        source's); without either, rolling statistics stay empty.
    window:
        Size of the rolling bit window (default 4096 bits).
    """

    def __init__(self, source=None, field=None, window: int = 4096):
        self.source = source
        self.field = field if field is not None else (
            source.system.field if source is not None else None
        )
        self.coins_emitted = 0
        self.batches = 0
        self.iterations_total = 0
        self.seed_consumed_total = 0
        self.failures: Dict[str, int] = {}
        self.retries = 0
        self._bits: Deque[int] = deque(maxlen=max(8, window))

    # -- bus wiring ---------------------------------------------------------
    def attach(self, bus: EventBus) -> "HealthMonitor":
        bus.subscribe(COIN, self.on_coin)
        bus.subscribe(BATCH, self.on_batch)
        bus.subscribe(FAILURE, self.on_failure)
        bus.subscribe(RETRY, self.on_retry)
        return self

    def detach(self, bus: EventBus) -> None:
        bus.unsubscribe(COIN, self.on_coin)
        bus.unsubscribe(BATCH, self.on_batch)
        bus.unsubscribe(FAILURE, self.on_failure)
        bus.unsubscribe(RETRY, self.on_retry)

    # -- topic handlers -----------------------------------------------------
    def on_coin(self, coin_id: str, element) -> None:
        self.coins_emitted += 1
        if self.field is not None:
            self._bits.extend(self.field.coin_bits(element))

    def on_batch(self, epoch: int, coins: int, iterations: int,
                 seed_consumed: int) -> None:
        self.batches += 1
        self.iterations_total += iterations
        self.seed_consumed_total += seed_consumed

    def on_failure(self, kind: str, coin_id: str) -> None:
        self.failures[kind] = self.failures.get(kind, 0) + 1

    def on_retry(self, coin_id: str, attempt: int) -> None:
        self.retries += 1

    # -- derived views ------------------------------------------------------
    @property
    def failure_total(self) -> int:
        return sum(self.failures.values())

    def rolling_bits(self) -> List[int]:
        return list(self._bits)

    def rolling_bias(self) -> float:
        """Signed deviation of the window's one-fraction from 1/2."""
        return stats.bias(self.rolling_bits()) if self._bits else 0.0

    def rolling_battery(self) -> Dict[str, stats.TestResult]:
        return stats.battery(self.rolling_bits())

    def seed_depletion(self) -> Optional[float]:
        """Fraction of the initial seed dealing no longer in stock.

        0.0 means the seed store is at (or above) its initial size;
        1.0 means it is empty.  None without an attached source.
        """
        if self.source is None:
            return None
        initial = max(1, self.source.initial_seed_size)
        return max(0.0, 1.0 - self.source.seed_coins_available / initial)

    def snapshot(self) -> Dict[str, object]:
        """Every gauge and counter as one JSON-friendly dict."""
        out: Dict[str, object] = {
            "coins_emitted": self.coins_emitted,
            "batches": self.batches,
            "iterations_total": self.iterations_total,
            "seed_consumed_total": self.seed_consumed_total,
            "failures": dict(self.failures),
            "failure_total": self.failure_total,
            "retries": self.retries,
            "rolling_bits": len(self._bits),
            "rolling_bias": self.rolling_bias(),
        }
        if self._bits:
            out["rolling_tests"] = {
                name: {"statistic": result.statistic, "passed": result.passed}
                for name, result in self.rolling_battery().items()
            }
        if self.source is not None:
            out["sealed_coins_available"] = self.source.sealed_coins_available
            out["seed_coins_available"] = self.source.seed_coins_available
            out["seed_depletion"] = self.seed_depletion()
        return out

    # -- judgement ----------------------------------------------------------
    def check(
        self,
        max_bias: Optional[float] = None,
        max_failures: Optional[int] = None,
        max_seed_depletion: Optional[float] = None,
        require_battery: bool = False,
    ) -> Tuple[bool, List[str]]:
        """Judge current health against thresholds.

        Returns ``(healthy, reasons)`` where ``reasons`` names every
        violated threshold — the basis of ``repro health``'s exit code.
        """
        reasons: List[str] = []
        if max_bias is not None:
            bias = abs(self.rolling_bias())
            if bias > max_bias:
                reasons.append(
                    f"rolling bias {bias:.4f} exceeds threshold {max_bias}"
                )
        if max_failures is not None and self.failure_total > max_failures:
            reasons.append(
                f"{self.failure_total} exposure failure(s) exceed "
                f"threshold {max_failures}"
            )
        if max_seed_depletion is not None:
            depletion = self.seed_depletion()
            if depletion is not None and depletion > max_seed_depletion:
                reasons.append(
                    f"seed depletion {depletion:.2f} exceeds "
                    f"threshold {max_seed_depletion}"
                )
        if require_battery and self._bits:
            for name, result in self.rolling_battery().items():
                if not result.passed:
                    reasons.append(
                        f"statistical test {name} failed "
                        f"(statistic {result.statistic:.3f})"
                    )
        return (not reasons, reasons)

    # -- exposition ---------------------------------------------------------
    def prometheus_lines(self, prefix: str = "repro") -> List[str]:
        """Text-exposition lines, appended by ``to_prometheus(health=...)``."""
        lines: List[str] = []

        def family(name: str, kind: str, help_text: str) -> None:
            lines.append(f"# HELP {prefix}_{name} {help_text}")
            lines.append(f"# TYPE {prefix}_{name} {kind}")

        family("coins_emitted_total", "counter",
               "Coins the pipeline exposed.")
        lines.append(f"{prefix}_coins_emitted_total {self.coins_emitted}")
        family("batches_total", "counter", "D-PRBG stretch batches run.")
        lines.append(f"{prefix}_batches_total {self.batches}")
        family("election_iterations_total", "counter",
               "Election iterations across all batches.")
        lines.append(f"{prefix}_election_iterations_total "
                     f"{self.iterations_total}")
        family("seed_consumed_total", "counter",
               "Seed coins consumed across all batches.")
        lines.append(f"{prefix}_seed_consumed_total "
                     f"{self.seed_consumed_total}")
        family("exposure_retries_total", "counter",
               "Coin exposures that needed a retry.")
        lines.append(f"{prefix}_exposure_retries_total {self.retries}")
        family("exposure_failures_total", "counter",
               "Failed coin exposures by kind.")
        for kind in sorted(self.failures):
            lines.append(
                f'{prefix}_exposure_failures_total{{kind="{kind}"}} '
                f"{self.failures[kind]}"
            )
        if not self.failures:
            lines.append(f"{prefix}_exposure_failures_total 0")
        family("rolling_bias", "gauge",
               "Bias of the rolling output-bit window.")
        lines.append(f"{prefix}_rolling_bias {self.rolling_bias():.6f}")
        family("rolling_bits", "gauge",
               "Output bits in the rolling window.")
        lines.append(f"{prefix}_rolling_bits {len(self._bits)}")
        if self._bits:
            family("rolling_test_statistic", "gauge",
                   "Statistical-test statistics over the rolling window.")
            for name, result in sorted(self.rolling_battery().items()):
                lines.append(
                    f'{prefix}_rolling_test_statistic{{test="{name}"}} '
                    f"{result.statistic:.6f}"
                )
        if self.source is not None:
            family("sealed_coins_available", "gauge",
                   "Sealed coins buffered in the source.")
            lines.append(f"{prefix}_sealed_coins_available "
                         f"{self.source.sealed_coins_available}")
            family("seed_coins_available", "gauge",
                   "Seed coins remaining in the source.")
            lines.append(f"{prefix}_seed_coins_available "
                         f"{self.source.seed_coins_available}")
            family("seed_depletion", "gauge",
                   "Fraction of the seed budget consumed.")
            lines.append(f"{prefix}_seed_depletion "
                         f"{self.seed_depletion():.6f}")
        return lines
