"""Observability: span tracing, exporters, and lemma-conformance auditing.

The paper's contribution is a *cost* claim — ``O(n^2 log k)`` additions,
``O(n)`` messages, one interpolation per batch (Lemmas 2/4/6,
Corollary 1).  This package makes those costs observable on live runs:

* :mod:`repro.obs.bus` — a small synchronous event bus the runtime
  publishes round/fault events through; the existing
  :class:`~repro.net.trace.Tracer` and legacy ``observer=`` hooks are
  subscribers, and the :class:`~repro.net.faults.FaultPlane` is a
  publisher;
* :mod:`repro.obs.spans` — nested spans (protocol -> phase -> round ->
  per-player step) carrying wall-clock time, an
  :class:`~repro.fields.base.OpCounter` delta, and message/bit tallies
  snapshotted from :class:`~repro.net.metrics.NetworkMetrics`.  The
  default :data:`NULL_RECORDER` is a no-op, so instrumentation is free
  unless a :class:`SpanRecorder` is attached;
* :mod:`repro.obs.phases` — the tag -> protocol-phase registry (deal /
  clique / gradecast / ba / expose) that protocol modules populate;
* :mod:`repro.obs.export` — JSONL, Chrome trace-event (Perfetto), and
  Prometheus text exporters;
* :mod:`repro.obs.audit` — the lemma-conformance auditor comparing live
  span tallies against :mod:`repro.analysis.complexity` predictions;
* :mod:`repro.obs.flight` — the flight recorder: capture the delivered
  message stream to a versioned JSONL log, :func:`~repro.obs.flight.replay`
  its decode paths offline, :func:`~repro.obs.flight.diff` two logs;
* :mod:`repro.obs.forensics` — replay a flight log through a per-player
  behaviour model and name the misbehaving players, with event-index
  evidence;
* :mod:`repro.obs.health` — gauges/counters/rolling statistics for a
  long-lived :class:`~repro.core.bootstrap.BootstrapCoinSource`;
* :mod:`repro.obs.causality` — per-message provenance as a
  happens-before DAG (:class:`~repro.obs.causality.CausalGraph`),
  captured live by a :class:`~repro.obs.causality.CausalRecorder` or
  rebuilt offline from a flight log;
* :mod:`repro.obs.critical_path` — pluggable
  :class:`~repro.obs.critical_path.CostModel` pricing of a causal
  graph: per-coin exposure latency, slowest-chain phase attribution,
  and straggler :func:`~repro.obs.critical_path.what_if` analysis;
* :mod:`repro.obs.liveness` — the liveness observatory over the
  guard wait-state topics: per-wait quorum latency with pivotal-sender
  attribution (:class:`~repro.obs.liveness.QuorumLatencyRecorder`) and
  an online :class:`~repro.obs.liveness.StallWatchdog` classifying
  stalls as crash-induced vs. unexplained withholding;
* :mod:`repro.obs.manifest` — :class:`~repro.obs.manifest.RunManifest`,
  the provenance stamp (parameters, backend, runtime, environment) with
  a stable semantic fingerprint, attached to bench rows and exports;
* :mod:`repro.obs.diffing` — cross-run analysis: reduce any recording
  to a per-phase metric table (:class:`~repro.obs.diffing.RunProfile`),
  diff two of them, and price the op deltas into a makespan attribution
  ("clique-phase interpolations account for 78% of the slowdown");
* :mod:`repro.obs.profile` — an opt-in sampling profiler aligned to
  the open span stack (protocol → phase → round frames), with folded
  stacks, flame JSON and Chrome export; byte-identical runs when off.
"""

from repro.obs.bus import EventBus
from repro.obs.spans import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    SpanRecorder,
)
from repro.obs.phases import classify_tag, classify_tags, register_tag_phase
from repro.obs.export import (
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
    waits_to_chrome,
    waits_to_jsonl,
)
from repro.obs.audit import (
    ConformanceReport,
    PhaseCheck,
    RoundsCheck,
    audit_coin_gen,
    audit_liveness,
    audit_recorder,
    audit_rounds,
)
from repro.obs.liveness import (
    QuorumLatencyRecorder,
    Stall,
    StallWatchdog,
    WaitRecord,
    default_threshold,
)
from repro.obs.causality import (
    CausalGraph,
    CausalRecorder,
    MessageEdge,
    graph_from_log,
)
from repro.obs.critical_path import (
    CostModel,
    CriticalPathResult,
    WhatIf,
    critical_path,
    ops_from_recorder,
    what_if,
)
from repro.obs.flight import (
    Divergence,
    FlightLog,
    FlightRecorder,
    diff,
    replay,
)
from repro.obs.forensics import AccusationReport, analyze_log
from repro.obs.health import HealthMonitor
from repro.obs.manifest import RunManifest
from repro.obs.diffing import (
    Attribution,
    DiffRow,
    ProfileDiff,
    RunProfile,
    diff_profiles,
    diff_recordings,
    profile_from_bench_phases,
    profile_from_jsonl,
    profile_from_recorder,
)
from repro.obs.profile import Sample, SamplingProfiler

__all__ = [
    "EventBus",
    "Span",
    "SpanRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "classify_tag",
    "classify_tags",
    "register_tag_phase",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
    "waits_to_chrome",
    "waits_to_jsonl",
    "ConformanceReport",
    "PhaseCheck",
    "RoundsCheck",
    "audit_coin_gen",
    "audit_liveness",
    "audit_recorder",
    "audit_rounds",
    "QuorumLatencyRecorder",
    "StallWatchdog",
    "WaitRecord",
    "Stall",
    "default_threshold",
    "CausalGraph",
    "CausalRecorder",
    "MessageEdge",
    "graph_from_log",
    "CostModel",
    "CriticalPathResult",
    "WhatIf",
    "critical_path",
    "ops_from_recorder",
    "what_if",
    "FlightRecorder",
    "FlightLog",
    "Divergence",
    "replay",
    "diff",
    "AccusationReport",
    "analyze_log",
    "HealthMonitor",
    "RunManifest",
    "RunProfile",
    "ProfileDiff",
    "DiffRow",
    "Attribution",
    "diff_profiles",
    "diff_recordings",
    "profile_from_recorder",
    "profile_from_jsonl",
    "profile_from_bench_phases",
    "SamplingProfiler",
    "Sample",
]
