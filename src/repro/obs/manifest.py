"""Run manifests: provenance stamps for benchmarks, exports, and logs.

Every performance artifact this repo emits — ``BENCH_history.json``
rows, span exports (JSONL / Chrome), flight logs — describes *one
execution of one configuration*, yet until now none of them recorded
which configuration that was.  A :class:`RunManifest` is that record:
the protocol parameters (field, n, t, M, seeds), the execution knobs
(backend, scheduler, runtime, interpolation mode), and the environment
(python / numpy versions, git sha, package version) in one flat,
JSON-serializable object.

Two kinds of fields, one contract
---------------------------------
*Semantic* fields (:data:`SEMANTIC_FIELDS`) describe what was run:
change any of them and you are measuring a different thing.
*Environment* fields (:data:`ENVIRONMENT_FIELDS`) describe where it
ran: the same configuration benched on a newer interpreter or commit is
still the same configuration.  :meth:`RunManifest.fingerprint` hashes
only the semantic fields over a canonical (sorted-key) JSON encoding,
so it is

* **stable** under dict key ordering and environment drift, and
* **different** whenever any semantic field changes.

That makes the fingerprint the join key for cross-run analysis
(:mod:`repro.obs.diffing`): two recordings are comparable when their
fingerprints match, and a diff between different fingerprints is
labelled as a *configuration* change, not a regression.

Capture is cheap and dependency-free: the git sha comes from one
``git rev-parse`` (cached per process, ``None`` outside a checkout),
numpy's version from an import probe, and everything else from values
the caller already has.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Dict, Optional

#: fields that define *what* was run; the fingerprint hashes exactly these
SEMANTIC_FIELDS = (
    "protocol", "field", "n", "t", "M", "seed", "sched_seed",
    "backend", "scheduler", "runtime", "interpolation",
    "adversary", "corrupt", "faults",
)

#: fields that describe *where* it ran; recorded but never fingerprinted
ENVIRONMENT_FIELDS = ("python", "numpy", "package", "git_sha")

_GIT_SHA_CACHE: Dict[str, Optional[str]] = {}


def git_sha(short: bool = True) -> Optional[str]:
    """The current checkout's commit sha (cached; ``None`` outside git)."""
    key = "short" if short else "full"
    if key not in _GIT_SHA_CACHE:
        command = ["git", "rev-parse"]
        if short:
            command.append("--short")
        command.append("HEAD")
        try:
            _GIT_SHA_CACHE[key] = subprocess.run(
                command, capture_output=True, text=True, timeout=5,
                check=True,
            ).stdout.strip() or None
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA_CACHE[key] = None
    return _GIT_SHA_CACHE[key]


def numpy_version() -> Optional[str]:
    """numpy's version string, or ``None`` when it does not import."""
    try:
        import numpy
    except ImportError:
        return None
    return numpy.__version__


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one run: what was executed, and where.

    All fields are optional so partial manifests (a bench matrix has no
    single ``n``; a field microbench has no ``M``) stay honest: absent
    means "not applicable", and absent fields still fingerprint
    deterministically (as JSON ``null``).
    """

    # -- semantic: what was run ------------------------------------------
    protocol: Optional[str] = None
    field: Optional[str] = None  #: field spec string, e.g. ``"gf2k:32"``
    n: Optional[int] = None
    t: Optional[int] = None
    M: Optional[int] = None
    seed: Optional[int] = None
    sched_seed: Optional[int] = None
    backend: Optional[str] = None
    scheduler: Optional[str] = None
    runtime: Optional[str] = None
    interpolation: Optional[str] = None
    adversary: Optional[str] = None  #: adversary kind, e.g. ``"bad_share"``
    corrupt: Optional[str] = None  #: comma-joined corrupt player ids
    faults: Optional[str] = None  #: ``;``-joined fault-op chain spec
    # -- environment: where it ran ---------------------------------------
    python: Optional[str] = None
    numpy: Optional[str] = None
    package: Optional[str] = None
    git_sha: Optional[str] = None

    @classmethod
    def capture(cls, field=None, **values: Any) -> "RunManifest":
        """Build a manifest, filling the environment fields automatically.

        ``field`` accepts a live :class:`~repro.fields.base.Field` (its
        spec string and resolved backend name are read off it) or an
        already-formatted spec string.  Any explicit keyword wins over a
        captured value.
        """
        from repro.obs.flight import field_spec
        import repro

        captured: Dict[str, Any] = {
            "python": sys.version.split()[0],
            "numpy": numpy_version(),
            "package": repro.__version__,
            "git_sha": git_sha(),
        }
        if field is not None:
            if isinstance(field, str):
                captured["field"] = field
            else:
                captured["field"] = field_spec(field)
                backend = getattr(field, "backend_name", None)
                if backend is not None:
                    captured["backend"] = backend
        if "interpolation" not in values:
            from repro.poly.barycentric import cache_mode

            captured["interpolation"] = cache_mode()
        captured.update(values)
        return cls(**captured)

    # -- (de)serialization -----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """All non-``None`` fields as a plain dict (stable key order)."""
        out: Dict[str, Any] = {}
        for name in SEMANTIC_FIELDS + ENVIRONMENT_FIELDS:
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        """Rebuild from a dict, ignoring unknown keys (forward compat)."""
        known = {f.name for f in dataclass_fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    # -- identity ---------------------------------------------------------
    def semantic_dict(self) -> Dict[str, Any]:
        """The semantic fields only (``None`` entries included)."""
        return {name: getattr(self, name) for name in SEMANTIC_FIELDS}

    def fingerprint(self) -> str:
        """12-hex-char content hash of the semantic fields.

        Canonical JSON (sorted keys, no whitespace variance) feeds a
        sha256, so the value is independent of dict ordering, of every
        environment field, and of the process that computes it.
        """
        canonical = json.dumps(self.semantic_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    def summary(self) -> str:
        """One human line: semantic knobs, then environment, then id."""
        parts = []
        for name in SEMANTIC_FIELDS:
            value = getattr(self, name)
            if value is not None:
                parts.append(f"{name}={value}")
        env = []
        for name in ENVIRONMENT_FIELDS:
            value = getattr(self, name)
            if value is not None:
                env.append(f"{name}={value}")
        line = " ".join(parts) or "(unparameterized)"
        if env:
            line += "  [" + " ".join(env) + "]"
        return f"{line}  #{self.fingerprint()}"

    def differences(self, other: "RunManifest") -> Dict[str, tuple]:
        """``{field: (mine, theirs)}`` over differing *semantic* fields.

        The diffing layer uses this to label a nonzero diff as a
        configuration change rather than a performance regression.
        """
        out: Dict[str, tuple] = {}
        for name in SEMANTIC_FIELDS:
            mine, theirs = getattr(self, name), getattr(other, name)
            if mine != theirs:
                out[name] = (mine, theirs)
        return out
