"""Happens-before graphs: per-message provenance for protocol runs.

The runtime's synchronous round loop induces a causal order: player
``p``'s step in round ``r`` consumes the deliveries that settled in
round ``r-1`` and produces the messages that (fault-free) settle in
round ``r`` and are consumed in round ``r+1``.  This module materializes
that order as a DAG over *step nodes* ``(run, round, player)``:

* an implicit **local edge** links each player's consecutive steps
  ``(r, p) -> (r+1, p)`` (program state carries forward);
* an explicit :class:`MessageEdge` links the producing step to the
  consuming step for every delivered message, annotated with the wire
  tag, field-element payload size, channel kind, and — crucially — the
  *true origin round* even when the fault plane delayed delivery.

Two capture paths produce the same graph:

* **live** — :class:`CausalRecorder`, an EventBus subscriber pairing the
  pre-fault ``"sent"`` stream (published by the runtime only while this
  topic has subscribers — zero cost otherwise) with the settled
  ``"round"`` stream.  Emissions that never settle become
  :class:`DroppedEmission` records; deliveries whose origin round the
  fault plane moved keep their send round (``edge.delayed`` is True).
* **offline** — :func:`graph_from_log` rebuilds the DAG from a recorded
  :class:`~repro.obs.flight.FlightLog`.  A flight log only knows what
  *arrived*, so delayed messages fall back to ``send_round =
  settle round`` and channel kinds are unknown; for runs without delay
  faults the offline graph equals the live one (asserted by the
  property tests in ``tests/test_causality.py``).

Graph equality (``==``) compares the *canonical* form — the sorted
message-edge keys without channel annotations — so a live graph and its
offline reconstruction compare equal whenever they describe the same
causal structure.

The structural **depth** of a run — the longest chain of message edges —
is the number of message-carrying rounds, which fault-free equals the
:func:`repro.analysis.rounds.predicted_rounds` formula for the protocol
(the trailing drain round is empty and adds no depth).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional, Tuple

from repro.net import codec
from repro.net.metrics import payload_field_elements
from repro.net.trace import payload_tag
from repro.obs.bus import ROUND, RUN, SENT, EventBus
from repro.obs.phases import classify_tag


def _wire_key(payload: Any) -> str:
    """A hashable identity for a payload (codec hex, repr fallback)."""
    try:
        return codec.encode(payload).hex()
    except codec.CodecError:
        return repr(payload)


@dataclass(frozen=True)
class MessageEdge:
    """One delivered message: producing step -> consuming step.

    ``send_round`` is the round whose step *emitted* the message (the
    true origin, pre-fault); ``recv_round`` is the round whose step
    *consumes* it — one past the round the delivery settled in.
    """

    run: int
    send_round: int
    recv_round: int
    src: int
    dst: int
    tag: str
    elements: int
    channel: str = "?"  #: unicast / multicast / broadcast / "?" (unknown)

    @property
    def phase(self) -> str:
        """The pipeline phase of this message's tag."""
        return classify_tag(self.tag)

    @property
    def delayed(self) -> bool:
        """True when the fault plane moved delivery past the next round."""
        return self.recv_round > self.send_round + 1

    def key(self) -> Tuple:
        """Canonical identity — excludes the channel annotation, which
        only live capture knows."""
        return (self.run, self.send_round, self.recv_round,
                self.src, self.dst, self.tag, self.elements)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run": self.run, "send_round": self.send_round,
            "recv_round": self.recv_round, "src": self.src,
            "dst": self.dst, "tag": self.tag, "phase": self.phase,
            "elements": self.elements, "channel": self.channel,
            "delayed": self.delayed,
        }


@dataclass(frozen=True)
class DroppedEmission:
    """An emission that never settled (fault-plane drop, or a delay
    still pending when its run ended)."""

    run: int
    send_round: int
    src: int
    dst: int
    tag: str
    channel: str = "?"


@dataclass
class CausalGraph:
    """The happens-before DAG of one or more protocol runs."""

    n: int
    edges: List[MessageEdge] = dataclass_field(default_factory=list)
    dropped: List[DroppedEmission] = dataclass_field(default_factory=list)

    # -- construction -------------------------------------------------------
    def add(self, edge: MessageEdge) -> None:
        self.edges.append(edge)

    @classmethod
    def from_flight_log(cls, log) -> "CausalGraph":
        """Rebuild the DAG from a :class:`~repro.obs.flight.FlightLog`.

        The log records settled rounds only, so every edge's send round
        is its settle round (delayed messages lose their true origin)
        and channel kinds are unknown.  For runs without delay faults
        this equals the live-captured graph.
        """
        graph = cls(n=log.n)
        for event in log.rounds:
            for dst, src, payload in event.deliveries:
                graph.add(MessageEdge(
                    run=event.run, send_round=event.round,
                    recv_round=event.round + 1, src=src, dst=dst,
                    tag=payload_tag(payload),
                    elements=payload_field_elements(payload),
                ))
        return graph

    # -- views --------------------------------------------------------------
    def runs(self) -> List[int]:
        return sorted({edge.run for edge in self.edges})

    def edges_in_run(self, run: int) -> List[MessageEdge]:
        return [edge for edge in self.edges if edge.run == run]

    def in_edges(self, run: int) -> Dict[Tuple[int, int], List[MessageEdge]]:
        """``{(recv_round, dst): [edges]}`` for one run."""
        index: Dict[Tuple[int, int], List[MessageEdge]] = {}
        for edge in self.edges_in_run(run):
            index.setdefault((edge.recv_round, edge.dst), []).append(edge)
        return index

    def last_round(self, run: int) -> int:
        """The last step round of a run (the consuming round of its
        latest message — the runtime's trailing drain round)."""
        return max((edge.recv_round for edge in self.edges_in_run(run)),
                   default=0)

    def depth(self, run: Optional[int] = None) -> int:
        """Longest chain of message edges (the structural round depth).

        With ``run=None``, the maximum over all runs.  Fault-free this
        equals the :func:`repro.analysis.rounds.predicted_rounds`
        formula for the protocol that produced the run.
        """
        if run is None:
            return max((self.depth(r) for r in self.runs()), default=0)
        edges = sorted(self.edges_in_run(run),
                       key=lambda edge: edge.recv_round)
        # best[player][round] = longest edge-chain ending at that step
        best: Dict[int, Dict[int, int]] = {}
        deepest = 0
        for edge in edges:
            tail = max(
                (length
                 for round_no, length in best.get(edge.src, {}).items()
                 if round_no <= edge.send_round),
                default=0,
            )
            chain = tail + 1
            head = best.setdefault(edge.dst, {})
            if chain > head.get(edge.recv_round, 0):
                head[edge.recv_round] = chain
            deepest = max(deepest, chain)
        return deepest

    def depths(self) -> Dict[int, int]:
        return {run: self.depth(run) for run in self.runs()}

    # -- canonical form ------------------------------------------------------
    def canonical(self) -> Tuple:
        """Channel-free identity: what both capture paths must agree on."""
        return (self.n, tuple(sorted(edge.key() for edge in self.edges)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CausalGraph):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:  # pragma: no cover - dict use only
        return hash(self.canonical())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self.n,
            "runs": self.runs(),
            "depths": {str(run): depth
                       for run, depth in self.depths().items()},
            "edges": [edge.to_dict() for edge in self.edges],
            "dropped": [
                {"run": d.run, "send_round": d.send_round, "src": d.src,
                 "dst": d.dst, "tag": d.tag, "channel": d.channel}
                for d in self.dropped
            ],
        }


def graph_from_log(log) -> CausalGraph:
    """Offline reconstruction: :class:`CausalGraph` from a flight log."""
    return CausalGraph.from_flight_log(log)


class CausalRecorder:
    """Live happens-before capture as an EventBus subscriber.

    Subscribes to ``"run"``, ``"sent"``, and ``"round"``.  Because the
    runtime publishes ``"sent"`` only while that topic has subscribers,
    attaching this recorder is what *turns on* provenance capture — and
    a run without one attached is byte-identical to an unmonitored run
    (asserted in ``tests/test_causality.py``).

    Emission/arrival pairing is by ``(src, dst, wire_bytes)``: an
    arrival prefers an emission from its own settle round, falls back to
    the *earliest* pending emission (a fault-plane delay), and — when no
    emission matches (e.g. a fault-plane duplicate's second copy) —
    records the settle round as the origin, which is exactly what the
    offline reconstruction does.
    """

    def __init__(self, n: int):
        self.n = n
        self._edges: List[MessageEdge] = []
        self._dropped: List[DroppedEmission] = []
        #: (src, dst, wire) -> [(send_round, channel, tag, elements)]
        self._pending: Dict[Tuple[int, int, str], List[Tuple]] = {}
        self._run = 0
        self._last_round = 0
        self._cur_round: Optional[int] = None
        self._run_marked = False

    # -- bus wiring ---------------------------------------------------------
    def attach(self, bus: EventBus) -> "CausalRecorder":
        bus.subscribe(RUN, self.on_run)
        bus.subscribe(SENT, self.on_sent)
        bus.subscribe(ROUND, self.on_round)
        return self

    def detach(self, bus: EventBus) -> None:
        bus.unsubscribe(RUN, self.on_run)
        bus.unsubscribe(SENT, self.on_sent)
        bus.unsubscribe(ROUND, self.on_round)

    # -- run delimiting (same contract as FlightRecorder) --------------------
    def on_run(self, n: int) -> None:
        self._flush_pending()
        self._run += 1
        self._last_round = 0
        self._cur_round = None
        self._run_marked = True

    def _advance_run(self, round_no: int) -> None:
        if self._run == 0:
            self._run = 1
        elif not self._run_marked and round_no <= self._last_round:
            # stream without markers: round numbers restarted
            self._flush_pending()
            self._run += 1
        self._run_marked = False
        self._cur_round = round_no

    def _flush_pending(self) -> None:
        """Emissions still unmatched when a run ends were never
        delivered — record them as dropped."""
        for (src, dst, _wire), entries in sorted(self._pending.items()):
            for send_round, channel, tag, _elements in entries:
                self._dropped.append(DroppedEmission(
                    run=max(self._run, 1), send_round=send_round,
                    src=src, dst=dst, tag=tag, channel=channel,
                ))
        self._pending.clear()

    # -- topic handlers -----------------------------------------------------
    def on_sent(self, round_no: int, emissions) -> None:
        if round_no != self._cur_round:
            self._advance_run(round_no)
        for dst, src, payload, channel in emissions:
            self._pending.setdefault(
                (src, dst, _wire_key(payload)), []
            ).append((round_no, channel, payload_tag(payload),
                      payload_field_elements(payload)))

    def on_round(self, round_no: int, deliveries) -> None:
        if round_no != self._cur_round:
            self._advance_run(round_no)
        run = self._run
        for dst, src, payload in deliveries:
            key = (src, dst, _wire_key(payload))
            entries = self._pending.get(key)
            entry = None
            if entries:
                # prefer the emission from this very round; otherwise
                # the earliest pending one (a delayed delivery)
                for index, candidate in enumerate(entries):
                    if candidate[0] == round_no:
                        entry = entries.pop(index)
                        break
                else:
                    entry = entries.pop(0)
                if not entries:
                    del self._pending[key]
            if entry is not None:
                send_round, channel, tag, elements = entry
            else:
                # no matching emission (e.g. a duplicate's extra copy):
                # fall back to the settle round, like offline replay
                send_round, channel = round_no, "?"
                tag = payload_tag(payload)
                elements = payload_field_elements(payload)
            self._edges.append(MessageEdge(
                run=run, send_round=send_round, recv_round=round_no + 1,
                src=src, dst=dst, tag=tag, elements=elements,
                channel=channel,
            ))
        self._last_round = round_no
        self._cur_round = None

    # -- output -------------------------------------------------------------
    def graph(self) -> CausalGraph:
        """The captured DAG; pending emissions flush to ``dropped``."""
        self._flush_pending()
        return CausalGraph(n=self.n, edges=list(self._edges),
                           dropped=list(self._dropped))
