"""An opt-in sampling profiler aligned to the open span context.

``cProfile``/``sys.setprofile`` hooks fire on *every* call and would
perturb exactly the hot paths this repo benchmarks.  This profiler
samples instead: each sample snapshots the :class:`SpanRecorder`'s
open-span stack (protocol → phase → round) plus, in timer mode, the
interpreter's code frames — so aggregated samples land on the same
protocol/phase/round hierarchy every other obs view uses, not on
anonymous bytecode addresses.

Two sampling modes
------------------
* **Deterministic** (:meth:`SamplingProfiler.attach_rounds`): subscribe
  to the bus's ``"round"`` topic and take one sample per settled round
  on the protocol thread.  The ``round`` topic is published
  unconditionally (tracers already live there), so attaching changes no
  behaviour — runs stay byte-identical, which makes this the mode tests
  and CI use.
* **Timer** (:meth:`SamplingProfiler.start` / the context manager): a
  daemon thread wakes every ``interval`` seconds and snapshots both the
  span stack and the target thread's code frames via
  ``sys._current_frames`` — real wall-clock attribution for long runs.

Late resolution is the trick that makes span samples honest: a sample
stores *references* to the open :class:`~repro.obs.spans.Span` objects,
and names/phases are resolved only at aggregation time — after the
runtime has backfilled each round span's ``phase`` attribute at round
end.  Sampling mid-round therefore still attributes to the right phase.

Disabled is free, by construction: a profiler that is never constructed
touches nothing, and every output (folded stacks, flame JSON, Chrome
trace, the top-frame table) is derived purely from the sample list.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.bus import ROUND
from repro.obs.spans import Span, SpanRecorder

#: code frames kept per sample (innermost last), timer mode only
_MAX_CODE_FRAMES = 12


@dataclass(frozen=True)
class Sample:
    """One snapshot: open spans (outermost first) + code frame names."""

    t: float
    spans: Tuple[Span, ...]
    frames: Tuple[str, ...] = ()


def _span_frames(span: Span) -> List[str]:
    """Frame labels one open span contributes, outermost first."""
    if span.kind == "round":
        # the phase attr is backfilled at round end; resolving here
        # (aggregation time) is what lands mid-round samples correctly
        phase = span.attrs.get("phase", "other")
        return [f"phase:{phase}", span.name]
    if span.kind == "player":
        player = span.attrs.get("player")
        return [f"player {player}" if player is not None else span.name]
    return [span.name]


def _code_frames(frame) -> Tuple[str, ...]:
    """``module:function`` labels for a code frame chain, outermost first."""
    names: List[str] = []
    while frame is not None and len(names) < _MAX_CODE_FRAMES:
        code = frame.f_code
        module = code.co_filename.rsplit("/", 1)[-1]
        names.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    names.reverse()
    return tuple(names)


class SamplingProfiler:
    """Collects span-context samples; aggregate after the run ends."""

    def __init__(self, recorder: SpanRecorder, interval: float = 0.001,
                 clock=time.perf_counter) -> None:
        self.recorder = recorder
        self.interval = interval
        self.clock = clock
        self.samples: List[Sample] = []
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._target_ident: Optional[int] = None

    # -- sampling ---------------------------------------------------------
    def sample_now(self, *_args: Any, **_kwargs: Any) -> None:
        """Take one sample on the calling thread.

        Ignores positional payload so it can subscribe directly to bus
        topics.  Stores span *references*; names resolve at aggregation.
        """
        self.samples.append(
            Sample(t=self.clock(), spans=tuple(self.recorder._stack))
        )

    def attach_rounds(self, bus) -> "SamplingProfiler":
        """Deterministic mode: one sample per settled round.

        The ``round`` topic is published unconditionally, so this
        subscription cannot change run behaviour (asserted by the
        byte-identity tests).
        """
        bus.subscribe(ROUND, self.sample_now)
        return self

    def detach_rounds(self, bus) -> None:
        bus.unsubscribe(ROUND, self.sample_now)

    def _timer_loop(self) -> None:
        while not self._stop.wait(self.interval):
            frames: Tuple[str, ...] = ()
            frame = sys._current_frames().get(self._target_ident)
            if frame is not None:
                frames = _code_frames(frame)
            self.samples.append(
                Sample(t=self.clock(), spans=tuple(self.recorder._stack),
                       frames=frames)
            )

    def start(self) -> "SamplingProfiler":
        """Timer mode: sample the calling thread every ``interval`` s."""
        if self._thread is not None:
            return self
        self._target_ident = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._timer_loop, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        if self._thread is not None:
            self._stop.set()
            self._thread.join()
            self._thread = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- aggregation ------------------------------------------------------
    def stacks(self) -> Dict[Tuple[str, ...], int]:
        """``{frame-path: sample count}`` with names resolved now."""
        out: Dict[Tuple[str, ...], int] = {}
        for sample in self.samples:
            path: List[str] = []
            for span in sample.spans:
                path.extend(_span_frames(span))
            path.extend(sample.frames)
            key = tuple(path) if path else ("(idle)",)
            out[key] = out.get(key, 0) + 1
        return out

    def folded(self) -> str:
        """Collapsed-stack lines (``a;b;c 42``), flamegraph.pl input."""
        lines = [
            ";".join(path) + f" {count}"
            for path, count in sorted(self.stacks().items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_flame_json(self) -> str:
        """Hierarchical flame-graph JSON (d3-flame-graph shape)."""

        def node(name: str) -> Dict[str, Any]:
            return {"name": name, "value": 0, "children": []}

        root = node("all")
        for path, count in sorted(self.stacks().items()):
            root["value"] += count
            cursor = root
            for name in path:
                child = next(
                    (c for c in cursor["children"] if c["name"] == name),
                    None,
                )
                if child is None:
                    child = node(name)
                    cursor["children"].append(child)
                child["value"] += count
                cursor = child
        return json.dumps(root, indent=1)

    def to_chrome(self, manifest=None) -> str:
        """Samples as Trace Event instant events on a profiler lane."""
        origin = min((s.t for s in self.samples), default=0.0)
        events: List[Dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 3,
             "args": {"name": "repro profiler (samples)"}},
        ]
        for sample in self.samples:
            path: List[str] = []
            for span in sample.spans:
                path.extend(_span_frames(span))
            path.extend(sample.frames)
            events.append({
                "name": path[-1] if path else "(idle)",
                "cat": "sample",
                "ph": "i",
                "ts": (sample.t - origin) * 1e6,
                "pid": 3,
                "tid": 0,
                "s": "t",
                "args": {"stack": ";".join(path)},
            })
        payload: Dict[str, Any] = {"traceEvents": events,
                                   "displayTimeUnit": "ms"}
        if manifest is not None:
            payload["metadata"] = manifest.to_dict()
        return json.dumps(payload, indent=1)

    def table(self, limit: int = 15) -> str:
        """Top frames by inclusive/self sample counts."""
        inclusive: Dict[str, int] = {}
        self_counts: Dict[str, int] = {}
        total = 0
        for path, count in self.stacks().items():
            total += count
            for name in set(path):
                inclusive[name] = inclusive.get(name, 0) + count
            leaf = path[-1]
            self_counts[leaf] = self_counts.get(leaf, 0) + count
        header = (f"{'frame':<40} {'self':>8} {'incl':>8} {'incl%':>7}")
        lines = [f"{len(self.samples)} samples", header,
                 "-" * len(header)]
        ranked = sorted(
            inclusive.items(), key=lambda item: (-item[1], item[0])
        )
        for name, count in ranked[:limit]:
            share = count / total if total else 0.0
            lines.append(
                f"{name:<40} {self_counts.get(name, 0):>8} {count:>8} "
                f"{share:>6.1%}"
            )
        if not ranked:
            lines.append("(no samples collected)")
        return "\n".join(lines)
