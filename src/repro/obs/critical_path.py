"""Critical-path latency attribution over happens-before graphs.

A :class:`~repro.obs.causality.CausalGraph` says *what depends on what*;
this module prices it.  A pluggable :class:`CostModel` assigns

* **compute seconds** to each step from its recorded
  :class:`~repro.fields.base.OpCounter` delta (per-op weights), and
* **latency seconds** to each message edge (base + per-element cost,
  scaled per link and per player — the straggler knob),

then a longest-path dynamic program over the DAG yields, per run, the
**makespan**, the **critical path** (the chain of steps and messages
that actually bounds completion), a per-phase attribution of where that
chain spends its time, and per-coin **exposure latencies** (when the
last receiver finishes consuming an ``expose/<coin>`` share).

The model is *asynchronous dataflow over the recorded dependencies*: a
step starts when its slowest input arrives, not when a global round
barrier fires.  That is deliberately not the synchronous simulator's
timing — it answers "how fast could this run have gone on real links?",
the latency axis RandSolomon-style beacon comparisons use.  Under the
default model (zero op weights, unit latency, homogeneous links) a run's
makespan equals its structural depth, which fault-free equals the
:func:`repro.analysis.rounds.predicted_rounds` formula.

:func:`what_if` re-prices the same graph under a perturbed model
(``model.with_straggler(player, scale)``) and reports which coins'
exposure latencies move, and by how much — no re-execution needed.

:func:`ops_from_recorder` bridges a :class:`~repro.obs.spans.SpanRecorder`
into the per-step op table: protocol spans in start order map onto run
numbers 1..K (each runner wraps exactly one ``network.run``), and each
player-step span's op delta lands on its ``(run, round, player)`` node.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.causality import CausalGraph, MessageEdge

#: the op-delta attribute names player-step spans carry
OP_KEYS = ("adds", "muls", "invs", "interpolations")

StepOps = Dict[Tuple[int, int, int], Dict[str, int]]


@dataclass(frozen=True)
class CostModel:
    """Prices steps and message edges of a causal graph.

    All weights default to the *structural* model: compute is free and
    every link costs one unit, so makespan = DAG depth.  Real profiles
    plug in per-op seconds (from microbenchmarks) and per-link
    latencies; ``player_link_scale`` models heterogeneous/straggler
    players (every link touching the player is scaled; a player's
    message to itself is local and never scaled).
    """

    add: float = 0.0
    mul: float = 0.0
    inv: float = 0.0
    interpolation: float = 0.0
    #: seconds per message edge before scaling
    base_latency: float = 1.0
    #: extra seconds per field element carried
    per_element_latency: float = 0.0
    #: per-link overrides: (src, dst) -> multiplier
    link_scale: Dict[Tuple[int, int], float] = dataclass_field(
        default_factory=dict
    )
    #: per-player link multiplier (applied to every non-self link the
    #: player touches, as sender or receiver)
    player_link_scale: Dict[int, float] = dataclass_field(
        default_factory=dict
    )
    #: per-player compute multiplier (slow CPU)
    player_compute_scale: Dict[int, float] = dataclass_field(
        default_factory=dict
    )

    def latency(self, edge: MessageEdge) -> float:
        seconds = self.base_latency + self.per_element_latency * edge.elements
        seconds *= self.link_scale.get((edge.src, edge.dst), 1.0)
        if edge.src != edge.dst:
            seconds *= self.player_link_scale.get(edge.src, 1.0)
            seconds *= self.player_link_scale.get(edge.dst, 1.0)
        return seconds

    def compute_seconds(self, player: int,
                        ops: Optional[Dict[str, int]]) -> float:
        if not ops:
            return 0.0
        seconds = (
            self.add * ops.get("adds", 0)
            + self.mul * ops.get("muls", 0)
            + self.inv * ops.get("invs", 0)
            + self.interpolation * ops.get("interpolations", 0)
        )
        return seconds * self.player_compute_scale.get(player, 1.0)

    def with_straggler(self, player: int, scale: float) -> "CostModel":
        """A copy where every link touching ``player`` is ``scale``×
        slower (on top of any existing per-player scaling)."""
        link_scale = dict(self.player_link_scale)
        link_scale[player] = link_scale.get(player, 1.0) * scale
        return CostModel(
            add=self.add, mul=self.mul, inv=self.inv,
            interpolation=self.interpolation,
            base_latency=self.base_latency,
            per_element_latency=self.per_element_latency,
            link_scale=dict(self.link_scale),
            player_link_scale=link_scale,
            player_compute_scale=dict(self.player_compute_scale),
        )


@dataclass(frozen=True)
class PathStep:
    """One node of a critical path, with the dependency that bound it."""

    run: int
    round: int
    player: int
    start: float
    finish: float
    #: the message edge whose arrival set ``start`` (None when the
    #: player's own previous step, or the run start, did)
    via: Optional[MessageEdge]

    @property
    def phase(self) -> str:
        return self.via.phase if self.via is not None else "other"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run": self.run, "round": self.round, "player": self.player,
            "start": self.start, "finish": self.finish,
            "via": self.via.to_dict() if self.via is not None else None,
        }


@dataclass
class RunPath:
    """Critical-path analysis of one protocol run."""

    run: int
    #: structural depth (longest message-edge chain)
    depth: int
    #: absolute time the run's first step may begin
    start: float
    #: absolute time the run's slowest chain finishes
    makespan: float
    #: the bounding chain, earliest step first
    path: List[PathStep] = dataclass_field(default_factory=list)
    #: seconds of the critical path attributed per pipeline phase
    phase_seconds: Dict[str, float] = dataclass_field(default_factory=dict)

    @property
    def elapsed(self) -> float:
        return self.makespan - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run": self.run, "depth": self.depth, "start": self.start,
            "makespan": self.makespan, "elapsed": self.elapsed,
            "phase_seconds": dict(self.phase_seconds),
            "path": [step.to_dict() for step in self.path],
        }


@dataclass
class CriticalPathResult:
    """Full analysis of a causal graph under one cost model."""

    runs: List[RunPath] = dataclass_field(default_factory=list)
    #: (run, coin_id) -> absolute finish time of the last receiver's
    #: consuming step for that coin's expose shares
    coin_exposures: Dict[Tuple[int, str], float] = dataclass_field(
        default_factory=dict
    )

    @property
    def makespan(self) -> float:
        return max((run.makespan for run in self.runs), default=0.0)

    def run_path(self, run: int) -> Optional[RunPath]:
        for candidate in self.runs:
            if candidate.run == run:
                return candidate
        return None

    def phase_attribution(self) -> Dict[str, float]:
        """Critical-path seconds per phase, aggregated over runs."""
        totals: Dict[str, float] = {}
        for run in self.runs:
            for phase, seconds in run.phase_seconds.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals

    def to_dict(self) -> Dict[str, Any]:
        return {
            "makespan": self.makespan,
            "runs": [run.to_dict() for run in self.runs],
            "phase_attribution": self.phase_attribution(),
            "coin_exposures": {
                f"run{run}:{coin}": latency
                for (run, coin), latency in sorted(self.coin_exposures.items())
            },
        }

    def table(self) -> str:
        """Fixed-width summary for the CLI."""
        lines = [
            f"{'run':>4} {'depth':>6} {'elapsed':>9} {'makespan':>9}  "
            "slowest chain (phase: seconds)"
        ]
        lines.append("-" * len(lines[0]))
        for run in self.runs:
            attribution = ", ".join(
                f"{phase}: {seconds:.3f}"
                for phase, seconds in sorted(
                    run.phase_seconds.items(),
                    key=lambda item: -item[1],
                )
                if seconds > 0
            ) or "-"
            lines.append(
                f"{run.run:>4} {run.depth:>6} {run.elapsed:>9.3f} "
                f"{run.makespan:>9.3f}  {attribution}"
            )
        if self.coin_exposures:
            lines.append("")
            lines.append(f"{'coin':<24} {'exposure':>10}")
            lines.append("-" * 35)
            for (run, coin), latency in sorted(self.coin_exposures.items()):
                lines.append(f"run{run}:{coin:<20} {latency:>10.3f}")
        return "\n".join(lines)


def _run_critical_path(
    graph: CausalGraph,
    model: CostModel,
    step_ops: StepOps,
    run: int,
    start_time: float,
) -> Tuple[RunPath, Dict[Tuple[int, int], float]]:
    """Longest-path DP over one run; returns the path and finish times.

    ``start(r, p)`` is the later of the player's own previous step
    finishing and the slowest in-edge arriving; ``finish`` adds the
    step's compute seconds.  Backpointers recover the bounding chain.
    """
    edges = graph.edges_in_run(run)
    in_edges = graph.in_edges(run)
    lo = min(edge.send_round for edge in edges)
    hi = max(edge.recv_round for edge in edges)
    players = range(1, graph.n + 1)
    # step_ops rounds are run-local (a recorder's round spans restart at
    # 1 per network.run), while graph rounds are the cumulative metrics
    # numbering; the run's first message round is its local round 1
    ops_offset = lo - 1

    finish: Dict[Tuple[int, int], float] = {}
    back: Dict[Tuple[int, int], Tuple[str, Any]] = {}
    for round_no in range(lo, hi + 1):
        for player in players:
            node = (round_no, player)
            if round_no == lo:
                start, via = start_time, ("start", None)
            else:
                start, via = finish[(round_no - 1, player)], ("local", None)
            for edge in in_edges.get(node, ()):
                arrival = (
                    finish.get((edge.send_round, edge.src), start_time)
                    + model.latency(edge)
                )
                if arrival > start:
                    start, via = arrival, ("edge", edge)
            compute = model.compute_seconds(
                player, step_ops.get((run, round_no - ops_offset, player))
            )
            finish[node] = start + compute
            back[node] = via

    tail = max(finish, key=lambda node: (finish[node], node))
    makespan = finish[tail]

    path: List[PathStep] = []
    phase_seconds: Dict[str, float] = {}
    node: Optional[Tuple[int, int]] = tail
    while node is not None:
        round_no, player = node
        kind, edge = back[node]
        via = edge if kind == "edge" else None
        if kind == "edge":
            start = finish[(edge.send_round, edge.src)] + model.latency(edge)
        elif kind == "local":
            start = finish[(round_no - 1, player)]
        else:
            start = start_time
        step = PathStep(run=run, round=round_no, player=player,
                       start=start, finish=finish[node], via=via)
        path.append(step)
        compute_phase = via.phase if via is not None else "other"
        compute = finish[node] - start
        if compute > 0:
            phase_seconds[compute_phase] = (
                phase_seconds.get(compute_phase, 0.0) + compute
            )
        if kind == "edge":
            latency = model.latency(edge)
            if latency > 0:
                phase_seconds[edge.phase] = (
                    phase_seconds.get(edge.phase, 0.0) + latency
                )
            node = (edge.send_round, edge.src)
        elif kind == "local":
            node = (round_no - 1, player)
        else:
            node = None
    path.reverse()

    run_path = RunPath(run=run, depth=graph.depth(run), start=start_time,
                       makespan=makespan, path=path,
                       phase_seconds=phase_seconds)
    return run_path, finish


def critical_path(
    graph: CausalGraph,
    model: Optional[CostModel] = None,
    step_ops: Optional[StepOps] = None,
    run: Optional[int] = None,
) -> CriticalPathResult:
    """Price ``graph`` under ``model`` and extract the bounding chains.

    Runs are chained sequentially (run k+1 starts at run k's makespan),
    matching how the runners execute.  ``step_ops`` maps
    ``(run, round, player)`` — with *run-local* 1-based rounds — to an
    op-delta dict (see :func:`ops_from_recorder`); missing steps cost
    zero compute.  ``run`` restricts the analysis to one run.
    """
    model = model if model is not None else CostModel()
    step_ops = step_ops or {}
    result = CriticalPathResult()
    clock = 0.0
    runs = graph.runs() if run is None else [run]
    for run_no in runs:
        if not graph.edges_in_run(run_no):
            continue
        run_path, finish = _run_critical_path(
            graph, model, step_ops, run_no, clock
        )
        result.runs.append(run_path)
        clock = run_path.makespan
        for edge in graph.edges_in_run(run_no):
            if not edge.tag.startswith("expose/"):
                continue
            coin = edge.tag[len("expose/"):]
            consumed = finish.get((edge.recv_round, edge.dst), 0.0)
            key = (run_no, coin)
            if consumed > result.coin_exposures.get(key, 0.0):
                result.coin_exposures[key] = consumed
    return result


@dataclass(frozen=True)
class OpProfileRow:
    """Critical-path contribution of one (phase, op-kind) pair."""

    phase: str
    op: str
    count: int
    seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase, "op": self.op,
            "count": self.count, "seconds": self.seconds,
        }


def op_profile(
    graph: CausalGraph,
    model: Optional[CostModel] = None,
    step_ops: Optional[StepOps] = None,
    run: Optional[int] = None,
) -> List[OpProfileRow]:
    """Rank (phase, op) pairs by their critical-path contribution.

    Walks the bounding chain of every run and attributes each on-path
    step's recorded op counts to the phase of the dependency that bound
    the step — i.e. only work that actually delays completion is
    counted, which is what makes this the vectorization target list
    rather than a flat op histogram.  Rows are ordered by priced seconds
    when the model carries nonzero op weights, by raw counts under the
    structural (free-compute) model.
    """
    model = model if model is not None else CostModel()
    step_ops = step_ops or {}
    result = critical_path(graph, model, step_ops, run)
    weights = {
        "adds": model.add,
        "muls": model.mul,
        "invs": model.inv,
        "interpolations": model.interpolation,
    }
    counts: Dict[Tuple[str, str], int] = {}
    seconds: Dict[Tuple[str, str], float] = {}
    for run_path in result.runs:
        edges = graph.edges_in_run(run_path.run)
        ops_offset = min(edge.send_round for edge in edges) - 1
        for step in run_path.path:
            ops = step_ops.get(
                (run_path.run, step.round - ops_offset, step.player)
            )
            if not ops:
                continue
            scale = model.player_compute_scale.get(step.player, 1.0)
            for key in OP_KEYS:
                count = ops.get(key, 0)
                if not count:
                    continue
                pair = (step.phase, key)
                counts[pair] = counts.get(pair, 0) + count
                seconds[pair] = (
                    seconds.get(pair, 0.0) + weights[key] * count * scale
                )
    priced = any(weight > 0 for weight in weights.values())
    rows = [
        OpProfileRow(phase=phase, op=op, count=counts[(phase, op)],
                     seconds=seconds[(phase, op)])
        for phase, op in counts
    ]
    rows.sort(
        key=lambda row: (
            -(row.seconds if priced else row.count), row.phase, row.op
        )
    )
    return rows


def op_profile_table(rows: List[OpProfileRow]) -> str:
    """Fixed-width rendering of :func:`op_profile` for the CLI."""
    header = f"{'phase':<16} {'op':<16} {'count':>12} {'seconds':>12}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.phase:<16} {row.op:<16} {row.count:>12} "
            f"{row.seconds:>12.6f}"
        )
    if not rows:
        lines.append("(no on-path op deltas recorded)")
    return "\n".join(lines)


@dataclass
class WhatIf:
    """A straggler counterfactual: same graph, perturbed cost model."""

    player: int
    scale: float
    base: CriticalPathResult
    perturbed: CriticalPathResult

    @property
    def makespan_delta(self) -> float:
        return self.perturbed.makespan - self.base.makespan

    def exposure_deltas(self) -> Dict[Tuple[int, str], Tuple[float, float]]:
        """``{(run, coin): (before, after)}`` for every exposed coin."""
        out: Dict[Tuple[int, str], Tuple[float, float]] = {}
        for key in sorted(set(self.base.coin_exposures)
                          | set(self.perturbed.coin_exposures)):
            out[key] = (
                self.base.coin_exposures.get(key, 0.0),
                self.perturbed.coin_exposures.get(key, 0.0),
            )
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "player": self.player,
            "scale": self.scale,
            "makespan_before": self.base.makespan,
            "makespan_after": self.perturbed.makespan,
            "makespan_delta": self.makespan_delta,
            "exposures": {
                f"run{run}:{coin}": {
                    "before": before, "after": after,
                    "delta": after - before,
                }
                for (run, coin), (before, after)
                in self.exposure_deltas().items()
            },
        }

    def table(self) -> str:
        lines = [
            f"what-if: player {self.player} links x{self.scale:g} — "
            f"makespan {self.base.makespan:.3f} -> "
            f"{self.perturbed.makespan:.3f} "
            f"({self.makespan_delta:+.3f})"
        ]
        deltas = self.exposure_deltas()
        if deltas:
            header = (f"{'coin':<24} {'before':>10} {'after':>10} "
                      f"{'delta':>10}")
            lines.append(header)
            lines.append("-" * len(header))
            for (run, coin), (before, after) in deltas.items():
                lines.append(
                    f"run{run}:{coin:<20} {before:>10.3f} {after:>10.3f} "
                    f"{after - before:>+10.3f}"
                )
        return "\n".join(lines)


def what_if(
    graph: CausalGraph,
    model: Optional[CostModel] = None,
    player: int = 1,
    scale: float = 10.0,
    step_ops: Optional[StepOps] = None,
) -> WhatIf:
    """Re-price the graph with ``player``'s links ``scale``× slower."""
    model = model if model is not None else CostModel()
    return WhatIf(
        player=player,
        scale=scale,
        base=critical_path(graph, model, step_ops),
        perturbed=critical_path(
            graph, model.with_straggler(player, scale), step_ops
        ),
    )


def ops_from_recorder(recorder) -> Tuple[StepOps, Dict[int, str]]:
    """Per-step op deltas out of a :class:`~repro.obs.spans.SpanRecorder`.

    Protocol spans in start order map to run numbers 1..K — valid
    because every shipped runner wraps exactly one ``network.run()``
    call per protocol span, and the runtime publishes one run marker per
    call.  Returns ``(step_ops, run_labels)`` where ``run_labels`` names
    each run after its protocol span.
    """
    step_ops: StepOps = {}
    labels: Dict[int, str] = {}
    protocols = sorted(recorder.by_kind("protocol"), key=lambda s: s.t0)
    for run_no, protocol in enumerate(protocols, start=1):
        labels[run_no] = protocol.name
        for round_span in recorder.children(protocol):
            if round_span.kind != "round":
                continue
            for step in recorder.children(round_span):
                if step.kind != "player":
                    continue
                player = step.attrs.get("player")
                round_no = step.attrs.get("round")
                if player is None or round_no is None:
                    continue
                ops = step_ops.setdefault(
                    (run_no, round_no, player),
                    {key: 0 for key in OP_KEYS},
                )
                for key in OP_KEYS:
                    ops[key] += step.attrs.get(key, 0)
    return step_ops, labels
