"""Cross-run differential analysis: per-phase × per-op delta tables.

One recorded run tells you where time went; two runs tell you what
*changed*.  This module reduces any recording this repo produces — a
live :class:`~repro.obs.spans.SpanRecorder`, a JSONL span export, the
``phases`` breakdown in a bench row, or a schema-2 history-row profile —
to one canonical shape, a :class:`RunProfile`::

    {phase: {rounds, messages, bits, adds, muls, invs,
             interpolations, wall_s}}

and then diffs two of them.

Determinism is the contract
---------------------------
Every metric except ``wall_s`` is a *count* the simulator derives from
the seeds alone, so two runs of the same manifest produce identical
count tables and :meth:`ProfileDiff.is_empty` is guaranteed True —
wall-clock jitter is reported (``wall_s`` rows) but never decides
emptiness.  Conversely any nonzero count delta is a real behavioural
difference, not noise, which is what makes the attribution trustworthy.

Attribution
-----------
:meth:`ProfileDiff.attribution` prices the per-(phase, op) count deltas
under a :class:`~repro.obs.critical_path.CostModel` (default
:data:`DEFAULT_PRICING`, the microbenchmark-derived per-op seconds the
CLI documents for ``--op-cost``) and ranks them by share of the total
priced delta — the "clique-phase interpolations account for 78% of the
slowdown" line.  When the two runs' manifests differ in a semantic
field, the report says so up front: that diff is a configuration
change, not a regression.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional

from repro.obs.critical_path import OP_KEYS, CostModel
from repro.obs.manifest import RunManifest

#: deterministic (seed-derived) per-phase metrics; these decide emptiness
COUNT_METRICS = ("rounds", "messages", "bits") + OP_KEYS
#: all per-phase metrics, wall-clock last (reported, never gating)
METRICS = COUNT_METRICS + ("wall_s",)

#: per-op seconds used to price attribution when no model is given
#: (the same figures the CLI's ``--op-cost`` help cites)
DEFAULT_PRICING = CostModel(add=1e-9, mul=2e-9, inv=5e-8,
                            interpolation=1e-6)

PhaseTable = Dict[str, Dict[str, float]]


def _empty_phase() -> Dict[str, float]:
    return {metric: 0 for metric in METRICS}


@dataclass
class RunProfile:
    """One run reduced to the canonical per-phase metric table."""

    phases: PhaseTable = dataclass_field(default_factory=dict)
    manifest: Optional[RunManifest] = None
    #: where this profile came from, for report headers
    source: str = ""

    def phase(self, name: str) -> Dict[str, float]:
        return self.phases.setdefault(name, _empty_phase())

    def totals(self) -> Dict[str, float]:
        out = _empty_phase()
        for metrics in self.phases.values():
            for metric in METRICS:
                out[metric] += metrics.get(metric, 0)
        return out

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "phases": {
                phase: {m: self.phases[phase].get(m, 0) for m in METRICS}
                for phase in sorted(self.phases)
            },
        }
        if self.manifest is not None:
            out["manifest"] = self.manifest.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any],
                  source: str = "") -> "RunProfile":
        profile = cls(source=source)
        for phase, metrics in data.get("phases", {}).items():
            row = profile.phase(phase)
            for metric in METRICS:
                row[metric] += metrics.get(metric, 0)
        if data.get("manifest"):
            profile.manifest = RunManifest.from_dict(data["manifest"])
        return profile


def profile_from_recorder(recorder, manifest: Optional[RunManifest] = None,
                          source: str = "recorder") -> RunProfile:
    """Reduce a live :class:`~repro.obs.spans.SpanRecorder`.

    Phase spans (synthesized from consecutive same-phase rounds) supply
    rounds / messages / bits / wall; player-step spans supply the op
    deltas, keyed by the ``phase`` attribute the runtime backfills at
    round end.
    """
    profile = RunProfile(manifest=manifest, source=source)
    for span in recorder.phase_spans():
        row = profile.phase(span.attrs.get("phase", "other"))
        row["rounds"] += span.attrs.get("rounds", 0)
        row["messages"] += span.attrs.get("messages", 0)
        row["bits"] += span.attrs.get("bits", 0)
        row["wall_s"] += span.duration
    for span in recorder.by_kind("player"):
        row = profile.phase(span.attrs.get("phase", "other"))
        for key in OP_KEYS:
            row[key] += span.attrs.get(key, 0)
    return profile


def profile_from_jsonl(text: str, source: str = "jsonl") -> RunProfile:
    """Reduce a :func:`~repro.obs.export.to_jsonl` span export.

    The export carries the same spans a live recorder holds (phase spans
    included, attrs flattened into the span object), plus optional
    ``{"kind": "manifest"}`` and ``{"kind": "fault"}`` lines.
    """
    profile = RunProfile(source=source)
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        kind = record.get("kind")
        if kind == "manifest":
            payload = {k: v for k, v in record.items() if k != "kind"}
            profile.manifest = RunManifest.from_dict(payload)
            continue
        if kind == "phase":
            row = profile.phase(record.get("phase", "other"))
            row["rounds"] += record.get("rounds", 0)
            row["messages"] += record.get("messages", 0)
            row["bits"] += record.get("bits", 0)
            row["wall_s"] += record.get("duration_s", 0.0)
        elif kind == "player":
            row = profile.phase(record.get("phase", "other"))
            for key in OP_KEYS:
                row[key] += record.get(key, 0)
    return profile


def profile_from_bench_phases(phases: List[Dict[str, Any]],
                              manifest: Optional[RunManifest] = None,
                              source: str = "bench") -> RunProfile:
    """Reduce a bench row's ``phases`` / history-row profile list.

    Accepts the per-phase dict list ``coin_gen_conformance`` emits
    (rounds / messages / bits / wall_s, plus op counts when present).
    """
    profile = RunProfile(manifest=manifest, source=source)
    for entry in phases:
        row = profile.phase(entry.get("phase", "other"))
        for metric in METRICS:
            row[metric] += entry.get(metric, 0)
    return profile


@dataclass(frozen=True)
class DiffRow:
    """One (phase, metric) delta between two profiles."""

    phase: str
    metric: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def ratio(self) -> Optional[float]:
        if self.before == 0:
            return None
        return self.after / self.before

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase, "metric": self.metric,
            "before": self.before, "after": self.after,
            "delta": self.delta, "ratio": self.ratio,
        }


@dataclass(frozen=True)
class Attribution:
    """One (phase, op) priced delta and its share of the total."""

    phase: str
    op: str
    delta: float
    seconds: float
    share: float  #: fraction of the total priced delta magnitude

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase, "op": self.op, "delta": self.delta,
            "seconds": self.seconds, "share": self.share,
        }

    def describe(self) -> str:
        sign = "+" if self.delta >= 0 else ""
        return (f"{self.phase}-phase {self.op} {sign}{self.delta:g} "
                f"({self.seconds:+.6f}s priced, {self.share:.0%} of "
                "the delta)")


@dataclass
class ProfileDiff:
    """The per-phase × per-metric delta between two :class:`RunProfile`."""

    before: RunProfile
    after: RunProfile
    rows: List[DiffRow] = dataclass_field(default_factory=list)
    #: False when exactly one side recorded op counts (a legacy artifact)
    #: — op rows are then withheld rather than reported as huge fake deltas
    ops_comparable: bool = True

    @property
    def manifest_changes(self) -> Dict[str, tuple]:
        if self.before.manifest is None or self.after.manifest is None:
            return {}
        return self.before.manifest.differences(self.after.manifest)

    def is_empty(self) -> bool:
        """True when every *deterministic* metric is unchanged.

        Wall-clock rows are excluded on purpose: two identically seeded
        runs always differ in jitter, never in counts.
        """
        return all(
            row.delta == 0 for row in self.rows
            if row.metric in COUNT_METRICS
        )

    def count_rows(self) -> List[DiffRow]:
        """The deterministic rows with a nonzero delta, largest first."""
        rows = [r for r in self.rows
                if r.metric in COUNT_METRICS and r.delta != 0]
        rows.sort(key=lambda r: (-abs(r.delta), r.phase, r.metric))
        return rows

    def attribution(self,
                    model: Optional[CostModel] = None) -> List[Attribution]:
        """Price the op-count deltas and rank by share of the total.

        ``model`` supplies per-op seconds (default
        :data:`DEFAULT_PRICING`); shares are computed over the summed
        *magnitudes* so offsetting deltas both show up.
        """
        model = model if model is not None else DEFAULT_PRICING
        weights = {"adds": model.add, "muls": model.mul, "invs": model.inv,
                   "interpolations": model.interpolation}
        priced = [
            (row, row.delta * weights[row.metric])
            for row in self.rows
            if row.metric in OP_KEYS and row.delta != 0
        ]
        total = sum(abs(seconds) for _row, seconds in priced)
        out = [
            Attribution(
                phase=row.phase, op=row.metric, delta=row.delta,
                seconds=seconds,
                share=(abs(seconds) / total) if total > 0 else 0.0,
            )
            for row, seconds in priced
        ]
        out.sort(key=lambda a: (-a.share, a.phase, a.op))
        return out

    def to_dict(self, model: Optional[CostModel] = None) -> Dict[str, Any]:
        return {
            "empty": self.is_empty(),
            "manifest_changes": {
                field: {"before": before, "after": after}
                for field, (before, after) in self.manifest_changes.items()
            },
            "rows": [row.to_dict() for row in self.rows
                     if row.delta != 0],
            "attribution": [a.to_dict() for a in self.attribution(model)],
        }

    def report(self, model: Optional[CostModel] = None,
               label_a: str = "before", label_b: str = "after") -> str:
        """The full human-readable attribution report."""
        lines: List[str] = []
        if self.before.manifest is not None:
            lines.append(f"{label_a}: {self.before.manifest.summary()}")
        if self.after.manifest is not None:
            lines.append(f"{label_b}: {self.after.manifest.summary()}")
        changes = self.manifest_changes
        if changes:
            changed = ", ".join(
                f"{field} {before!r} -> {after!r}"
                for field, (before, after) in sorted(changes.items())
            )
            lines.append(f"configuration change (not a regression): "
                         f"{changed}")
        if not self.ops_comparable:
            lines.append("note: op counts recorded on one side only "
                         "(legacy artifact) — comparing structural "
                         "metrics, not field ops")
        if self.is_empty():
            lines.append("no deterministic deltas: the runs are "
                         "behaviourally identical")
            wall = [r for r in self.rows
                    if r.metric == "wall_s" and r.delta != 0]
            if wall:
                total = sum(r.delta for r in wall)
                lines.append(f"(wall-clock jitter only: {total:+.6f}s "
                             "across phases)")
            return "\n".join(lines)
        header = (f"{'phase':<12} {'metric':<16} {'before':>12} "
                  f"{'after':>12} {'delta':>12} {'ratio':>8}")
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.count_rows():
            ratio = f"{row.ratio:.2f}x" if row.ratio is not None else "new"
            lines.append(
                f"{row.phase:<12} {row.metric:<16} {row.before:>12g} "
                f"{row.after:>12g} {row.delta:>+12g} {ratio:>8}"
            )
        attribution = self.attribution(model)
        if attribution:
            lines.append("")
            lines.append("priced attribution (largest share first):")
            for entry in attribution:
                lines.append(f"  {entry.describe()}")
        return "\n".join(lines)


def _has_ops(profile: RunProfile) -> bool:
    return any(
        metrics.get(key, 0) for metrics in profile.phases.values()
        for key in OP_KEYS
    )


def diff_profiles(before: RunProfile, after: RunProfile) -> ProfileDiff:
    """Per-(phase, metric) delta table between two profiles.

    When exactly one side carries op counts (a legacy artifact recorded
    before op-enriched profiles existed), op rows are withheld and
    :attr:`ProfileDiff.ops_comparable` is False — the alternative would
    report every op as a giant fake delta.
    """
    ops_comparable = _has_ops(before) == _has_ops(after)
    result = ProfileDiff(before=before, after=after,
                         ops_comparable=ops_comparable)
    metrics = METRICS if ops_comparable else tuple(
        m for m in METRICS if m not in OP_KEYS
    )
    phases = sorted(set(before.phases) | set(after.phases))
    for phase in phases:
        a = before.phases.get(phase, {})
        b = after.phases.get(phase, {})
        for metric in metrics:
            result.rows.append(DiffRow(
                phase=phase, metric=metric,
                before=a.get(metric, 0), after=b.get(metric, 0),
            ))
    return result


def diff_recordings(a, b) -> ProfileDiff:
    """Diff two recordings of any supported type.

    Each argument may be a :class:`RunProfile`, a
    :class:`~repro.obs.spans.SpanRecorder`, or a JSONL export string.
    """
    return diff_profiles(as_profile(a), as_profile(b))


def as_profile(source) -> RunProfile:
    """Coerce a recorder / JSONL text / phase list into a profile."""
    if isinstance(source, RunProfile):
        return source
    if isinstance(source, str):
        return profile_from_jsonl(source)
    if isinstance(source, list):
        return profile_from_bench_phases(source)
    if hasattr(source, "phase_spans"):
        return profile_from_recorder(source)
    raise TypeError(f"cannot profile {type(source).__name__}")
