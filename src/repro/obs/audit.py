"""Lemma-conformance auditor: live span tallies vs. paper predictions.

The exporters make a run *visible*; this module makes it *checkable*.
Given a :class:`~repro.obs.spans.SpanRecorder` holding a finished
execution, the auditor aggregates per-phase message and interpolation
tallies out of the recorded round/player spans and compares them against
the exact fault-free predictions in :mod:`repro.analysis.complexity`
(the per-phase renderings of Lemma 2/4/6, Corollary 1 and Theorem 2's
round accounting).

Two protocols are auditable exactly:

* ``coin_gen`` spans — per-phase unicast messages
  (:func:`~repro.analysis.complexity.coin_gen_phase_messages`) and
  per-player interpolations
  (:func:`~repro.analysis.complexity.coin_gen_phase_interpolations`),
  parameterized by the ``n``/``t``/``iterations`` attributes the runner
  stamps on the protocol span;
* ``expose`` spans — total messages ``|S| * n`` and one interpolation
  per exposed coin per player (Theorem 1), from the ``senders_total``
  and ``coins`` attributes.

On a fault-free run every check must match *exactly*; any deviation is
either injected faults (expected — the report says so, it does not
guess) or a cost regression in the implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import complexity, rounds as rounds_model
from repro.obs.phases import PHASES, messages_by_phase
from repro.obs.spans import Span, SpanRecorder


@dataclass(frozen=True)
class PhaseCheck:
    """One predicted-vs-measured comparison."""

    phase: str
    #: "messages" (per phase, whole network) or "interpolations"
    #: (per phase, busiest player)
    metric: str
    expected: int
    measured: int

    @property
    def deviation(self) -> int:
        return self.measured - self.expected

    @property
    def ok(self) -> bool:
        return self.measured == self.expected

    def to_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "metric": self.metric,
            "expected": self.expected,
            "measured": self.measured,
            "deviation": self.deviation,
            "ok": self.ok,
        }


@dataclass
class ConformanceReport:
    """All checks for one protocol span."""

    protocol: str
    params: Dict[str, Any]
    checks: List[PhaseCheck] = dataclass_field(default_factory=list)
    #: faults the recorder observed during this run (non-empty means
    #: deviations are expected, not a regression)
    faults: int = 0

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def max_abs_deviation(self) -> int:
        return max((abs(c.deviation) for c in self.checks), default=0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "params": dict(self.params),
            "ok": self.ok,
            "max_abs_deviation": self.max_abs_deviation,
            "faults_observed": self.faults,
            "checks": [c.to_dict() for c in self.checks],
        }

    def table(self) -> str:
        """Human-readable fixed-width table for the CLI."""
        header = (
            f"{'phase':<10} {'metric':<15} {'expected':>9} "
            f"{'measured':>9} {'dev':>5}  "
        )
        lines = [header.rstrip()]
        lines.append("-" * len(header.rstrip()))
        for c in self.checks:
            mark = "ok" if c.ok else "DEVIATION"
            lines.append(
                f"{c.phase:<10} {c.metric:<15} {c.expected:>9} "
                f"{c.measured:>9} {c.deviation:>+5}  {mark}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# tally extraction from recorded spans
# ---------------------------------------------------------------------------

def _round_children(recorder: SpanRecorder, protocol: Span) -> List[Span]:
    return sorted(
        (s for s in recorder.spans
         if s.parent_id == protocol.span_id and s.kind == "round"),
        key=lambda s: s.t0,
    )


def measured_phase_messages(
    recorder: SpanRecorder, protocol: Span
) -> Dict[str, int]:
    """Per-phase delivered-message tallies under one protocol span.

    Each tag is attributed to *its own* phase (not the round's dominant
    phase), so e.g. the dealing round's share messages and any
    stragglers classify independently.  Tag tallies are taken pre-fault
    (the honest send-side cost, matching NetworkMetrics accounting).
    """
    totals: Dict[str, int] = {}
    for round_span in _round_children(recorder, protocol):
        for phase, count in messages_by_phase(
            round_span.attrs.get("tags", {})
        ).items():
            totals[phase] = totals.get(phase, 0) + count
    return totals


def measured_phase_interpolations(
    recorder: SpanRecorder, protocol: Span
) -> Dict[str, int]:
    """Per-phase interpolation count of the *busiest* player.

    Player-step spans carry the OpCounter delta of one generator step
    and inherit their round's phase label; summing per (phase, player)
    and taking the per-phase maximum yields the paper's "per player"
    figure.  Fault-free, all honest players tie.
    """
    per_player: Dict[Tuple[str, int], int] = {}
    for round_span in _round_children(recorder, protocol):
        for step in recorder.children(round_span):
            if step.kind != "player":
                continue
            key = (step.attrs.get("phase", "other"), step.attrs.get("player"))
            per_player[key] = per_player.get(key, 0) + step.attrs.get(
                "interpolations", 0
            )
    totals: Dict[str, int] = {}
    for (phase, _player), interps in per_player.items():
        totals[phase] = max(totals.get(phase, 0), interps)
    return totals


def _fault_count(recorder: SpanRecorder, protocol: Span) -> int:
    rounds = _round_children(recorder, protocol)
    if not rounds:
        return 0
    lo = min(r.attrs.get("round", 0) for r in rounds)
    hi = max(r.attrs.get("round", 0) for r in rounds)
    return sum(1 for f in recorder.faults if lo <= f.get("round", -1) <= hi)


# ---------------------------------------------------------------------------
# auditors
# ---------------------------------------------------------------------------

def audit_coin_gen(
    recorder: SpanRecorder, protocol: Optional[Span] = None
) -> ConformanceReport:
    """Audit one Coin-Gen protocol span against Theorem 2's accounting.

    ``protocol`` defaults to the first recorded span named ``coin_gen``.
    The span must carry ``n``, ``t``, and ``iterations`` attributes
    (stamped by :func:`repro.protocols.coin_gen.run_coin_gen`).
    """
    if protocol is None:
        candidates = [
            s for s in recorder.by_kind("protocol") if s.name == "coin_gen"
        ]
        if not candidates:
            raise ValueError("no coin_gen protocol span recorded")
        protocol = candidates[0]
    n = protocol.attrs["n"]
    t = protocol.attrs["t"]
    iterations = protocol.attrs.get("iterations", 1)

    expected_msgs = complexity.coin_gen_phase_messages(n, t, iterations)
    expected_interp = complexity.coin_gen_phase_interpolations(n, iterations)
    measured_msgs = measured_phase_messages(recorder, protocol)
    measured_interp = measured_phase_interpolations(recorder, protocol)

    report = ConformanceReport(
        protocol="coin_gen",
        params={"n": n, "t": t, "iterations": iterations},
        faults=_fault_count(recorder, protocol),
    )
    phases = [p for p in PHASES if p in expected_msgs or p in measured_msgs
              or p in measured_interp]
    for phase in phases:
        report.checks.append(PhaseCheck(
            phase, "messages",
            expected_msgs.get(phase, 0), measured_msgs.get(phase, 0),
        ))
        report.checks.append(PhaseCheck(
            phase, "interpolations",
            expected_interp.get(phase, 0), measured_interp.get(phase, 0),
        ))
    return report


def audit_expose(
    recorder: SpanRecorder, protocol: Span
) -> ConformanceReport:
    """Audit one Coin-Expose span: ``|S| * n`` messages, one decode per
    coin per player (Theorem 1)."""
    n = protocol.attrs["n"]
    coins = protocol.attrs.get("coins", 1)
    senders_total = protocol.attrs.get("senders_total", n * coins)

    measured_msgs = measured_phase_messages(recorder, protocol)
    measured_interp = measured_phase_interpolations(recorder, protocol)

    report = ConformanceReport(
        protocol="expose",
        params={"n": n, "coins": coins, "senders_total": senders_total},
        faults=_fault_count(recorder, protocol),
    )
    report.checks.append(PhaseCheck(
        "expose", "messages",
        complexity.expose_messages(senders_total, n),
        sum(measured_msgs.values()),
    ))
    report.checks.append(PhaseCheck(
        "expose", "interpolations",
        complexity.expose_interpolations(coins),
        sum(measured_interp.values()),
    ))
    return report


@dataclass(frozen=True)
class RoundsCheck:
    """Observed vs. predicted round count for one protocol span.

    ``measured`` counts *message-carrying* rounds (round spans with a
    non-zero ``messages`` tally) — the runtime's trailing drain round is
    empty and excluded, so fault-free the comparison is exact.  A crash
    or silence fault that empties a round shows up as a negative delta;
    the ``faults`` count says whether a deviation is expected.
    """

    protocol: str
    expected: int
    measured: int
    faults: int = 0

    @property
    def deviation(self) -> int:
        return self.measured - self.expected

    @property
    def ok(self) -> bool:
        return self.measured == self.expected

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "metric": "rounds",
            "expected": self.expected,
            "measured": self.measured,
            "deviation": self.deviation,
            "faults_observed": self.faults,
            "ok": self.ok,
        }


def audit_rounds(recorder: SpanRecorder) -> List[RoundsCheck]:
    """Observed round counts vs. the :mod:`repro.analysis.rounds` model.

    One check per protocol span whose name
    :func:`~repro.analysis.rounds.predicted_rounds` knows; spans of
    unknown protocols are skipped.  The ``t``/``iterations`` parameters
    come off the span's attributes (``t`` defaults to 0, matching
    ``expose`` spans that do not stamp it).
    """
    checks: List[RoundsCheck] = []
    for protocol in recorder.by_kind("protocol"):
        expected = rounds_model.predicted_rounds(
            protocol.name,
            t=protocol.attrs.get("t", 0),
            iterations=protocol.attrs.get("iterations", 1),
        )
        if expected is None:
            continue
        measured = sum(
            1 for round_span in _round_children(recorder, protocol)
            if round_span.attrs.get("messages", 0) > 0
        )
        checks.append(RoundsCheck(
            protocol=protocol.name, expected=expected, measured=measured,
            faults=_fault_count(recorder, protocol),
        ))
    return checks


_AUDITORS = {
    "coin_gen": audit_coin_gen,
    "expose": audit_expose,
}


def audit_recorder(recorder: SpanRecorder) -> List[ConformanceReport]:
    """Audit every auditable protocol span in the recorder, in order."""
    reports: List[ConformanceReport] = []
    for protocol in recorder.by_kind("protocol"):
        auditor = _AUDITORS.get(protocol.name)
        if auditor is not None:
            reports.append(auditor(recorder, protocol))
    return reports


def audit_liveness(latency, watchdog=None) -> ConformanceReport:
    """Liveness conformance over a :class:`~repro.obs.liveness.QuorumLatencyRecorder`.

    Fault-free random-order runs must be stall-free and *quorum-exact*:

    * ``unfired_guards`` — every armed guard eventually fired (0
      expected; a positive count means a run ended with parked guards);
    * ``quorum_overshoot_fires`` — every fired guard had exactly its
      quorum of distinct matching senders at fire time (0 expected).
      This is an async-runtime invariant: guards are re-checked after
      every single delivery, so the firing delivery is precisely the
      quorum-completing one.  Lockstep recordings legitimately overshoot
      (a round delivers many matching payloads at once) — audit async
      recordings only.  Quorum-0 guards fire without senders and are
      excluded;
    * ``stalls`` — when a :class:`~repro.obs.liveness.StallWatchdog`
      is passed, zero guards waited past its threshold.

    Returns a :class:`ConformanceReport` (protocol ``"liveness"``) so
    the CLI renders and gates it exactly like the lemma audits.
    """
    records = latency.waits()
    fired = [r for r in records if r.fired]
    overshoot = sum(
        1 for r in fired
        if r.quorum is not None and r.quorum > 0
        and len(r.senders) != r.quorum
    )
    checks = [
        PhaseCheck("liveness", "unfired_guards", 0,
                   len(records) - len(fired)),
        PhaseCheck("liveness", "quorum_overshoot_fires", 0, overshoot),
    ]
    params: Dict[str, Any] = {
        "waits": len(records), "runs": latency.run_count,
    }
    if watchdog is not None:
        checks.append(PhaseCheck("liveness", "stalls", 0,
                                 len(watchdog.stalls)))
        params["threshold"] = watchdog.threshold
    return ConformanceReport(protocol="liveness", params=params,
                             checks=checks)
