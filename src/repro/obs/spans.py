"""Span recording: nested wall-clock + op-count measurements.

A span is one timed region of a protocol execution.  The hierarchy the
runtime produces is::

    protocol (coin_gen / batch_vss / bit_gen / expose / ...)
      phase (deal / clique / gradecast / ba / expose)   [synthesized]
        round 1, round 2, ...
          player 1 step, player 2 step, ...

Round and player spans are emitted live by
:class:`~repro.net.runtime.ProtocolRuntime`; protocol spans by the
runners; *phase* spans are synthesized by :meth:`SpanRecorder.phase_spans`
from consecutive rounds sharing a phase label (see
:mod:`repro.obs.phases`).

Zero cost when disabled
-----------------------
The default recorder everywhere is :data:`NULL_RECORDER`, whose methods
are no-ops and whose ``enabled`` flag is False — the runtime guards all
snapshotting behind that flag, so tier-1 timings and Lemma op counts are
unchanged unless a :class:`SpanRecorder` is explicitly attached
(``ProtocolContext(recorder=...)`` or CLI ``--export``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional


@dataclass
class Span:
    """One timed region; times are ``time.perf_counter()`` seconds."""

    span_id: int
    parent_id: Optional[int]
    name: str
    #: "protocol" | "phase" | "round" | "player" | "root"
    kind: str
    t0: float
    t1: float = 0.0
    attrs: Dict[str, Any] = dataclass_field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(0.0, self.t1 - self.t0)

    def set(self, **attrs: Any) -> None:
        """Attach attributes (op deltas, message tallies, parameters)."""
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
            "duration_s": self.duration,
            **{k: v for k, v in self.attrs.items()},
        }


class _NullSpan:
    """The do-nothing span handle returned by :class:`NullRecorder`."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """No-op recorder: every hook returns immediately.

    ``enabled`` is False so hot paths can skip even argument
    construction (``if recorder.enabled: ...``).
    """

    enabled = False

    def begin(self, name: str, kind: str, **attrs: Any):
        return _NULL_SPAN

    def end(self, span, **attrs: Any) -> None:
        pass

    def record(self, name: str, kind: str, t0: float, t1: float,
               **attrs: Any) -> None:
        pass

    def discard(self, span) -> None:
        pass

    def span(self, name: str, kind: str, **attrs: Any):
        """Context manager measuring a region (no-op here)."""
        return _NULL_SPAN

    def on_fault(self, round_number: int, kind: str, src: int, dst: int) -> None:
        pass


#: the process-wide default: observability off
NULL_RECORDER = NullRecorder()


class _LiveSpan:
    """Context-manager handle over an open :class:`Span`."""

    __slots__ = ("_recorder", "span")

    def __init__(self, recorder: "SpanRecorder", span: Span):
        self._recorder = recorder
        self.span = span

    def set(self, **attrs: Any) -> None:
        self.span.set(**attrs)

    def __enter__(self) -> "_LiveSpan":
        return self

    def __exit__(self, *exc) -> None:
        self._recorder.end(self)


class SpanRecorder(NullRecorder):
    """Collects spans from one or more protocol executions.

    A single recorder may span many runs (a whole ``repro toss``
    session); parentage is tracked with an open-span stack, which is
    correct because the simulator is single-threaded and protocol runs
    never interleave.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.spans: List[Span] = []
        self.faults: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # -- core span lifecycle -------------------------------------------------
    def begin(self, name: str, kind: str, **attrs: Any) -> _LiveSpan:
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name, kind, self.clock(),
                    attrs=dict(attrs))
        self._next_id += 1
        self._stack.append(span)
        return _LiveSpan(self, span)

    def end(self, handle: _LiveSpan, **attrs: Any) -> None:
        span = handle.span
        if attrs:
            span.set(**attrs)
        span.t1 = self.clock()
        # tolerate out-of-order ends from crashed runs: pop through
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.t1 = span.t1
            self.spans.append(top)
        self.spans.append(span)

    def record(self, name: str, kind: str, t0: float, t1: float,
               **attrs: Any) -> Span:
        """Append an already-measured span (used for per-player steps)."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name, kind, t0, t1, dict(attrs))
        self._next_id += 1
        self.spans.append(span)
        return span

    def discard(self, handle: _LiveSpan) -> None:
        """Abandon an open span without recording it.

        Lets a caller keep a span pre-opened across loop iterations (so
        no wall time falls between spans) and throw away the final,
        never-used one.  Only the innermost open span can be discarded.
        """
        if self._stack and self._stack[-1] is handle.span:
            self._stack.pop()

    def span(self, name: str, kind: str, **attrs: Any) -> _LiveSpan:
        """``with recorder.span("coin_gen", "protocol", n=7): ...``"""
        return self.begin(name, kind, **attrs)

    # -- event-bus hooks -----------------------------------------------------
    def on_fault(self, round_number: int, kind: str, src: int, dst: int) -> None:
        """Subscriber for the runtime bus's ``"fault"`` topic."""
        self.faults.append(
            {"round": round_number, "kind": kind, "src": src, "dst": dst}
        )

    # -- derived views -------------------------------------------------------
    def by_kind(self, kind: str) -> List[Span]:
        return [s for s in self.spans if s.kind == kind]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def phase_spans(self) -> List[Span]:
        """Synthesize phase spans from consecutive same-phase rounds.

        Each protocol span's rounds (ordered by start time) are grouped
        into runs of equal ``phase`` attribute; each run becomes one
        synthetic span parented to the protocol span.  Ids are negative
        so they can never collide with recorded spans.
        """
        phases: List[Span] = []
        next_id = -1
        for protocol in self.by_kind("protocol"):
            rounds = sorted(
                (s for s in self.spans
                 if s.parent_id == protocol.span_id and s.kind == "round"),
                key=lambda s: s.t0,
            )
            group: List[Span] = []
            for r in rounds + [None]:  # sentinel flushes the last group
                phase = r.attrs.get("phase") if r is not None else None
                if group and (r is None or phase != group[0].attrs.get("phase")):
                    merged = Span(
                        next_id,
                        protocol.span_id,
                        f"phase:{group[0].attrs.get('phase', 'other')}",
                        "phase",
                        group[0].t0,
                        group[-1].t1,
                        {
                            "phase": group[0].attrs.get("phase", "other"),
                            "rounds": len(group),
                            "messages": sum(
                                g.attrs.get("messages", 0) for g in group
                            ),
                            "bits": sum(g.attrs.get("bits", 0) for g in group),
                        },
                    )
                    next_id -= 1
                    phases.append(merged)
                    group = []
                if r is not None:
                    group.append(r)
        return phases

    def all_spans(self) -> List[Span]:
        """Recorded spans plus synthesized phase spans, start-ordered."""
        return sorted(self.spans + self.phase_spans(), key=lambda s: s.t0)

    def coverage(self) -> float:
        """Fraction of root/protocol wall time covered by child spans.

        For every ``root`` and ``protocol`` span that has children, sums
        the children's durations and divides by the parent's duration;
        returns the duration-weighted aggregate.  This is the "did we
        instrument everything" signal: time inside a root span but
        outside any protocol span (or inside a protocol span but outside
        any round) is un-attributed work.  Round -> player is excluded
        deliberately — a round's duration legitimately includes
        transport/scheduler bookkeeping that belongs to no player's
        compute.  Used by the acceptance test ("spans cover >= 95% of
        measured wall time").
        """
        covered = 0.0
        total = 0.0
        for parent in self.spans:
            if parent.kind not in ("root", "protocol"):
                continue
            kids = self.children(parent)
            if not kids or parent.duration <= 0:
                continue
            total += parent.duration
            covered += min(parent.duration, sum(k.duration for k in kids))
        return covered / total if total > 0 else 1.0
