"""Span exporters: JSONL, Chrome trace-event JSON, Prometheus text.

* :func:`to_jsonl` — one span object per line; the lossless archival
  format (every attribute is kept).
* :func:`to_chrome_trace` — the Trace Event Format understood by
  Perfetto / ``chrome://tracing``.  Lanes: protocol runs, synthesized
  phases, rounds, and one lane per player, so the Fig. 5 pipeline reads
  as a flame chart.  Pass a :class:`~repro.obs.causality.CausalGraph`
  to overlay causal ``flow`` arrows (sender step -> receiver step) for
  the critical path (default) or every message edge.
* :func:`to_prometheus` — a text exposition of counters (rounds,
  messages, bits, per-player ops) and span-duration histograms, suitable
  for scraping or for diffing in CI.  Every metric family carries
  ``# HELP`` and ``# TYPE`` lines and label values are escaped per the
  text-format rules (regression-tested by a strict parser in
  ``tests/test_prometheus_format.py``).  Pass ``liveness=`` /
  ``watchdog=`` (see :mod:`repro.obs.liveness`) to append guard-wait
  latency histograms (in logical ticks), pivotal-sender counters, pool
  gauges and stall counters.
* :func:`waits_to_chrome` / :func:`waits_to_jsonl` — guard-wait spans
  on a *logical-time* axis (one lane per player, 1 tick = 1 ms, stalls
  as instant events, pool depth as a counter track) and the line-delimited
  archival form of the same records.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.net.metrics import NetworkMetrics
from repro.obs.spans import Span, SpanRecorder

#: Chrome trace lane ids (tid) per span kind; players get PLAYER_TID + pid
PROTOCOL_TID = 0
PHASE_TID = 1
ROUND_TID = 2
PLAYER_TID = 10


def to_jsonl(recorder: SpanRecorder, manifest=None) -> str:
    """All spans (incl. synthesized phases) as newline-delimited JSON.

    ``manifest`` (a :class:`~repro.obs.manifest.RunManifest`) prepends a
    ``{"kind": "manifest", ...}`` provenance line, which the diffing
    loader (:func:`~repro.obs.diffing.profile_from_jsonl`) reads back.
    """
    lines = []
    if manifest is not None:
        lines.append(json.dumps({"kind": "manifest",
                                 **manifest.to_dict()}))
    lines.extend(json.dumps(span.to_dict(), default=str)
                 for span in recorder.all_spans())
    for fault in recorder.faults:
        lines.append(json.dumps({"kind": "fault", **fault}))
    return "\n".join(lines) + "\n"


def _trace_event(span: Span, origin: float) -> Dict:
    if span.kind == "protocol" or span.kind == "root":
        tid = PROTOCOL_TID
    elif span.kind == "phase":
        tid = PHASE_TID
    elif span.kind == "round":
        tid = ROUND_TID
    elif span.kind == "player":
        tid = PLAYER_TID + int(span.attrs.get("player", 0))
    else:
        tid = PROTOCOL_TID
    args = {
        key: value
        for key, value in span.attrs.items()
        if isinstance(value, (int, float, str, bool))
    }
    return {
        "name": span.name,
        "cat": span.kind,
        "ph": "X",  # complete event: begin + duration in one record
        "ts": (span.t0 - origin) * 1e6,
        "dur": span.duration * 1e6,
        "pid": 1,
        "tid": tid,
        "args": args,
    }


def _step_span_index(recorder: SpanRecorder) -> Dict:
    """``(run, local_round, player) -> player span``, protocol spans in
    start order numbered as runs 1..K (one ``network.run`` per span)."""
    index: Dict = {}
    protocols = sorted(recorder.by_kind("protocol"), key=lambda s: s.t0)
    for run_no, protocol in enumerate(protocols, start=1):
        for round_span in recorder.children(protocol):
            if round_span.kind != "round":
                continue
            for step in recorder.children(round_span):
                if step.kind != "player":
                    continue
                key = (run_no, step.attrs.get("round"),
                       step.attrs.get("player"))
                index.setdefault(key, step)
    return index


def _flow_edges(graph, flows: str, model) -> List:
    """The message edges to draw as arrows for the requested mode."""
    if flows == "all":
        return list(graph.edges)
    if flows != "critical":
        return []
    from repro.obs.critical_path import critical_path

    result = critical_path(graph, model)
    return [step.via for run in result.runs for step in run.path
            if step.via is not None]


def _flow_events(recorder: SpanRecorder, graph, flows: str, model,
                 origin: float) -> List[Dict]:
    """Paired ``s``/``f`` flow events anchored inside player-step spans.

    Graph rounds follow the cumulative metrics numbering while recorder
    round spans restart per run, so each run's edges are shifted by its
    first message round (see :mod:`repro.obs.critical_path`).
    """
    steps = _step_span_index(recorder)
    offsets = {
        run: min(e.send_round for e in graph.edges_in_run(run)) - 1
        for run in graph.runs()
    }
    events: List[Dict] = []
    flow_id = 0
    for edge in _flow_edges(graph, flows, model):
        offset = offsets.get(edge.run, 0)
        send = steps.get((edge.run, edge.send_round - offset, edge.src))
        recv = steps.get((edge.run, edge.recv_round - offset, edge.dst))
        if send is None or recv is None:
            continue
        flow_id += 1
        common = {"name": edge.tag, "cat": "flow", "id": flow_id, "pid": 1}
        events.append({
            **common, "ph": "s",
            "ts": (send.t1 - origin) * 1e6,
            "tid": PLAYER_TID + edge.src,
            "args": {"phase": edge.phase, "elements": edge.elements,
                     "channel": edge.channel, "delayed": edge.delayed},
        })
        events.append({
            **common, "ph": "f", "bp": "e",
            "ts": (recv.t0 - origin) * 1e6,
            "tid": PLAYER_TID + edge.dst,
        })
    return events


def to_chrome_trace(recorder: SpanRecorder, graph=None,
                    flows: str = "critical", model=None,
                    manifest=None) -> str:
    """Trace Event Format JSON (open with Perfetto or chrome://tracing).

    ``graph`` (a :class:`~repro.obs.causality.CausalGraph`) overlays
    causal arrows between player-step slices: ``flows="critical"`` draws
    only the edges on each run's critical path under ``model`` (default
    :class:`~repro.obs.critical_path.CostModel`), ``flows="all"`` draws
    every message edge, ``flows="none"`` suppresses arrows.
    ``manifest`` lands in the trace's top-level ``metadata`` object
    (Perfetto shows it in the trace-info view).
    """
    spans = recorder.all_spans()
    origin = min((s.t0 for s in spans), default=0.0)
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "repro"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": PROTOCOL_TID,
         "args": {"name": "protocols"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": PHASE_TID,
         "args": {"name": "phases"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": ROUND_TID,
         "args": {"name": "rounds"}},
    ]
    players = sorted({
        int(s.attrs["player"]) for s in spans
        if s.kind == "player" and "player" in s.attrs
    })
    for pid in players:
        events.append({"name": "thread_name", "ph": "M", "pid": 1,
                       "tid": PLAYER_TID + pid,
                       "args": {"name": f"player {pid}"}})
    events.extend(_trace_event(span, origin) for span in spans)
    if graph is not None:
        events.extend(_flow_events(recorder, graph, flows, model, origin))
    for fault in recorder.faults:
        events.append({
            "name": f"fault:{fault['kind']}",
            "cat": "fault",
            "ph": "i",  # instant event
            "ts": 0,
            "pid": 1,
            "tid": ROUND_TID,
            "s": "t",
            "args": fault,
        })
    payload: Dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if manifest is not None:
        payload["metadata"] = manifest.to_dict()
    return json.dumps(payload, indent=1)


#: wall-clock span-duration buckets (seconds)
_HISTOGRAM_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)
#: logical-time buckets (ticks) for guard-wait latency histograms
_LOGICAL_BUCKETS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


def _escape_label(value) -> str:
    """Escape a label value per the Prometheus text-format rules."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _family(lines: List[str], name: str, kind: str, help_text: str) -> None:
    """Open a metric family: its ``# HELP`` and ``# TYPE`` lines."""
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")


def _histogram(lines: List[str], metric: str, labels: str,
               values, buckets=_HISTOGRAM_BUCKETS) -> None:
    values = list(values)

    def series(suffix: str, extra: str, value) -> None:
        body = ",".join(part for part in (labels, extra) if part)
        braces = f"{{{body}}}" if body else ""
        lines.append(f"{metric}{suffix}{braces} {value}")

    for bound in buckets:
        cumulative = sum(1 for d in values if d <= bound)
        series("_bucket", f'le="{bound:g}"', cumulative)
    series("_bucket", 'le="+Inf"', len(values))
    series("_sum", "", f"{sum(values):.9f}")
    series("_count", "", len(values))


def to_prometheus(
    metrics: Optional[NetworkMetrics] = None,
    recorder: Optional[SpanRecorder] = None,
    prefix: str = "repro",
    health=None,
    liveness=None,
    watchdog=None,
) -> str:
    """Prometheus text exposition of counters and span histograms.

    ``health`` optionally appends a
    :class:`~repro.obs.health.HealthMonitor`'s pipeline gauges and
    counters; ``liveness`` (a
    :class:`~repro.obs.liveness.QuorumLatencyRecorder`) appends
    guard-wait counters, a logical-tick latency histogram,
    pivotal-sender attribution and pool gauges; ``watchdog`` (a
    :class:`~repro.obs.liveness.StallWatchdog`) appends classified
    stall counters.
    """
    lines: List[str] = []
    if metrics is not None:
        _family(lines, f"{prefix}_rounds_total", "counter",
                "Settled rounds (lockstep) or logical ticks (async).")
        lines.append(f"{prefix}_rounds_total {metrics.rounds}")
        _family(lines, f"{prefix}_messages_total", "counter",
                "Messages sent, by channel.")
        lines.append(
            f'{prefix}_messages_total{{channel="unicast"}} '
            f"{metrics.unicast_messages}"
        )
        lines.append(
            f'{prefix}_messages_total{{channel="broadcast"}} '
            f"{metrics.broadcast_messages}"
        )
        _family(lines, f"{prefix}_bits_total", "counter",
                "Payload bits sent over the transport.")
        lines.append(f"{prefix}_bits_total {metrics.bits}")
        _family(lines, f"{prefix}_player_ops_total", "counter",
                "Field operations per player, by op kind.")
        for pid in sorted(metrics.player_ops):
            ops = metrics.player_ops[pid]
            for op in ("adds", "muls", "invs", "interpolations"):
                lines.append(
                    f'{prefix}_player_ops_total{{player="{pid}",op="{op}"}} '
                    f"{getattr(ops, op)}"
                )
    if recorder is not None:
        _family(lines, f"{prefix}_span_duration_seconds", "histogram",
                "Recorded span durations, by span kind.")
        spans = recorder.all_spans()
        for kind in ("protocol", "phase", "round", "player"):
            durations = [s.duration for s in spans if s.kind == kind]
            if durations:
                _histogram(lines, f"{prefix}_span_duration_seconds",
                           f'kind="{kind}"', durations)
        phase_wall: Dict[str, float] = {}
        phase_msgs: Dict[str, int] = {}
        for span in spans:
            if span.kind == "phase":
                phase = span.attrs.get("phase", "other")
                phase_wall[phase] = phase_wall.get(phase, 0.0) + span.duration
                phase_msgs[phase] = (
                    phase_msgs.get(phase, 0) + span.attrs.get("messages", 0)
                )
        _family(lines, f"{prefix}_phase_wall_seconds", "counter",
                "Wall time attributed to each protocol phase.")
        for phase in sorted(phase_wall):
            lines.append(
                f'{prefix}_phase_wall_seconds{{phase="{_escape_label(phase)}"}} '
                f"{phase_wall[phase]:.9f}"
            )
        _family(lines, f"{prefix}_phase_messages_total", "counter",
                "Messages attributed to each protocol phase.")
        for phase in sorted(phase_msgs):
            lines.append(
                f'{prefix}_phase_messages_total{{phase="{_escape_label(phase)}"}} '
                f"{phase_msgs[phase]}"
            )
        if recorder.faults:
            _family(lines, f"{prefix}_faults_total", "counter",
                    "Fault-plane events observed, by kind.")
            by_kind: Dict[str, int] = {}
            for fault in recorder.faults:
                by_kind[fault["kind"]] = by_kind.get(fault["kind"], 0) + 1
            for kind in sorted(by_kind):
                lines.append(
                    f'{prefix}_faults_total{{kind="{_escape_label(kind)}"}} '
                    f"{by_kind[kind]}"
                )
    if liveness is not None:
        fired = liveness.fired_records()
        pending = liveness.pending_records()
        _family(lines, f"{prefix}_guard_waits_total", "counter",
                "Armed guards observed, by outcome.")
        lines.append(
            f'{prefix}_guard_waits_total{{state="fired"}} {len(fired)}'
        )
        lines.append(
            f'{prefix}_guard_waits_total{{state="pending"}} {len(pending)}'
        )
        _family(lines, f"{prefix}_guard_wait_ticks", "histogram",
                "Armed-to-fired guard wait in logical ticks.")
        _histogram(lines, f"{prefix}_guard_wait_ticks", "",
                   liveness.latencies(), buckets=_LOGICAL_BUCKETS)
        counts = liveness.pivotal_counts()
        if counts:
            _family(lines, f"{prefix}_guard_pivotal_total", "counter",
                    "Waits completed per pivotal (quorum-completing) sender.")
            for player in sorted(counts):
                lines.append(
                    f'{prefix}_guard_pivotal_total{{player="{player}"}} '
                    f"{counts[player]}"
                )
        _family(lines, f"{prefix}_pool_depth_peak", "gauge",
                "Deepest in-flight message pool observed (async runtime).")
        lines.append(f"{prefix}_pool_depth_peak {liveness.pool_peak}")
        if liveness.backlog_peak:
            _family(lines, f"{prefix}_pool_backlog_peak", "gauge",
                    "Peak in-flight backlog per transport channel.")
            for channel in sorted(liveness.backlog_peak):
                lines.append(
                    f'{prefix}_pool_backlog_peak'
                    f'{{channel="{_escape_label(channel)}"}} '
                    f"{liveness.backlog_peak[channel]}"
                )
    if watchdog is not None:
        _family(lines, f"{prefix}_guard_stalls_total", "counter",
                "Guards that waited past the watchdog threshold, by class.")
        for cls in ("crash", "unexplained"):
            count = sum(
                1 for s in watchdog.stalls if s.classification == cls
            )
            lines.append(
                f'{prefix}_guard_stalls_total{{class="{cls}"}} {count}'
            )
        _family(lines, f"{prefix}_watchdog_threshold_ticks", "gauge",
                "Logical-time threshold the stall watchdog applies.")
        lines.append(
            f"{prefix}_watchdog_threshold_ticks {watchdog.threshold}"
        )
    if health is not None:
        lines.extend(health.prometheus_lines(prefix))
    return "\n".join(lines) + "\n"


#: chrome-trace microseconds per logical tick in guard-wait traces
_TICK_US = 1000.0
#: synthetic pid for the logical-time process (wall-clock traces use 1)
_LIVENESS_PID = 2


def _liveness_run_spans(liveness, watchdog=None) -> Dict[int, int]:
    """``run -> last logical time observed`` across all liveness records."""
    spans: Dict[int, int] = {}

    def bump(run: int, time: Optional[int]) -> None:
        if time is not None and time > spans.get(run, 0):
            spans[run] = time

    for record in liveness.records:
        bump(record.run, record.armed_at)
        bump(record.run, record.fired_at)
        for time, _src in record.arrivals:
            bump(record.run, time)
    for run, time, _depth in liveness.pool_depths:
        bump(run, time)
    if watchdog is not None:
        for stall in watchdog.stalls:
            bump(stall.run, stall.detected_at)
            bump(stall.run, stall.resolved_at)
    return spans


def waits_to_chrome(liveness, watchdog=None) -> str:
    """Guard-wait spans on a logical-time axis (Trace Event Format).

    One lane per player; each fired wait is a complete slice from its
    armed tick to its fired tick (1 logical tick = 1 ms so Perfetto's
    ruler reads directly in ticks), unfired waits extend to the end of
    their run, stalls appear as instant events on the starving player's
    lane, and the async pool depth is a counter track.  Runs are laid
    out end-to-end with a small gap.
    """
    spans = _liveness_run_spans(liveness, watchdog)
    offsets: Dict[int, float] = {}
    acc = 0.0
    for run in sorted(spans):
        offsets[run] = acc
        acc += spans[run] + 10.0

    def ts(run: int, time: int) -> float:
        return (offsets.get(run, 0.0) + time) * _TICK_US

    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": _LIVENESS_PID,
         "args": {"name": "repro liveness (logical time)"}},
    ]
    players = sorted(
        {r.pid for r in liveness.records}
        | ({s.pid for s in watchdog.stalls} if watchdog is not None else set())
    )
    for pid in players:
        events.append({"name": "thread_name", "ph": "M",
                       "pid": _LIVENESS_PID, "tid": PLAYER_TID + pid,
                       "args": {"name": f"player {pid}"}})
    for record in liveness.records:
        if record.fired:
            dur = max(record.wait_time, 1)
            state = "fired"
        else:
            dur = max(spans.get(record.run, record.armed_at)
                      - record.armed_at, 1)
            state = "unfired"
        events.append({
            "name": "wait " + "/".join(record.tags),
            "cat": "wait",
            "ph": "X",
            "ts": ts(record.run, record.armed_at),
            "dur": dur * _TICK_US,
            "pid": _LIVENESS_PID,
            "tid": PLAYER_TID + record.pid,
            "args": {
                "run": record.run,
                "quorum": record.quorum,
                "senders": len(record.senders),
                "pivotal": record.pivotal,
                "state": state,
            },
        })
    if watchdog is not None:
        for stall in watchdog.stalls:
            events.append({
                "name": f"stall:{stall.classification}",
                "cat": "stall",
                "ph": "i",
                "ts": ts(stall.run, stall.detected_at),
                "pid": _LIVENESS_PID,
                "tid": PLAYER_TID + stall.pid,
                "s": "t",
                "args": stall.to_dict(),
            })
    for run, time, depth in liveness.pool_depths:
        events.append({
            "name": "pool_depth",
            "ph": "C",
            "ts": ts(run, time),
            "pid": _LIVENESS_PID,
            "args": {"depth": depth},
        })
    return json.dumps({"traceEvents": events,
                       "displayTimeUnit": "ms"}, indent=1)


def waits_to_jsonl(liveness, watchdog=None) -> str:
    """Guard-wait records (and stalls, pool gauges) as line-delimited JSON.

    One ``{"kind": "wait"}`` object per armed guard, one
    ``{"kind": "stall"}`` per watchdog flag, one ``{"kind": "pool"}``
    per published pool gauge, and a trailing ``{"kind": "summary"}``
    with the aggregate latency/pivotal/pool statistics.
    """
    lines = [
        json.dumps({"kind": "wait", **record.to_dict()})
        for record in liveness.records
    ]
    if watchdog is not None:
        lines.extend(
            json.dumps({"kind": "stall", **stall.to_dict()})
            for stall in watchdog.stalls
        )
    lines.extend(
        json.dumps({"kind": "pool", "run": run, "time": time,
                    "depth": depth})
        for run, time, depth in liveness.pool_depths
    )
    summary = {
        "kind": "summary",
        "runs": liveness.run_count,
        "waits": len(liveness.records),
        "fired": len(liveness.fired_records()),
        "mean_wait": liveness.mean_wait(),
        "max_wait": liveness.max_wait(),
        "pool_peak": liveness.pool_peak,
        "backlog_peak": dict(liveness.backlog_peak),
        "pivotal_counts": {
            str(player): count
            for player, count in sorted(liveness.pivotal_counts().items())
        },
    }
    if watchdog is not None:
        summary["stalls"] = len(watchdog.stalls)
        summary["threshold"] = watchdog.threshold
    lines.append(json.dumps(summary))
    return "\n".join(lines) + "\n"
