"""Span exporters: JSONL, Chrome trace-event JSON, Prometheus text.

* :func:`to_jsonl` — one span object per line; the lossless archival
  format (every attribute is kept).
* :func:`to_chrome_trace` — the Trace Event Format understood by
  Perfetto / ``chrome://tracing``.  Lanes: protocol runs, synthesized
  phases, rounds, and one lane per player, so the Fig. 5 pipeline reads
  as a flame chart.  Pass a :class:`~repro.obs.causality.CausalGraph`
  to overlay causal ``flow`` arrows (sender step -> receiver step) for
  the critical path (default) or every message edge.
* :func:`to_prometheus` — a text exposition of counters (rounds,
  messages, bits, per-player ops) and span-duration histograms, suitable
  for scraping or for diffing in CI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.net.metrics import NetworkMetrics
from repro.obs.spans import Span, SpanRecorder

#: Chrome trace lane ids (tid) per span kind; players get PLAYER_TID + pid
PROTOCOL_TID = 0
PHASE_TID = 1
ROUND_TID = 2
PLAYER_TID = 10


def to_jsonl(recorder: SpanRecorder) -> str:
    """All spans (incl. synthesized phases) as newline-delimited JSON."""
    lines = [json.dumps(span.to_dict(), default=str)
             for span in recorder.all_spans()]
    for fault in recorder.faults:
        lines.append(json.dumps({"kind": "fault", **fault}))
    return "\n".join(lines) + "\n"


def _trace_event(span: Span, origin: float) -> Dict:
    if span.kind == "protocol" or span.kind == "root":
        tid = PROTOCOL_TID
    elif span.kind == "phase":
        tid = PHASE_TID
    elif span.kind == "round":
        tid = ROUND_TID
    elif span.kind == "player":
        tid = PLAYER_TID + int(span.attrs.get("player", 0))
    else:
        tid = PROTOCOL_TID
    args = {
        key: value
        for key, value in span.attrs.items()
        if isinstance(value, (int, float, str, bool))
    }
    return {
        "name": span.name,
        "cat": span.kind,
        "ph": "X",  # complete event: begin + duration in one record
        "ts": (span.t0 - origin) * 1e6,
        "dur": span.duration * 1e6,
        "pid": 1,
        "tid": tid,
        "args": args,
    }


def _step_span_index(recorder: SpanRecorder) -> Dict:
    """``(run, local_round, player) -> player span``, protocol spans in
    start order numbered as runs 1..K (one ``network.run`` per span)."""
    index: Dict = {}
    protocols = sorted(recorder.by_kind("protocol"), key=lambda s: s.t0)
    for run_no, protocol in enumerate(protocols, start=1):
        for round_span in recorder.children(protocol):
            if round_span.kind != "round":
                continue
            for step in recorder.children(round_span):
                if step.kind != "player":
                    continue
                key = (run_no, step.attrs.get("round"),
                       step.attrs.get("player"))
                index.setdefault(key, step)
    return index


def _flow_edges(graph, flows: str, model) -> List:
    """The message edges to draw as arrows for the requested mode."""
    if flows == "all":
        return list(graph.edges)
    if flows != "critical":
        return []
    from repro.obs.critical_path import critical_path

    result = critical_path(graph, model)
    return [step.via for run in result.runs for step in run.path
            if step.via is not None]


def _flow_events(recorder: SpanRecorder, graph, flows: str, model,
                 origin: float) -> List[Dict]:
    """Paired ``s``/``f`` flow events anchored inside player-step spans.

    Graph rounds follow the cumulative metrics numbering while recorder
    round spans restart per run, so each run's edges are shifted by its
    first message round (see :mod:`repro.obs.critical_path`).
    """
    steps = _step_span_index(recorder)
    offsets = {
        run: min(e.send_round for e in graph.edges_in_run(run)) - 1
        for run in graph.runs()
    }
    events: List[Dict] = []
    flow_id = 0
    for edge in _flow_edges(graph, flows, model):
        offset = offsets.get(edge.run, 0)
        send = steps.get((edge.run, edge.send_round - offset, edge.src))
        recv = steps.get((edge.run, edge.recv_round - offset, edge.dst))
        if send is None or recv is None:
            continue
        flow_id += 1
        common = {"name": edge.tag, "cat": "flow", "id": flow_id, "pid": 1}
        events.append({
            **common, "ph": "s",
            "ts": (send.t1 - origin) * 1e6,
            "tid": PLAYER_TID + edge.src,
            "args": {"phase": edge.phase, "elements": edge.elements,
                     "channel": edge.channel, "delayed": edge.delayed},
        })
        events.append({
            **common, "ph": "f", "bp": "e",
            "ts": (recv.t0 - origin) * 1e6,
            "tid": PLAYER_TID + edge.dst,
        })
    return events


def to_chrome_trace(recorder: SpanRecorder, graph=None,
                    flows: str = "critical", model=None) -> str:
    """Trace Event Format JSON (open with Perfetto or chrome://tracing).

    ``graph`` (a :class:`~repro.obs.causality.CausalGraph`) overlays
    causal arrows between player-step slices: ``flows="critical"`` draws
    only the edges on each run's critical path under ``model`` (default
    :class:`~repro.obs.critical_path.CostModel`), ``flows="all"`` draws
    every message edge, ``flows="none"`` suppresses arrows.
    """
    spans = recorder.all_spans()
    origin = min((s.t0 for s in spans), default=0.0)
    events: List[Dict] = [
        {"name": "process_name", "ph": "M", "pid": 1,
         "args": {"name": "repro"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": PROTOCOL_TID,
         "args": {"name": "protocols"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": PHASE_TID,
         "args": {"name": "phases"}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": ROUND_TID,
         "args": {"name": "rounds"}},
    ]
    players = sorted({
        int(s.attrs["player"]) for s in spans
        if s.kind == "player" and "player" in s.attrs
    })
    for pid in players:
        events.append({"name": "thread_name", "ph": "M", "pid": 1,
                       "tid": PLAYER_TID + pid,
                       "args": {"name": f"player {pid}"}})
    events.extend(_trace_event(span, origin) for span in spans)
    if graph is not None:
        events.extend(_flow_events(recorder, graph, flows, model, origin))
    for fault in recorder.faults:
        events.append({
            "name": f"fault:{fault['kind']}",
            "cat": "fault",
            "ph": "i",  # instant event
            "ts": 0,
            "pid": 1,
            "tid": ROUND_TID,
            "s": "t",
            "args": fault,
        })
    return json.dumps({"traceEvents": events,
                       "displayTimeUnit": "ms"}, indent=1)


_HISTOGRAM_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


def _histogram(lines: List[str], metric: str, labels: str,
               durations: List[float]) -> None:
    cumulative = 0
    for bound in _HISTOGRAM_BUCKETS:
        cumulative = sum(1 for d in durations if d <= bound)
        sep = "," if labels else ""
        lines.append(
            f'{metric}_bucket{{{labels}{sep}le="{bound:g}"}} {cumulative}'
        )
    sep = "," if labels else ""
    lines.append(f'{metric}_bucket{{{labels}{sep}le="+Inf"}} {len(durations)}')
    lines.append(f"{metric}_sum{{{labels}}} {sum(durations):.9f}")
    lines.append(f"{metric}_count{{{labels}}} {len(durations)}")


def to_prometheus(
    metrics: Optional[NetworkMetrics] = None,
    recorder: Optional[SpanRecorder] = None,
    prefix: str = "repro",
    health=None,
) -> str:
    """Prometheus text exposition of counters and span histograms.

    ``health`` optionally appends a
    :class:`~repro.obs.health.HealthMonitor`'s pipeline gauges and
    counters to the same exposition.
    """
    lines: List[str] = []
    if metrics is not None:
        lines.append(f"# TYPE {prefix}_rounds_total counter")
        lines.append(f"{prefix}_rounds_total {metrics.rounds}")
        lines.append(f"# TYPE {prefix}_messages_total counter")
        lines.append(
            f'{prefix}_messages_total{{channel="unicast"}} '
            f"{metrics.unicast_messages}"
        )
        lines.append(
            f'{prefix}_messages_total{{channel="broadcast"}} '
            f"{metrics.broadcast_messages}"
        )
        lines.append(f"# TYPE {prefix}_bits_total counter")
        lines.append(f"{prefix}_bits_total {metrics.bits}")
        lines.append(f"# TYPE {prefix}_player_ops_total counter")
        for pid in sorted(metrics.player_ops):
            ops = metrics.player_ops[pid]
            for op in ("adds", "muls", "invs", "interpolations"):
                lines.append(
                    f'{prefix}_player_ops_total{{player="{pid}",op="{op}"}} '
                    f"{getattr(ops, op)}"
                )
    if recorder is not None:
        lines.append(f"# TYPE {prefix}_span_duration_seconds histogram")
        spans = recorder.all_spans()
        for kind in ("protocol", "phase", "round", "player"):
            durations = [s.duration for s in spans if s.kind == kind]
            if durations:
                _histogram(lines, f"{prefix}_span_duration_seconds",
                           f'kind="{kind}"', durations)
        lines.append(f"# TYPE {prefix}_phase_wall_seconds counter")
        phase_wall: Dict[str, float] = {}
        phase_msgs: Dict[str, int] = {}
        for span in spans:
            if span.kind == "phase":
                phase = span.attrs.get("phase", "other")
                phase_wall[phase] = phase_wall.get(phase, 0.0) + span.duration
                phase_msgs[phase] = (
                    phase_msgs.get(phase, 0) + span.attrs.get("messages", 0)
                )
        for phase in sorted(phase_wall):
            lines.append(
                f'{prefix}_phase_wall_seconds{{phase="{phase}"}} '
                f"{phase_wall[phase]:.9f}"
            )
        lines.append(f"# TYPE {prefix}_phase_messages_total counter")
        for phase in sorted(phase_msgs):
            lines.append(
                f'{prefix}_phase_messages_total{{phase="{phase}"}} '
                f"{phase_msgs[phase]}"
            )
        if recorder.faults:
            lines.append(f"# TYPE {prefix}_faults_total counter")
            by_kind: Dict[str, int] = {}
            for fault in recorder.faults:
                by_kind[fault["kind"]] = by_kind.get(fault["kind"], 0) + 1
            for kind in sorted(by_kind):
                lines.append(
                    f'{prefix}_faults_total{{kind="{kind}"}} {by_kind[kind]}'
                )
    if health is not None:
        lines.extend(health.prometheus_lines(prefix))
    return "\n".join(lines) + "\n"
