"""A small synchronous event bus for runtime observability.

The :class:`~repro.net.runtime.ProtocolRuntime` owns one bus per
execution and publishes:

* ``"round"``   — ``(round_number, deliveries)`` once per settled round,
  after the fault plane and scheduler have decided what actually arrives
  (this is the stream the :class:`~repro.net.trace.Tracer` and the legacy
  ``observer=`` callback subscribe to);
* ``"fault"``   — ``(round_number, kind, src, dst)`` from the
  :class:`~repro.net.faults.FaultPlane`, once per rewritten delivery
  (kind is ``"drop"``, ``"duplicate"``, or ``"delay"``).

Handlers run synchronously in subscription order; a handler exception
propagates (observability must never silently corrupt a run — failing
loudly in a simulator is the right trade).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

Handler = Callable[..., Any]

#: topic names published by the runtime stack
ROUND = "round"
FAULT = "fault"


class EventBus:
    """Topic -> ordered handler list; publish is a plain loop."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[Handler]] = {}

    def subscribe(self, topic: str, handler: Handler) -> None:
        """Append ``handler`` to ``topic``'s delivery list."""
        self._subscribers.setdefault(topic, []).append(handler)

    def unsubscribe(self, topic: str, handler: Handler) -> None:
        """Remove a previously subscribed handler (no-op if absent)."""
        handlers = self._subscribers.get(topic, [])
        if handler in handlers:
            handlers.remove(handler)

    def publish(self, topic: str, *args: Any, **kwargs: Any) -> None:
        """Invoke every subscriber of ``topic`` with the given payload."""
        for handler in self._subscribers.get(topic, ()):
            handler(*args, **kwargs)

    def has_subscribers(self, topic: str) -> bool:
        return bool(self._subscribers.get(topic))
