"""A small synchronous event bus for runtime observability.

The :class:`~repro.net.runtime.ProtocolRuntime` owns one bus per
execution (or shares the :class:`~repro.protocols.context.ProtocolContext`
bus when one is attached) and publishes:

* ``"run"``     — ``(n,)`` once at the start of every ``run()`` call;
  flight recorders use it to delimit protocol runs sharing one bus;
* ``"round"``   — ``(round_number, deliveries)`` once per settled round,
  after the fault plane and scheduler have decided what actually arrives
  (this is the stream the :class:`~repro.net.trace.Tracer`, the legacy
  ``observer=`` callback, and the flight recorder subscribe to);
* ``"fault"``   — ``(round_number, kind, src, dst)`` from the
  :class:`~repro.net.faults.FaultPlane`, once per rewritten delivery
  (kind is ``"drop"``, ``"duplicate"``, or ``"delay"``) and once per
  round a player fault suppresses (kind ``"crash"`` or ``"silence"``,
  with ``dst=0`` meaning "all destinations");
* ``"sent"``    — ``(round_number, emissions)`` once per round, *before*
  the fault plane and scheduler touch the traffic, where emissions is a
  list of ``(dst, src, payload, channel)`` in expansion order (channel
  is ``"unicast"``/``"multicast"``/``"broadcast"``).  Published **only
  when the topic has subscribers** — provenance capture for the
  causality layer (:mod:`repro.obs.causality`) must cost nothing when
  detached.

Liveness topics (published **only when subscribed**, like ``"sent"``,
so unmonitored runs stay byte-identical — see :mod:`repro.obs.liveness`):

* ``"guard_armed"``    — ``(time, pid, guard)`` when a guarded program
  parks on a :class:`~repro.net.guards.Wait`/``AnyWait`` (``time`` is
  the runtime's logical clock: delivery count for the async runtime,
  round number for lockstep);
* ``"guard_progress"`` — ``(time, pid, src, count, quorum)`` when a
  delivery from ``src`` is relevant to ``pid``'s parked guard;
  ``count``/``quorum`` are distinct matching senders so far vs. needed;
* ``"guard_fired"``    — ``(time, pid, guard, senders)`` when a parked
  guard's quorum is met and the program steps; ``senders`` is the
  sorted tuple of distinct matching senders at fire time;
* ``"pool"``           — ``(time, depth, backlog)`` per async tick:
  in-flight pool depth after the tick settles plus a per-channel
  backlog dict (lockstep has no in-flight pool and never publishes it).

Long-lived components publish health topics into a shared context bus:

* ``"coin"``    — ``(coin_id, element)`` per coin a
  :class:`~repro.core.bootstrap.BootstrapCoinSource` exposes;
* ``"batch"``   — ``(epoch, coins, iterations, seed_consumed)`` per
  D-PRBG stretch;
* ``"failure"`` — ``(kind, coin_id)`` per exposure failure (kind is
  ``"unanimity"`` or ``"decode"``);
* ``"retry"``   — ``(coin_id, attempt)`` per exposure retry.

Delivery contract (decided and relied upon by the observability layer):

* **ordering** — handlers run synchronously, in first-subscription order;
* **idempotent subscription** — subscribing the same handler to the same
  topic twice is a no-op, so components re-wired on every network
  construction (tracers, recorders sharing a context bus across runs)
  are invoked exactly once per event;
* **mutation-safe publish** — ``publish`` iterates over a snapshot of the
  subscriber list, so a handler may subscribe or unsubscribe (itself or
  others) mid-publish; newly subscribed handlers first see the *next*
  event, unsubscribed handlers may still receive the in-flight one;
* **exceptions propagate** — a failing handler aborts the publish and the
  protocol step that triggered it.  Observability must never silently
  corrupt a run; failing loudly in a simulator is the right trade, and
  handlers that prefer resilience must catch their own exceptions.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

Handler = Callable[..., Any]

#: topic names published by the runtime stack
RUN = "run"
ROUND = "round"
FAULT = "fault"
SENT = "sent"
#: topic names published by the long-lived coin pipeline (health stream)
COIN = "coin"
BATCH = "batch"
FAILURE = "failure"
RETRY = "retry"
#: liveness topics (guard wait-state telemetry; see repro.obs.liveness)
GUARD_ARMED = "guard_armed"
GUARD_PROGRESS = "guard_progress"
GUARD_FIRED = "guard_fired"
POOL = "pool"

#: every topic constant the runtime stack and coin pipeline publish.
#: Publishers and subscribers must name topics via these constants
#: (regression-tested in tests/test_bus_topics.py).
ALL_TOPICS = (
    RUN, ROUND, FAULT, SENT,
    COIN, BATCH, FAILURE, RETRY,
    GUARD_ARMED, GUARD_PROGRESS, GUARD_FIRED, POOL,
)


class EventBus:
    """Topic -> ordered handler list; publish loops over a snapshot."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[Handler]] = {}

    def subscribe(self, topic: str, handler: Handler) -> None:
        """Append ``handler`` to ``topic``'s delivery list (idempotent)."""
        handlers = self._subscribers.setdefault(topic, [])
        if handler not in handlers:
            handlers.append(handler)

    def unsubscribe(self, topic: str, handler: Handler) -> None:
        """Remove a previously subscribed handler (no-op if absent)."""
        handlers = self._subscribers.get(topic, [])
        if handler in handlers:
            handlers.remove(handler)

    def is_subscribed(self, topic: str, handler: Handler) -> bool:
        return handler in self._subscribers.get(topic, ())

    def publish(self, topic: str, *args: Any, **kwargs: Any) -> None:
        """Invoke every subscriber of ``topic`` with the given payload.

        Iterates a snapshot, so handlers may (un)subscribe mid-publish;
        handler exceptions propagate (see the module docstring for the
        full delivery contract).
        """
        handlers = self._subscribers.get(topic)
        if not handlers:
            return
        for handler in list(handlers):
            handler(*args, **kwargs)

    def has_subscribers(self, topic: str) -> bool:
        return bool(self._subscribers.get(topic))
