"""Tag -> protocol-phase registry.

Every message a protocol sends carries a string tag (see
:func:`repro.net.trace.payload_tag`).  Protocol modules register which
phase of the Fig. 5 pipeline their tags belong to — ``deal`` (share
distribution), ``clique`` (the combination-vector announcements that
feed the consistency graph), ``gradecast``, ``ba`` (leader
election's Byzantine agreement), and ``expose`` (Coin-Expose rounds,
including batching challenges and leader coins).  The registry lives
here so the observability layer never hardcodes protocol knowledge;
each protocol module declares its own tags at import time.

Rules are matched in order: exact tag, prefix, substring, suffix.
Unknown tags classify as ``"other"``; a round with no messages is
``"idle"``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: canonical phase names, in pipeline order (used for stable reporting)
PHASES = ("deal", "clique", "gradecast", "ba", "expose", "other", "idle")

#: phases whose messages carry *per-receiver* secret values (shares), so
#: sending different payloads to different receivers is protocol-legal.
#: Every other pipeline phase is multicast-identical: announcing different
#: values to different players there is equivocation (the behaviour the
#: paper's consistency graph exists to catch).
UNICAST_PHASES = frozenset({"deal"})

#: the strictly ordered part of the Fig. 5 pipeline.  "expose" rounds
#: interleave freely (challenges, leader coins, batch reveals), so they
#: carry no ordering constraint; within one protocol run the remaining
#: phases only ever advance.
PIPELINE_STAGES = {"deal": 0, "clique": 1, "gradecast": 2, "ba": 3}


def phase_stage(phase: str) -> Optional[int]:
    """Position of ``phase`` in the strictly ordered pipeline (or None)."""
    return PIPELINE_STAGES.get(phase)

_EXACT: Dict[str, str] = {}
_PREFIX: List[Tuple[str, str]] = []
_CONTAINS: List[Tuple[str, str]] = []
_SUFFIX: List[Tuple[str, str]] = []


def register_tag_phase(
    phase: str,
    exact: Optional[str] = None,
    prefix: Optional[str] = None,
    contains: Optional[str] = None,
    suffix: Optional[str] = None,
) -> None:
    """Register one tag-matching rule for ``phase``.

    Registration is idempotent: re-registering an identical rule (as
    happens when several protocol modules share a tag convention) is a
    no-op, but re-registering the same pattern for a *different* phase
    raises — tags must classify unambiguously.
    """
    rules = [(exact, _EXACT), (prefix, _PREFIX), (contains, _CONTAINS),
             (suffix, _SUFFIX)]
    if sum(pattern is not None for pattern, _ in rules) != 1:
        raise ValueError("register exactly one of exact/prefix/contains/suffix")
    if exact is not None:
        existing = _EXACT.get(exact)
        if existing is not None and existing != phase:
            raise ValueError(f"tag {exact!r} already maps to {existing!r}")
        _EXACT[exact] = phase
        return
    for pattern, table in rules[1:]:
        if pattern is None:
            continue
        for seen_pattern, seen_phase in table:
            if seen_pattern == pattern:
                if seen_phase != phase:
                    raise ValueError(
                        f"pattern {pattern!r} already maps to {seen_phase!r}"
                    )
                return
        table.append((pattern, phase))


def classify_tag(tag: str) -> str:
    """The phase a message tag belongs to (``"other"`` if unregistered)."""
    hit = _EXACT.get(tag)
    if hit is not None:
        return hit
    for pattern, phase in _PREFIX:
        if tag.startswith(pattern):
            return phase
    for pattern, phase in _CONTAINS:
        if pattern in tag:
            return phase
    for pattern, phase in _SUFFIX:
        if tag.endswith(pattern):
            return phase
    return "other"


def classify_tags(tag_counts: Dict[str, int]) -> str:
    """The dominant phase of one round's delivered tags.

    Rounds are phase-homogeneous in the synchronous protocols; when a
    round genuinely mixes phases the phase carrying the most messages
    wins (ties broken by pipeline order).
    """
    if not tag_counts:
        return "idle"
    totals: Dict[str, int] = {}
    for tag, count in tag_counts.items():
        phase = classify_tag(tag)
        totals[phase] = totals.get(phase, 0) + count
    order = {phase: index for index, phase in enumerate(PHASES)}
    return max(totals, key=lambda p: (totals[p], -order.get(p, len(order))))


def messages_by_phase(tag_counts: Dict[str, int]) -> Dict[str, int]:
    """Aggregate a ``{tag: count}`` table into ``{phase: count}``."""
    out: Dict[str, int] = {}
    for tag, count in tag_counts.items():
        phase = classify_tag(tag)
        out[phase] = out.get(phase, 0) + count
    return out


def known_phases(include_other: bool = False) -> Iterable[str]:
    """The canonical protocol phases, in pipeline order."""
    return PHASES[:5] if not include_other else PHASES
