"""Flight recorder: capture the delivered message stream, replay it later.

A :class:`FlightRecorder` is a plain :class:`~repro.obs.bus.EventBus`
subscriber — it listens to the ``"run"``, ``"round"``, and ``"fault"``
topics the runtime stack already publishes, and serializes everything
that *actually arrived* (post fault-plane, post scheduler) into a
versioned JSONL log.  Payloads go over the same wire codec real
deployments would use (:mod:`repro.net.codec`), so a flight log is a
faithful byte-level record of the run, not a Python-pickle diary.

Because recording is subscription-only, a run without a recorder
attached executes byte-identically to one with — the same
``NULL_RECORDER`` discipline the span layer follows.

What a log buys you:

* :func:`replay` — re-drive the decode paths (codec round-trip, inbox
  reconstruction, Coin-Expose Berlekamp-Welch decoding) from the log
  alone, with no live network;
* :func:`diff` — compare two logs and report the first divergent
  ``(run, round, sender, receiver, tag)``, the tool for "these two runs
  should have been identical — where did they fork?";
* :mod:`repro.obs.forensics` — replay a faulty run and decide *which
  player* misbehaved, with event indices into the log as evidence.

Log format (one JSON object per line)::

    {"flight": 1, "n": 7, "t": 1, "field": "gf2k:32", "seed": 3}
    {"e": "run", "i": 0}
    {"e": "round", "i": 1, "run": 1, "r": 1, "d": [[2, 1, "28022..."], ...]}
    {"e": "fault", "i": 2, "run": 1, "r": 3, "k": "crash", "src": 4, "dst": 0}

``i`` is the event index (0-based, in arrival order) — forensics cites
these as evidence.  Delivery triples are ``[dst, src, payload_hex]``;
payloads outside the codec vocabulary fall back to ``[dst, src,
{"repr": ...}]`` and replay as :class:`OpaquePayload`.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.net import codec
from repro.net.trace import payload_tag
from repro.obs.bus import FAULT, ROUND, RUN, EventBus

#: current flight-log schema version; bumped on any incompatible change
FLIGHT_VERSION = 1


# -- field specs ------------------------------------------------------------

def field_spec(field) -> str:
    """A compact, reconstructible name for ``field`` (``"gf2k:32"``)."""
    kind = type(field).__name__
    if kind == "GF2k":
        return f"gf2k:{field.k}"
    if kind == "GFp":
        return f"gfp:{field.p}"
    return f"{kind.lower()}:{field.order}"


def field_from_spec(spec: str):
    """Rebuild the field a log was recorded under from its spec string."""
    kind, _, parameter = spec.partition(":")
    if kind == "gf2k":
        from repro.fields.gf2k import GF2k

        return GF2k(int(parameter))
    if kind == "gfp":
        from repro.fields.gfp import GFp

        return GFp(int(parameter))
    raise ValueError(f"unknown field spec {spec!r}")


# -- events -----------------------------------------------------------------

@dataclass(frozen=True)
class OpaquePayload:
    """Replay stand-in for a payload the wire codec could not encode."""

    text: str


def _encode_payload(payload: Any):
    try:
        return codec.encode(payload).hex()
    except codec.CodecError:
        return {"repr": repr(payload)}


def _decode_payload(wire) -> Any:
    if isinstance(wire, str):
        return codec.decode(bytes.fromhex(wire))
    return OpaquePayload(wire["repr"])


@dataclass(frozen=True)
class RoundEvent:
    """One settled round: what every player actually received."""

    index: int  #: event index in the log (evidence handle)
    run: int    #: 1-based protocol-run number within the log
    round: int  #: 1-based round number within the run
    #: ``(dst, src, payload)`` in delivery order, payloads decoded
    deliveries: Tuple[Tuple[int, int, Any], ...]

    def inboxes(self) -> Dict[int, Dict[int, List[Any]]]:
        """Rebuild ``{dst: {src: [payloads]}}`` exactly as the runtime did."""
        out: Dict[int, Dict[int, List[Any]]] = {}
        for dst, src, payload in self.deliveries:
            out.setdefault(dst, {}).setdefault(src, []).append(payload)
        return out


@dataclass(frozen=True)
class FaultEvent:
    """One fault-plane intervention (edge rewrite or player suppression)."""

    index: int
    run: int
    round: int
    kind: str  #: drop / duplicate / delay / crash / silence
    src: int
    dst: int   #: 0 means "all destinations" (player-level fault)


@dataclass
class FlightLog:
    """A parsed flight log: header plus the ordered event stream."""

    n: int
    t: int
    field: Optional[str] = None  #: field spec string, when known
    seed: Optional[int] = None
    version: int = FLIGHT_VERSION
    rounds: List[RoundEvent] = dataclass_field(default_factory=list)
    faults: List[FaultEvent] = dataclass_field(default_factory=list)
    #: total events recorded (run markers included), for index bookkeeping
    event_count: int = 0
    #: optional provenance stamp (a RunManifest dict); carried in the
    #: header, ignored by diff/replay (same version-1 wire format —
    #: readers without manifest support skip the unknown header key)
    manifest: Optional[Dict[str, Any]] = None

    # -- (de)serialization --------------------------------------------------
    def dumps(self) -> str:
        header = {"flight": self.version, "n": self.n, "t": self.t}
        if self.field is not None:
            header["field"] = self.field
        if self.seed is not None:
            header["seed"] = self.seed
        if self.manifest:
            header["manifest"] = self.manifest
        lines = [json.dumps(header, sort_keys=True)]
        events: List[Tuple[int, dict]] = []
        run_marks = _run_marker_indices(self.rounds, self.faults,
                                        self.event_count)
        for index in run_marks:
            events.append((index, {"e": "run", "i": index}))
        for event in self.rounds:
            events.append((event.index, {
                "e": "round", "i": event.index, "run": event.run,
                "r": event.round,
                "d": [[dst, src, _encode_payload(payload)]
                      for dst, src, payload in event.deliveries],
            }))
        for event in self.faults:
            events.append((event.index, {
                "e": "fault", "i": event.index, "run": event.run,
                "r": event.round, "k": event.kind,
                "src": event.src, "dst": event.dst,
            }))
        events.sort(key=lambda pair: pair[0])
        lines.extend(json.dumps(record, sort_keys=True)
                     for _, record in events)
        return "\n".join(lines) + "\n"

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())

    @classmethod
    def loads(cls, text: str) -> "FlightLog":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ValueError("empty flight log")
        header = json.loads(lines[0])
        version = header.get("flight")
        if version != FLIGHT_VERSION:
            raise ValueError(
                f"unsupported flight log version {version!r} "
                f"(this build reads version {FLIGHT_VERSION})"
            )
        log = cls(n=header["n"], t=header["t"], field=header.get("field"),
                  seed=header.get("seed"), version=version,
                  manifest=header.get("manifest"))
        run = 0
        for line in lines[1:]:
            record = json.loads(line)
            kind = record["e"]
            if kind == "run":
                run += 1
            elif kind == "round":
                deliveries = tuple(
                    (dst, src, _decode_payload(wire))
                    for dst, src, wire in record["d"]
                )
                log.rounds.append(RoundEvent(
                    index=record["i"], run=record.get("run", run or 1),
                    round=record["r"], deliveries=deliveries,
                ))
            elif kind == "fault":
                log.faults.append(FaultEvent(
                    index=record["i"], run=record.get("run", run or 1),
                    round=record["r"], kind=record["k"],
                    src=record["src"], dst=record["dst"],
                ))
            else:
                raise ValueError(f"unknown flight event kind {kind!r}")
            log.event_count = max(log.event_count, record["i"] + 1)
        return log

    @classmethod
    def load(cls, path: str) -> "FlightLog":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())

    # -- views --------------------------------------------------------------
    def runs(self) -> List[int]:
        """The distinct run numbers appearing in the log, in order."""
        seen: List[int] = []
        for event in self.rounds:
            if not seen or event.run != seen[-1]:
                seen.append(event.run)
        return seen

    def events(self) -> Iterator:
        """Rounds and faults interleaved in recorded (index) order."""
        merged: List = list(self.rounds) + list(self.faults)
        merged.sort(key=lambda event: event.index)
        return iter(merged)


def _run_marker_indices(rounds, faults, event_count) -> List[int]:
    """Reconstruct where run-boundary markers sat in the event stream.

    Marker indices are exactly the indices not occupied by a round or
    fault event; recomputing them keeps :class:`RoundEvent` /
    :class:`FaultEvent` free of marker bookkeeping.
    """
    used = {event.index for event in rounds}
    used.update(event.index for event in faults)
    return [index for index in range(event_count) if index not in used]


class FlightRecorder:
    """Record a protocol session's delivered-message stream into a log.

    Attach to the shared context bus *before* running::

        ctx = ProtocolContext.create(field, n=7, t=1, seed=3)
        recorder = FlightRecorder(n=7, t=1, field=field, seed=3)
        recorder.attach(ctx.ensure_bus())
        run_coin_gen(..., context=ctx)
        recorder.log().dump("run.flightlog")

    The recorder delimits protocol runs by the runtime's ``"run"``
    events; as a fallback (streams recorded without markers) a round
    number that does not advance also starts a new run.
    """

    def __init__(self, n: int, t: int, field=None, seed: Optional[int] = None,
                 manifest: Optional[Dict[str, Any]] = None):
        self.n = n
        self.t = t
        self.field_spec = field_spec(field) if field is not None else None
        self.seed = seed
        self.manifest = manifest
        self._rounds: List[RoundEvent] = []
        self._faults: List[FaultEvent] = []
        self._index = 0
        self._run = 0
        self._last_round = 0
        self._run_marked = False

    # -- bus wiring ---------------------------------------------------------
    def attach(self, bus: EventBus) -> "FlightRecorder":
        bus.subscribe(RUN, self.on_run)
        bus.subscribe(ROUND, self.on_round)
        bus.subscribe(FAULT, self.on_fault)
        return self

    def detach(self, bus: EventBus) -> None:
        bus.unsubscribe(RUN, self.on_run)
        bus.unsubscribe(ROUND, self.on_round)
        bus.unsubscribe(FAULT, self.on_fault)

    # -- topic handlers -----------------------------------------------------
    def on_run(self, n: int) -> None:
        self._run += 1
        self._last_round = 0
        self._run_marked = True
        self._index += 1  # the marker occupies one event index

    def _current_run(self, round_no: int) -> int:
        if self._run == 0:
            # stream without markers: first event opens run 1
            self._run = 1
        elif not self._run_marked and round_no <= self._last_round:
            # fallback run detection: round numbers restarted
            self._run += 1
        return self._run

    def on_round(self, round_no: int, deliveries) -> None:
        run = self._current_run(round_no)
        self._rounds.append(RoundEvent(
            index=self._index, run=run, round=round_no,
            deliveries=tuple((dst, src, payload)
                             for dst, src, payload in deliveries),
        ))
        self._index += 1
        self._last_round = round_no
        self._run_marked = False

    def on_fault(self, round_no: int, kind: str, src: int, dst: int) -> None:
        # faults for round r are published before r's round event settles
        run = self._current_run(round_no)
        self._faults.append(FaultEvent(
            index=self._index, run=run, round=round_no,
            kind=kind, src=src, dst=dst,
        ))
        self._index += 1
        self._run_marked = False

    # -- output -------------------------------------------------------------
    def log(self) -> FlightLog:
        return FlightLog(
            n=self.n, t=self.t, field=self.field_spec, seed=self.seed,
            rounds=list(self._rounds), faults=list(self._faults),
            event_count=self._index, manifest=self.manifest,
        )

    def dump(self, path: str) -> None:
        self.log().dump(path)


# -- replay -----------------------------------------------------------------

@dataclass(frozen=True)
class ExposeDecode:
    """One receiver's Berlekamp-Welch decode of one exposed coin."""

    run: int
    round: int
    coin_id: str
    receiver: int
    value: Optional[Any]  #: decoded F(0), or None when undecodable
    senders: Tuple[int, ...]  #: who contributed a share to this view


@dataclass
class ReplayResult:
    """Everything :func:`replay` re-derived from a log, no network needed."""

    log: FlightLog
    #: per-round reconstructed inboxes: (run, round) -> {dst: {src: [payload]}}
    inboxes: Dict[Tuple[int, int], Dict[int, Dict[int, List[Any]]]]
    #: per-round tag tally: (run, round) -> {tag: count}
    tags: Dict[Tuple[int, int], Dict[str, int]]
    #: Coin-Expose decodes re-driven through the real decoder
    expose_decodes: List[ExposeDecode]

    def decoded_values(self) -> Dict[Tuple[int, str], Dict[int, Any]]:
        """``{(run, coin_id): {receiver: value}}`` for quick unanimity checks."""
        out: Dict[Tuple[int, str], Dict[int, Any]] = {}
        for decode in self.expose_decodes:
            out.setdefault((decode.run, decode.coin_id), {})[
                decode.receiver
            ] = decode.value
        return out


def replay(log: FlightLog, field=None, t: Optional[int] = None) -> ReplayResult:
    """Re-drive a log's decode paths without a live network.

    Payloads were codec round-tripped at load time; here the per-round
    inboxes are rebuilt exactly as the runtime built them, and every
    Coin-Expose message stream is pushed through the real
    :func:`~repro.protocols.coin_expose.decode_exposed` decoder — per
    receiver view, so equivocated shares produce the same (possibly
    divergent) values the live players saw.

    ``field`` defaults to the log's recorded field spec; expose decoding
    is skipped when neither is available.  ``t`` defaults to the log's.
    """
    from repro.protocols.coin_expose import decode_exposed
    from repro.protocols.common import valid_element

    if field is None and log.field is not None:
        field = field_from_spec(log.field)
    if t is None:
        t = log.t

    inboxes: Dict[Tuple[int, int], Dict[int, Dict[int, List[Any]]]] = {}
    tags: Dict[Tuple[int, int], Dict[str, int]] = {}
    decodes: List[ExposeDecode] = []
    for event in log.rounds:
        key = (event.run, event.round)
        inboxes[key] = event.inboxes()
        tally = tags.setdefault(key, {})
        for _dst, _src, payload in event.deliveries:
            tag = payload_tag(payload)
            tally[tag] = tally.get(tag, 0) + 1
        if field is None:
            continue
        # re-drive the expose decoder for every receiver's view
        for receiver, inbox in sorted(inboxes[key].items()):
            shares: Dict[str, Dict[int, Any]] = {}
            for src, payloads in inbox.items():
                for payload in payloads:
                    if (isinstance(payload, tuple) and len(payload) == 2
                            and isinstance(payload[0], str)
                            and payload[0].startswith("expose/")):
                        coin_id = payload[0][len("expose/"):]
                        # the live protocol keeps the first share per
                        # sender (filter_tag semantics)
                        shares.setdefault(coin_id, {}).setdefault(
                            src, payload[1]
                        )
            for coin_id, by_sender in sorted(shares.items()):
                points = [
                    (field.element_point(src), value)
                    for src, value in sorted(by_sender.items())
                    if valid_element(field, value)
                ]
                decodes.append(ExposeDecode(
                    run=event.run, round=event.round, coin_id=coin_id,
                    receiver=receiver,
                    value=decode_exposed(field, points, t),
                    senders=tuple(sorted(by_sender)),
                ))
    return ReplayResult(log=log, inboxes=inboxes, tags=tags,
                        expose_decodes=decodes)


# -- diff -------------------------------------------------------------------

@dataclass(frozen=True)
class Divergence:
    """The first point where two flight logs disagree."""

    run: int
    round: int
    sender: int
    receiver: int
    tag: str
    reason: str

    def __str__(self) -> str:
        where = f"run {self.run} round {self.round}"
        if self.sender or self.receiver:
            where += f", {self.sender} -> {self.receiver}"
        if self.tag:
            where += f" [{self.tag}]"
        return f"{where}: {self.reason}"


def _delivery_key(delivery) -> Tuple[int, int, str]:
    dst, src, payload = delivery
    try:
        wire = codec.encode(payload).hex()
    except codec.CodecError:
        wire = repr(payload)
    return (dst, src, wire)


def diff(log_a: FlightLog, log_b: FlightLog) -> Optional[Divergence]:
    """First divergent ``(run, round, sender, receiver, tag)`` — or None.

    Per-round delivery sets are compared order-insensitively (schedulers
    permute arrival order without changing what arrives); header
    mismatches and missing rounds report with sender/receiver 0.
    """
    if (log_a.n, log_a.t, log_a.field) != (log_b.n, log_b.t, log_b.field):
        return Divergence(0, 0, 0, 0, "", reason=(
            f"header mismatch: n/t/field "
            f"({log_a.n},{log_a.t},{log_a.field}) vs "
            f"({log_b.n},{log_b.t},{log_b.field})"
        ))
    rounds_a = {(event.run, event.round): event for event in log_a.rounds}
    rounds_b = {(event.run, event.round): event for event in log_b.rounds}
    for key in sorted(set(rounds_a) | set(rounds_b)):
        run, round_no = key
        event_a, event_b = rounds_a.get(key), rounds_b.get(key)
        if event_a is None or event_b is None:
            present = "B" if event_a is None else "A"
            return Divergence(run, round_no, 0, 0, "", reason=(
                f"round present only in log {present}"
            ))
        set_a = sorted(_delivery_key(d) for d in event_a.deliveries)
        set_b = sorted(_delivery_key(d) for d in event_b.deliveries)
        if set_a == set_b:
            continue
        # multiset difference: a delivery duplicated in one log but not
        # the other diverges even though plain membership agrees
        count_a, count_b = Counter(set_a), Counter(set_b)
        only_a = sorted((count_a - count_b).elements())
        only_b = sorted((count_b - count_a).elements())
        dst, src, wire = (only_a or only_b)[0]
        try:
            tag = payload_tag(codec.decode(bytes.fromhex(wire)))
        except (ValueError, codec.CodecError):
            tag = "?"
        side = "A" if only_a else "B"
        return Divergence(run, round_no, src, dst, tag, reason=(
            f"delivery present only in log {side}"
        ))
    return None
