"""Secret sharing substrate (Shamir [18])."""

from repro.sharing.shamir import Share, ShamirScheme

__all__ = ["Share", "ShamirScheme"]
