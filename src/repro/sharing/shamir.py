"""Shamir secret sharing over an arbitrary field.

Section 1.3: "the secret is the value of a polynomial at the origin, while
the players' shares are the values of the polynomial evaluated at the
players' id's."  Reconstruction comes in two flavours: plain Lagrange
(all shares honest) and robust Berlekamp-Welch (up to ``t`` corrupted
shares), matching the paper's use in Figs. 4 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.poly.barycentric import interpolate_at_cached
from repro.poly.berlekamp_welch import DecodingError, berlekamp_welch
from repro.poly.polynomial import Polynomial, evaluate_polys


@dataclass(frozen=True)
class Share:
    """One player's share: the polynomial evaluated at the player's point."""

    player_id: int  # 1-based
    value: Element


class ShamirScheme:
    """(t, n) Shamir sharing: any t+1 shares reconstruct, t reveal nothing."""

    def __init__(self, field: Field, n: int, t: int):
        if not 0 <= t < n:
            raise ValueError(f"need 0 <= t < n, got t={t}, n={n}")
        if n >= field.order:
            raise ValueError(
                f"field of order {field.order} too small for {n} players"
            )
        self.field = field
        self.n = n
        self.t = t
        self._points = [field.element_point(i) for i in range(1, n + 1)]

    # -- dealing ------------------------------------------------------------
    def share_polynomial(self, secret: Element, rng) -> Polynomial:
        """A random degree-t polynomial hiding ``secret`` at the origin."""
        return Polynomial.random(self.field, self.t, rng, constant=secret)

    def deal(self, secret: Element, rng) -> Tuple[Polynomial, List[Share]]:
        """Deal ``secret``: returns the polynomial and all n shares.

        All n evaluations run as one shared-Horner sweep
        (:meth:`Polynomial.evaluate_many`) over the fixed point set.
        """
        poly = self.share_polynomial(secret, rng)
        values = poly.evaluate_many(self._points)
        shares = [Share(i + 1, v) for i, v in enumerate(values)]
        return poly, shares

    def deal_random_many(
        self, count: int, rng
    ) -> Tuple[List[Polynomial], List[List[Share]]]:
        """Deal ``count`` uniformly random secrets (the Batch-VSS step 1 shape).

        Randomness is drawn exactly as ``count`` successive :meth:`deal`
        calls with ``field.random(rng)`` secrets — seeded runs are
        unchanged — but the evaluations run as one grouped
        multi-polynomial sweep (:func:`~repro.poly.polynomial.
        evaluate_polys`), width ``count * n`` instead of ``count``
        sweeps of width ``n``.
        """
        polys = []
        for _ in range(count):
            secret = self.field.random(rng)
            polys.append(self.share_polynomial(secret, rng))
        rows = evaluate_polys(self.field, polys, self._points)
        share_lists = [
            [Share(i + 1, v) for i, v in enumerate(row)] for row in rows
        ]
        return polys, share_lists

    def share_for(self, poly: Polynomial, player_id: int) -> Share:
        """Evaluate a dealing polynomial for one player."""
        return Share(player_id, poly(self.point(player_id)))

    def point(self, player_id: int) -> Element:
        """The field point assigned to ``player_id``."""
        return self._points[player_id - 1]

    # -- reconstruction -------------------------------------------------------
    def reconstruct(self, shares: Iterable[Share]) -> Element:
        """Plain Lagrange reconstruction; assumes all shares are correct.

        Routed through the barycentric interpolation cache: the Lagrange
        weights at the origin are computed once per share set (a single
        batch inversion) and every later reconstruction over the same set
        is an inversion-free dot product.  Still counted as one
        interpolation — the unit the paper's lemmas price.
        """
        pts = [(self.point(s.player_id), s.value) for s in shares]
        if len(pts) < self.t + 1:
            raise ValueError(
                f"need at least t+1={self.t + 1} shares, got {len(pts)}"
            )
        return interpolate_at_cached(
            self.field, pts[: self.t + 1], self.field.zero
        )

    def reconstruct_robust(
        self, shares: Sequence[Share], max_errors: int = None
    ) -> Tuple[Element, List[int]]:
        """Berlekamp-Welch reconstruction tolerating corrupted shares.

        Returns ``(secret, honest_player_ids)``.  Needs
        ``len(shares) >= t + 2*max_errors + 1``.  Raises
        :class:`~repro.poly.berlekamp_welch.DecodingError` when the share
        set is too corrupted to decode.
        """
        pts = [(self.point(s.player_id), s.value) for s in shares]
        poly, good = berlekamp_welch(self.field, pts, self.t, max_errors)
        good_ids = [shares[i].player_id for i in good]
        return poly(self.field.zero), good_ids

    # -- verification helpers ---------------------------------------------------
    def consistent(self, shares: Iterable[Share]) -> bool:
        """Do all shares lie on a single degree-<=t polynomial?"""
        pts = [(self.point(s.player_id), s.value) for s in shares]
        if len(pts) <= self.t + 1:
            return True
        try:
            _, good = berlekamp_welch(self.field, pts, self.t, max_errors=0)
        except DecodingError:
            return False
        return len(good) == len(pts)

    def share_map(self, shares: Iterable[Share]) -> Dict[int, Element]:
        """Convenience: {player_id: value}."""
        return {s.player_id: s.value for s in shares}
