"""Lagrange interpolation — the "basic step" of the paper's cost model.

Section 3.1: "The basic solution ... is to choose any t+1 values (points),
and to compute the unique polynomial f(x) that they define (using, say,
the Lagrange method).  For the remaining points simply check whether they
satisfy f."  :func:`interpolate` builds the polynomial, and
:func:`check_degree` performs exactly that degree test.

These are the *classic* textbook implementations: O(n^2) work and one
inversion per basis polynomial.  The hot protocol paths route through
:mod:`repro.poly.barycentric` instead, which precomputes barycentric
weights per point set (Montgomery batch inversion) and answers repeated
queries with zero inversions; the classic versions stay as the reference
the property tests compare against.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.poly.polynomial import Polynomial

Point = Tuple[Element, Element]


def _require_distinct(xs: Sequence[Element]) -> None:
    """Raise ``ValueError`` unless every x-coordinate is distinct.

    Shared by :func:`interpolate`, :func:`interpolate_at`, the
    Berlekamp-Welch decoder, and :mod:`repro.poly.barycentric` — the
    single place the duplicate-abscissa precondition is enforced.
    """
    if len(set(xs)) != len(xs):
        raise ValueError("interpolation points must have distinct x coordinates")


def interpolate(field: Field, points: Sequence[Point]) -> Polynomial:
    """The unique polynomial of degree < len(points) through ``points``.

    Raises ``ValueError`` on duplicated x-coordinates.  Increments the
    field's interpolation counter (the unit Lemmas 2/4/6 count).
    """
    _require_distinct([x for x, _ in points])
    field.counter.interpolations += 1
    result = Polynomial.zero(field)
    for i, (xi, yi) in enumerate(points):
        # basis_i(x) = prod_{j != i} (x - x_j) / (x_i - x_j)
        numerator = Polynomial.constant(field, field.one)
        denominator = field.one
        for j, (xj, _) in enumerate(points):
            if j == i:
                continue
            numerator = numerator * Polynomial(field, [field.neg(xj), field.one])
            denominator = field.mul(denominator, field.sub(xi, xj))
        scale = field.mul(yi, field.inv(denominator))
        result = result + numerator.scale(scale)
    return result


def interpolate_at(field: Field, points: Sequence[Point], x0: Element) -> Element:
    """Evaluate the interpolating polynomial at ``x0`` without building it.

    This is the cheap path for secret reconstruction (``x0 = 0``): a direct
    Lagrange sum costing O(len(points)^2) multiplications but no polynomial
    object.  Counted as one interpolation.
    """
    _require_distinct([x for x, _ in points])
    field.counter.interpolations += 1
    total = field.zero
    for i, (xi, yi) in enumerate(points):
        weight = field.one
        for j, (xj, _) in enumerate(points):
            if j == i:
                continue
            weight = field.mul(
                weight,
                field.mul(field.sub(x0, xj), field.inv(field.sub(xi, xj))),
            )
        total = field.add(total, field.mul(yi, weight))
    return total


def check_degree(field: Field, points: Sequence[Point], t: int) -> bool:
    """Does a polynomial of degree <= t pass through *all* of ``points``?

    Implements the paper's basic degree check (Problem 1 preamble):
    interpolate through the first ``t+1`` points, then verify the rest.
    """
    if len(points) <= t + 1:
        return True
    head = interpolate(field, points[: t + 1])
    return all(head(x) == y for x, y in points[t + 1 :])


def lagrange_coefficients_at_zero(field: Field, xs: Sequence[Element]) -> List[Element]:
    """Weights ``w_i`` with ``f(0) = sum_i w_i f(x_i)`` for deg(f) < len(xs).

    Used for repeated reconstructions over a fixed share set (the
    bootstrap source exposes many coins against the same qualified set).
    Costs a *single* field inversion regardless of ``len(xs)``: the
    denominators ``prod_{j != i}(x_i - x_j)`` are inverted together with
    Montgomery batch inversion, and the numerators
    ``prod_{j != i}(0 - x_j)`` come from one prefix/suffix product sweep.
    """
    _require_distinct(xs)
    n = len(xs)
    if n == 0:
        return []
    if n == 1:
        return [field.one]
    # denominators d_i = prod_{j != i} (x_i - x_j)
    dens = []
    for i, xi in enumerate(xs):
        d = field.one
        for j, xj in enumerate(xs):
            if j != i:
                d = field.mul(d, field.sub(xi, xj))
        dens.append(d)
    inv_dens = field.batch_inv(dens)
    # numerators via prefix/suffix products of (0 - x_j)
    negs = [field.neg(x) for x in xs]
    prefix = [field.one] * n  # prod of negs[:i]
    for i in range(1, n):
        prefix[i] = field.mul(prefix[i - 1], negs[i - 1])
    suffix = [field.one] * n  # prod of negs[i+1:]
    for i in range(n - 2, -1, -1):
        suffix[i] = field.mul(suffix[i + 1], negs[i + 1])
    nums = field.mul_many(prefix, suffix)
    return field.mul_many(nums, inv_dens)
