"""NTT-accelerated multipoint evaluation and interpolation over GF(p).

The paper's speed argument hinges on transform-based polynomial
arithmetic — "we use discrete Fourier transforms to do the
multiplication ... in O(l log l) operations over Z_q" (Section 2).  This
module puts the dormant :mod:`repro.fields.ntt` transform on the two
protocol hot paths:

* **multipoint evaluation** (Batch-VSS dealing: one polynomial at n
  points) via remainder trees — O(n log^2 n) instead of Horner's O(dn);
* **interpolation** (Coin-Expose reconstruction, Berlekamp-Welch's
  optimistic candidate) via the derivative-of-the-master-polynomial
  formula and a combine-up tree — O(n log^2 n) instead of Lagrange's
  O(n^2).

Both are gated behind the ``interpolation_mode("ntt")`` ablation switch
(:mod:`repro.poly.barycentric`) and the :func:`ntt_applicable`
predicate: the field must be GF(p) with ``p - 1`` divisible by the
required transform size, and the job must be wide enough
(:data:`MIN_POINTS`) for the asymptotics to matter.  Everywhere else the
callers keep their existing Horner/barycentric paths, so outputs are
byte-identical across modes (tests/test_ntt_paths.py).

Metering: each transform-based product meters the textbook butterfly
counts — three size-S transforms of ``(S/2) log2 S`` butterflies (one
mul, two adds each), S pointwise products, and S inverse-scaling
products — so the :class:`~repro.fields.base.OpCounter` and the PR 5
cost model see the real O(l log l) profile rather than the schoolbook
O(l^2) one.  The ``interpolations`` counter contract is unchanged: the
barycentric/Berlekamp-Welch wrappers still bump it once per logical
interpolation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.fields.ntt import poly_mul_ntt, poly_mul_schoolbook

Point = Tuple[Element, Element]

#: below this many points the O(n^2) barycentric/Horner paths win and the
#: tree overhead (Newton inversions per node) is pure loss
MIN_POINTS = 32


def _next_pow2(n: int) -> int:
    size = 1
    while size < n:
        size <<= 1
    return size


def ntt_applicable(field: Field, npoints: int) -> bool:
    """Can the transform paths run over ``field`` for ``npoints`` nodes?

    Requires a GF(p) field whose multiplicative group admits roots of
    unity for every product the trees form (the largest has result
    length ``2 * npoints``), and enough points to amortize the setup.
    """
    if getattr(field, "kind", None) != "gfp":
        return False
    if npoints < MIN_POINTS:
        return False
    return (field.p - 1) % _next_pow2(2 * npoints) == 0


def poly_mul(
    field: Field, a: List[int], b: List[int], omega_cache: Dict[int, int]
) -> List[int]:
    """Metered product of two Z_p coefficient lists (low-degree first).

    Uses the NTT when ``p - 1`` admits the transform size, metering the
    butterfly counts; otherwise meters and runs the schoolbook product.
    """
    if not a or not b:
        return []
    result_len = len(a) + len(b) - 1
    size = _next_pow2(result_len)
    p = field.p
    if (p - 1) % size == 0 and size > 1:
        stages = size.bit_length() - 1
        field.counter.muls += 3 * (size // 2) * stages + 2 * size
        field.counter.adds += 3 * size * stages
        return poly_mul_ntt(a, b, p, omega_cache)
    field.counter.muls += len(a) * len(b)
    field.counter.adds += max(0, len(a) * len(b) - result_len)
    return poly_mul_schoolbook(a, b, p)


def _poly_inv_mod(
    field: Field, h: List[int], k: int, omega_cache: Dict[int, int]
) -> List[int]:
    """Inverse of ``h`` modulo ``x^k`` by Newton iteration (``h[0] != 0``)."""
    p = field.p
    field.counter.invs += 1
    g = [pow(h[0], p - 2, p)]
    prec = 1
    while prec < k:
        prec = min(2 * prec, k)
        hg = poly_mul(field, h[:prec], g, omega_cache)[:prec]
        # g <- g * (2 - h*g) mod x^prec
        correction = [(-c) % p for c in hg]
        correction[0] = (correction[0] + 2) % p
        field.counter.adds += 1
        g = poly_mul(field, g, correction, omega_cache)[:prec]
    return g


def _rem(
    field: Field, f: List[int], g: List[int], omega_cache: Dict[int, int]
) -> List[int]:
    """``f mod g`` over Z_p by reversal + Newton inversion (``g`` monic)."""
    m = len(g) - 1
    if m == 0:
        return []
    if len(f) - 1 < m:
        return list(f)
    p = field.p
    k = len(f) - m  # quotient length
    inv_rev_g = _poly_inv_mod(field, g[::-1], k, omega_cache)
    q_rev = poly_mul(field, f[::-1][:k], inv_rev_g, omega_cache)[:k]
    qg = poly_mul(field, q_rev[::-1], g, omega_cache)
    field.counter.adds += m
    return [(fc - qc) % p for fc, qc in zip(f[:m], qg[:m])]


def _build_tree(
    field: Field,
    xs: Sequence[int],
    lo: int,
    hi: int,
    nodes: Dict[Tuple[int, int], List[int]],
    omega_cache: Dict[int, int],
) -> List[int]:
    """Subproduct tree: ``nodes[(lo, hi)] = prod_{lo <= i < hi} (x - xs[i])``."""
    if hi - lo == 1:
        node = [(-xs[lo]) % field.p, 1]
    else:
        mid = (lo + hi) // 2
        left = _build_tree(field, xs, lo, mid, nodes, omega_cache)
        right = _build_tree(field, xs, mid, hi, nodes, omega_cache)
        node = poly_mul(field, left, right, omega_cache)
    nodes[(lo, hi)] = node
    return node


def _eval_down(
    field: Field,
    f: List[int],
    lo: int,
    hi: int,
    nodes: Dict[Tuple[int, int], List[int]],
    out: List[int],
    omega_cache: Dict[int, int],
) -> None:
    """Remainder tree descent: ``out[i] = f(xs[i])`` for ``lo <= i < hi``."""
    if hi - lo == 1:
        out[lo] = f[0] if f else 0
        return
    mid = (lo + hi) // 2
    _eval_down(field, _rem(field, f, nodes[(lo, mid)], omega_cache),
               lo, mid, nodes, out, omega_cache)
    _eval_down(field, _rem(field, f, nodes[(mid, hi)], omega_cache),
               mid, hi, nodes, out, omega_cache)


def _combine_up(
    field: Field,
    cs: Sequence[int],
    lo: int,
    hi: int,
    nodes: Dict[Tuple[int, int], List[int]],
    omega_cache: Dict[int, int],
) -> List[int]:
    """Linear combination ``sum_i cs[i] * prod_{j != i} (x - xs[j])``."""
    if hi - lo == 1:
        return [cs[lo]]
    mid = (lo + hi) // 2
    p = field.p
    left = _combine_up(field, cs, lo, mid, nodes, omega_cache)
    right = _combine_up(field, cs, mid, hi, nodes, omega_cache)
    a = poly_mul(field, left, nodes[(mid, hi)], omega_cache)
    b = poly_mul(field, right, nodes[(lo, mid)], omega_cache)
    if len(a) < len(b):
        a, b = b, a
    field.counter.adds += len(b)
    out = list(a)
    for i, c in enumerate(b):
        out[i] = (out[i] + c) % p
    return out


def fast_eval_many(
    field: Field, coeffs: Sequence[int], xs: Sequence[int]
) -> List[int]:
    """Evaluate the polynomial ``coeffs`` (low-degree first) at every ``xs``.

    The remainder-tree algorithm: build the subproduct tree over ``xs``,
    then push ``coeffs`` down taking remainders — identical values to
    Horner, O(n log^2 n) transform work.
    """
    if not xs:
        return []
    if not coeffs:
        return [field.zero] * len(xs)
    omega_cache: Dict[int, int] = {}
    nodes: Dict[Tuple[int, int], List[int]] = {}
    n = len(xs)
    _build_tree(field, xs, 0, n, nodes, omega_cache)
    out = [field.zero] * n
    f = _rem(field, list(coeffs), nodes[(0, n)], omega_cache)
    _eval_down(field, f, 0, n, nodes, out, omega_cache)
    return out


def fast_interpolate_coeffs(
    field: Field, points: Sequence[Point]
) -> List[int]:
    """Coefficients (low-degree first) of the interpolant through ``points``.

    The classic O(n log^2 n) algorithm: with master polynomial
    ``N(x) = prod (x - x_i)``, the interpolant is
    ``sum_i (y_i / N'(x_i)) * N(x)/(x - x_i)`` — one subproduct tree,
    one multipoint evaluation of ``N'``, one batch inversion, one
    combine-up pass.
    """
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    n = len(xs)
    if n == 0:
        return []
    if n == 1:
        return [ys[0]]
    p = field.p
    omega_cache: Dict[int, int] = {}
    nodes: Dict[Tuple[int, int], List[int]] = {}
    _build_tree(field, xs, 0, n, nodes, omega_cache)
    master = nodes[(0, n)]
    deriv = [(i * c) % p for i, c in enumerate(master)][1:]
    field.counter.muls += len(master) - 1
    dvals = [field.zero] * n
    _eval_down(field, deriv, 0, n, nodes, dvals, omega_cache)
    cs = field.mul_many(ys, field.batch_inv(dvals))
    return _combine_up(field, cs, 0, n, nodes, omega_cache)


def wants_fast_eval(field: Field, npoints: int) -> bool:
    """Should ``evaluate_many`` take the transform path right now?

    True only under the ``"ntt"`` interpolation mode *and* when
    :func:`ntt_applicable` holds — so the default modes are untouched.
    """
    from repro.poly import barycentric

    return barycentric.cache_mode() == "ntt" and ntt_applicable(field, npoints)
