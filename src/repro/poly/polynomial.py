"""Dense univariate polynomials over a :class:`~repro.fields.base.Field`.

Coefficients are stored low-degree first; the zero polynomial has an empty
coefficient list and degree -1.  Instances are immutable.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.fields.base import Element, Field


class Polynomial:
    """An immutable polynomial ``c[0] + c[1] x + ... + c[d] x^d``."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field: Field, coeffs: Sequence[Element]):
        trimmed = list(coeffs)
        while trimmed and trimmed[-1] == field.zero:
            trimmed.pop()
        self.field = field
        self.coeffs = tuple(trimmed)

    # -- constructors -------------------------------------------------------
    @classmethod
    def zero(cls, field: Field) -> "Polynomial":
        return cls(field, [])

    @classmethod
    def constant(cls, field: Field, value: Element) -> "Polynomial":
        return cls(field, [value])

    @classmethod
    def random(cls, field: Field, degree: int, rng, constant: Element = None) -> "Polynomial":
        """A uniformly random polynomial of degree <= ``degree``.

        When ``constant`` is given, the coefficient of ``x^0`` is fixed to
        it — exactly how Shamir sharing hides a secret at the origin.
        """
        coeffs = [field.random(rng) for _ in range(degree + 1)]
        if constant is not None:
            coeffs[0] = constant
        return cls(field, coeffs)

    # -- basic queries -------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree of the polynomial; the zero polynomial has degree -1."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return not self.coeffs

    def coefficient(self, i: int) -> Element:
        """Coefficient of ``x^i`` (zero beyond the stored degree)."""
        return self.coeffs[i] if 0 <= i < len(self.coeffs) else self.field.zero

    # -- evaluation ----------------------------------------------------------
    def __call__(self, x: Element) -> Element:
        """Evaluate at ``x`` by Horner's rule (``degree`` mul/add pairs)."""
        f = self.field
        result = f.zero
        for c in reversed(self.coeffs):
            result = f.add(f.mul(result, x), c)
        return result

    def evaluate_many(self, xs: Sequence[Element]) -> List[Element]:
        """Evaluate at every point of ``xs`` in one shared Horner sweep.

        A single pass over the coefficients updates all accumulators via
        the field's vectorized ``axpy_many`` — the same mul/add totals as
        per-point Horner, but one batched step per coefficient instead of
        ``len(xs)`` interleaved scalar calls.  Under the ``"ntt"``
        interpolation mode, qualifying jobs (GF(p), wide enough) switch
        to the O(n log^2 n) remainder-tree evaluation instead.
        """
        f = self.field
        xs = list(xs)
        if not xs:
            return []
        if len(xs) >= 32 and len(self.coeffs) >= 2:
            from repro.poly import fast_eval

            if fast_eval.wants_fast_eval(f, len(xs)):
                return fast_eval.fast_eval_many(f, list(self.coeffs), xs)
        acc = [f.zero] * len(xs)
        for c in reversed(self.coeffs):
            acc = f.axpy_many(acc, xs, c)
        return acc

    # -- arithmetic ------------------------------------------------------------
    def __add__(self, other: "Polynomial") -> "Polynomial":
        f = self.field
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        out = list(a)
        for i, c in enumerate(b):
            out[i] = f.add(out[i], c)
        return Polynomial(f, out)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        f = self.field
        size = max(len(self.coeffs), len(other.coeffs))
        out = [
            f.sub(self.coefficient(i), other.coefficient(i))
            for i in range(size)
        ]
        return Polynomial(f, out)

    def __neg__(self) -> "Polynomial":
        return Polynomial(self.field, [self.field.neg(c) for c in self.coeffs])

    def __mul__(self, other: "Polynomial") -> "Polynomial":
        f = self.field
        if self.is_zero() or other.is_zero():
            return Polynomial.zero(f)
        out = [f.zero] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == f.zero:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = f.add(out[i + j], f.mul(a, b))
        return Polynomial(f, out)

    def scale(self, scalar: Element) -> "Polynomial":
        f = self.field
        return Polynomial(f, [f.mul(scalar, c) for c in self.coeffs])

    def divmod(self, divisor: "Polynomial") -> tuple:
        """Polynomial division with remainder."""
        f = self.field
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        remainder = list(self.coeffs)
        dd = divisor.degree
        inv_lead = f.inv(divisor.coeffs[-1])
        quotient = [f.zero] * max(0, len(remainder) - dd)
        for shift in range(len(remainder) - dd - 1, -1, -1):
            coeff = f.mul(remainder[shift + dd], inv_lead)
            if coeff == f.zero:
                continue
            quotient[shift] = coeff
            for i, c in enumerate(divisor.coeffs):
                remainder[shift + i] = f.sub(remainder[shift + i], f.mul(coeff, c))
        return Polynomial(f, quotient), Polynomial(f, remainder)

    # -- comparisons --------------------------------------------------------
    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Polynomial)
            and self.field is other.field
            and self.coeffs == other.coeffs
        )

    def __hash__(self) -> int:
        return hash((id(self.field), self.coeffs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Polynomial(deg={self.degree}, coeffs={self.coeffs!r})"


def evaluate_polys(
    field: Field,
    polys: Sequence[Polynomial],
    xs: Sequence[Element],
) -> List[List[Element]]:
    """``[p.evaluate_many(xs) for p in polys]`` as grouped wide sweeps.

    The Batch-VSS dealing shape: G polynomials evaluated at the same m
    points.  Polynomials are grouped by coefficient count and each group
    swept with one width-``len(group) * m`` :meth:`Field.fma_many` per
    coefficient — identical per-element op totals (no padding), but the
    vectorized backends see width ``G*m`` instead of ``m``.
    """
    xs = list(xs)
    results: List[List[Element]] = [[] for _ in polys]
    if not xs or not polys:
        return results
    m = len(xs)
    groups: dict = {}
    for i, p in enumerate(polys):
        if p.field is not field:
            raise ValueError("evaluate_polys requires polynomials over `field`")
        groups.setdefault(len(p.coeffs), []).append(i)
    for ncoeff, idxs in groups.items():
        if ncoeff == 0:
            for i in idxs:
                results[i] = [field.zero] * m
            continue
        if len(idxs) == 1:
            # a lone group: the plain shared sweep already is the batch
            results[idxs[0]] = polys[idxs[0]].evaluate_many(xs)
            continue
        xs_tiled = xs * len(idxs)
        acc = [field.zero] * (m * len(idxs))
        for ci in range(ncoeff - 1, -1, -1):
            cs: List[Element] = []
            for i in idxs:
                cs.extend([polys[i].coeffs[ci]] * m)
            acc = field.fma_many(acc, xs_tiled, cs)
        for slot, i in enumerate(idxs):
            results[i] = acc[slot * m:(slot + 1) * m]
    return results


def horner_batch(field: Field, values: Sequence[Element], r: Element) -> Element:
    """The paper's batched share combination (Fig. 3, step 2).

    Computes ``r^M * values[M-1] + ... + r * values[0]`` via the nested
    form the paper gives: ``((...((r*v_M + v_{M-1}) r + v_{M-2})...) r
    + v_1) r`` — i.e. ``M`` multiplications and ``M-1`` additions.
    """
    if not values:
        return field.zero
    acc = values[-1]
    for v in reversed(values[:-1]):
        acc = field.add(field.mul(acc, r), v)
    return field.mul(acc, r)


def horner_batch_many(
    field: Field,
    rows: Sequence[Sequence[Element]],
    r: Element,
) -> List[Element]:
    """:func:`horner_batch` across many rows sharing one challenge ``r``.

    Equal to ``[horner_batch(field, row, r) for row in rows]`` — the
    combination is ``sum_i row[i] * r^(i+1)``, so building the shared
    power basis ``r^1 .. r^M`` once (``M - 1`` multiplications) turns
    every row into one entry of a batched :meth:`Field.dot_rows`: the
    same ``M`` mul / ``M - 1`` add totals per row, one wide kernel
    instead of ``len(rows)`` narrow Horner chains.
    """
    rows = [list(row) for row in rows]
    if not rows:
        return []
    m = len(rows[0])
    for row in rows:
        if len(row) != m:
            raise ValueError("horner_batch_many requires equal-length rows")
    if m == 0:
        return [field.zero] * len(rows)
    powers = [r]
    for _ in range(m - 1):
        powers.append(field.mul(powers[-1], r))
    return field.dot_rows(rows, powers)
