"""Gaussian elimination over an arbitrary finite field.

Used by the Berlekamp-Welch decoder to solve its key equation.  Matrices
are lists of row lists of field elements.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fields.base import Element, Field


def solve_linear_system(
    field: Field, matrix: List[List[Element]], rhs: List[Element]
) -> Optional[List[Element]]:
    """Any solution ``x`` of ``matrix @ x == rhs``, or None if inconsistent.

    Performs fraction-free row reduction with partial "pivoting" (any
    nonzero pivot works in a field).  Free variables are set to zero.
    """
    rows = len(matrix)
    if rows == 0:
        return []
    cols = len(matrix[0])
    a = [list(row) + [b] for row, b in zip(matrix, rhs)]

    pivot_cols: List[int] = []
    row = 0
    for col in range(cols):
        pivot_row = next(
            (r for r in range(row, rows) if a[r][col] != field.zero), None
        )
        if pivot_row is None:
            continue
        a[row], a[pivot_row] = a[pivot_row], a[row]
        inv_pivot = field.inv(a[row][col])
        a[row] = [field.mul(v, inv_pivot) for v in a[row]]
        for r in range(rows):
            if r == row or a[r][col] == field.zero:
                continue
            factor = a[r][col]
            a[r] = [
                field.sub(v, field.mul(factor, w)) for v, w in zip(a[r], a[row])
            ]
        pivot_cols.append(col)
        row += 1
        if row == rows:
            break

    # rows below the pivot rank must be all-zero including the RHS
    for r in range(row, rows):
        if any(v != field.zero for v in a[r][:cols]):
            continue  # unreachable after full elimination, kept for safety
        if a[r][cols] != field.zero:
            return None
    for r in range(rows):
        if all(v == field.zero for v in a[r][:cols]) and a[r][cols] != field.zero:
            return None

    solution = [field.zero] * cols
    for r, col in enumerate(pivot_cols):
        solution[col] = a[r][cols]
    return solution
