"""Berlekamp-Welch decoding of Reed-Solomon-coded shares.

The paper cites the Berlekamp-Welch decoder [5] as the method for
interpolating "a polynomial F(x) through the shares in S" when up to ``t``
of the shares may be corrupted by faulty players (Fig. 4 step 5, Fig. 6
step 2).

Given N points of which at most ``e`` are wrong and the underlying
polynomial has degree <= t, decoding succeeds whenever
``N >= t + 2e + 1``.  The decoder solves the key equation
``Q(x_i) = y_i * E(x_i)`` for an error-locator ``E`` (monic, degree e) and
``Q`` (degree <= t + e), then recovers ``F = Q / E``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.poly import barycentric
from repro.poly.lagrange import _require_distinct
from repro.poly.linalg import solve_linear_system
from repro.poly.polynomial import Polynomial

Point = Tuple[Element, Element]


class DecodingError(Exception):
    """No polynomial of the requested degree explains enough of the points."""


def max_correctable_errors(num_points: int, degree: int) -> int:
    """Largest ``e`` with ``num_points >= degree + 2e + 1``."""
    return max(0, (num_points - degree - 1) // 2)


def berlekamp_welch(
    field: Field,
    points: Sequence[Point],
    degree: int,
    max_errors: int = None,
) -> Tuple[Polynomial, List[int]]:
    """Decode ``points`` to a polynomial of degree <= ``degree``.

    Returns ``(F, good_indices)`` where ``good_indices`` lists the
    positions whose values match ``F``.  Raises :class:`DecodingError` when
    no degree-``degree`` polynomial agrees with at least
    ``len(points) - max_errors`` of the points.

    Counted as a single interpolation in the field's counter, matching the
    paper's accounting ("the Berlekamp-Welch decoder can be used to
    implement this operation", Section 2).
    """
    points = list(points)
    n = len(points)
    xs = [x for x, _ in points]
    _require_distinct(xs)
    if n < degree + 1:
        raise DecodingError(f"need at least {degree + 1} points, got {n}")
    if max_errors is None:
        max_errors = max_correctable_errors(n, degree)
    max_errors = min(max_errors, max_correctable_errors(n, degree))
    field.counter.interpolations += 1

    # Optimistic fast path: interpolate through the first degree+1 points
    # (a cached, inversion-free barycentric build) and accept if enough of
    # the remaining points agree.  Any degree-<=degree polynomial matching
    # >= n - max_errors points is unique (two candidates would agree on
    # >= n - 2*max_errors >= degree + 1 common points), so when this
    # succeeds it returns exactly what the key-equation solve below would
    # — without the O(n^3) linear system.  Corrupted head points simply
    # fail the match count and fall through to the full decoder.
    if barycentric.cache_mode() != "off":
        candidate = optimistic_candidate(field, points[: degree + 1])
        values = candidate.evaluate_many(xs)
        good = [i for i, (v, (_, y)) in enumerate(zip(values, points)) if v == y]
        if len(good) >= n - max_errors:
            return candidate, good

    return full_decode(field, points, degree, max_errors)


def optimistic_candidate(field: Field, points: Sequence[Point]) -> Polynomial:
    """The head-interpolation candidate the optimistic fast path tests.

    Exposed so batched decoders (``decode_batched_many``) can build many
    candidates and verify them in one bulk evaluation sweep while paying
    exactly the ops :func:`berlekamp_welch` would.
    """
    if barycentric.cache_mode() == "ntt":
        from repro.poly import fast_eval

        if fast_eval.ntt_applicable(field, len(points)):
            return Polynomial(
                field, fast_eval.fast_interpolate_coeffs(field, list(points))
            )
    return barycentric.cache_for(field).polynomial(list(points))


def full_decode(
    field: Field,
    points: Sequence[Point],
    degree: int,
    max_errors: int,
) -> Tuple[Polynomial, List[int]]:
    """The key-equation decoder (no optimistic pre-pass, no re-metering)."""
    points = list(points)
    n = len(points)
    for e in range(max_errors, -1, -1):
        candidate = _try_decode(field, points, degree, e)
        if candidate is None:
            continue
        good = [i for i, (x, y) in enumerate(points) if candidate(x) == y]
        if len(good) >= n - max_errors:
            return candidate, good
    raise DecodingError(
        f"no degree-{degree} polynomial matches >= {n - max_errors} of {n} points"
    )


def _try_decode(field: Field, points: List[Point], t: int, e: int):
    """Solve the key equation for exactly ``e`` allowed errors."""
    # unknowns: Q_0..Q_{t+e} then E_0..E_{e-1} (E is monic of degree e)
    q_terms = t + e + 1
    rows = []
    rhs = []
    for x, y in points:
        powers = [field.one]
        for _ in range(t + e):
            powers.append(field.mul(powers[-1], x))
        row = powers[:q_terms]
        # -y * x^j for the E coefficients
        row += [field.neg(field.mul(y, powers[j])) for j in range(e)]
        rows.append(row)
        # RHS: y * x^e   (from the monic leading term of E)
        rhs.append(field.mul(y, powers[e]))
    solution = solve_linear_system(field, rows, rhs)
    if solution is None:
        return None
    q_poly = Polynomial(field, solution[:q_terms])
    e_poly = Polynomial(field, solution[q_terms:] + [field.one])
    quotient, remainder = q_poly.divmod(e_poly)
    if not remainder.is_zero():
        return None
    if quotient.degree > t:
        return None
    return quotient
