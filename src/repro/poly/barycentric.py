"""Barycentric Lagrange interpolation with a cross-call weight cache.

Every protocol in the paper is priced in interpolations — Batch-VSS is "2
polynomial interpolations per player" (Lemma 4), Coin-Gen measures ~n+1
per player (Theorem 2) — and they all interpolate over the *same* point
set {1..n} again and again: one exposure per coin, one decode per Bit-Gen
instance, M coins against one qualified set.  The classic Lagrange code in
:mod:`repro.poly.lagrange` pays O(n^2) multiplications *and O(n) modular
inversions* on every call.  This module splits that cost:

* **once per point set** — barycentric weights
  ``w_i = 1 / prod_{j != i}(x_i - x_j)`` are built with Montgomery batch
  inversion (one ``field.inv`` plus ``3(n-1)`` multiplications for all n
  inverses) and cached under the key ``frozenset(xs)``;
* **per query** — evaluating the interpolant at a fixed ``x0`` (the
  origin, for secret reconstruction) is a cached-coefficient dot product:
  n multiplications, n-1 additions, and **zero inversions**; building the
  full coefficient vector (the Batch-VSS degree check) is a cached-basis
  linear combination, again inversion-free.

Metering contract (see docs/API.md "Performance architecture"): cache
*construction* goes through the normal metered field operations, so the
one-time cost is visible in the OpCounter; cache *hits* perform — and
therefore meter — no inversions.  The ``interpolations`` counter is bumped
once per logical interpolation by the wrappers, exactly like the classic
functions, so the Lemma 2/4/6 checks are unaffected.

Four modes support the benchmark ablations (``interpolation_mode``):

* ``"shared"`` (default) — one long-lived cache per field; repeated point
  sets hit.
* ``"fresh"`` — a new cache per call: batch inversion still applies, but
  nothing is reused across calls (isolates the batch-inversion speedup).
* ``"off"`` — fall through to the classic O(n^2)-inversions code paths
  (the pre-optimization baseline, for before/after measurements).
* ``"ntt"`` — like ``"shared"``, but interpolation and multipoint
  evaluation switch to the O(n log^2 n) transform algorithms of
  :mod:`repro.poly.fast_eval` whenever the field and job qualify
  (GF(p), smooth ``p - 1``, enough points); otherwise identical to
  ``"shared"``.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.poly.lagrange import (
    _require_distinct,
    interpolate,
    interpolate_at,
)
from repro.poly.polynomial import Polynomial

Point = Tuple[Element, Element]

#: "shared" | "fresh" | "off" — see module docstring.
_MODE = "shared"

_MODES = ("shared", "fresh", "off", "ntt")


def cache_mode() -> str:
    """The active interpolation-cache mode."""
    return _MODE


@contextmanager
def interpolation_mode(mode: str):
    """Temporarily switch the cache mode (benchmark ablations)."""
    global _MODE
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    previous = _MODE
    _MODE = mode
    try:
        yield
    finally:
        _MODE = previous


class _NodeSet:
    """Precomputed data for one set of interpolation abscissas."""

    __slots__ = ("field", "xs", "index", "weights", "_coeffs_at", "_basis")

    def __init__(self, field: Field, xs_key: frozenset):
        self.field = field
        # canonical order so every holder of the same set agrees
        self.xs: Tuple[Element, ...] = tuple(
            sorted(xs_key, key=field.to_int)
        )
        self.index: Dict[Element, int] = {x: i for i, x in enumerate(self.xs)}
        self.weights = self._build_weights()
        self._coeffs_at: Dict[Element, List[Element]] = {}
        self._basis: Optional[List[List[Element]]] = None

    # -- one-time construction --------------------------------------------
    def _build_weights(self) -> List[Element]:
        """``w_i = 1 / prod_{j != i}(x_i - x_j)`` via one batch inversion."""
        f = self.field
        xs = self.xs
        if len(xs) == 1:
            return [f.one]
        dens = []
        for i, xi in enumerate(xs):
            d = f.one
            for j, xj in enumerate(xs):
                if j != i:
                    d = f.mul(d, f.sub(xi, xj))
            dens.append(d)
        return f.batch_inv(dens)

    def coefficients_at(self, x0: Element) -> List[Element]:
        """Effective Lagrange coefficients ``L_i(x0)`` (cached per x0).

        ``f(x0) = sum_i L_i(x0) * y_i`` for any degree-<n data ``y``.
        First call per ``x0`` costs one batch inversion; later calls are
        dictionary lookups (zero field operations).
        """
        cached = self._coeffs_at.get(x0)
        if cached is not None:
            return cached
        f = self.field
        xs = self.xs
        if x0 in self.index:
            coeffs = [f.one if x == x0 else f.zero for x in xs]
        else:
            diffs = [f.sub(x0, x) for x in xs]
            ell = f.one  # l(x0) = prod_j (x0 - x_j)
            for d in diffs:
                ell = f.mul(ell, d)
            inv_diffs = f.batch_inv(diffs)
            scaled = f.mul_many(self.weights, inv_diffs)
            coeffs = f.mul_many(scaled, [ell] * len(xs))
        self._coeffs_at[x0] = coeffs
        return coeffs

    def basis_rows(self) -> List[List[Element]]:
        """Coefficient vectors of the Lagrange basis polynomials L_i(x).

        Built lazily, once per point set: the master polynomial
        ``N(x) = prod_j (x - x_j)`` costs O(n^2) multiplications, each
        basis row is one synthetic division ``N / (x - x_i)`` scaled by
        the barycentric weight — no inversions at all (the weights
        already hold them).
        """
        if self._basis is not None:
            return self._basis
        f = self.field
        xs = self.xs
        n = len(xs)
        # master: N(x) = prod (x - x_j), degree n, monic
        master = [f.one]
        for x in xs:
            nx = f.neg(x)
            nxt = [f.zero] * (len(master) + 1)
            for i, c in enumerate(master):
                nxt[i] = f.add(nxt[i], f.mul(c, nx))
                nxt[i + 1] = f.add(nxt[i + 1], c)
            master = nxt
        rows: List[List[Element]] = []
        for i, xi in enumerate(xs):
            # synthetic division: q(x) = N(x) / (x - x_i), degree n-1
            q = [f.zero] * n
            carry = master[n]  # = one (monic)
            for d in range(n - 1, -1, -1):
                q[d] = carry
                carry = f.add(master[d], f.mul(xi, carry))
            rows.append(f.mul_many(q, [self.weights[i]] * n))
        self._basis = rows
        return rows

    # -- queries ------------------------------------------------------------
    def _aligned_ys(self, points: Sequence[Point]) -> List[Element]:
        ys: List[Element] = [self.field.zero] * len(self.xs)
        for x, y in points:
            ys[self.index[x]] = y
        return ys

    def eval_at(self, points: Sequence[Point], x0: Element) -> Element:
        """Interpolant of ``points`` evaluated at ``x0`` (inversion-free on hit)."""
        return self.field.dot(self.coefficients_at(x0), self._aligned_ys(points))

    def polynomial(self, points: Sequence[Point]) -> Polynomial:
        """The full interpolating polynomial (inversion-free on hit)."""
        f = self.field
        rows = self.basis_rows()
        ys = self._aligned_ys(points)
        n = len(self.xs)
        acc = [f.zero] * n
        for i, y in enumerate(ys):
            if y == f.zero:
                continue
            scaled = f.mul_many(rows[i], [y] * n)
            acc = [f.add(a, s) for a, s in zip(acc, scaled)]
        return Polynomial(f, acc)


class InterpolationCache:
    """Per-field cache of barycentric interpolation data, keyed by point set.

    ``max_sets`` bounds memory: least-recently-used point sets are evicted
    (protocol runs touch a handful of sets — {1..n} and its stable
    subsets — so eviction is a safety valve, not a steady-state event).
    """

    def __init__(self, field: Field, max_sets: int = 256):
        self.field = field
        self.max_sets = max_sets
        self._sets: "OrderedDict[frozenset, _NodeSet]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def node_set(self, xs: Sequence[Element]) -> _NodeSet:
        """The (possibly freshly built) precomputation for ``xs``."""
        key = xs if isinstance(xs, frozenset) else frozenset(xs)
        node = self._sets.get(key)
        if node is not None:
            self.hits += 1
            self._sets.move_to_end(key)
            return node
        self.misses += 1
        node = _NodeSet(self.field, key)
        self._sets[key] = node
        while len(self._sets) > self.max_sets:
            self._sets.popitem(last=False)
        return node

    def eval_at(self, points: Sequence[Point], x0: Element) -> Element:
        node = self.node_set([x for x, _ in points])
        return node.eval_at(points, x0)

    def polynomial(self, points: Sequence[Point]) -> Polynomial:
        node = self.node_set([x for x, _ in points])
        return node.polynomial(points)

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "sets": len(self._sets),
        }


_SHARED: "weakref.WeakKeyDictionary[Field, InterpolationCache]" = (
    weakref.WeakKeyDictionary()
)


def shared_cache(field: Field) -> InterpolationCache:
    """The long-lived cache attached to ``field`` (created on first use)."""
    cache = _SHARED.get(field)
    if cache is None:
        cache = InterpolationCache(field)
        _SHARED[field] = cache
    return cache


def cache_for(field: Field) -> InterpolationCache:
    """The cache the current mode prescribes (shared or throwaway)."""
    if _MODE == "fresh":
        return InterpolationCache(field)
    return shared_cache(field)


# ---------------------------------------------------------------------------
# drop-in replacements for the classic lagrange entry points
# ---------------------------------------------------------------------------

def interpolate_cached(field: Field, points: Sequence[Point]) -> Polynomial:
    """Cache-backed equivalent of :func:`repro.poly.lagrange.interpolate`.

    Same contract: rejects duplicate abscissas, bumps the interpolation
    counter once.  Zero inversions when the point set has been seen.
    """
    points = list(points)
    _require_distinct([x for x, _ in points])
    if _MODE == "off":
        return interpolate(field, points)
    field.counter.interpolations += 1
    if _MODE == "ntt":
        from repro.poly import fast_eval

        if fast_eval.ntt_applicable(field, len(points)):
            return Polynomial(
                field, fast_eval.fast_interpolate_coeffs(field, points)
            )
    return cache_for(field).polynomial(points)


def interpolate_at_cached(
    field: Field, points: Sequence[Point], x0: Element
) -> Element:
    """Cache-backed equivalent of :func:`repro.poly.lagrange.interpolate_at`."""
    points = list(points)
    _require_distinct([x for x, _ in points])
    if _MODE == "off":
        return interpolate_at(field, points, x0)
    field.counter.interpolations += 1
    return cache_for(field).eval_at(points, x0)
