"""Polynomials over finite fields: evaluation, interpolation, decoding.

The paper treats "the interpolation of a polynomial as a basic step"
(Section 2) and relies on the Berlekamp-Welch decoder to interpolate in
the presence of up to ``t`` corrupted shares (Figs. 4 and 6).
"""

from repro.poly.polynomial import Polynomial, horner_batch
from repro.poly.lagrange import interpolate, interpolate_at, check_degree
from repro.poly.berlekamp_welch import berlekamp_welch, DecodingError

__all__ = [
    "Polynomial",
    "horner_batch",
    "interpolate",
    "interpolate_at",
    "check_degree",
    "berlekamp_welch",
    "DecodingError",
]
