"""Polynomials over finite fields: evaluation, interpolation, decoding.

The paper treats "the interpolation of a polynomial as a basic step"
(Section 2) and relies on the Berlekamp-Welch decoder to interpolate in
the presence of up to ``t`` corrupted shares (Figs. 4 and 6).

Two interpolation layers are provided: the classic Lagrange reference
implementations (:mod:`repro.poly.lagrange`) and the cached barycentric
layer the protocol hot paths use (:mod:`repro.poly.barycentric`), which
precomputes per-point-set weights with one batch inversion and answers
repeated queries with zero inversions.
"""

from repro.poly.polynomial import Polynomial, horner_batch
from repro.poly.lagrange import (
    check_degree,
    interpolate,
    interpolate_at,
    lagrange_coefficients_at_zero,
)
from repro.poly.barycentric import (
    InterpolationCache,
    interpolate_at_cached,
    interpolate_cached,
    interpolation_mode,
    shared_cache,
)
from repro.poly.berlekamp_welch import berlekamp_welch, DecodingError

__all__ = [
    "Polynomial",
    "horner_batch",
    "interpolate",
    "interpolate_at",
    "check_degree",
    "lagrange_coefficients_at_zero",
    "InterpolationCache",
    "interpolate_cached",
    "interpolate_at_cached",
    "interpolation_mode",
    "shared_cache",
    "berlekamp_welch",
    "DecodingError",
]
