"""Scenario space: the joint grid the campaign driver sweeps.

A :class:`Scenario` pins every knob that makes two protocol executions
*different things*: runtime, scheduler policy, field, (n, t), batch size
M, protocol seed, scheduler seed, adversary program + corrupt set, and
the :class:`~repro.net.faults.FaultPlane` chain.  It is frozen and
hashable, round-trips through JSON, and fingerprints via
:class:`~repro.obs.manifest.RunManifest` — one scenario is one cell of
the campaign's coverage map, and the same scenario always denotes the
same execution.

A :class:`ScenarioSpace` is a cartesian grid over those axes with the
model-validity rules applied (see :meth:`Scenario.valid`): enumeration
is deterministic, and :meth:`ScenarioSpace.sample` draws a seeded random
slice for bounded CI soaks.  Adversary axis entries use the compact
``"kind:pid+pid"`` spelling so the whole space definition stays
hashable and JSON-trivial, like fault-op specs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.net.faults import fault_targets
from repro.obs.manifest import RunManifest

LOCKSTEP = "lockstep"
ASYNC = "async"
RUNTIMES = (LOCKSTEP, ASYNC)

SCHEDULERS = ("lockstep", "permuted", "random")

HONEST = "honest"


def parse_adversary(spec: str) -> Tuple[str, Tuple[int, ...]]:
    """``"silent:4+7"`` -> ``("silent", (4, 7))``; ``"honest"`` -> no set."""
    kind, _, rest = spec.partition(":")
    kind = kind.strip()
    corrupt: Tuple[int, ...] = ()
    if rest.strip():
        corrupt = tuple(sorted(int(x) for x in rest.split("+")))
    if kind == HONEST and corrupt:
        raise ValueError(f"honest adversary takes no corrupt set: {spec!r}")
    if kind != HONEST and not corrupt:
        raise ValueError(f"adversary {kind!r} needs a corrupt set: {spec!r}")
    return kind, corrupt


@dataclass(frozen=True)
class Scenario:
    """One cell of the campaign space: a fully pinned protocol execution."""

    runtime: str = LOCKSTEP
    scheduler: str = "lockstep"
    field: str = "gf2k:16"
    n: int = 7
    t: int = 1
    M: int = 1
    seed: int = 0
    sched_seed: int = 0
    adversary: str = HONEST  #: adversary kind (see repro.campaign.adversaries)
    corrupt: Tuple[int, ...] = ()  #: declared-corrupt player ids (sorted)
    faults: Tuple[str, ...] = ()  #: fault-op chain spec (parse_fault_op grammar)

    # -- identity ---------------------------------------------------------
    def cell_id(self) -> str:
        """10-hex-char content id over the canonical JSON encoding."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]

    def manifest(self, field=None) -> RunManifest:
        """The cell's :class:`RunManifest` (pass the live field for backend)."""
        return RunManifest.capture(
            field=field if field is not None else self.field,
            protocol="async_coin" if self.runtime == ASYNC else "coin_gen",
            n=self.n, t=self.t, M=self.M, seed=self.seed,
            sched_seed=self.sched_seed, scheduler=self.scheduler,
            runtime=self.runtime,
            adversary=None if self.adversary == HONEST else self.adversary,
            corrupt=",".join(map(str, self.corrupt)) or None,
            faults=";".join(self.faults) or None,
        )

    # -- model ------------------------------------------------------------
    def suspects(self) -> Set[int]:
        """Players whose participation this cell corrupts.

        The union of the declared corrupt set and the fault chain's
        targets — oracles exclude exactly these from unanimity and
        conformance checks, and forensics accusations must stay inside
        this set (soundness) and cover the corrupt set (completeness,
        for deterministically detectable adversaries).
        """
        return set(self.corrupt) | fault_targets(self.faults)

    def within_fault_model(self) -> bool:
        """At most ``t`` interfered-with players (the paper's model)."""
        return len(self.suspects()) <= self.t

    def valid(self) -> bool:
        """Is this combination of axes runnable at all?

        Async cells run the guarded exposure under a random-order
        scheduler; lockstep-only adversary programs (everything beyond
        ``honest``/``lurker``) speak the round-based ``List[Send]``
        protocol and cannot ride the async runtime.  Destination-only
        drops starve an async receiver's quorum forever, so they are
        lockstep-only too.
        """
        if self.runtime not in RUNTIMES:
            return False
        if self.scheduler not in SCHEDULERS:
            return False
        if not all(1 <= pid <= self.n for pid in self.corrupt):
            return False
        if self.runtime == ASYNC:
            from repro.campaign.adversaries import kind_for

            if self.scheduler != "random":
                return False
            if ASYNC not in kind_for(self.adversary).runtimes:
                return False
            for op in self.faults:
                if not _async_safe_fault(op):
                    return False
        return True

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "runtime": self.runtime, "scheduler": self.scheduler,
            "field": self.field, "n": self.n, "t": self.t, "M": self.M,
            "seed": self.seed, "sched_seed": self.sched_seed,
            "adversary": self.adversary, "corrupt": list(self.corrupt),
            "faults": list(self.faults),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        known = {f.name for f in dataclass_fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        if "corrupt" in kwargs:
            kwargs["corrupt"] = tuple(kwargs["corrupt"])
        if "faults" in kwargs:
            kwargs["faults"] = tuple(kwargs["faults"])
        return cls(**kwargs)


def _async_safe_fault(op: str) -> bool:
    """Can this fault op run on the async runtime without starving it?"""
    from repro.net.faults import DROP, SILENCE, parse_fault_op

    params = parse_fault_op(op)
    if params["kind"] == SILENCE:
        return False
    if params["kind"] == DROP:
        # a source-targeted drop removes one sender, which ≤ t quorums
        # tolerate; a destination-only drop starves that receiver forever
        return params.get("src") is not None
    return True


@dataclass(frozen=True)
class ScenarioSpace:
    """A cartesian grid over scenario axes, with validity rules applied.

    ``adversaries`` entries are compact ``"kind:pid+pid"`` strings
    (``"honest"`` for none); ``fault_chains`` entries are tuples of
    fault-op spec strings (``()`` for a clean network).  Cells that fail
    :meth:`Scenario.valid` — or, when ``enforce_fault_model`` is set,
    leave the ≤ t fault model — are skipped during enumeration, so a
    space can declare generous axes and still only yield runnable cells.
    """

    runtimes: Tuple[str, ...] = (LOCKSTEP,)
    schedulers: Tuple[str, ...] = ("lockstep",)
    fields: Tuple[str, ...] = ("gf2k:16",)
    sizes: Tuple[Tuple[int, int], ...] = ((7, 1),)  #: (n, t) pairs
    Ms: Tuple[int, ...] = (1,)
    seeds: Tuple[int, ...] = (0,)
    sched_seeds: Tuple[int, ...] = (0,)
    adversaries: Tuple[str, ...] = (HONEST,)
    fault_chains: Tuple[Tuple[str, ...], ...] = ((),)
    enforce_fault_model: bool = True

    def enumerate(self) -> Iterator[Scenario]:
        """All valid cells, in deterministic axis order."""
        for (runtime, scheduler, field, (n, t), M, seed, sched_seed,
             adversary, chain) in itertools.product(
                self.runtimes, self.schedulers, self.fields, self.sizes,
                self.Ms, self.seeds, self.sched_seeds, self.adversaries,
                self.fault_chains):
            kind, corrupt = parse_adversary(adversary)
            cell = Scenario(
                runtime=runtime, scheduler=scheduler, field=field,
                n=n, t=t, M=M, seed=seed, sched_seed=sched_seed,
                adversary=kind, corrupt=corrupt, faults=tuple(chain),
            )
            if not cell.valid():
                continue
            if self.enforce_fault_model and not cell.within_fault_model():
                continue
            yield cell

    def cells(self) -> List[Scenario]:
        return list(self.enumerate())

    def sample(self, count: int, seed: int = 0) -> List[Scenario]:
        """A seeded random slice of the space (for ``--budget`` soaks).

        Same ``(space, count, seed)`` ⇒ same slice, in the same order —
        the determinism the byte-identical-ledger contract rests on.
        """
        cells = self.cells()
        if count >= len(cells):
            return cells
        rng = random.Random(seed)
        return rng.sample(cells, count)


def default_space(
    runtime: str = "both",
    seeds: Tuple[int, ...] = (0, 1, 2),
    sched_seeds: Tuple[int, ...] = (0, 1),
    clean_only: bool = False,
) -> ScenarioSpace:
    """The stock campaign space at (n, t) = (7, 1).

    Lockstep cells sweep all three scheduler policies, every adversary
    kind that misbehaves deterministically enough for soak use, and
    single-target fault chains of every kind; async cells sweep the
    random-order delivery space with the async-safe fault kinds.  All
    cells stay inside the ≤ t fault model, so a full run of this space
    is expected to report **zero** violations — any violation is a bug
    in the protocol stack, not an artifact of an over-powered adversary.
    """
    runtimes = RUNTIMES if runtime == "both" else (runtime,)
    adversaries: Tuple[str, ...] = (HONEST,)
    fault_chains: Tuple[Tuple[str, ...], ...] = ((),)
    if not clean_only:
        adversaries += ("silent:7", "crash:7", "equivocator:7", "echo:7",
                        "bad_share:7")
        fault_chains += (
            ("drop:src=7",),
            ("duplicate:src=7",),
            ("delay:src=7,by=2",),
            ("crash:pid=7,at=2",),
            ("silence:pid=7,rounds=2+3",),
            ("duplicate:src=7,dst=1", "delay:src=7,by=1"),
        )
    return ScenarioSpace(
        runtimes=runtimes,
        schedulers=SCHEDULERS,
        sizes=((7, 1),),
        seeds=seeds,
        sched_seeds=sched_seeds,
        adversaries=adversaries,
        fault_chains=fault_chains,
    )


def known_bad_scenarios() -> List[Scenario]:
    """Seeded scenarios that *must* trip the oracle (negative controls).

    Two deliberate breakages, one per failure mode the oracle guards:

    * ``bad_share`` with **t + 1** corrupt senders — beyond the decoding
      radius, so honest exposure fails (and any decode that did succeed
      could disagree): trips the coin oracle.
    * a ``lurker`` — declared corrupt but behaving honestly, so
      forensics (correctly) accuses nobody: a forced false negative
      that trips the forensics-completeness oracle.

    These are excluded from :func:`default_space`; the campaign CLI and
    tests run them to prove the oracle, shrinker, and triage report
    actually fire.
    """
    return [
        Scenario(adversary="bad_share", corrupt=(4, 7), seed=3),
        Scenario(adversary="lurker", corrupt=(5,), seed=1),
    ]


def shrink_reductions(cell: Scenario) -> Iterator[Scenario]:
    """Candidate one-step reductions of ``cell``, most aggressive first.

    The shrinker's deterministic agenda: halve M (then to 1), drop fault
    ops left to right, drop corrupt players in sorted order, zero the
    seeds.  Each candidate changes exactly one axis, so greedy descent
    terminates and is reproducible.
    """
    if cell.M > 1:
        yield replace(cell, M=1)
        if cell.M > 2:
            yield replace(cell, M=cell.M // 2)
        yield replace(cell, M=cell.M - 1)
    for index in range(len(cell.faults)):
        yield replace(
            cell, faults=cell.faults[:index] + cell.faults[index + 1:]
        )
    if len(cell.corrupt) > 1:
        for pid in cell.corrupt:
            remaining = tuple(p for p in cell.corrupt if p != pid)
            yield replace(cell, corrupt=remaining)
    if cell.seed != 0:
        yield replace(cell, seed=0)
    if cell.sched_seed != 0:
        yield replace(cell, sched_seed=0)


__all__ = [
    "ASYNC", "HONEST", "LOCKSTEP", "RUNTIMES", "SCHEDULERS",
    "Scenario", "ScenarioSpace", "default_space", "known_bad_scenarios",
    "parse_adversary", "shrink_reductions",
]
