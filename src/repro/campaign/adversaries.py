"""Adversary-kind registry: corrupt-player programs per campaign cell.

Each :class:`AdversaryKind` names one misbehaviour family and knows how
to build the ``faulty_programs`` dicts that
:func:`~repro.protocols.coin_gen.finalize.run_coin_gen` and
:func:`~repro.protocols.coin_gen.finalize.expose_coin` accept.  The
registry also carries the two facts the violation oracle needs:

* ``detectable`` — does this kind misbehave *deterministically* enough
  that forensics must implicate every corrupt player (a completeness /
  false-negative check)?  Soundness (no honest player accused) is
  checked for every kind regardless.
* ``runtimes`` — behavioural adversaries speak the round-based
  ``List[Send]`` protocol and are lockstep-only; the async runtime's
  adversary axis is the scheduler + fault chain instead.

Two kinds exist purely to arm the oracle's negative controls:
``bad_share`` (honest until expose, then garbage shares — inside the
decoding radius at ≤ t corruptions, undecodable beyond it) and
``lurker`` (declared corrupt, behaves honestly — a forced forensics
false negative; see :func:`repro.campaign.space.known_bad_scenarios`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.net.adversary import (
    crash_program,
    echo_noise_program,
    equivocator_program,
    silent_program,
)
from repro.net.simulator import multicast

LOCKSTEP = "lockstep"
ASYNC = "async"


def _rng_for(seed: int, pid: int) -> random.Random:
    """Per-(scenario seed, player) rng: adversary noise is cell-pinned."""
    return random.Random(seed * 9_176_941 + pid)


def _bad_share_expose(field, n: int, coin, rng: random.Random):
    """Expose-time traitor: multicast a garbage share of ``coin``.

    The share is a uniform field element under the coin's real tag, so
    it passes every syntactic filter and is only caught (at ≤ t
    corruptions) by Berlekamp-Welch exclusion — the deepest rule in
    :mod:`repro.obs.forensics`.  At t + 1 corruptions the honest
    decoders drop below the robust acceptance threshold and exposure
    fails: the campaign's canonical known-bad cell.
    """
    tag = "expose/" + coin.coin_id

    def program():
        yield [multicast((tag, field.random(rng)))]
        return None

    return program()


@dataclass(frozen=True)
class AdversaryKind:
    """One misbehaviour family and its oracle-relevant facts."""

    name: str
    detectable: bool  #: forensics must implicate every corrupt player
    runtimes: Tuple[str, ...] = (LOCKSTEP,)
    in_default_space: bool = True


KINDS: Dict[str, AdversaryKind] = {
    "honest": AdversaryKind("honest", detectable=False,
                            runtimes=(LOCKSTEP, ASYNC)),
    # deterministic misbehaviour: forensics completeness is checked
    "silent": AdversaryKind("silent", detectable=True),
    "crash": AdversaryKind("crash", detectable=True),
    "equivocator": AdversaryKind("equivocator", detectable=True),
    "echo": AdversaryKind("echo", detectable=True),
    "bad_share": AdversaryKind("bad_share", detectable=True),
    # negative control: honest behaviour under a corrupt declaration
    # forces a forensics false negative (see known_bad_scenarios)
    "lurker": AdversaryKind("lurker", detectable=True,
                            in_default_space=False),
}


def kind_for(name: str) -> AdversaryKind:
    try:
        return KINDS[name]
    except KeyError:
        raise ValueError(f"unknown adversary kind {name!r}") from None


def coin_gen_programs(
    kind: str, corrupt: Tuple[int, ...], n: int, seed: int
) -> Dict[int, Any]:
    """The ``faulty_programs`` dict for ``run_coin_gen`` under ``kind``."""
    kind_for(kind)  # validate early
    programs: Dict[int, Any] = {}
    for pid in corrupt:
        rng = _rng_for(seed, pid)
        if kind == "silent":
            programs[pid] = silent_program()
        elif kind == "crash":
            crash_round = 2 + (seed + pid) % 3
            programs[pid] = _crash_factory(crash_round)
        elif kind == "equivocator":
            programs[pid] = _equivocator_factory(n, rng)
        elif kind == "echo":
            programs[pid] = echo_noise_program(n, rng)
        # honest / lurker / bad_share: honest during Coin-Gen
    return programs


def expose_programs(
    kind: str, corrupt: Tuple[int, ...], field, n: int, outputs, h: int,
    seed: int,
) -> Dict[int, Any]:
    """The ``faulty_programs`` dict for ``expose_coin`` under ``kind``."""
    kind_for(kind)
    programs: Dict[int, Any] = {}
    for pid in corrupt:
        if kind == "bad_share":
            output = outputs.get(pid)
            if output is not None and output.success:
                programs[pid] = _bad_share_expose(
                    field, n, output.coins[h], _rng_for(seed, pid)
                )
            else:
                programs[pid] = None
        elif kind not in ("honest", "lurker"):
            # silent / crash / equivocator / echo corrupt players are
            # out of the protocol by expose time: absent, like a crash
            programs[pid] = None
    return programs


def _crash_factory(crash_round: int) -> Callable:
    return lambda honest: crash_program(crash_round, honest)


def _equivocator_factory(n: int, rng: random.Random) -> Callable:
    return lambda honest: equivocator_program(n, rng, honest)


__all__ = [
    "KINDS", "AdversaryKind", "coin_gen_programs", "expose_programs",
    "kind_for",
]
