"""Violation triage: cluster ledger rows by oracle + divergence signature.

A thousand-cell soak that trips forty times is not forty bugs — it is
usually one or two root causes fanned out across seeds.  Violation
signatures are seed-free by construction (see
:mod:`repro.campaign.oracle`), so grouping by ``(oracle, signature)``
collapses the fan-out: each :class:`TriageCluster` carries the count,
the affected cell ids, and one concrete example, ranked most-frequent
first.  The report is deterministic (sorted keys, no timestamps) like
every other campaign artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Tuple


@dataclass
class TriageCluster:
    """All violations sharing one ``(oracle, signature)`` root cause."""

    oracle: str
    signature: str
    count: int = 0
    cells: List[str] = dataclass_field(default_factory=list)
    example_detail: str = ""
    example_cell: str = ""

    def to_dict(self) -> Dict:
        return {
            "oracle": self.oracle,
            "signature": self.signature,
            "count": self.count,
            "cells": self.cells,
            "example_cell": self.example_cell,
            "example_detail": self.example_detail,
        }


def triage(rows: List[Dict]) -> List[TriageCluster]:
    """Cluster every violation in the rows; most frequent cluster first."""
    clusters: Dict[Tuple[str, str], TriageCluster] = {}
    for row in rows:
        cell = row.get("cell", "?")
        for violation in row.get("violations", ()):
            key = (violation["oracle"], violation["signature"])
            cluster = clusters.get(key)
            if cluster is None:
                cluster = clusters[key] = TriageCluster(
                    oracle=key[0], signature=key[1],
                    example_detail=violation.get("detail", ""),
                    example_cell=cell,
                )
            cluster.count += 1
            if cell not in cluster.cells:
                cluster.cells.append(cell)
    return sorted(
        clusters.values(),
        key=lambda c: (-c.count, c.oracle, c.signature),
    )


def triage_table(clusters: List[TriageCluster]) -> str:
    if not clusters:
        return "no violations to triage"
    header = f"{'count':>5s} {'cells':>5s} {'oracle':10s} signature"
    lines = [header, "-" * len(header)]
    for cluster in clusters:
        lines.append(
            f"{cluster.count:5d} {len(cluster.cells):5d} "
            f"{cluster.oracle:10s} {cluster.signature}"
        )
        lines.append(f"      e.g. [{cluster.example_cell}] "
                     f"{cluster.example_detail}")
    return "\n".join(lines)


def triage_to_json(clusters: List[TriageCluster]) -> str:
    return json.dumps(
        {"triage_schema": 1,
         "clusters": [c.to_dict() for c in clusters]},
        indent=2, sort_keys=True,
    )


__all__ = ["TriageCluster", "triage", "triage_table", "triage_to_json"]
