"""The campaign driver: one deterministic execution per scenario cell.

:func:`run_cell` is the contract everything else (shrinker, artifact
replay, CLI, tests) builds on: given a :class:`Scenario` it constructs
the full stack — field, scheduler, fresh :class:`FaultPlane`, protocol
context with a :class:`SpanRecorder`, :class:`FlightRecorder` (and the
liveness observers on async cells) — runs the coin protocol, and hands
the artifacts to the oracle.  Same scenario ⇒ same outcome, same flight
log, byte for byte: the fault plane is rebuilt from its spec each run
(planes are stateful), every rng is derived from the scenario's seeds,
and nothing reads the clock.

Async cells are executed **twice** and the two flight logs diffed — the
cheapest possible whole-stack determinism oracle, and the reason the
driver (not the caller) owns re-running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.campaign.adversaries import coin_gen_programs, expose_programs
from repro.campaign.coverage import CoverageMap
from repro.campaign.ledger import CampaignLedger
from repro.campaign.oracle import (
    CLEAN,
    ERROR,
    VIOLATED,
    CellArtifacts,
    CellOutcome,
    evaluate,
    exercised_phases,
)
from repro.campaign.space import ASYNC, Scenario
from repro.net.faults import FaultPlane
from repro.net.scheduler import PermutedDeliveryScheduler, RandomOrderScheduler
from repro.obs.flight import FlightRecorder, field_from_spec
from repro.obs.spans import SpanRecorder
from repro.protocols.context import ProtocolContext


def _make_scheduler(scenario: Scenario):
    if scenario.scheduler == "permuted":
        return PermutedDeliveryScheduler(seed=scenario.sched_seed)
    if scenario.scheduler == "random":
        return RandomOrderScheduler(seed=scenario.sched_seed)
    return None


def _make_context(scenario: Scenario, field) -> ProtocolContext:
    return ProtocolContext.create(
        field, scenario.n, scenario.t, seed=scenario.seed,
        scheduler=_make_scheduler(scenario),
        faults=(FaultPlane.from_spec(scenario.faults)
                if scenario.faults else None),
        recorder=SpanRecorder(),
    )


def _attach_flight(scenario: Scenario, ctx: ProtocolContext):
    recorder = FlightRecorder(
        n=ctx.n, t=ctx.t, field=ctx.field, seed=ctx.seed,
        manifest=scenario.manifest(ctx.field).to_dict(),
    )
    return recorder.attach(ctx.ensure_bus())


def _run_lockstep(scenario: Scenario, artifacts: CellArtifacts) -> None:
    from repro.protocols.coin_gen.finalize import expose_coin, run_coin_gen

    ctx = _make_context(scenario, artifacts.field)
    flight = _attach_flight(scenario, ctx)
    artifacts.recorder = ctx.recorder
    outputs, _ = run_coin_gen(
        ctx.field, context=ctx, M=scenario.M, tag="cg",
        faulty_programs=coin_gen_programs(
            scenario.adversary, scenario.corrupt, scenario.n, scenario.seed
        ),
    )
    artifacts.coin_gen_outputs = outputs
    for h in range(scenario.M):
        results, _ = expose_coin(
            ctx.field, context=ctx, outputs=outputs, h=h,
            faulty_programs=expose_programs(
                scenario.adversary, scenario.corrupt, artifacts.field,
                scenario.n, outputs, h, scenario.seed,
            ),
        )
        artifacts.expose_results[h] = results
    artifacts.flight_log = flight.log()


def _run_async(scenario: Scenario, artifacts: Optional[CellArtifacts]):
    """One async execution; returns the flight log.

    When ``artifacts`` is None this is the determinism re-run: protocol
    work identical, only the flight log retained.
    """
    from repro.obs.liveness import (
        QuorumLatencyRecorder,
        StallWatchdog,
        default_threshold,
    )
    from repro.protocols.async_coin import run_async_coin

    field = (artifacts.field if artifacts is not None
             else field_from_spec(scenario.field))
    ctx = ProtocolContext.create(
        field, scenario.n, scenario.t, seed=scenario.seed,
        recorder=SpanRecorder(),
    )
    flight = _attach_flight(scenario, ctx)
    latency = QuorumLatencyRecorder().attach(ctx.ensure_bus())
    watchdog = StallWatchdog(
        scenario.n, threshold=default_threshold(scenario.n)
    ).attach(ctx.ensure_bus())
    results: Dict[int, tuple] = {}
    for index in range(scenario.M):
        outputs, secret, _runtime = run_async_coin(
            ctx, coin_id=f"async-{index}",
            scheduler=RandomOrderScheduler(seed=scenario.sched_seed + index),
            faults=(FaultPlane.from_spec(scenario.faults)
                    if scenario.faults else None),
        )
        results[index] = (outputs, secret)
    if artifacts is not None:
        artifacts.recorder = ctx.recorder
        artifacts.async_results = results
        artifacts.latency = latency
        artifacts.watchdog = watchdog
        artifacts.flight_log = flight.log()
    return flight.log()


def run_cell(scenario: Scenario, keep_log: bool = False) -> CellOutcome:
    """Execute one cell and judge it; never raises on protocol failure.

    The flight log text rides along on every violated/errored cell (it
    is the repro artifact's payload) and, with ``keep_log``, on clean
    cells too.
    """
    field = field_from_spec(scenario.field)
    artifacts = CellArtifacts(scenario=scenario, field=field)
    try:
        if scenario.runtime == ASYNC:
            _run_async(scenario, artifacts)
            artifacts.rerun_log = _run_async(scenario, None)
        else:
            _run_lockstep(scenario, artifacts)
    except Exception as exc:  # judged, not propagated: errors are outcomes
        artifacts.error = exc
    violations = evaluate(artifacts)
    if artifacts.error is not None:
        status = ERROR
    else:
        status = VIOLATED if violations else CLEAN
    log = artifacts.flight_log
    measured = {
        "rounds": len(log.rounds) if log is not None else 0,
        "fault_events": len(log.faults) if log is not None else 0,
        "phases": exercised_phases(log),
    }
    return CellOutcome(
        scenario=scenario,
        status=status,
        violations=violations,
        fingerprint=scenario.manifest(field).fingerprint(),
        measured=measured,
        log_text=(log.dumps() if log is not None
                  and (keep_log or violations) else None),
    )


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    outcomes: List[CellOutcome]
    coverage: CoverageMap

    @property
    def violated(self) -> List[CellOutcome]:
        return [o for o in self.outcomes if o.status != CLEAN]

    def violation_count(self) -> int:
        return sum(len(o.violations) for o in self.outcomes)

    def status_counts(self) -> Dict[str, int]:
        counts = {CLEAN: 0, VIOLATED: 0, ERROR: 0}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts


def run_campaign(
    cells: Iterable[Scenario],
    ledger: Optional[CampaignLedger] = None,
    keep_logs: bool = False,
    progress: Optional[Callable[[CellOutcome], None]] = None,
) -> CampaignResult:
    """Run every cell, aggregate coverage, append each row to the ledger.

    Cells run in the given order and rows land in that order, so the
    same cell list against a fresh ledger file is byte-identical — the
    acceptance contract for CI soaks.
    """
    coverage = CoverageMap()
    outcomes: List[CellOutcome] = []
    for scenario in cells:
        outcome = run_cell(scenario, keep_log=keep_logs)
        outcomes.append(outcome)
        coverage.record(outcome.scenario, outcome.status,
                        outcome.measured.get("phases", ()),
                        outcome.fingerprint)
        if ledger is not None:
            ledger.append(outcome.to_row())
        if progress is not None:
            progress(outcome)
    return CampaignResult(outcomes=outcomes, coverage=coverage)


__all__ = ["CampaignResult", "run_campaign", "run_cell"]
