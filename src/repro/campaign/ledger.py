"""The campaign ledger: append-only, schema-versioned JSONL.

One file accumulates every campaign a repo checkout has run, in the
same spirit as ``BENCH_history.json``: the first line of each campaign
is a header row (schema version, campaign seed, cell count), followed
by one row per executed cell.  Rows are canonical JSON — sorted keys,
fixed separators, no timestamps — so *the same campaign seed produces
a byte-identical ledger*, which is the property CI soaks and the
acceptance tests diff against.

Appending never rewrites: re-running a campaign adds a new
header + rows block, and readers see every historical block in order.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

LEDGER_SCHEMA = 1


def _canonical(row: Dict[str, Any]) -> str:
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


class CampaignLedger:
    """Writer for one campaign's block of an append-only JSONL ledger."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._header_written = False

    def write_header(self, campaign_seed: Optional[int], cells: int,
                     **extra: Any) -> None:
        header = {
            "ledger_schema": LEDGER_SCHEMA,
            "campaign_seed": campaign_seed,
            "cells": cells,
        }
        header.update(extra)
        with open(self.path, "a") as handle:
            handle.write(_canonical(header) + "\n")
        self._header_written = True

    def append(self, row: Dict[str, Any]) -> None:
        if not self._header_written:
            raise RuntimeError("write_header before appending rows")
        row = dict(row)
        row["ledger_schema"] = LEDGER_SCHEMA
        with open(self.path, "a") as handle:
            handle.write(_canonical(row) + "\n")


def read_ledger(path: str) -> Tuple[List[Dict], List[Dict]]:
    """``(headers, rows)`` across every campaign block in the file.

    Raises ``ValueError`` on unparseable lines or unknown schema
    versions — a truncated or hand-edited ledger should fail loudly,
    not report partial coverage.
    """
    headers: List[Dict] = []
    rows: List[Dict] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not JSON ({exc})"
                ) from None
            schema = record.get("ledger_schema")
            if schema != LEDGER_SCHEMA:
                raise ValueError(
                    f"{path}:{lineno}: unsupported ledger schema "
                    f"{schema!r} (expected {LEDGER_SCHEMA})"
                )
            if "cell" in record:
                rows.append(record)
            else:
                headers.append(record)
    return headers, rows


def violated_rows(rows: List[Dict]) -> List[Dict]:
    """Rows whose cell did not come back clean."""
    return [row for row in rows if row.get("status") != "clean"]


__all__ = [
    "LEDGER_SCHEMA", "CampaignLedger", "read_ledger", "violated_rows",
]
