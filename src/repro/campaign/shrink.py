"""Deterministic shrinking and self-contained repro artifacts.

When a cell trips the oracle, the scenario that tripped it is rarely
minimal — it may carry a larger batch, extra fault ops, more corrupt
players, and arbitrary seeds than the root cause needs.  The shrinker
runs greedy descent over :func:`~repro.campaign.space.shrink_reductions`
(halve M, drop fault ops left-to-right, drop corrupt players, zero the
seeds): a candidate is kept iff re-running it still trips one of the
original ``(oracle, signature)`` pairs.  Candidates are generated in a
fixed order from the current scenario alone and every re-run is
deterministic, so the same violated cell always shrinks to the same
minimal scenario in the same number of steps — the determinism contract
DESIGN.md §14 documents.

The result is dumped as a **repro artifact**: one JSON file holding the
minimal scenario, its manifest, the violations, and the minimal run's
full flight log.  :func:`check_artifact` re-runs the scenario and
verifies (a) the same oracle still trips and (b) the fresh flight log
diffs clean against the embedded one — so an artifact is a proof
object anyone can replay (``repro campaign replay``, or ``repro replay
--diff`` against the extracted log).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Set, Tuple

from repro.campaign.driver import run_cell
from repro.campaign.oracle import CellOutcome
from repro.campaign.space import Scenario, shrink_reductions

ARTIFACT_SCHEMA = 1

SignatureSet = Set[Tuple[str, str]]


def _signatures(outcome: CellOutcome) -> SignatureSet:
    return {(v.oracle, v.signature) for v in outcome.violations}


@dataclass
class ShrinkResult:
    """The minimal scenario a violated cell reduced to."""

    original: Scenario
    minimal: Scenario
    outcome: CellOutcome  #: the minimal cell's outcome, flight log kept
    target: SignatureSet  #: the (oracle, signature) pairs preserved
    steps: int  #: candidate re-runs executed
    accepted: int  #: reductions that kept the violation


def shrink(
    scenario: Scenario,
    outcome: Optional[CellOutcome] = None,
    run: Callable[..., CellOutcome] = run_cell,
) -> ShrinkResult:
    """Greedily minimize ``scenario`` while the same oracle keeps tripping.

    ``outcome`` (when the caller already ran the cell) seeds the target
    signature set; otherwise the cell is run once first.  Raises
    ``ValueError`` on a clean cell — there is nothing to preserve.
    """
    current_outcome = (outcome if outcome is not None
                       and outcome.log_text is not None
                       else run(scenario, keep_log=True))
    target = _signatures(current_outcome)
    if not target:
        raise ValueError(
            f"cell {scenario.cell_id()} is clean; nothing to shrink"
        )
    current = scenario
    steps = accepted = 0
    progressed = True
    while progressed:
        progressed = False
        for candidate in shrink_reductions(current):
            steps += 1
            candidate_outcome = run(candidate, keep_log=True)
            if _signatures(candidate_outcome) & target:
                current, current_outcome = candidate, candidate_outcome
                accepted += 1
                progressed = True
                break
    return ShrinkResult(
        original=scenario, minimal=current, outcome=current_outcome,
        target=target, steps=steps, accepted=accepted,
    )


# -- artifacts ---------------------------------------------------------------

def artifact_dict(result: ShrinkResult) -> Dict:
    """The self-contained repro artifact for one shrunk violation."""
    from repro.obs.flight import field_from_spec

    outcome = result.outcome
    # capture the manifest against the live field (its spec carries the
    # backend), so the embedded manifest re-derives outcome.fingerprint
    manifest = result.minimal.manifest(
        field_from_spec(result.minimal.field)
    ).to_dict()
    return {
        "artifact_schema": ARTIFACT_SCHEMA,
        "cell": result.minimal.cell_id(),
        "scenario": result.minimal.to_dict(),
        "manifest": manifest,
        "fingerprint": outcome.fingerprint,
        "violations": [v.to_dict() for v in outcome.violations],
        "shrunk_from": {
            "cell": result.original.cell_id(),
            "scenario": result.original.to_dict(),
            "steps": result.steps,
            "accepted": result.accepted,
        },
        "flight_log": outcome.log_text,
    }


def write_artifact(path: str, result: ShrinkResult) -> Dict:
    data = artifact_dict(result)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return data


def load_artifact(path: str) -> Dict:
    with open(path) as handle:
        data = json.load(handle)
    schema = data.get("artifact_schema")
    if schema != ARTIFACT_SCHEMA:
        raise ValueError(
            f"{path}: unsupported artifact schema {schema!r} "
            f"(expected {ARTIFACT_SCHEMA})"
        )
    return data


def check_artifact(
    data: Dict, run: Callable[..., CellOutcome] = run_cell
) -> Tuple[bool, str]:
    """Replay an artifact: does its scenario still trip its oracle?

    Returns ``(reproduced, detail)``.  Reproduction requires the same
    ``(oracle, signature)`` pair to trip *and* the fresh flight log to
    diff clean against the embedded one; either failure means the
    artifact has gone stale relative to the code under test — which is
    exactly what a bug fix should cause.
    """
    from repro.obs.flight import FlightLog, diff

    scenario = Scenario.from_dict(data["scenario"])
    expected = {(v["oracle"], v["signature"]) for v in data["violations"]}
    outcome = run(scenario, keep_log=True)
    got = _signatures(outcome)
    if not (got & expected):
        return False, (
            f"oracle no longer trips: expected one of {sorted(expected)}, "
            f"got {sorted(got) or 'clean'}"
        )
    embedded_text = data.get("flight_log")
    if embedded_text and outcome.log_text:
        divergence = diff(FlightLog.loads(embedded_text),
                          FlightLog.loads(outcome.log_text))
        if divergence is not None:
            return False, f"flight log diverged from artifact: {divergence}"
    tripped = sorted(got & expected)
    return True, (
        f"reproduced: {', '.join(f'{o}/{s}' for o, s in tripped)} "
        f"(flight log diff clean)"
    )


__all__ = [
    "ARTIFACT_SCHEMA", "ShrinkResult", "artifact_dict", "check_artifact",
    "load_artifact", "shrink", "write_artifact",
]
