"""The violation oracle: every auditor the repo has, pointed at one cell.

The campaign driver runs a cell and hands the artifacts (protocol
outputs, the flight log, the span recorder, liveness recorders, any
exception) to :func:`evaluate`, which composes the existing observers
into a single verdict:

* **coin** — honest players' exposed values must be unanimous and
  decodable (``≤ t`` interference can never break either, so any hit is
  a protocol bug, not an adversary success);
* **forensics** — :func:`~repro.obs.forensics.analyze_log` must accuse
  only players inside the cell's suspect set (soundness, every cell)
  and must implicate every corrupt player of a deterministically
  detectable adversary kind (completeness);
* **audit** — on clean lockstep cells the exact message/round
  conformance audits (:func:`~repro.obs.audit.audit_recorder`,
  :func:`~repro.obs.audit.audit_rounds`) must pass bit-exactly;
* **liveness** — fault-free async cells must pass
  :func:`~repro.obs.audit.audit_liveness`; faulted async cells must
  leave no *unexplained* stalls;
* **replay** — the flight log must round-trip through serialization
  diff-clean, and re-driving its expose rounds through the real decoder
  must reproduce the live honest values (lockstep); async cells are
  re-run from the same scenario and the two logs diffed (determinism);
* **exception** — any crash of the runtime stack is its own violation.

Violation *signatures* are seed-free by construction (kind and axis
names only, never player ids or values), so the triage report clusters
the same root cause across cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Optional

from repro.campaign.adversaries import kind_for
from repro.campaign.space import HONEST, Scenario
from repro.net.faults import parse_fault_op
from repro.obs.phases import classify_tag

CLEAN = "clean"
VIOLATED = "violated"
ERROR = "error"


@dataclass(frozen=True)
class Violation:
    """One tripped oracle on one cell."""

    oracle: str  #: coin | forensics | audit | liveness | replay | exception
    signature: str  #: seed-free cluster key for triage
    detail: str  #: human specifics (may mention players/values)

    def to_dict(self) -> Dict[str, str]:
        return {"oracle": self.oracle, "signature": self.signature,
                "detail": self.detail}


@dataclass
class CellArtifacts:
    """Everything one executed cell left behind, for the oracle to judge."""

    scenario: Scenario
    field: Any = None
    recorder: Any = None
    flight_log: Any = None  #: FlightLog from the live run
    rerun_log: Any = None  #: FlightLog from an identical re-run (async)
    #: lockstep: per-coin {h: {pid: exposed Element or None}}
    expose_results: Dict[int, Dict[int, Any]] = dataclass_field(
        default_factory=dict)
    #: lockstep: run_coin_gen outputs {pid: CoinGenOutput}
    coin_gen_outputs: Dict[int, Any] = dataclass_field(default_factory=dict)
    #: async: per-coin {i: ({pid: value}, secret)}
    async_results: Dict[int, Any] = dataclass_field(default_factory=dict)
    latency: Any = None  #: QuorumLatencyRecorder (async)
    watchdog: Any = None  #: StallWatchdog (async)
    error: Optional[BaseException] = None


@dataclass
class CellOutcome:
    """The ledger-ready verdict for one cell."""

    scenario: Scenario
    status: str  #: clean | violated | error
    violations: List[Violation]
    fingerprint: str
    measured: Dict[str, Any]
    log_text: Optional[str] = None  #: flight log JSONL, kept on violation

    def to_row(self) -> Dict[str, Any]:
        """One ledger row (deterministic: no wall-clock, sorted use only)."""
        return {
            "cell": self.scenario.cell_id(),
            "scenario": self.scenario.to_dict(),
            "status": self.status,
            "fingerprint": self.fingerprint,
            "measured": self.measured,
            "violations": [v.to_dict() for v in self.violations],
        }


def chain_kinds(scenario: Scenario) -> List[str]:
    """The fault kinds a cell's chain exercises (``["none"]`` when clean)."""
    kinds = sorted({parse_fault_op(op)["kind"] for op in scenario.faults})
    return kinds or ["none"]


def exercised_phases(flight_log) -> List[str]:
    """Protocol phases with at least one delivered message in the log."""
    phases = set()
    for event in flight_log.rounds if flight_log is not None else ():
        for _dst, _src, payload in event.deliveries:
            if isinstance(payload, tuple) and payload:
                phases.add(classify_tag(payload[0]))
    return sorted(phases)


def evaluate(artifacts: CellArtifacts) -> List[Violation]:
    """All tripped oracles for one cell, in stable oracle order."""
    violations: List[Violation] = []
    if artifacts.error is not None:
        violations.append(Violation(
            "exception", f"exception:{type(artifacts.error).__name__}",
            f"runtime stack raised: {artifacts.error!r}",
        ))
        return violations
    scenario = artifacts.scenario
    if scenario.runtime == "async":
        violations += _check_async_coins(artifacts)
        violations += _check_liveness(artifacts)
        violations += _check_rerun_determinism(artifacts)
    else:
        violations += _check_lockstep_coins(artifacts)
        violations += _check_forensics(artifacts)
        violations += _check_audits(artifacts)
        violations += _check_replay_decodes(artifacts)
    violations += _check_roundtrip(artifacts)
    return violations


# -- coin unanimity ---------------------------------------------------------

def _honest(scenario: Scenario) -> List[int]:
    suspects = scenario.suspects()
    return [pid for pid in range(1, scenario.n + 1) if pid not in suspects]


def _check_lockstep_coins(artifacts: CellArtifacts) -> List[Violation]:
    scenario, field = artifacts.scenario, artifacts.field
    honest = _honest(scenario)
    out: List[Violation] = []
    for pid in honest:
        output = artifacts.coin_gen_outputs.get(pid)
        if output is None or not output.success:
            out.append(Violation(
                "coin", "coin_gen_failure",
                f"honest player {pid} did not complete Coin-Gen",
            ))
            return out
    for h, results in sorted(artifacts.expose_results.items()):
        values = {pid: results.get(pid) for pid in honest}
        missing = sorted(pid for pid, v in values.items() if v is None)
        if missing:
            out.append(Violation(
                "coin", "coin_failure",
                f"coin {h}: honest players {missing} exposed no value",
            ))
            continue
        distinct = {field.to_int(v) for v in values.values()}
        if len(distinct) > 1:
            out.append(Violation(
                "coin", "coin_disagreement",
                f"coin {h}: honest players exposed {len(distinct)} "
                f"distinct values",
            ))
    return out


def _check_async_coins(artifacts: CellArtifacts) -> List[Violation]:
    scenario, field = artifacts.scenario, artifacts.field
    honest = _honest(scenario)
    out: List[Violation] = []
    for index, (outputs, secret) in sorted(artifacts.async_results.items()):
        missing = sorted(pid for pid in honest if pid not in outputs)
        if missing:
            out.append(Violation(
                "coin", "coin_failure",
                f"async coin {index}: honest players {missing} never "
                f"exposed",
            ))
            continue
        wrong = sorted(
            pid for pid in honest
            if field.to_int(outputs[pid]) != field.to_int(secret)
        )
        if wrong:
            out.append(Violation(
                "coin", "coin_disagreement",
                f"async coin {index}: players {wrong} decoded a value "
                f"other than the dealt secret",
            ))
    return out


# -- forensics soundness / completeness -------------------------------------

def _check_forensics(artifacts: CellArtifacts) -> List[Violation]:
    if artifacts.flight_log is None:
        return []
    from repro.obs.forensics import analyze_log

    scenario = artifacts.scenario
    report = analyze_log(artifacts.flight_log, field=artifacts.field,
                         t=scenario.t)
    implicated = set(report.corrupt_players())
    suspects = scenario.suspects()
    out: List[Violation] = []
    false_accused = sorted(implicated - suspects)
    if false_accused:
        out.append(Violation(
            "forensics",
            f"forensics_fp:adversary={scenario.adversary}",
            f"honest players {false_accused} accused "
            f"(implicated={sorted(implicated)}, "
            f"suspects={sorted(suspects)})",
        ))
    if scenario.adversary != HONEST and kind_for(scenario.adversary).detectable:
        missed = sorted(set(scenario.corrupt) - implicated)
        if missed:
            out.append(Violation(
                "forensics",
                f"forensics_fn:adversary={scenario.adversary}",
                f"corrupt players {missed} escaped accusation "
                f"(implicated={sorted(implicated)})",
            ))
    return out


# -- exact conformance audits (clean lockstep cells only) --------------------

def _check_audits(artifacts: CellArtifacts) -> List[Violation]:
    scenario = artifacts.scenario
    if scenario.adversary != HONEST or scenario.faults:
        return []  # deviations are expected under interference
    from repro.obs.audit import audit_recorder, audit_rounds

    out: List[Violation] = []
    for report in audit_recorder(artifacts.recorder):
        for check in report.checks:
            if not check.ok:
                out.append(Violation(
                    "audit",
                    f"audit:{report.protocol}/{check.phase}/{check.metric}",
                    f"{report.protocol} {check.phase} {check.metric}: "
                    f"expected {check.expected}, measured {check.measured}",
                ))
    for check in audit_rounds(artifacts.recorder):
        if not check.ok:
            out.append(Violation(
                "audit",
                f"audit_rounds:{check.protocol}",
                f"{check.protocol}: expected {check.expected} rounds, "
                f"measured {check.measured}",
            ))
    return out


# -- liveness (async) --------------------------------------------------------

def _check_liveness(artifacts: CellArtifacts) -> List[Violation]:
    if artifacts.latency is None:
        return []
    scenario = artifacts.scenario
    out: List[Violation] = []
    if scenario.adversary == HONEST and not scenario.faults:
        from repro.obs.audit import audit_liveness

        report = audit_liveness(artifacts.latency, artifacts.watchdog)
        for check in report.checks:
            if not check.ok:
                out.append(Violation(
                    "liveness",
                    f"liveness:{check.phase}/{check.metric}",
                    f"{check.phase} {check.metric}: expected "
                    f"{check.expected}, measured {check.measured}",
                ))
    elif artifacts.watchdog is not None:
        unexplained = artifacts.watchdog.unexplained()
        if unexplained:
            out.append(Violation(
                "liveness", "liveness:unexplained_stall",
                f"{len(unexplained)} stall(s) not attributable to the "
                f"injected faults",
            ))
    return out


# -- replay / determinism ----------------------------------------------------

def _check_roundtrip(artifacts: CellArtifacts) -> List[Violation]:
    if artifacts.flight_log is None:
        return []
    from repro.obs.flight import FlightLog, diff

    reloaded = FlightLog.loads(artifacts.flight_log.dumps())
    divergence = diff(artifacts.flight_log, reloaded)
    if divergence is not None:
        return [Violation(
            "replay", "replay:serialization_roundtrip",
            f"log != loads(dumps(log)): {divergence}",
        )]
    return []


def _check_replay_decodes(artifacts: CellArtifacts) -> List[Violation]:
    """Re-driven expose decodes must reproduce the live honest values."""
    if artifacts.flight_log is None or not artifacts.expose_results:
        return []
    from repro.obs.flight import replay

    scenario, field = artifacts.scenario, artifacts.field
    honest = set(_honest(scenario))
    decoded = replay(artifacts.flight_log, field=field,
                     t=scenario.t).decoded_values()
    by_coin: Dict[str, Dict[int, Any]] = {}
    for (_run, coin_id), receivers in decoded.items():
        by_coin.setdefault(coin_id, {}).update(receivers)
    out: List[Violation] = []
    for h, results in sorted(artifacts.expose_results.items()):
        replayed = by_coin.get(f"cg/c{h}", {})
        for pid in sorted(honest):
            live = results.get(pid)
            if pid not in replayed or live is None:
                continue  # coin oracle owns missing-value verdicts
            mine = replayed[pid]
            if mine is None or field.to_int(mine) != field.to_int(live):
                out.append(Violation(
                    "replay", "replay:decode_divergence",
                    f"coin {h}: replayed decode for player {pid} "
                    f"disagrees with the live exposure",
                ))
                break
    return out


def _check_rerun_determinism(artifacts: CellArtifacts) -> List[Violation]:
    if artifacts.flight_log is None or artifacts.rerun_log is None:
        return []
    from repro.obs.flight import diff

    divergence = diff(artifacts.flight_log, artifacts.rerun_log)
    if divergence is not None:
        return [Violation(
            "replay", "replay:rerun_divergence",
            f"same scenario, different log: {divergence}",
        )]
    return []


__all__ = [
    "CLEAN", "ERROR", "VIOLATED",
    "CellArtifacts", "CellOutcome", "Violation",
    "chain_kinds", "evaluate", "exercised_phases",
]
