"""Coverage maps: which scenario-space cells have ever been exercised.

The coverage grid deliberately coarsens the full scenario space: two
cells that differ only in seeds exercise the *same* protocol surface,
so the grid key is ``(runtime, scheduler, adversary, fault-kind,
phase)`` — the axes that select code paths, not the axes that select
randomness.  A :class:`CoverageMap` aggregates per-cell outcomes into
that grid (runs / clean / violated / error counts plus the distinct
manifest fingerprints seen), and measures coverage as the fraction of a
*reachable universe* — computed statically from a
:class:`~repro.campaign.space.ScenarioSpace`, never from what happened
to run — that has at least one execution.

All three output formats (table, JSON, Prometheus exposition) iterate
the grid in sorted key order with no timestamps, so the same campaign
produces byte-identical reports: the contract CI diffs against.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterable, List, Set, Tuple

from repro.campaign.oracle import CLEAN, ERROR, VIOLATED, chain_kinds
from repro.campaign.space import ASYNC, Scenario, ScenarioSpace

#: grid axes, in key order
GRID_AXES = ("runtime", "scheduler", "adversary", "fault", "phase")

#: phases a cell of each runtime exercises (static prediction)
LOCKSTEP_PHASES = ("deal", "clique", "gradecast", "ba", "expose")
ASYNC_PHASES = ("expose",)

GridKey = Tuple[str, str, str, str, str]


def expected_phases(scenario: Scenario) -> Tuple[str, ...]:
    """The phases a cell is expected to light up, from its runtime alone."""
    return ASYNC_PHASES if scenario.runtime == ASYNC else LOCKSTEP_PHASES


def grid_keys(scenario: Scenario, phases: Iterable[str]) -> List[GridKey]:
    """The grid cells one scenario execution touches."""
    keys = []
    for fault in chain_kinds(scenario):
        for phase in phases:
            keys.append((scenario.runtime, scenario.scheduler,
                         scenario.adversary, fault, phase))
    return keys


def universe(space: ScenarioSpace) -> Set[GridKey]:
    """Every grid cell the space can reach — computed without running.

    Uses :func:`expected_phases` per enumerated scenario, so the
    denominator of the coverage percentage is a property of the space
    definition, not of which cells a budgeted sample happened to draw.
    """
    keys: Set[GridKey] = set()
    for scenario in space.enumerate():
        keys.update(grid_keys(scenario, expected_phases(scenario)))
    return keys


@dataclass
class GridStats:
    """Outcome tallies for one coverage-grid cell."""

    runs: int = 0
    clean: int = 0
    violated: int = 0
    errors: int = 0
    fingerprints: Set[str] = dataclass_field(default_factory=set)

    def status_label(self) -> str:
        if self.errors or self.violated:
            return VIOLATED if self.violated else ERROR
        return CLEAN if self.runs else "unexercised"


class CoverageMap:
    """Aggregates executed cells into the coverage grid."""

    def __init__(self) -> None:
        self.cells: Dict[GridKey, GridStats] = {}

    def record(self, scenario: Scenario, status: str,
               phases: Iterable[str], fingerprint: str) -> None:
        """Fold one executed cell in; ``phases`` is what actually ran.

        Falls back to the static phase prediction when the run left no
        phase evidence (e.g. it crashed before any round settled), so
        an errored cell still registers as exercised.
        """
        phase_list = [p for p in phases if p not in ("other", "idle")]
        if not phase_list:
            phase_list = list(expected_phases(scenario))
        for key in grid_keys(scenario, phase_list):
            stats = self.cells.setdefault(key, GridStats())
            stats.runs += 1
            if status == CLEAN:
                stats.clean += 1
            elif status == ERROR:
                stats.errors += 1
            else:
                stats.violated += 1
            stats.fingerprints.add(fingerprint)

    def record_row(self, row: Dict) -> None:
        """Fold one campaign-ledger row back in (``repro campaign report``)."""
        scenario = Scenario.from_dict(row["scenario"])
        self.record(scenario, row["status"],
                    row.get("measured", {}).get("phases", ()),
                    row.get("fingerprint", ""))

    # -- measurement -------------------------------------------------------
    def exercised(self) -> Set[GridKey]:
        return set(self.cells)

    def percentage(self, space: ScenarioSpace) -> float:
        reachable = universe(space)
        if not reachable:
            return 100.0
        hit = len(reachable & self.exercised())
        return 100.0 * hit / len(reachable)

    def status_counts(self) -> Dict[str, int]:
        counts = {CLEAN: 0, VIOLATED: 0, ERROR: 0}
        for stats in self.cells.values():
            counts[CLEAN] += stats.clean
            counts[VIOLATED] += stats.violated
            counts[ERROR] += stats.errors
        return counts

    # -- reports (all byte-deterministic) ----------------------------------
    def table(self, space: ScenarioSpace = None) -> str:
        header = (f"{'runtime':9s} {'scheduler':10s} {'adversary':12s} "
                  f"{'fault':10s} {'phase':10s} {'runs':>5s} {'clean':>6s} "
                  f"{'viol':>5s} {'err':>4s}")
        lines = [header, "-" * len(header)]
        for key in sorted(self.cells):
            stats = self.cells[key]
            runtime, scheduler, adversary, fault, phase = key
            lines.append(
                f"{runtime:9s} {scheduler:10s} {adversary:12s} "
                f"{fault:10s} {phase:10s} {stats.runs:5d} "
                f"{stats.clean:6d} {stats.violated:5d} {stats.errors:4d}"
            )
        if space is not None:
            reachable = universe(space)
            hit = len(reachable & self.exercised())
            lines.append("")
            lines.append(
                f"coverage: {hit}/{len(reachable)} reachable grid cells "
                f"({self.percentage(space):.1f}%)"
            )
        return "\n".join(lines)

    def to_dict(self, space: ScenarioSpace = None) -> Dict:
        grid = []
        for key in sorted(self.cells):
            stats = self.cells[key]
            entry = dict(zip(GRID_AXES, key))
            entry.update(
                runs=stats.runs, clean=stats.clean,
                violated=stats.violated, errors=stats.errors,
                fingerprints=sorted(stats.fingerprints),
                status=stats.status_label(),
            )
            grid.append(entry)
        out = {"coverage_schema": 1, "grid": grid,
               "counts": self.status_counts()}
        if space is not None:
            reachable = universe(space)
            out["universe"] = len(reachable)
            out["exercised"] = len(reachable & self.exercised())
            out["coverage_percent"] = round(self.percentage(space), 4)
        return out

    def to_json(self, space: ScenarioSpace = None) -> str:
        return json.dumps(self.to_dict(space), indent=2, sort_keys=True)

    def to_prometheus(self, space: ScenarioSpace = None) -> str:
        lines = [
            "# HELP repro_campaign_cells_total campaign cell outcomes",
            "# TYPE repro_campaign_cells_total gauge",
        ]
        for status, count in sorted(self.status_counts().items()):
            lines.append(
                f'repro_campaign_cells_total{{status="{status}"}} {count}'
            )
        lines += [
            "# HELP repro_campaign_grid_runs runs per coverage-grid cell",
            "# TYPE repro_campaign_grid_runs gauge",
        ]
        for key in sorted(self.cells):
            labels = ",".join(
                f'{axis}="{value}"' for axis, value in zip(GRID_AXES, key)
            )
            lines.append(
                f"repro_campaign_grid_runs{{{labels}}} "
                f"{self.cells[key].runs}"
            )
        if space is not None:
            lines += [
                "# HELP repro_campaign_coverage_percent scenario-space "
                "coverage",
                "# TYPE repro_campaign_coverage_percent gauge",
                f"repro_campaign_coverage_percent "
                f"{self.percentage(space):.4f}",
            ]
        return "\n".join(lines) + "\n"


__all__ = [
    "ASYNC_PHASES", "GRID_AXES", "LOCKSTEP_PHASES",
    "CoverageMap", "GridStats", "expected_phases", "grid_keys", "universe",
]
