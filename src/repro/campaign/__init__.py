"""repro.campaign: deterministic scenario-space sweeps with a violation
oracle, coverage maps, triage, and minimal-repro shrinking.

The observability stack's flywheel (ROADMAP item 5): where every other
``repro.obs`` tool watches *one* hand-picked run, the campaign driver
enumerates or samples the joint (adversary × corrupt set × scheduler
seed × fault chain × field × n,t × runtime) space, judges every cell
with the composed auditors, and accounts for which cells have ever been
exercised.  See DESIGN.md §14 for the architecture and the determinism
contract.
"""

from repro.campaign.adversaries import KINDS, AdversaryKind, kind_for
from repro.campaign.coverage import CoverageMap, universe
from repro.campaign.driver import CampaignResult, run_campaign, run_cell
from repro.campaign.ledger import (
    LEDGER_SCHEMA,
    CampaignLedger,
    read_ledger,
    violated_rows,
)
from repro.campaign.oracle import (
    CellArtifacts,
    CellOutcome,
    Violation,
    evaluate,
)
from repro.campaign.shrink import (
    ShrinkResult,
    check_artifact,
    load_artifact,
    shrink,
    write_artifact,
)
from repro.campaign.space import (
    Scenario,
    ScenarioSpace,
    default_space,
    known_bad_scenarios,
)
from repro.campaign.triage import (
    TriageCluster,
    triage,
    triage_table,
    triage_to_json,
)

__all__ = [
    "KINDS", "LEDGER_SCHEMA",
    "AdversaryKind", "CampaignLedger", "CampaignResult", "CellArtifacts",
    "CellOutcome", "CoverageMap", "Scenario", "ScenarioSpace",
    "ShrinkResult", "TriageCluster", "Violation",
    "check_artifact", "default_space", "evaluate", "kind_for",
    "known_bad_scenarios", "load_artifact", "read_ledger", "run_campaign",
    "run_cell", "shrink", "triage", "triage_table", "triage_to_json",
    "universe", "violated_rows", "write_artifact",
]
