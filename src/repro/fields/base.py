"""Abstract field interface and operation metering.

The paper (Section 2) measures "the computational effort of the players
executing a protocol by the number of additions that they are required to
perform", treating a multiplication in GF(2^k) as O(k^2) additions naively
or O(k log k) in the special field.  :class:`OpCounter` lets every concrete
field report exactly those primitive counts, so the benchmark harness can
check measured counts against the closed-form lemmas.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Iterator, List, Sequence

Element = Any  # representation is field-specific (int or tuple of ints)


@dataclass
class OpCounter:
    """Mutable tally of primitive field operations.

    Attributes mirror the cost units used by the paper's lemmas:
    additions, multiplications, inversions, and polynomial interpolations
    (Lemma 2 counts "2 polynomial interpolations per player").
    """

    adds: int = 0
    muls: int = 0
    invs: int = 0
    interpolations: int = 0

    def snapshot(self) -> "OpCounter":
        """Return a frozen copy of the current tallies."""
        return OpCounter(self.adds, self.muls, self.invs, self.interpolations)

    def reset(self) -> None:
        """Zero every tally."""
        self.adds = 0
        self.muls = 0
        self.invs = 0
        self.interpolations = 0

    def delta(self, earlier: "OpCounter") -> "OpCounter":
        """Return the difference between this counter and an earlier snapshot."""
        return OpCounter(
            self.adds - earlier.adds,
            self.muls - earlier.muls,
            self.invs - earlier.invs,
            self.interpolations - earlier.interpolations,
        )

    def __add__(self, other: "OpCounter") -> "OpCounter":
        return OpCounter(
            self.adds + other.adds,
            self.muls + other.muls,
            self.invs + other.invs,
            self.interpolations + other.interpolations,
        )

    def total_additions(self, k: int, naive: bool = True) -> int:
        """Convert the tally into the paper's "number of additions" metric.

        A multiplication costs ``k^2`` additions naively or ``k log k`` in
        the special field (Section 2); an inversion is counted as
        ``log(p) ~ k`` multiplications via square-and-multiply.
        """
        import math

        mul_cost = k * k if naive else max(1, int(k * math.log2(max(k, 2))))
        return self.adds + mul_cost * (self.muls + k * self.invs)


class Field(ABC):
    """A finite field of size :attr:`order`.

    Elements are immutable, hashable values whose concrete type is chosen by
    the implementation (``int`` for GF(2^k) and Z_p, ``tuple`` for the
    special field).  All arithmetic goes through the field object so that
    operations can be metered.
    """

    #: number of elements in the field (the paper's ``p``)
    order: int
    #: bits needed to transmit one element (the paper's security parameter k)
    bit_length: int
    #: additive identity
    zero: Element
    #: multiplicative identity
    one: Element
    #: coarse family tag backends dispatch on ("gf2k", "gfp", "generic")
    kind = "generic"

    def __init__(self) -> None:
        self.counter = OpCounter()
        #: bulk-kernel strategy object (see :mod:`repro.fields.backends`);
        #: None = no backend layer, bulk ops run as metered scalar loops
        self._backend = None

    def _init_backend(self, backend: "str | None") -> None:
        """Attach the bulk-kernel backend ``backend`` names (see
        :func:`repro.fields.backends.resolve_backend`).  Concrete fields
        call this at the end of construction, once their tables exist."""
        from repro.fields.backends import resolve_backend

        self._backend = resolve_backend(self, backend)

    @property
    def backend_name(self) -> str:
        """Which backend computes this field's bulk kernels."""
        return self._backend.name if self._backend is not None else "python"

    # -- arithmetic -------------------------------------------------------
    @abstractmethod
    def add(self, a: Element, b: Element) -> Element:
        """Return ``a + b``."""

    @abstractmethod
    def sub(self, a: Element, b: Element) -> Element:
        """Return ``a - b``."""

    @abstractmethod
    def neg(self, a: Element) -> Element:
        """Return ``-a``."""

    @abstractmethod
    def mul(self, a: Element, b: Element) -> Element:
        """Return ``a * b``."""

    @abstractmethod
    def inv(self, a: Element) -> Element:
        """Return the multiplicative inverse of ``a``; raise on zero."""

    def div(self, a: Element, b: Element) -> Element:
        """Return ``a / b``."""
        return self.mul(a, self.inv(b))

    def pow(self, a: Element, e: int) -> Element:
        """Return ``a**e`` by square-and-multiply (``e >= 0``)."""
        if e < 0:
            return self.pow(self.inv(a), -e)
        result = self.one
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    # -- bulk operations ---------------------------------------------------
    #
    # The protocol hot paths (interpolation caches, shared-Horner dealing,
    # batched dot products) work on whole vectors of elements at a time.
    # Metering happens HERE, once per batch, before the pluggable backend
    # (:mod:`repro.fields.backends`) computes the result — so per-element
    # op totals are identical whichever backend runs, and identical to
    # performing the operations one by one.  Fields without a backend
    # (``_backend is None``) fall through to metered scalar loops.  The
    # exception is ``batch_inv``, which genuinely replaces n inversions
    # with one inversion plus 3(n-1) multiplications (Montgomery's trick)
    # and meters exactly what it performs.

    def mul_many(
        self, avec: Sequence[Element], bvec: Sequence[Element]
    ) -> List[Element]:
        """Elementwise products ``[a*b for a, b in zip(avec, bvec)]``."""
        n = len(avec)
        if n != len(bvec):
            raise ValueError("mul_many requires equal-length vectors")
        backend = self._backend
        if backend is None:
            return [self.mul(a, b) for a, b in zip(avec, bvec)]
        self.counter.muls += n
        return backend.mul_many(avec, bvec)

    def dot(self, avec: Sequence[Element], bvec: Sequence[Element]) -> Element:
        """Inner product ``sum_i avec[i] * bvec[i]`` (zero for empty input)."""
        n = len(avec)
        if n != len(bvec):
            raise ValueError("dot requires equal-length vectors")
        if n == 0:
            return self.zero
        backend = self._backend
        if backend is None:
            total = self.zero
            first = True
            for a, b in zip(avec, bvec):
                p = self.mul(a, b)
                total = p if first else self.add(total, p)
                first = False
            return total
        self.counter.muls += n
        self.counter.adds += n - 1
        return backend.dot(avec, bvec)

    def axpy_many(
        self, acc: Sequence[Element], xs: Sequence[Element], c: Element
    ) -> List[Element]:
        """One shared Horner step: ``[a*x + c for a, x in zip(acc, xs)]``."""
        n = len(acc)
        if n != len(xs):
            raise ValueError("axpy_many requires equal-length vectors")
        backend = self._backend
        if backend is None:
            return [self.add(self.mul(a, x), c) for a, x in zip(acc, xs)]
        self.counter.muls += n
        self.counter.adds += n
        return backend.axpy_many(acc, xs, c)

    def fma_many(
        self,
        acc: Sequence[Element],
        xs: Sequence[Element],
        cs: Sequence[Element],
    ) -> List[Element]:
        """Fused multiply-add with a per-element addend:
        ``[a*x + c for a, x, c in zip(acc, xs, cs)]``.

        The multi-polynomial Horner step: evaluating G polynomials at m
        points sweeps one width-``G*m`` ``fma_many`` per coefficient
        (each polynomial contributing its own coefficient), the same
        mul/add totals as G separate :meth:`axpy_many` sweeps.
        """
        n = len(acc)
        if n != len(xs) or n != len(cs):
            raise ValueError("fma_many requires equal-length vectors")
        backend = self._backend
        if backend is None:
            return [
                self.add(self.mul(a, x), c)
                for a, x, c in zip(acc, xs, cs)
            ]
        self.counter.muls += n
        self.counter.adds += n
        return backend.fma_many(acc, xs, cs)

    def dot_rows(
        self, rows: Sequence[Sequence[Element]], vec: Sequence[Element]
    ) -> List[Element]:
        """Many inner products against one shared vector:
        ``[dot(row, vec) for row in rows]``.

        The batched-combination workhorse (Fig. 3 step 2 across all
        dealers at once): same op totals as row-by-row :meth:`dot`, one
        two-dimensional kernel instead of ``len(rows)`` narrow ones.
        """
        m = len(vec)
        for row in rows:
            if len(row) != m:
                raise ValueError("dot_rows requires equal-length rows")
        backend = self._backend
        if backend is None:
            return [self.dot(list(row), vec) for row in rows]
        if m == 0:
            return [self.zero] * len(rows)
        self.counter.muls += len(rows) * m
        self.counter.adds += len(rows) * (m - 1)
        return backend.dot_rows(rows, vec)

    def batch_inv(self, vec: Sequence[Element]) -> List[Element]:
        """All inverses of ``vec`` via Montgomery's trick.

        One :meth:`inv` plus ``3(len(vec)-1)`` multiplications, however
        long the vector — the workhorse behind the interpolation cache's
        one-time weight build.  Raises ``ZeroDivisionError`` naming the
        offending index if any element is zero (identical across
        backends; see tests/test_backends.py).
        """
        n = len(vec)
        if n == 0:
            return []
        zero = self.zero
        for i, v in enumerate(vec):
            if v == zero:
                raise ZeroDivisionError(
                    f"batch_inv of a vector containing zero (index {i})"
                )
        backend = self._backend
        if backend is None:
            prefix = [vec[0]]
            for v in vec[1:]:
                prefix.append(self.mul(prefix[-1], v))
            acc = self.inv(prefix[-1])
            out: List[Element] = [self.zero] * n
            for i in range(n - 1, 0, -1):
                out[i] = self.mul(acc, prefix[i - 1])
                acc = self.mul(acc, vec[i])
            out[0] = acc
            return out
        self.counter.invs += 1
        self.counter.muls += 3 * (n - 1)
        return backend.batch_inv(vec)

    # -- conversions ------------------------------------------------------
    @abstractmethod
    def from_int(self, value: int) -> Element:
        """Canonical injection of ``0 <= value < order`` into the field."""

    @abstractmethod
    def to_int(self, a: Element) -> int:
        """Inverse of :meth:`from_int`."""

    def element_point(self, player_id: int) -> Element:
        """The evaluation point assigned to player ``player_id`` (1-based).

        Shamir sharing evaluates the secret polynomial at these points; they
        must be distinct and nonzero (the secret lives at 0).
        """
        if not 1 <= player_id < self.order:
            raise ValueError(
                f"player id {player_id} out of range for field of order {self.order}"
            )
        return self.from_int(player_id)

    # -- randomness -------------------------------------------------------
    def random(self, rng) -> Element:
        """A uniformly random field element drawn from ``rng``."""
        return self.from_int(rng.randrange(self.order))

    def random_nonzero(self, rng) -> Element:
        """A uniformly random *nonzero* field element."""
        return self.from_int(rng.randrange(1, self.order))

    # -- coin extraction --------------------------------------------------
    def coin_bit(self, a: Element) -> int:
        """The paper's ``F(0) mod 2`` bit extraction (Fig. 6, step 3)."""
        return self.to_int(a) & 1

    def coin_bits(self, a: Element) -> List[int]:
        """All ``bit_length`` bits of an element, least-significant first.

        Section 3.1: "as all our coins will be generated in the field
        GF(2^k) we can assume that each coin generates in fact k random
        coins in {0,1}".
        """
        value = self.to_int(a)
        return [(value >> i) & 1 for i in range(self.bit_length)]

    # -- iteration helpers (small fields / tests) -------------------------
    def elements(self) -> Iterator[Element]:
        """Iterate every element; only sensible for small test fields."""
        for value in range(self.order):
            yield self.from_int(value)

    # -- misc --------------------------------------------------------------
    def __contains__(self, a: Element) -> bool:
        try:
            return 0 <= self.to_int(a) < self.order
        except (TypeError, ValueError):
            return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order={self.order})"
