"""Number-theoretic transform over Z_q.

Section 2 of the paper sketches the special field construction: "we use
discrete Fourier transforms to do the multiplication, modulo some
irreducible polynomial, in O(l log l) operations over Z_q".  This module
supplies that transform: an iterative radix-2 Cooley-Tukey NTT over a
prime ``q`` with ``q ≡ 1 (mod 2^m)``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.fields.irreducible import is_prime, prime_factors


def find_ntt_prime(min_q: int, transform_size: int) -> int:
    """Smallest prime ``q >= min_q`` with ``q ≡ 1 (mod transform_size)``.

    ``transform_size`` must be a power of two; the returned prime admits
    primitive ``transform_size``-th roots of unity.
    """
    if transform_size & (transform_size - 1):
        raise ValueError("transform size must be a power of two")
    # candidates are 1 mod transform_size
    q = ((max(min_q, 2) - 1 + transform_size - 1) // transform_size) * transform_size + 1
    while not is_prime(q):
        q += transform_size
    return q


def primitive_root(q: int) -> int:
    """A generator of the multiplicative group of Z_q (q prime)."""
    group = q - 1
    factors = prime_factors(group)
    for g in range(2, q):
        if all(pow(g, group // f, q) != 1 for f in factors):
            return g
    raise ValueError(f"no primitive root modulo {q}")


def root_of_unity(q: int, size: int) -> int:
    """A primitive ``size``-th root of unity modulo prime ``q``."""
    if (q - 1) % size:
        raise ValueError(f"{size} does not divide q-1={q - 1}")
    g = primitive_root(q)
    omega = pow(g, (q - 1) // size, q)
    return omega


def _bit_reverse_permute(vec: List[int]) -> List[int]:
    n = len(vec)
    out = list(vec)
    j = 0
    for i in range(1, n):
        bit = n >> 1
        while j & bit:
            j ^= bit
            bit >>= 1
        j |= bit
        if i < j:
            out[i], out[j] = out[j], out[i]
    return out


def ntt(vec: List[int], omega: int, q: int) -> List[int]:
    """In-order iterative NTT of length ``len(vec)`` (a power of two)."""
    n = len(vec)
    if n & (n - 1):
        raise ValueError("NTT length must be a power of two")
    a = _bit_reverse_permute([v % q for v in vec])
    length = 2
    while length <= n:
        w_len = pow(omega, n // length, q)
        half = length // 2
        for start in range(0, n, length):
            w = 1
            for i in range(start, start + half):
                u = a[i]
                v = a[i + half] * w % q
                a[i] = (u + v) % q
                a[i + half] = (u - v) % q
                w = w * w_len % q
        length <<= 1
    return a


def intt(vec: List[int], omega: int, q: int) -> List[int]:
    """Inverse NTT (scales by n^{-1})."""
    n = len(vec)
    inv_omega = pow(omega, q - 2, q)
    a = ntt(vec, inv_omega, q)
    inv_n = pow(n, q - 2, q)
    return [x * inv_n % q for x in a]


def poly_mul_ntt(a: List[int], b: List[int], q: int, omega_cache: dict = None) -> List[int]:
    """Product of two Z_q[x] polynomials via NTT.

    Falls back to schoolbook multiplication when ``q`` lacks a large enough
    root of unity (caller should choose ``q`` via :func:`find_ntt_prime` to
    avoid the fallback).
    """
    if not a or not b:
        return []
    result_len = len(a) + len(b) - 1
    size = 1
    while size < result_len:
        size <<= 1
    if (q - 1) % size:
        return poly_mul_schoolbook(a, b, q)
    if omega_cache is not None and size in omega_cache:
        omega = omega_cache[size]
    else:
        omega = root_of_unity(q, size)
        if omega_cache is not None:
            omega_cache[size] = omega
    fa = ntt(a + [0] * (size - len(a)), omega, q)
    fb = ntt(b + [0] * (size - len(b)), omega, q)
    fc = [x * y % q for x, y in zip(fa, fb)]
    c = intt(fc, omega, q)
    return c[:result_len]


def poly_mul_schoolbook(a: List[int], b: List[int], q: int) -> List[int]:
    """O(l^2) reference polynomial product over Z_q."""
    if not a or not b:
        return []
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            out[i + j] = (out[i + j] + ai * bj) % q
    return out


def choose_parameters(k: int) -> Tuple[int, int]:
    """Pick ``(q, l)`` for the paper's special field of size >= 2^k.

    Section 2: "Let q be a prime and l an integer such that q >= 2l+1 and
    q^l >= 2^k ... Choosing q = O(l) and l = O(k / log k)".  We also require
    ``q ≡ 1 (mod 2^m)`` for a transform size covering degree-2l products.
    """
    import math

    if k < 2:
        raise ValueError("k must be >= 2")
    log_k = max(1.0, math.log2(k))
    l = max(2, int(math.ceil(k / log_k)))
    while True:
        size = 1
        while size < 2 * l:
            size <<= 1
        q = find_ntt_prime(2 * l + 1, size)
        if q ** l >= (1 << k):
            return q, l
        l += 1
