"""The paper's "specially constructed finite field" GF(q^l).

Section 2: "we can build a field of size p = Θ(2^k) in which
multiplication takes only O(k log k) time... Let q be a prime and l an
integer such that q >= 2l+1 and q^l >= 2^k.  We work over GF(q^l).  We
view the field elements as degree-l polynomials over Z_q.  Then we use
discrete Fourier transforms to do the multiplication, modulo some
irreducible polynomial, in O(l log l) operations over Z_q."

Elements are tuples of ``l`` ints modulo ``q``.  Whenever possible the
modulus is chosen as a binomial ``x^l - c`` so the post-NTT reduction is
O(l); otherwise a schoolbook reduction is used.

The operation counter tallies *scalar Z_q operations*: an element addition
counts ``l`` adds, an element multiplication counts one ``mul`` (convert
with ``OpCounter.total_additions(k, naive=False)`` which charges
``k log k`` additions per multiplication, per the paper's cost model).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.fields.base import Field
from repro.fields.irreducible import prime_factors
from repro.fields.ntt import (
    choose_parameters,
    poly_mul_ntt,
    poly_mul_schoolbook,
)


# ---------------------------------------------------------------------------
# Z_q[x] helpers (setup-time; lists of coefficients, low degree first)
# ---------------------------------------------------------------------------

def _poly_trim(a: List[int]) -> List[int]:
    while a and a[-1] == 0:
        a.pop()
    return a


def _poly_divmod(a: List[int], b: List[int], q: int) -> Tuple[List[int], List[int]]:
    a = list(a)
    db, lead = len(b) - 1, b[-1]
    inv_lead = pow(lead, q - 2, q)
    quotient = [0] * max(0, len(a) - db)
    while len(a) - 1 >= db and _poly_trim(a):
        shift = len(a) - 1 - db
        coeff = a[-1] * inv_lead % q
        quotient[shift] = coeff
        for i, bi in enumerate(b):
            a[shift + i] = (a[shift + i] - coeff * bi) % q
        _poly_trim(a)
    return quotient, a


def _poly_mulmod(a: List[int], b: List[int], mod: List[int], q: int) -> List[int]:
    prod = poly_mul_schoolbook(a, b, q)
    _, rem = _poly_divmod(prod, mod, q)
    return rem


def _poly_powmod_qpow(a: List[int], times: int, mod: List[int], q: int) -> List[int]:
    """Compute ``a^(q^times) mod mod`` by repeated q-th powering."""
    result = list(a)
    for _ in range(times):
        # result := result^q via square-and-multiply on exponent q
        base, out, e = result, [1], q
        while e:
            if e & 1:
                out = _poly_mulmod(out, base, mod, q)
            base = _poly_mulmod(base, base, mod, q)
            e >>= 1
        result = out
    return result


def _poly_gcd(a: List[int], b: List[int], q: int) -> List[int]:
    a, b = _poly_trim(list(a)), _poly_trim(list(b))
    while b:
        _, r = _poly_divmod(a, b, q)
        a, b = b, _poly_trim(r)
    if a:
        inv_lead = pow(a[-1], q - 2, q)
        a = [c * inv_lead % q for c in a]
    return a


def is_irreducible_zq(poly: List[int], q: int) -> bool:
    """Rabin's irreducibility test for a monic polynomial over Z_q."""
    l = len(poly) - 1
    if l <= 0:
        return False
    if l == 1:
        return True
    x = [0, 1]
    t = _poly_powmod_qpow(x, l, poly, q)
    # x^(q^l) must equal x mod poly
    diff = _poly_trim([(ti - xi) % q for ti, xi in
                       zip(t + [0] * (len(x) - len(t)), x + [0] * (len(t) - len(x)))])
    if diff:
        return False
    for d in prime_factors(l):
        t = _poly_powmod_qpow(x, l // d, poly, q)
        sub = list(t) + [0] * (2 - len(t))
        sub[1] = (sub[1] - 1) % q
        g = _poly_gcd(sub, poly, q)
        if len(g) - 1 != 0:
            return False
    return True


def find_irreducible_zq(l: int, q: int) -> Tuple[List[int], Optional[int]]:
    """An irreducible monic degree-l polynomial over Z_q.

    Prefers binomials ``x^l - c`` (returning ``(poly, c)``), which admit an
    O(l) reduction step; falls back to a deterministic sparse search
    (returning ``(poly, None)``).
    """
    for c in range(1, q):
        poly = [(-c) % q] + [0] * (l - 1) + [1]
        if is_irreducible_zq(poly, q):
            return poly, c
    for c0 in range(1, q):
        for c1 in range(q):
            poly = [c0, c1] + [0] * (l - 2) + [1]
            if is_irreducible_zq(poly, q):
                return poly, None
    raise RuntimeError(f"no irreducible degree-{l} polynomial over Z_{q} found")


# ---------------------------------------------------------------------------
# The field itself
# ---------------------------------------------------------------------------

class SpecialField(Field):
    """GF(q^l) with NTT-based multiplication (Section 2's fast field)."""

    def __init__(self, q: int, l: int):
        super().__init__()
        if q < 2 * l + 1:
            raise ValueError("paper requires q >= 2l + 1")
        self.q = q
        self.l = l
        self.order = q ** l
        self.bit_length = self.order.bit_length() - 1 or 1
        self.zero = (0,) * l
        self.one = tuple([1 % q] + [0] * (l - 1))
        self._omega_cache: dict = {}
        self._modulus, self._binomial_c = find_irreducible_zq(l, q)

    # -- internal ----------------------------------------------------------
    def _reduce(self, prod: List[int]) -> Tuple[int, ...]:
        q, l = self.q, self.l
        if len(prod) <= l:
            return tuple(prod + [0] * (l - len(prod)))
        if self._binomial_c is not None:
            # x^l = c  =>  fold the high part down once (deg(prod) <= 2l-2)
            c = self._binomial_c
            out = prod[:l] + [0] * (l - min(l, len(prod)))
            for i in range(l, len(prod)):
                out[i - l] = (out[i - l] + c * prod[i]) % q
            return tuple(out)
        _, rem = _poly_divmod(list(prod), self._modulus, q)
        rem = rem + [0] * (l - len(rem))
        return tuple(rem[:l])

    # -- Field interface ----------------------------------------------------
    def add(self, a, b):
        self.counter.adds += self.l
        q = self.q
        return tuple((x + y) % q for x, y in zip(a, b))

    def sub(self, a, b):
        self.counter.adds += self.l
        q = self.q
        return tuple((x - y) % q for x, y in zip(a, b))

    def neg(self, a):
        q = self.q
        return tuple((-x) % q for x in a)

    def mul(self, a, b):
        self.counter.muls += 1
        prod = poly_mul_ntt(list(a), list(b), self.q, self._omega_cache)
        return self._reduce(prod)

    def inv(self, a):
        if all(x == 0 for x in a):
            raise ZeroDivisionError("inverse of zero in GF(q^l)")
        self.counter.invs += 1
        # extended Euclid over Z_q[x]
        q = self.q
        r0, r1 = list(self._modulus), _poly_trim(list(a))
        s0, s1 = [0], [1]
        while len(r1) - 1 > 0:
            quotient, rem = _poly_divmod(r0, r1, q)
            r0, r1 = r1, _poly_trim(rem)
            prod = poly_mul_schoolbook(quotient, s1, q)
            new_s = [(x - y) % q for x, y in
                     zip(s0 + [0] * max(0, len(prod) - len(s0)),
                         prod + [0] * max(0, len(s0) - len(prod)))]
            s0, s1 = s1, _poly_trim(new_s) or [0]
        if not r1:
            raise ZeroDivisionError("element not invertible (modulus not irreducible?)")
        scale = pow(r1[0], q - 2, q)
        inv_poly = [c * scale % q for c in s1]
        inv_poly = inv_poly + [0] * (self.l - len(inv_poly))
        return tuple(inv_poly[: self.l])

    def from_int(self, value: int):
        if not 0 <= value < self.order:
            raise ValueError(f"{value} out of range for GF({self.q}^{self.l})")
        digits = []
        for _ in range(self.l):
            value, digit = divmod(value, self.q)
            digits.append(digit)
        return tuple(digits)

    def to_int(self, a) -> int:
        value = 0
        for digit in reversed(a):
            value = value * self.q + digit
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpecialField(q={self.q}, l={self.l}, order~2^{self.bit_length})"


def build_special_field(k: int) -> SpecialField:
    """Construct the special field of size >= 2^k per Section 2's recipe."""
    q, l = choose_parameters(k)
    return SpecialField(q, l)
