"""Irreducible polynomials and primality utilities.

Polynomials over GF(2) are encoded as Python ints: bit ``i`` is the
coefficient of ``x^i`` (so ``0b1011`` is ``x^3 + x + 1``).  Irreducibility
is decided with Rabin's test:  ``f`` of degree ``n`` is irreducible over
GF(2) iff ``x^(2^n) == x (mod f)`` and ``gcd(x^(2^(n/d)) - x, f) == 1``
for every prime divisor ``d`` of ``n``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List


# ---------------------------------------------------------------------------
# GF(2)[x] arithmetic on int-encoded polynomials
# ---------------------------------------------------------------------------

def gf2_degree(poly: int) -> int:
    """Degree of an int-encoded GF(2) polynomial (degree of 0 is -1)."""
    return poly.bit_length() - 1


def gf2_mod(a: int, mod: int) -> int:
    """Remainder of ``a`` divided by ``mod`` in GF(2)[x]."""
    dm = gf2_degree(mod)
    da = gf2_degree(a)
    while da >= dm:
        a ^= mod << (da - dm)
        da = gf2_degree(a)
    return a


def gf2_mulmod(a: int, b: int, mod: int) -> int:
    """Carry-less product ``a*b mod mod`` in GF(2)[x]."""
    a = gf2_mod(a, mod)
    result = 0
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if gf2_degree(a) >= gf2_degree(mod):
            a ^= mod
    return result


def gf2_powmod(a: int, e: int, mod: int) -> int:
    """``a**e mod mod`` in GF(2)[x] by square-and-multiply."""
    result = 1
    a = gf2_mod(a, mod)
    while e:
        if e & 1:
            result = gf2_mulmod(result, a, mod)
        a = gf2_mulmod(a, a, mod)
        e >>= 1
    return result


def gf2_gcd(a: int, b: int) -> int:
    """Greatest common divisor in GF(2)[x]."""
    while b:
        a, b = b, gf2_mod(a, b)
    return a


# ---------------------------------------------------------------------------
# primality / factoring helpers (small inputs; used for field setup only)
# ---------------------------------------------------------------------------

_MR_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for n < 3.3e24 (covers all our moduli)."""
    if n < 2:
        return False
    for p in _MR_BASES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_BASES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime >= n."""
    candidate = max(n, 2)
    while not is_prime(candidate):
        candidate += 1
    return candidate


def prime_factors(n: int) -> List[int]:
    """Distinct prime factors of ``n`` by trial division (setup-time only)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors


# ---------------------------------------------------------------------------
# irreducibility over GF(2)
# ---------------------------------------------------------------------------

def is_irreducible_gf2(poly: int) -> bool:
    """Rabin's irreducibility test for an int-encoded GF(2) polynomial."""
    n = gf2_degree(poly)
    if n <= 0:
        return False
    if n == 1:
        return True
    if not poly & 1:  # divisible by x
        return False
    x = 0b10
    # x^(2^n) mod poly must equal x
    t = x
    for _ in range(n):
        t = gf2_mulmod(t, t, poly)
    if t != x:
        return False
    for d in prime_factors(n):
        t = x
        for _ in range(n // d):
            t = gf2_mulmod(t, t, poly)
        if gf2_gcd(t ^ x, poly) != 1:
            return False
    return True


@lru_cache(maxsize=None)
def find_irreducible_gf2(k: int) -> int:
    """Smallest irreducible polynomial of degree ``k`` over GF(2).

    The search is deterministic (lexicographic over the low coefficients)
    so every process agrees on the field modulus without coordination —
    important because all players must share the same field.
    """
    if k < 1:
        raise ValueError("degree must be positive")
    high = 1 << k
    # constant term must be 1, otherwise x divides the polynomial
    for low in range(1, high, 2):
        candidate = high | low
        if is_irreducible_gf2(candidate):
            return candidate
    raise RuntimeError(f"no irreducible polynomial of degree {k} found")
