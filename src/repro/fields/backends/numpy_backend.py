"""Vectorized bulk kernels on numpy arrays.

Strategies, chosen per field at construction:

* **GF(2^k), log/exp tables (k <= 16)** — a multiplication is two log
  gathers, an integer add, and one antilog gather; whole vectors become
  four fancy-indexing operations.
* **GF(2^k), carry-less (k <= 32)** — products are assembled from a
  process-global 256x256 byte carry-less-product table (16 gathers,
  shifts and XORs for k=32), then reduced modulo the field polynomial
  with per-field byte fold tables (one gather per high byte).  This is
  the table-free analogue of a CLMUL instruction.
* **GF(p), p < 2^32** — ``uint64`` arithmetic with one ``% p`` per
  product; ``(p-1)^2 + (p-1) < 2^64`` so nothing overflows, and dot
  products accumulate reduced summands (``n * (p-1)`` also fits).

Vectors shorter than :data:`MIN_WIDTH` delegate to the pure loops — the
per-call numpy overhead (array conversion, ufunc dispatch) exceeds the
arithmetic below roughly 32 elements, and the protocol's genuinely hot
vectors (dealing sweeps, batched dots) are hundreds wide.
``batch_inv`` always delegates: Montgomery's trick is a prefix-product
chain whose every step depends on the previous one, so there is nothing
to vectorize — reusing the scalar chain keeps results, error behaviour,
and metering bit-identical.

Everything here is *unmetered*; the ``Field`` wrappers count ops before
dispatching (see the package docstring's metering contract).
"""

from __future__ import annotations

_NUMPY = None
_NUMPY_CHECKED = False

#: below this many total elements the pure loops win; measured on the
#: k=32 carry-less kernels (numpy overtakes between 16 and 64 elements)
MIN_WIDTH = 32


def numpy_or_none():
    """The numpy module, or None when it cannot be imported."""
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        _NUMPY_CHECKED = True
        try:
            import numpy
        except ImportError:
            numpy = None
        _NUMPY = numpy
    return _NUMPY


_CL8 = None


def _cl8_table(np):
    """256x256 carry-less products of byte pairs (15-bit results).

    Field-independent (no reduction), so one table serves every GF(2^k)
    instance in the process; built vectorized in ~1 ms on first use.
    """
    global _CL8
    if _CL8 is None:
        a = np.arange(256, dtype=np.uint64).reshape(-1, 1)
        b = np.arange(256, dtype=np.uint64).reshape(1, -1)
        table = np.zeros((256, 256), dtype=np.uint64)
        for bit in range(8):
            table ^= np.where((b >> bit) & 1, a << bit, 0).astype(np.uint64)
        _CL8 = table
    return _CL8


class NumpyBackend:
    """Numpy bulk kernels with transparent pure-python fallback."""

    name = "numpy"

    def __init__(self, field):
        np = numpy_or_none()
        if np is None:  # pragma: no cover - resolve_backend guards this
            raise RuntimeError("numpy is not installed")
        self.np = np
        self.field = field
        kind = getattr(field, "kind", None)
        self._style = None
        if kind == "gf2k":
            if field._exp is not None:
                self._style = "gf2k_tables"
                self._exp_arr = np.array(field._exp, dtype=np.int64)
                self._log_arr = np.array(field._log, dtype=np.int64)
            elif field.k <= 32:
                # byte products peak at bit 8*(nbytes-1)*2 + 14 < 64
                self._style = "gf2k_clmul"
                self._setup_clmul(field)
        elif kind == "gfp" and field.p < (1 << 32):
            self._style = "gfp_u64"
            self._p = np.uint64(field.p)
        # any other configuration: every kernel falls back to pure

    # -- setup ------------------------------------------------------------
    def _setup_clmul(self, field) -> None:
        np = self.np
        k, mod = field.k, field.modulus
        self._nbytes = (k + 7) // 8
        self._k = np.uint64(k)
        self._mask = np.uint64((1 << k) - 1)
        # reduction of x^(k+j) for every overflow bit position j
        red = []
        for j in range(max(0, k - 1)):
            v = 1 << (k + j)
            for d in range(k + j, k - 1, -1):
                if (v >> d) & 1:
                    v ^= mod << (d - k)
            red.append(v)
        nfold = max(1, (k - 1 + 7) // 8)
        fold = np.zeros((nfold, 256), dtype=np.uint64)
        for pos in range(nfold):
            for byte in range(256):
                acc = 0
                for bit in range(8):
                    j = 8 * pos + bit
                    if (byte >> bit) & 1 and j < k - 1:
                        acc ^= red[j]
                fold[pos, byte] = acc
        self._fold = fold

    # -- helpers ----------------------------------------------------------
    def _clmul_reduce(self, a, b):
        """Carry-less product of uint64 arrays, reduced into the field."""
        np = self.np
        cl8 = _cl8_table(np)
        nbytes = self._nbytes
        a_bytes = [((a >> np.uint64(8 * i)) & np.uint64(0xFF)).astype(np.intp)
                   for i in range(nbytes)]
        b_bytes = [((b >> np.uint64(8 * j)) & np.uint64(0xFF)).astype(np.intp)
                   for j in range(nbytes)]
        prod = np.zeros(np.broadcast(a, b).shape, dtype=np.uint64)
        for i, ai in enumerate(a_bytes):
            for j, bj in enumerate(b_bytes):
                prod ^= cl8[ai, bj] << np.uint64(8 * (i + j))
        # fold the overflow bits k..2k-2 back down (fold values are < 2^k,
        # so a single pass fully reduces)
        hi = prod >> self._k
        out = prod & self._mask
        for pos in range(self._fold.shape[0]):
            byte = ((hi >> np.uint64(8 * pos)) & np.uint64(0xFF)).astype(np.intp)
            out = out ^ self._fold[pos, byte]
        return out

    def _gf2k_mul_arrays(self, a, b):
        np = self.np
        if self._style == "gf2k_tables":
            nz = (a != 0) & (b != 0)
            idx = self._log_arr[a] + self._log_arr[b]
            return np.where(nz, self._exp_arr[idx], 0)
        return self._clmul_reduce(a, b)

    def _in_arr(self, vec):
        dtype = self.np.int64 if self._style == "gf2k_tables" else self.np.uint64
        return self.np.array(vec, dtype=dtype)

    # -- kernels ----------------------------------------------------------
    def mul_many(self, avec, bvec):
        if self._style is None or len(avec) < MIN_WIDTH:
            return self.field._mul_many_pure(avec, bvec)
        a, b = self._in_arr(avec), self._in_arr(bvec)
        if self._style == "gfp_u64":
            return ((a * b) % self._p).tolist()
        return self._gf2k_mul_arrays(a, b).tolist()

    def dot(self, avec, bvec):
        if self._style is None or len(avec) < MIN_WIDTH:
            return self.field._dot_pure(avec, bvec)
        np = self.np
        a, b = self._in_arr(avec), self._in_arr(bvec)
        if self._style == "gfp_u64":
            return int(((a * b) % self._p).sum(dtype=np.uint64) % self._p)
        return int(np.bitwise_xor.reduce(self._gf2k_mul_arrays(a, b)))

    def axpy_many(self, acc, xs, c):
        if self._style is None or len(acc) < MIN_WIDTH:
            return self.field._axpy_many_pure(acc, xs, c)
        a, x = self._in_arr(acc), self._in_arr(xs)
        if self._style == "gfp_u64":
            return ((a * x + self.np.uint64(c)) % self._p).tolist()
        prod = self._gf2k_mul_arrays(a, x)
        return (prod ^ (self.np.int64(c) if self._style == "gf2k_tables"
                        else self.np.uint64(c))).tolist()

    def fma_many(self, acc, xs, cs):
        if self._style is None or len(acc) < MIN_WIDTH:
            return self.field._fma_many_pure(acc, xs, cs)
        a, x, c = self._in_arr(acc), self._in_arr(xs), self._in_arr(cs)
        if self._style == "gfp_u64":
            return ((a * x + c) % self._p).tolist()
        return (self._gf2k_mul_arrays(a, x) ^ c).tolist()

    def dot_rows(self, rows, vec):
        total = len(rows) * len(vec)
        if self._style is None or total < MIN_WIDTH or not len(vec):
            return self.field._dot_rows_pure(rows, vec)
        np = self.np
        dtype = np.int64 if self._style == "gf2k_tables" else np.uint64
        matrix = np.array([list(row) for row in rows], dtype=dtype)
        v = np.array(vec, dtype=dtype)
        if self._style == "gfp_u64":
            prods = (matrix * v) % self._p
            return (prods.sum(axis=1, dtype=np.uint64) % self._p).tolist()
        prods = self._gf2k_mul_arrays(matrix, v)
        return np.bitwise_xor.reduce(prods, axis=1).tolist()

    def batch_inv(self, vec):
        # Montgomery's chain is sequential by construction — see module
        # docstring; the pure loop is already one inv + 3(n-1) muls
        return self.field._batch_inv_pure(vec)
