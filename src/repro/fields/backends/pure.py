"""The zero-dependency bulk-kernel backend.

A thin strategy object: every kernel forwards to the field's own
``_*_pure`` loop (the pre-backend implementations, now unmetered — the
``Field`` wrappers meter before dispatching).  Exists so "which backend
computed this" is always answerable and so the numpy backend has a
uniform fallback target.
"""

from __future__ import annotations


class PurePythonBackend:
    """Bulk kernels as plain python loops over the field's scalar ops."""

    name = "python"

    __slots__ = ("field",)

    def __init__(self, field):
        self.field = field

    def mul_many(self, avec, bvec):
        return self.field._mul_many_pure(avec, bvec)

    def dot(self, avec, bvec):
        return self.field._dot_pure(avec, bvec)

    def axpy_many(self, acc, xs, c):
        return self.field._axpy_many_pure(acc, xs, c)

    def fma_many(self, acc, xs, cs):
        return self.field._fma_many_pure(acc, xs, cs)

    def dot_rows(self, rows, vec):
        return self.field._dot_rows_pure(rows, vec)

    def batch_inv(self, vec):
        return self.field._batch_inv_pure(vec)
