"""Pluggable bulk-kernel backends for the concrete int-element fields.

The paper's pitch is raw speed; PR 1 gave the :class:`~repro.fields.base.
Field` interface *bulk* kernels (``mul_many`` / ``dot`` / ``axpy_many`` /
``fma_many`` / ``dot_rows`` / ``batch_inv``) so the protocol hot paths work
on whole vectors, and this package makes the kernel *implementation*
swappable per field instance:

* :class:`~repro.fields.backends.pure.PurePythonBackend` — the
  zero-dependency loops (exactly the pre-backend behaviour);
* :class:`~repro.fields.backends.numpy_backend.NumpyBackend` — vectorized
  kernels on numpy arrays: GF(2^k) via log/antilog table gathers (k <= 16
  with tables) or byte-table carry-less multiplication (k <= 32), GF(p)
  via ``uint64`` modular arithmetic (p < 2^32).

Selection happens at field construction: ``GF2k(k, backend="numpy")``,
``GFp(p, backend="python")``, the ``REPRO_FIELD_BACKEND`` environment
variable, or the CLI's ``--backend`` flag.  The default ``"auto"`` picks
numpy when it imports cleanly and falls back to pure python otherwise, so
the package stays dependency-free (numpy is the optional ``fast`` extra).

Metering contract: backends are *unmetered* — every
:class:`~repro.fields.base.OpCounter` bump happens in the ``Field``
wrapper methods *before* the backend is consulted, so per-element op
totals are identical whichever backend computes the result (the lemma
conformance audits never see a difference).  Results are identical too:
the numpy kernels compute the same field elements, and configurations a
vectorized kernel does not cover (small vectors below
:data:`~repro.fields.backends.numpy_backend.MIN_WIDTH`, k > 32 carry-less
fields, p >= 2^32 primes, Montgomery's inherently sequential inversion
chain) transparently reuse the pure loops.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.fields.backends.pure import PurePythonBackend

#: environment variable consulted when the constructor asks for "auto"
BACKEND_ENV_VAR = "REPRO_FIELD_BACKEND"

_BACKEND_NAMES = ("auto", "python", "numpy")


def numpy_available() -> bool:
    """Does numpy import cleanly in this interpreter?"""
    from repro.fields.backends import numpy_backend

    return numpy_backend.numpy_or_none() is not None


def available_backends() -> List[str]:
    """The backend names :func:`resolve_backend` can satisfy right now."""
    names = ["python"]
    if numpy_available():
        names.append("numpy")
    return names


def resolve_backend(field, name: Optional[str]):
    """The backend instance ``field`` should delegate its bulk kernels to.

    ``name`` is ``"python"``, ``"numpy"``, ``"auto"`` or ``None`` (same
    as auto).  Auto consults :data:`BACKEND_ENV_VAR` first, then prefers
    numpy when importable.  Asking for numpy explicitly when it is not
    installed raises — silent degradation is only for auto.
    """
    if name is None:
        name = "auto"
    if name not in _BACKEND_NAMES:
        raise ValueError(
            f"backend must be one of {_BACKEND_NAMES}, got {name!r}"
        )
    explicit = name
    if name == "auto":
        env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
        if env and env != "auto":
            if env not in _BACKEND_NAMES:
                raise ValueError(
                    f"{BACKEND_ENV_VAR} must be one of {_BACKEND_NAMES}, "
                    f"got {env!r}"
                )
            explicit = env

    if explicit == "numpy" or explicit == "auto":
        from repro.fields.backends import numpy_backend

        if numpy_backend.numpy_or_none() is not None:
            return numpy_backend.NumpyBackend(field)
        if explicit == "numpy":
            raise RuntimeError(
                "backend='numpy' requested but numpy is not installed "
                "(pip install 'repro[fast]' or use backend='auto')"
            )
    return PurePythonBackend(field)


__all__ = [
    "BACKEND_ENV_VAR",
    "PurePythonBackend",
    "available_backends",
    "numpy_available",
    "resolve_backend",
]
