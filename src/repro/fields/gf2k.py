"""The binary extension field GF(2^k).

This is the field the paper's protocol figures assume ("For simplicity
however the algorithms we provide below assume we work over GF(2^k)",
Section 2).  Elements are ints below ``2^k`` interpreted as GF(2)
polynomials of degree < k; arithmetic is modulo a fixed irreducible
polynomial of degree k.

Two multiplication strategies are provided, matching the paper's remark
that "in practice, when k is small, working over GF(2^k) with the naive
O(k^2) multiplication is faster":

* ``tables=True`` (default for k <= 16): log/exp tables over a generator,
  one multiplication = one table add.  Setup is O(2^k).
* ``tables=False``: naive shift-and-xor carry-less multiplication with
  modular reduction, O(k^2) bit operations, no setup cost; works for any k.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fields.base import Field
from repro.fields.irreducible import (
    find_irreducible_gf2,
    gf2_degree,
    is_irreducible_gf2,
    prime_factors,
)

_TABLE_MAX_K = 16
_KARA_BASE_BITS = 32


def _base_clmul(a: int, b: int) -> int:
    """Schoolbook carry-less multiply (no reduction)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def _kara_clmul(a: int, b: int) -> int:
    """Recursive Karatsuba carry-less multiply (no reduction).

    Over GF(2), Karatsuba's middle term is (a0+a1)(b0+b1) with XOR as
    addition, giving the classic three-multiplication recursion.
    """
    bits = max(a.bit_length(), b.bit_length())
    if bits <= _KARA_BASE_BITS:
        return _base_clmul(a, b)
    half = bits // 2
    mask = (1 << half) - 1
    a0, a1 = a & mask, a >> half
    b0, b1 = b & mask, b >> half
    low = _kara_clmul(a0, b0)
    high = _kara_clmul(a1, b1)
    mid = _kara_clmul(a0 ^ a1, b0 ^ b1) ^ low ^ high
    return low ^ (mid << half) ^ (high << (2 * half))


class GF2k(Field):
    """GF(2^k) with a deterministic modulus and optional log/exp tables.

    Parameters
    ----------
    k:
        Extension degree; the field has ``2^k`` elements and each element
        is transmitted as ``k`` bits (the paper's security parameter).
    modulus:
        Optional int-encoded irreducible polynomial of degree ``k``.  When
        omitted, the lexicographically smallest irreducible polynomial is
        used so all parties derive the same field independently.
    tables:
        Force table-based multiplication on/off.  Defaults to on for
        ``k <= 16``.
    karatsuba:
        Use recursive Karatsuba carry-less multiplication (with final
        reduction) instead of the interleaved shift-and-xor loop — an
        O(k^1.585) strategy for large k (E11 ablation arm).  Mutually
        exclusive with ``tables``.
    backend:
        Bulk-kernel backend: ``"python"``, ``"numpy"``, or ``"auto"``
        (numpy when installed; see :mod:`repro.fields.backends`).
    """

    kind = "gf2k"

    def __init__(self, k: int, modulus: Optional[int] = None,
                 tables: Optional[bool] = None, karatsuba: bool = False,
                 backend: Optional[str] = "auto"):
        super().__init__()
        if k < 1:
            raise ValueError("k must be >= 1")
        if modulus is None:
            modulus = find_irreducible_gf2(k)
        if gf2_degree(modulus) != k:
            raise ValueError(f"modulus degree {gf2_degree(modulus)} != k={k}")
        if not is_irreducible_gf2(modulus):
            raise ValueError(f"modulus {modulus:#x} is not irreducible")
        self.k = k
        self.modulus = modulus
        self.order = 1 << k
        self.bit_length = k
        self.zero = 0
        self.one = 1
        self._mask = self.order - 1
        self._karatsuba = karatsuba

        if tables is None:
            tables = k <= _TABLE_MAX_K and not karatsuba
        if tables and karatsuba:
            raise ValueError("choose either tables or karatsuba, not both")
        self._exp: Optional[List[int]] = None
        self._log: Optional[List[int]] = None
        if tables:
            if k > _TABLE_MAX_K:
                raise ValueError(f"log/exp tables limited to k <= {_TABLE_MAX_K}")
            self._build_tables()
        self._init_backend(backend)

    # -- internal ----------------------------------------------------------
    def _raw_mul(self, a: int, b: int) -> int:
        """Carry-less multiply with interleaved reduction (no metering)."""
        if self._karatsuba:
            from repro.fields.irreducible import gf2_mod

            return gf2_mod(_kara_clmul(a, b), self.modulus)
        result = 0
        mod = self.modulus
        top = self.order
        while b:
            if b & 1:
                result ^= a
            b >>= 1
            a <<= 1
            if a & top:
                a ^= mod
        return result

    def _build_tables(self) -> None:
        """Find a multiplicative generator and build exp/log tables."""
        group_order = self.order - 1
        factors = prime_factors(group_order) if group_order > 1 else []
        generator = None
        for candidate in range(2, self.order):
            if all(self._raw_pow(candidate, group_order // f) != 1 for f in factors):
                generator = candidate
                break
        if generator is None:  # k == 1: the group is trivial
            generator = 1
        exp = [1] * (2 * group_order)
        log = [0] * self.order
        value = 1
        for i in range(group_order):
            exp[i] = value
            log[value] = i
            value = self._raw_mul(value, generator)
        for i in range(group_order, 2 * group_order):
            exp[i] = exp[i - group_order]
        self._exp = exp
        self._log = log
        self.generator = generator

    def _raw_pow(self, a: int, e: int) -> int:
        result = 1
        while e:
            if e & 1:
                result = self._raw_mul(result, a)
            a = self._raw_mul(a, a)
            e >>= 1
        return result

    # -- Field interface ----------------------------------------------------
    def add(self, a: int, b: int) -> int:
        self.counter.adds += 1
        return a ^ b

    def sub(self, a: int, b: int) -> int:
        # characteristic 2: subtraction is addition
        self.counter.adds += 1
        return a ^ b

    def neg(self, a: int) -> int:
        return a

    def mul(self, a: int, b: int) -> int:
        self.counter.muls += 1
        if a == 0 or b == 0:
            return 0
        if self._exp is not None:
            return self._exp[self._log[a] + self._log[b]]
        return self._raw_mul(a, b)

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("inverse of zero in GF(2^k)")
        self.counter.invs += 1
        if self._exp is not None:
            group_order = self.order - 1
            return self._exp[(group_order - self._log[a]) % group_order]
        # a^(2^k - 2) = a^(-1)
        return self._raw_pow(a, self.order - 2)

    # -- bulk-op pure loops (unmetered; see Field metering contract) --------
    def _mul0(self, a: int, b: int) -> int:
        """Unmetered zero-safe product (bulk-op building block)."""
        if a == 0 or b == 0:
            return 0
        if self._exp is not None:
            return self._exp[self._log[a] + self._log[b]]
        return self._raw_mul(a, b)

    def _mul_many_pure(self, avec, bvec):
        exp, log = self._exp, self._log
        if exp is not None:
            return [exp[log[a] + log[b]] if a and b else 0
                    for a, b in zip(avec, bvec)]
        raw = self._raw_mul
        return [raw(a, b) if a and b else 0 for a, b in zip(avec, bvec)]

    def _dot_pure(self, avec, bvec):
        acc = 0
        exp, log = self._exp, self._log
        if exp is not None:
            for a, b in zip(avec, bvec):
                if a and b:
                    acc ^= exp[log[a] + log[b]]
        else:
            raw = self._raw_mul
            for a, b in zip(avec, bvec):
                if a and b:
                    acc ^= raw(a, b)
        return acc

    def _axpy_many_pure(self, acc, xs, c):
        exp, log = self._exp, self._log
        if exp is not None:
            return [(exp[log[a] + log[x]] if a and x else 0) ^ c
                    for a, x in zip(acc, xs)]
        raw = self._raw_mul
        return [(raw(a, x) if a and x else 0) ^ c for a, x in zip(acc, xs)]

    def _fma_many_pure(self, acc, xs, cs):
        exp, log = self._exp, self._log
        if exp is not None:
            return [(exp[log[a] + log[x]] if a and x else 0) ^ c
                    for a, x, c in zip(acc, xs, cs)]
        raw = self._raw_mul
        return [(raw(a, x) if a and x else 0) ^ c
                for a, x, c in zip(acc, xs, cs)]

    def _dot_rows_pure(self, rows, vec):
        return [self._dot_pure(row, vec) for row in rows]

    def _batch_inv_pure(self, vec):
        n = len(vec)
        mul = self._mul0
        prefix = [vec[0]]
        for v in vec[1:]:
            prefix.append(mul(prefix[-1], v))
        total = prefix[-1]
        if self._exp is not None:
            group_order = self.order - 1
            acc = self._exp[(group_order - self._log[total]) % group_order]
        else:
            acc = self._raw_pow(total, self.order - 2)
        out = [0] * n
        for i in range(n - 1, 0, -1):
            out[i] = mul(acc, prefix[i - 1])
            acc = mul(acc, vec[i])
        out[0] = acc
        return out

    def from_int(self, value: int) -> int:
        if not 0 <= value < self.order:
            raise ValueError(f"{value} out of range for GF(2^{self.k})")
        return value

    def to_int(self, a: int) -> int:
        return a

    def __contains__(self, a: int) -> bool:
        # ints are the canonical representation; the membership test is on
        # the valid_element hot path, so skip the generic try/except
        if type(a) is int:
            return 0 <= a < self.order
        return super().__contains__(a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "tables" if self._exp is not None else "clmul"
        return f"GF2k(k={self.k}, modulus={self.modulus:#x}, {mode})"
