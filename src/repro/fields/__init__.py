"""Finite-field arithmetic substrates (paper Section 2).

The paper's protocols work over a finite field of size ``p``.  Three
implementations are provided:

* :class:`~repro.fields.gf2k.GF2k` — the binary extension field GF(2^k) that
  the paper's algorithm descriptions assume, with naive carry-less
  multiplication (O(k^2) bit operations) and optional log/exp tables for
  small ``k``.
* :class:`~repro.fields.gfp.GFp` — a prime field Z_p, used by the Feldman-VSS
  baseline (Section 1.4) and internally by the NTT.
* :class:`~repro.fields.extension.SpecialField` — the paper's "specially
  constructed finite field" GF(q^l) in which multiplication costs
  O(k log k) additions via discrete Fourier transforms (Section 2).

All fields share the :class:`~repro.fields.base.Field` interface and meter
their own operation counts (:class:`~repro.fields.base.OpCounter`), which is
how the benchmark harness reproduces the paper's addition/interpolation
cost accounting.
"""

from repro.fields.base import Field, OpCounter
from repro.fields.gf2k import GF2k
from repro.fields.gfp import GFp
from repro.fields.extension import SpecialField, build_special_field

__all__ = [
    "Field",
    "OpCounter",
    "GF2k",
    "GFp",
    "SpecialField",
    "build_special_field",
]
