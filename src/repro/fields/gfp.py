"""The prime field Z_p.

The paper notes the field "is not necessarily a prime" (Section 2); the
core protocols run over GF(2^k), but a prime field is needed by

* the Feldman-VSS baseline (Section 1.4), which commits to polynomial
  coefficients as ``g^a mod p`` and therefore needs a multiplicative group
  with a hard discrete log; and
* the NTT underlying the paper's special O(k log k) field.
"""

from __future__ import annotations

from typing import Optional

from repro.fields.base import Field
from repro.fields.irreducible import is_prime


class GFp(Field):
    """Integers modulo a prime ``p``, elements represented as ints in [0, p)."""

    kind = "gfp"

    def __init__(self, p: int, check_prime: bool = True,
                 backend: Optional[str] = "auto"):
        super().__init__()
        if check_prime and not is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.p = p
        self.order = p
        self.bit_length = p.bit_length()
        self.zero = 0
        self.one = 1 % p
        self._init_backend(backend)

    def add(self, a: int, b: int) -> int:
        self.counter.adds += 1
        s = a + b
        return s - self.p if s >= self.p else s

    def sub(self, a: int, b: int) -> int:
        self.counter.adds += 1
        d = a - b
        return d + self.p if d < 0 else d

    def neg(self, a: int) -> int:
        return self.p - a if a else 0

    def mul(self, a: int, b: int) -> int:
        self.counter.muls += 1
        return a * b % self.p

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("inverse of zero in GF(p)")
        self.counter.invs += 1
        return pow(a, self.p - 2, self.p)

    # -- bulk-op pure loops (unmetered; see Field metering contract) --------
    def _mul_many_pure(self, avec, bvec):
        p = self.p
        return [a * b % p for a, b in zip(avec, bvec)]

    def _dot_pure(self, avec, bvec):
        # accumulate in the integers, one reduction at the end
        return sum(a * b for a, b in zip(avec, bvec)) % self.p

    def _axpy_many_pure(self, acc, xs, c):
        p = self.p
        return [(a * x + c) % p for a, x in zip(acc, xs)]

    def _fma_many_pure(self, acc, xs, cs):
        p = self.p
        return [(a * x + c) % p for a, x, c in zip(acc, xs, cs)]

    def _dot_rows_pure(self, rows, vec):
        return [self._dot_pure(row, vec) for row in rows]

    def _batch_inv_pure(self, vec):
        n = len(vec)
        p = self.p
        prefix = [vec[0]]
        for v in vec[1:]:
            prefix.append(prefix[-1] * v % p)
        acc = pow(prefix[-1], p - 2, p)
        out = [0] * n
        for i in range(n - 1, 0, -1):
            out[i] = acc * prefix[i - 1] % p
            acc = acc * vec[i] % p
        out[0] = acc
        return out

    def from_int(self, value: int) -> int:
        if not 0 <= value < self.p:
            raise ValueError(f"{value} out of range for GF({self.p})")
        return value

    def to_int(self, a: int) -> int:
        return a

    def __contains__(self, a: int) -> bool:
        # ints are the canonical representation; the membership test is on
        # the valid_element hot path, so skip the generic try/except
        if type(a) is int:
            return 0 <= a < self.p
        return super().__contains__(a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GFp(p={self.p})"
