"""A verified secret store: Batch-VSS as a library service.

The paper presents batch VSS as "of independent interest" (Section 1.3);
this is the corresponding API: a dealer deposits many secrets into the
committee at once, the committee *verifies all deposits with a single
interpolation* (Fig. 3), and any secret can later be opened on demand by
the committee — robustly, through the same Berlekamp-Welch machinery as
Coin-Expose.

The batch is always blinded (one extra random dealing) so the public
verification value constrains none of the deposited secrets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.fields.base import Element, Field
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import SynchronousNetwork
from repro.protocols.batch_vss import batch_vss_program
from repro.protocols.coin_expose import CoinShare, coin_expose, make_dealer_coin
from repro.sharing.shamir import ShamirScheme


class DepositRejected(Exception):
    """The committee's batch verification rejected the dealing."""


@dataclass
class _StoredSecret:
    """Committee-side record of one verified secret."""

    secret_id: str
    shares: Dict[int, CoinShare]


class VerifiedSecretStore:
    """Deposit-many / open-on-demand secret storage for an n-committee.

    The simulation plays both the dealer and the committee; deposits run
    the real Batch-VSS protocol over the simulated network and openings
    run the robust exposure protocol, so all soundness/robustness
    properties are the tested protocol ones.
    """

    def __init__(self, field: Field, n: int, t: int, seed: int = 0):
        if n < 3 * t + 1:
            raise ValueError("the broadcast-model store needs n >= 3t+1")
        self.field = field
        self.n = n
        self.t = t
        self.rng = random.Random(seed)
        self.scheme = ShamirScheme(field, n, t)
        self._stored: Dict[str, _StoredSecret] = {}
        self._deposits = 0
        self.metrics = NetworkMetrics(element_bits=field.bit_length)

    # -- deposit ------------------------------------------------------------
    def deposit(
        self,
        secrets: Sequence[Element],
        cheat_offsets: Optional[Dict[int, Dict[int, Element]]] = None,
    ) -> List[str]:
        """Deal and batch-verify ``secrets``; returns their ids.

        Raises :class:`DepositRejected` when verification fails (e.g. a
        cheating dealer, injectable via ``cheat_offsets`` for testing).
        All-or-nothing: a rejected batch stores nothing.
        """
        batch_index = self._deposits
        self._deposits += 1
        total = len(secrets) + 1  # + blinding dealing

        share_table: Dict[int, list] = {pid: [] for pid in range(1, self.n + 1)}
        ids = []
        for index, secret in enumerate(list(secrets) + [self.field.random(self.rng)]):
            _, shares = self.scheme.deal(secret, self.rng)
            values = {s.player_id: s.value for s in shares}
            if cheat_offsets and index in cheat_offsets:
                for pid, offset in cheat_offsets[index].items():
                    values[pid] = self.field.add(values[pid], offset)
            for pid in range(1, self.n + 1):
                share_table[pid].append(values[pid])
            if index < len(secrets):
                ids.append(f"secret-{batch_index}-{index}")

        _, challenge_shares = make_dealer_coin(
            self.field, self.n, self.t, f"store-challenge-{batch_index}",
            self.rng,
        )
        network = SynchronousNetwork(self.n, field=self.field)
        programs = {
            pid: batch_vss_program(
                self.field, self.n, self.t, pid,
                share_table[pid], challenge_shares[pid],
                tag=f"store{batch_index}",
            )
            for pid in range(1, self.n + 1)
        }
        outputs = network.run(programs)
        self.metrics.merged_from(network.metrics)
        if not all(r.accepted for r in outputs.values()):
            raise DepositRejected(
                f"batch {batch_index}: committee rejected the dealing"
            )

        everyone = frozenset(range(1, self.n + 1))
        for index, secret_id in enumerate(ids):
            self._stored[secret_id] = _StoredSecret(
                secret_id,
                {
                    pid: CoinShare(
                        secret_id, everyone, self.t, share_table[pid][index]
                    )
                    for pid in range(1, self.n + 1)
                },
            )
        return ids

    # -- open ---------------------------------------------------------------
    def open(self, secret_id: str) -> Element:
        """Robustly open one stored secret (committee-wide exposure)."""
        record = self._stored[secret_id]
        network = SynchronousNetwork(self.n, field=self.field,
                                     allow_broadcast=False)
        programs = {
            pid: coin_expose(self.field, pid, record.shares[pid])
            for pid in range(1, self.n + 1)
        }
        outputs = network.run(programs)
        self.metrics.merged_from(network.metrics)
        values = set(outputs.values())
        if len(values) != 1 or None in values:
            raise DepositRejected(f"{secret_id}: opening failed")
        return values.pop()

    # -- introspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._stored)

    def __contains__(self, secret_id: str) -> bool:
        return secret_id in self._stored

    def amortized_verification_cost(self) -> float:
        """Interpolations per stored secret (Corollary 1's headline)."""
        if not self._stored:
            return 0.0
        busiest = self.metrics.max_player_ops()
        return busiest.interpolations / len(self._stored)
