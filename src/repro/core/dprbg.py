"""The D-PRBG: stretch a distributed seed into many shared coins.

Section 1.1: "a D-PRBG is a distributed protocol [whose] input is a
distributed input consisting of some shared coins ... the output is a
distributed output consisting of (a larger number of) shared coins ...
we want that the distributed stretching protocol be more efficient, per
coin generated, than from-scratch methods."

:class:`SharedCoinSystem` is the simulation harness holding the player
set, the (possibly mobile) adversary, and accumulated metrics.
:class:`DPRBG` implements one *stretch*: it consumes a few seed coins
(one batching challenge plus one per leader-election iteration) and
produces ``M`` fresh coins **plus the seed for the next stretch** in a
single Coin-Gen execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.fields.base import Element, Field
from repro.net.adversary import Adversary
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import SynchronousNetwork
from repro.protocols.coin_gen import CoinGenOutput, coin_gen_program
from repro.protocols.context import ProtocolContext
from repro.core.coin import SharedCoin, UnanimityError


class GenerationError(Exception):
    """A Coin-Gen run failed (e.g. the seed ran out of leader coins)."""


def tuple_or_value(output, index):
    """Pick the index-th exposed value from a coin_expose_many output."""
    if isinstance(output, list):
        return output[index]
    return output


@dataclass
class StretchResult:
    """Outcome of one D-PRBG stretch."""

    #: the M coins available to the application
    coins: List[SharedCoin]
    #: the reserved coins that seed the next stretch (Fig. 1's feedback arc)
    next_seed: List[SharedCoin]
    #: seed coins left unconsumed by this stretch (still sealed, reusable)
    unused_seed: List[SharedCoin]
    #: number of leader-election/BA iterations (Lemma 8: expected O(1))
    iterations: int
    #: number of seed coins consumed (challenges + leader elections)
    seed_consumed: int
    #: the agreed clique C_l
    clique: Tuple[int, ...]
    #: communication/computation tallies for this stretch only
    metrics: NetworkMetrics


class SharedCoinSystem:
    """An n-player system on a simulated synchronous network.

    Owns the adversary (settable between protocol executions, enabling the
    proactive/mobile setting of Section 1.2) and accumulates metrics
    across every protocol run it hosts.
    """

    def __init__(
        self,
        field: Optional[Field] = None,
        n: Optional[int] = None,
        t: Optional[int] = None,
        seed: int = 0,
        adversary: Optional[Adversary] = None,
        context: Optional[ProtocolContext] = None,
    ):
        if context is None:
            if isinstance(field, ProtocolContext):
                context = field
            else:
                if field is None or n is None or t is None:
                    raise TypeError(
                        "need (field, n, t) or a ProtocolContext"
                    )
                context = ProtocolContext.create(field, n, t, seed=seed)
        if context.n < 6 * context.t + 1:
            raise ValueError(
                f"the coin pipeline requires n >= 6t+1 "
                f"(n={context.n}, t={context.t})"
            )
        self.context = context
        self.field = context.field
        self.n = context.n
        self.t = context.t
        self.adversary = adversary
        self.rng = context.rng
        self.total_metrics = context.metrics
        self.runs = 0

    # -- adversary control -------------------------------------------------
    def set_adversary(self, adversary: Optional[Adversary]) -> None:
        """Swap the corrupt set (the mobile-adversary hook)."""
        self.adversary = adversary

    @property
    def corrupt(self) -> frozenset:
        return self.adversary.corrupt if self.adversary else frozenset()

    def honest_players(self) -> List[int]:
        return [pid for pid in range(1, self.n + 1) if pid not in self.corrupt]

    def _faulty_programs(self) -> Dict[int, object]:
        if not self.adversary:
            return {}
        return self.adversary.programs(self.n)

    def _network(self) -> SynchronousNetwork:
        return self.context.network(
            allow_broadcast=False,
            rushing=self.corrupt if self.adversary and self.adversary.rushing else (),
        )

    # -- coin generation ------------------------------------------------------
    def generate(
        self,
        seed_coins: Sequence[SharedCoin],
        M: int,
        tag: Optional[str] = None,
        blinding: bool = True,
        shared_challenge: bool = True,
    ) -> StretchResult:
        """Run one Coin-Gen over ``seed_coins``, producing M sealed coins."""
        if tag is None:
            tag = f"gen{self.runs}"
        self.runs += 1
        network = self._network()
        faulty = self._faulty_programs()
        programs = {}
        for pid in range(1, self.n + 1):
            if pid in faulty:
                if faulty[pid] is not None:
                    programs[pid] = faulty[pid]
                continue
            per_player_seed = [coin.share_for(pid) for coin in seed_coins]
            programs[pid] = coin_gen_program(
                self.field,
                self.n,
                self.t,
                pid,
                M,
                per_player_seed,
                self.context.child_rng(),
                tag=tag,
                blinding=blinding,
                shared_challenge=shared_challenge,
            )
        honest = [pid for pid in programs if pid not in faulty]
        recorder = self.context.recorder
        with recorder.span("coin_gen", "protocol",
                           n=self.n, t=self.t, M=M) as span:
            outputs: Dict[int, CoinGenOutput] = network.run(
                programs, wait_for=honest
            )
            if recorder.enabled:
                sample = next(
                    (outputs[pid] for pid in honest if outputs.get(pid)), None
                )
                span.set(
                    iterations=sample.iterations if sample else 0,
                    success=bool(sample and sample.success),
                )
        self.total_metrics.merged_from(network.metrics)

        honest_outputs = {pid: outputs[pid] for pid in honest}
        if not all(o.success for o in honest_outputs.values()):
            raise GenerationError(
                f"Coin-Gen {tag} failed for some honest player "
                f"(seed had {len(seed_coins)} coins)"
            )
        cliques = {o.clique for o in honest_outputs.values()}
        iterations = {o.iterations for o in honest_outputs.values()}
        if len(cliques) != 1 or len(iterations) != 1:
            raise UnanimityError(f"honest players disagree on Coin-Gen {tag} outcome")
        clique = cliques.pop()
        iters = iterations.pop()
        consumed = next(iter(honest_outputs.values())).seed_coins_used

        coins = []
        for h in range(M):
            shares = {
                pid: honest_outputs[pid].coins[h] for pid in honest_outputs
            }
            coin_id = next(iter(shares.values())).coin_id
            coins.append(SharedCoin(coin_id, shares, self.t, origin=tag))
        unused = list(seed_coins[consumed:])
        return StretchResult(
            coins=coins,
            next_seed=[],
            unused_seed=unused,
            iterations=iters,
            seed_consumed=consumed,
            clique=clique,
            metrics=network.metrics,
        )

    # -- coin exposure -----------------------------------------------------------
    def expose(self, coin: SharedCoin) -> Element:
        """Run Coin-Expose for one coin; returns the unanimous value.

        Raises :class:`UnanimityError` if honest players disagree (the
        paper's <= Mn/2^k failure event) and :class:`GenerationError` if
        the coin cannot be decoded at all.
        """
        return self.expose_many([coin])[0]

    def expose_many(self, coins) -> list:
        """Expose several coins in a single communication round.

        All share announcements travel together (distinct tags per coin),
        so a batch of H exposures costs one round instead of H — the
        natural way to reveal a Coin-Gen batch that is consumed at once.
        """
        from repro.protocols.coin_expose import coin_expose_many

        coins = list(coins)
        if not coins:
            return []
        network = self._network()
        faulty = self._faulty_programs()
        programs = {}
        for pid in range(1, self.n + 1):
            if pid in faulty:
                if faulty[pid] is not None:
                    programs[pid] = faulty[pid]
                continue
            programs[pid] = coin_expose_many(
                self.field, pid, [coin.share_for(pid) for coin in coins]
            )
        honest = [pid for pid in programs if pid not in faulty]
        recorder = self.context.recorder
        senders_total = 0
        if recorder.enabled:
            senders_total = sum(
                1
                for coin in coins
                for pid in honest
                if pid in coin.share_for(pid).senders
                and coin.share_for(pid).my_value is not None
            )
        with recorder.span("expose", "protocol", n=self.n, coins=len(coins),
                           senders_total=senders_total):
            outputs = network.run(programs, wait_for=honest)
        self.total_metrics.merged_from(network.metrics)

        results = []
        for index, coin in enumerate(coins):
            values = {tuple_or_value(outputs[pid], index) for pid in honest}
            if len(values) != 1:
                raise UnanimityError(
                    f"coin {coin.coin_id}: honest views "
                    f"{sorted(map(repr, values))}"
                )
            value = values.pop()
            if value is None:
                raise GenerationError(
                    f"coin {coin.coin_id} could not be decoded"
                )
            results.append(value)
        return results


class DPRBG:
    """The distributed pseudo-random bit generator.

    One :meth:`stretch` consumes a handful of seed coins and emits ``M``
    application coins *plus* the next seed (``reserve`` coins), realizing
    Fig. 1's feedback loop in a single Coin-Gen execution.
    """

    def __init__(
        self,
        system: SharedCoinSystem,
        max_iterations: Optional[int] = None,
        blinding: bool = True,
        shared_challenge: bool = True,
    ):
        self.system = system
        self.max_iterations = (
            max_iterations if max_iterations is not None else 2 * system.t + 4
        )
        if self.max_iterations < 1:
            raise ValueError("need at least one leader-election iteration")
        self.blinding = blinding
        self.shared_challenge = shared_challenge

    @property
    def seed_requirement(self) -> int:
        """Seed coins needed per stretch: challenges + leader elections."""
        challenges = 1 if self.shared_challenge else self.system.n
        return challenges + self.max_iterations

    def stretch(
        self,
        seed_coins: Sequence[SharedCoin],
        M: int,
        tag: Optional[str] = None,
        reserve: Optional[int] = None,
    ) -> StretchResult:
        """Expand ``seed_coins`` into M coins + the next seed.

        ``reserve`` (default: :attr:`seed_requirement`) extra coins are
        generated and earmarked as the next stretch's seed.
        """
        if reserve is None:
            reserve = self.seed_requirement
        if len(seed_coins) < self.seed_requirement:
            raise GenerationError(
                f"need {self.seed_requirement} seed coins, have {len(seed_coins)}"
            )
        result = self.system.generate(
            list(seed_coins)[: self.seed_requirement],
            M + reserve,
            tag=tag,
            blinding=self.blinding,
            shared_challenge=self.shared_challenge,
        )
        result.next_seed = result.coins[M:]
        result.coins = result.coins[:M]
        result.unused_seed += list(seed_coins)[self.seed_requirement:]
        return result
