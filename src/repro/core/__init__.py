"""The paper's primary contribution: D-PRBGs and bootstrapping (Fig. 1).

* :class:`~repro.core.dprbg.DPRBG` — the distributed pseudo-random bit
  generator: "a protocol which expands a distributed seed, consisting of
  shared coins, into a longer sequence of shared coins, at low amortized
  cost per coin produced" (abstract).
* :class:`~repro.core.bootstrap.BootstrapCoinSource` — the bootstrap loop:
  "each run of the D-PRBG produces not only the coins for the current
  execution but also the seed for the next execution", with an adaptive
  low-watermark trigger ("a constant threshold triggering the generation
  of new coins", Section 1.2).
* :class:`~repro.core.seed.TrustedDealer` — the one-time initial seed
  (Rabin [17]'s trusted party, used exactly once).
"""

from repro.core.coin import SharedCoin, UnanimityError
from repro.core.sequence import CoinSequence
from repro.core.seed import TrustedDealer
from repro.core.dprbg import DPRBG, SharedCoinSystem, StretchResult
from repro.core.bootstrap import BootstrapCoinSource
from repro.core.secret_store import DepositRejected, VerifiedSecretStore

__all__ = [
    "SharedCoin",
    "UnanimityError",
    "CoinSequence",
    "TrustedDealer",
    "DPRBG",
    "SharedCoinSystem",
    "StretchResult",
    "BootstrapCoinSource",
    "VerifiedSecretStore",
    "DepositRejected",
]
