"""The bootstrap coin source (Fig. 1).

"An initial distributed seed is generated via some known, not necessarily
fast protocol.  Then the generator is run to produce as many coins as the
current execution of the application needs, plus another (distributed)
seed.  ...  Once the number of remaining coins drops beneath a certain
level, a new batch is generated exploiting the (small amount of)
remaining coins.  ...  we envision an adaptive mechanism, in which coins
are generated on demand, with a constant threshold triggering the
generation of new coins." (Section 1.2)

:class:`BootstrapCoinSource` is that mechanism: a long-lived object whose
``toss()`` / ``toss_element()`` hand out shared coin bits / k-ary coins,
transparently regenerating batches when the pool hits the low watermark.
It supports a mobile adversary re-corrupting players between batches
(the proactive setting).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from repro.fields.base import Element, Field
from repro.net.adversary import Adversary
from repro.obs.bus import BATCH, COIN, FAILURE, RETRY
from repro.core.coin import SharedCoin, UnanimityError
from repro.core.dprbg import DPRBG, GenerationError, SharedCoinSystem, StretchResult
from repro.core.seed import TrustedDealer

if TYPE_CHECKING:  # pragma: no cover
    from repro.protocols.context import ProtocolContext


class BootstrapCoinSource:
    """An endless, self-sufficient source of shared coins.

    Parameters
    ----------
    field, n, t:
        System parameters (``n >= 6t+1``).
    batch_size:
        Coins generated per D-PRBG stretch, beyond the reserved next seed.
    low_watermark:
        Regenerate when the pool drops below this many sealed coins
        (the paper's "constant threshold"); default 1 (fully lazy).
    seed:
        Master randomness seed for reproducible simulations.
    adversary_schedule:
        Optional callable ``epoch -> Adversary | None`` invoked before
        each batch, modelling the mobile adversary of the proactive
        setting.  ``epoch`` 0 is the first batch.
    max_iterations:
        Leader-election budget per Coin-Gen run.
    expose_retries:
        How many times to re-run a failed coin exposure before
        propagating the error (default 0: fail fast, the historical
        behaviour).  Exposure failure is the paper's ``<= Mn/2^k``
        probability event; a long-lived beacon prefers to retry the
        same shares (exposure is deterministic in the honest case, so
        retries only help against transient adversarial interference).

    When the context carries a shared event bus (see
    :attr:`~repro.protocols.context.ProtocolContext.bus`), the source
    publishes its health stream into it — ``"coin"`` per exposed coin,
    ``"batch"`` per stretch, ``"failure"``/``"retry"`` per exposure
    mishap — which is what :class:`~repro.obs.health.HealthMonitor`
    consumes.  Without a bus, nothing is published and runs are
    byte-identical to earlier releases.
    """

    def __init__(
        self,
        field: Optional[Field] = None,
        n: Optional[int] = None,
        t: Optional[int] = None,
        batch_size: int = 32,
        low_watermark: int = 1,
        seed: int = 0,
        adversary_schedule: Optional[Callable[[int], Optional[Adversary]]] = None,
        max_iterations: Optional[int] = None,
        blinding: bool = True,
        context: Optional["ProtocolContext"] = None,
        expose_retries: int = 0,
    ):
        self.system = SharedCoinSystem(field, n, t, seed=seed, context=context)
        field, n, t = self.system.field, self.system.n, self.system.t
        seed = self.system.context.seed
        self.dprbg = DPRBG(
            self.system, max_iterations=max_iterations, blinding=blinding
        )
        self.batch_size = batch_size
        self.low_watermark = max(1, low_watermark)
        self.adversary_schedule = adversary_schedule
        self.expose_retries = max(0, expose_retries)

        # One-time trusted dealer (Rabin [17]); never used again after this.
        dealer = TrustedDealer(field, n, t, seed=seed + 1)
        with self.system.context.recorder.span(
            "trusted_dealer", "protocol",
            n=n, coins=self.dprbg.seed_requirement,
        ):
            self._seed_coins: List[SharedCoin] = dealer.deal_seed(
                self.dprbg.seed_requirement
            )
        self.initial_seed_size = len(self._seed_coins)

        self.pool: List[SharedCoin] = []
        self._bit_buffer: List[int] = []
        self.epoch = 0
        self.coins_generated = 0
        self.coins_consumed = 0
        self.batch_history: List[StretchResult] = []

    # -- internal ---------------------------------------------------------------
    def _publish(self, topic: str, *args) -> None:
        """Publish a health event when the context carries a shared bus."""
        bus = self.system.context.bus
        if bus is not None:
            bus.publish(topic, *args)

    def _refill(self) -> None:
        if self.adversary_schedule is not None:
            self.system.set_adversary(self.adversary_schedule(self.epoch))
        result = self.dprbg.stretch(
            self._seed_coins,
            self.batch_size,
            tag=f"batch{self.epoch}",
        )
        self._publish(
            BATCH, self.epoch, len(result.coins), result.iterations,
            result.seed_consumed,
        )
        self.pool.extend(result.coins)
        # next seed = freshly reserved coins + any unconsumed old seeds;
        # overflow beyond twice the requirement is recycled into the pool
        # (a sealed seed coin is just a sealed coin), keeping the seed
        # store O(1)-sized as Fig. 1 depicts.
        seeds = result.next_seed + result.unused_seed
        keep = 2 * self.dprbg.seed_requirement
        self._seed_coins = seeds[:keep]
        self.pool.extend(seeds[keep:])
        self.coins_generated += len(result.coins) + len(result.next_seed)
        self.batch_history.append(result)
        self.epoch += 1

    def _ensure(self) -> None:
        while len(self.pool) < self.low_watermark:
            self._refill()

    # -- public API ----------------------------------------------------------------
    def toss_element(self) -> Element:
        """Expose and return one k-ary shared coin (a full field element).

        Exposure failures (unanimity breaks, undecodable shares) are
        retried up to ``expose_retries`` times before propagating; each
        failure and retry is published to the health stream.
        """
        self._ensure()
        coin = self.pool.pop(0)
        self.coins_consumed += 1
        attempt = 0
        while True:
            try:
                value = self.system.expose(coin)
            except (UnanimityError, GenerationError) as error:
                kind = (
                    "unanimity" if isinstance(error, UnanimityError)
                    else "decode"
                )
                self._publish(FAILURE, kind, coin.coin_id)
                if attempt >= self.expose_retries:
                    raise
                attempt += 1
                self._publish(RETRY, coin.coin_id, attempt)
                continue
            self._publish(COIN, coin.coin_id, value)
            return value

    def toss(self) -> int:
        """One shared coin bit.

        Each k-ary coin yields k bits ("each coin generates in fact k
        random coins in {0,1}", Section 3.1); bits are buffered so
        consecutive tosses consume one element per k calls.
        """
        if not self._bit_buffer:
            element = self.toss_element()
            self._bit_buffer = self.system.field.coin_bits(element)
        return self._bit_buffer.pop(0)

    def tosses(self, count: int) -> List[int]:
        """A batch of ``count`` shared coin bits."""
        return [self.toss() for _ in range(count)]

    # -- introspection ---------------------------------------------------------------
    @property
    def sealed_coins_available(self) -> int:
        return len(self.pool)

    @property
    def seed_coins_available(self) -> int:
        return len(self._seed_coins)

    def amortized_cost_summary(self) -> dict:
        """Cumulative cost per generated coin (the paper's amortized view)."""
        metrics = self.system.total_metrics
        coins = max(1, self.coins_generated)
        busiest = metrics.max_player_ops()
        return {
            "batches": self.epoch,
            "coins_generated": self.coins_generated,
            "messages_per_coin": metrics.paper_messages / coins,
            "bits_per_coin": metrics.bits / coins,
            "adds_per_coin_busiest_player": busiest.adds / coins,
            "muls_per_coin_busiest_player": busiest.muls / coins,
            "interpolations_per_coin_busiest_player": busiest.interpolations / coins,
        }
