"""The one-time trusted dealer for the initial distributed seed.

Section 1.2: "The initial set of coins can be obtained from a trusted
third party, as in the case of Rabin [17] ... we remark that in our
approach the services of a trusted dealer would be used only once, and
for a small number of coins.  In contrast, as the coins are 'expendable,'
the approach of [17] requires the dealer to continuously provide them."

The dealer Shamir-shares each seed coin with degree t among all n
players; once the bootstrap loop is running, it is never consulted again.
"""

from __future__ import annotations

import random
from typing import List

from repro.fields.base import Field
from repro.protocols.coin_expose import make_dealer_coin
from repro.core.coin import SharedCoin


class TrustedDealer:
    """Deals the initial O(1) seed coins (then retires)."""

    def __init__(self, field: Field, n: int, t: int, seed: int = 0):
        self.field = field
        self.n = n
        self.t = t
        self._rng = random.Random(seed)
        self._count = 0
        #: dealt secrets, retained for test oracles only — a real dealer
        #: would destroy them ("sealed" coins)
        self.dealt_secrets = {}

    def deal_seed(self, count: int, prefix: str = "seed") -> List[SharedCoin]:
        """Deal ``count`` fresh sealed k-ary coins to all players."""
        coins = []
        for _ in range(count):
            coin_id = f"{prefix}-{self._count}"
            self._count += 1
            secret, shares = make_dealer_coin(
                self.field, self.n, self.t, coin_id, self._rng
            )
            self.dealt_secrets[coin_id] = secret
            coins.append(SharedCoin(coin_id, shares, self.t, origin="dealer"))
        return coins
