"""Random access to generated coins.

Section 1.4: "As in [2], our scheme also provides 'random access' to the
bits."  A Coin-Gen batch seals M independent k-ary coins; nothing forces
them to be revealed in order.  :class:`CoinSequence` exposes a batch as
an indexable sequence of coins/bits, exposing each coin lazily on first
access and caching the (unanimous) result.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.fields.base import Element
from repro.core.coin import SharedCoin
from repro.core.dprbg import SharedCoinSystem


class CoinSequence:
    """An indexable window onto sealed shared coins.

    ``sequence[i]`` exposes (once) and returns the i-th k-ary coin;
    :meth:`bit` addresses the underlying bit stream — coin ``i // k``,
    bit ``i % k`` — so the sequence behaves as ``len(coins) * k``
    random-access shared bits.
    """

    def __init__(self, system: SharedCoinSystem, coins: Sequence[SharedCoin]):
        self.system = system
        self.coins = list(coins)
        self._cache: Dict[int, Element] = {}

    def __len__(self) -> int:
        return len(self.coins)

    @property
    def bit_length(self) -> int:
        """Total random bits addressable through :meth:`bit`."""
        return len(self.coins) * self.system.field.bit_length

    def exposed(self, index: int) -> bool:
        """Has coin ``index`` been revealed yet?"""
        return index in self._cache

    def __getitem__(self, index: int) -> Element:
        if not -len(self.coins) <= index < len(self.coins):
            raise IndexError(index)
        index %= len(self.coins)
        if index not in self._cache:
            self._cache[index] = self.system.expose(self.coins[index])
        return self._cache[index]

    def bit(self, index: int) -> int:
        """The ``index``-th bit of the sealed bit stream (random access)."""
        k = self.system.field.bit_length
        if not 0 <= index < self.bit_length:
            raise IndexError(index)
        element = self[index // k]
        return (self.system.field.to_int(element) >> (index % k)) & 1

    def bits(self, start: int = 0, stop: Optional[int] = None) -> List[int]:
        """A slice of the bit stream (exposing only the coins it covers)."""
        stop = self.bit_length if stop is None else stop
        return [self.bit(i) for i in range(start, stop)]
