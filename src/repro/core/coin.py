"""Bird's-eye handle on one shared (sealed) k-ary coin.

Inside a protocol run, a shared coin exists only as per-player
:class:`~repro.protocols.coin_expose.CoinShare` values.  The simulation
layer collects those into a :class:`SharedCoin` so that library users can
pass coins around, expose them, and feed them back as D-PRBG seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.protocols.coin_expose import CoinShare


class UnanimityError(Exception):
    """Honest players disagreed on an exposed coin (probability <= Mn/2^k)."""


@dataclass
class SharedCoin:
    """A sealed shared coin: the per-player share map plus public metadata.

    ``shares`` holds one CoinShare per player; a player that missed the
    generating batch (e.g. it was corrupted at the time) carries a share
    with ``my_value=None`` and will abstain at expose time.
    """

    coin_id: str
    shares: Dict[int, CoinShare]
    t: int
    #: which Coin-Gen batch produced it ("dealer" for trusted-dealer seeds)
    origin: str = "dealer"

    @property
    def senders(self) -> frozenset:
        return next(iter(self.shares.values())).senders

    def share_for(self, player_id: int) -> CoinShare:
        """This player's share; an abstaining share if it holds none."""
        share = self.shares.get(player_id)
        if share is None:
            share = CoinShare(self.coin_id, self.senders, self.t, None)
        return share

    def holders(self) -> frozenset:
        """Players that actually hold a usable share value."""
        return frozenset(
            pid
            for pid, share in self.shares.items()
            if share.my_value is not None
        )
