"""repro — Distributed Pseudo-Random Bit Generators (PODC 1996).

A full reimplementation of Bellare, Garay & Rabin, "Distributed
Pseudo-Random Bit Generators — A New Way to Speed-Up Shared Coin
Tossing", including every substrate the paper assumes: finite fields,
Shamir sharing, Berlekamp-Welch decoding, a synchronous Byzantine network
simulator, grade-cast, deterministic Byzantine agreement, the VSS /
Batch-VSS / Bit-Gen / Coin-Gen / Coin-Expose protocols, the D-PRBG core,
the bootstrap coin source of Fig. 1, and the Section 1.4 baselines.

Quick start::

    from repro import BootstrapCoinSource
    from repro.fields import GF2k

    source = BootstrapCoinSource(field=GF2k(32), n=7, t=1, batch_size=16)
    bit = source.toss()          # one shared coin bit, unanimous across players
    word = source.toss_element() # a full k-ary shared coin
"""

from repro.fields import GF2k, GFp, SpecialField, build_special_field
from repro.sharing import Share, ShamirScheme
from repro.protocols import (
    CoinShare,
    run_batch_vss,
    run_bit_gen,
    run_coin_gen,
    run_vss,
)
from repro.core import (
    DPRBG,
    BootstrapCoinSource,
    CoinSequence,
    SharedCoin,
    SharedCoinSystem,
    StretchResult,
    TrustedDealer,
    UnanimityError,
    VerifiedSecretStore,
)
from repro.apps import CommonCoinBA, LeaderElection, run_randomized_ba

__all__ = [
    "GF2k",
    "GFp",
    "SpecialField",
    "build_special_field",
    "Share",
    "ShamirScheme",
    "CoinShare",
    "run_vss",
    "run_batch_vss",
    "run_bit_gen",
    "run_coin_gen",
    "DPRBG",
    "BootstrapCoinSource",
    "CoinSequence",
    "SharedCoin",
    "SharedCoinSystem",
    "StretchResult",
    "TrustedDealer",
    "UnanimityError",
    "VerifiedSecretStore",
    "CommonCoinBA",
    "LeaderElection",
    "run_randomized_ba",
]

__version__ = "1.0.0"
