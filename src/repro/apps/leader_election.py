"""Fair leader election from shared coins.

A second consumer application (Coin-Gen itself uses the same idea in
Fig. 5 step 9: "Set l <- Coin-Expose(k-ary-coin) mod n").  Electing a
uniformly random, unpredictable, unanimously-agreed leader is a standard
committee primitive — rotation of proposers, auditors, or block leaders
— and each election costs exactly one shared coin.

Fairness caveat handled here: ``coin mod n`` is biased when ``2^k mod n
!= 0``.  The residual bias is ``< n / 2^k`` (negligible for k=32), but
:class:`LeaderElection` also offers rejection sampling for exact
uniformity at an expected ``2^k / (2^k - (2^k mod n))`` coins per
election (< 2 always).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.bootstrap import BootstrapCoinSource


@dataclass
class ElectionResult:
    leader: int
    coins_used: int


class LeaderElection:
    """Repeated unanimous leader elections over a coin source."""

    def __init__(
        self,
        source: BootstrapCoinSource,
        candidates: Optional[Sequence[int]] = None,
        exact_uniform: bool = False,
    ):
        self.source = source
        self.candidates = list(
            candidates
            if candidates is not None
            else range(1, source.system.n + 1)
        )
        if not self.candidates:
            raise ValueError("need at least one candidate")
        self.exact_uniform = exact_uniform
        self.history: List[ElectionResult] = []

    @classmethod
    def from_context(
        cls,
        context,
        candidates: Optional[Sequence[int]] = None,
        exact_uniform: bool = False,
        **source_kwargs,
    ) -> "LeaderElection":
        """Build an election over a fresh coin source for ``context``.

        The source inherits the context's scheduler, fault plane, and
        tracer — elections run identically under any delivery policy.
        """
        source = BootstrapCoinSource(context=context, **source_kwargs)
        return cls(source, candidates=candidates, exact_uniform=exact_uniform)

    def elect(self) -> int:
        """Elect one leader; returns the candidate id."""
        field = self.source.system.field
        count = len(self.candidates)
        coins_used = 0
        if self.exact_uniform:
            # rejection sampling: discard draws above the largest multiple
            # of ``count`` below the field order
            limit = field.order - (field.order % count)
            while True:
                draw = field.to_int(self.source.toss_element())
                coins_used += 1
                if draw < limit:
                    index = draw % count
                    break
        else:
            draw = field.to_int(self.source.toss_element())
            coins_used += 1
            index = draw % count
        leader = self.candidates[index]
        self.history.append(ElectionResult(leader, coins_used))
        return leader

    def elect_many(self, rounds: int) -> List[int]:
        return [self.elect() for _ in range(rounds)]

    def total_coins_used(self) -> int:
        return sum(result.coins_used for result in self.history)
