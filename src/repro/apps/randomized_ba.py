"""Randomized Byzantine agreement from a common coin (Rabin [17] style).

This is the paper's motivating consumer: "an execution of an application
using shared coins needs not one, but many coins ... a distributed
application is typically executed not once, but regularly" (Section 1).

The protocol per round, for ``n >= 5t+1`` (with equivocating adversaries,
each honest player ``i`` has its *own* view of the vote counts —
byzantine voters may tell different players different bits):

1. every player sends its current bit to all;
2. if ``cnt_i(b) >= n - t`` for some bit b: *decide* b (and keep voting b);
3. elif ``cnt_i(b) >= n - 2t``: adopt b;
4. else: adopt the round's shared coin.

Safety: two honest players cannot adopt different bits in step 3 (each
implies ``>= n - 3t`` honest votes for its bit, and ``2(n - 3t) > n - t``
when ``n > 5t``); a decision at one player forces every player through at
least step 3 with the same bit, so all decide by the next round.
Liveness: when the adversary keeps the honest votes split, every honest
player falls through to the coin — which is *common* — so the very next
round is unanimous; when some players adopt b and the rest flip the coin,
the coin matches b with probability 1/2.  Expected O(1) rounds and O(1)
coins per agreement: this is what makes a cheap coin supply matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.bootstrap import BootstrapCoinSource

#: adversarial vote oracle: (round, corrupt_pid, honest_receiver, honest_values) -> bit
ByzantineVotes = Callable[[int, int, int, Dict[int, int]], int]


@dataclass
class BAOutcome:
    """Result of one randomized-BA execution."""

    decisions: Dict[int, int]
    rounds: int
    coins_used: int

    @property
    def agreed(self) -> bool:
        return len(set(self.decisions.values())) == 1


class CommonCoinBA:
    """Randomized BA whose per-round coins come from a coin source.

    The BA vote exchange is simulated directly with per-receiver
    adversarial equivocation (it is the *consumer*, not the object of
    study); the coins are genuine shared coins exposed through the
    source's full Coin-Expose protocol.
    """

    def __init__(self, source: BootstrapCoinSource, max_rounds: int = 64):
        self.source = source
        self.max_rounds = max_rounds

    @classmethod
    def from_context(cls, context, max_rounds: int = 64,
                     **source_kwargs) -> "CommonCoinBA":
        """Build a BA over a fresh coin source wired to ``context``.

        The source inherits the context's scheduler, fault plane, and
        tracer, so the coin supply runs under the chosen delivery policy.
        """
        source = BootstrapCoinSource(context=context, **source_kwargs)
        return cls(source, max_rounds=max_rounds)

    def agree(
        self,
        inputs: Dict[int, int],
        byzantine_votes: Optional[ByzantineVotes] = None,
    ) -> BAOutcome:
        """Run one agreement over ``inputs`` ({player: bit}).

        ``byzantine_votes(round, corrupt_pid, receiver, honest_values)``
        supplies the bit each corrupt player shows each honest receiver —
        full equivocation power.
        """
        n = self.source.system.n
        t = self.source.system.t
        if n < 5 * t + 1:
            raise ValueError("this randomized BA variant needs n >= 5t+1")
        corrupt = self.source.system.corrupt
        honest = [pid for pid in range(1, n + 1) if pid not in corrupt]
        values = {pid: 1 if inputs.get(pid) else 0 for pid in honest}
        decided: Dict[int, int] = {}
        coins_used = 0

        for round_no in range(1, self.max_rounds + 1):
            # one fresh shared coin per round, exposed lazily
            coin_bit: Optional[int] = None
            new_values = {}
            for me in honest:
                ones = sum(values.values())
                if byzantine_votes is not None:
                    ones += sum(
                        1
                        for pid in corrupt
                        if byzantine_votes(round_no, pid, me, dict(values)) == 1
                    )
                zeros = (len(values) + len(corrupt if byzantine_votes else ())) - ones
                majority = 1 if ones >= zeros else 0
                count = max(ones, zeros)
                if count >= n - t:
                    decided.setdefault(me, majority)
                    new_values[me] = majority
                elif count >= n - 2 * t:
                    new_values[me] = majority
                else:
                    if coin_bit is None:
                        coin_bit = self.source.toss()
                        coins_used += 1
                    new_values[me] = coin_bit
            values = new_values
            if len(decided) == len(honest):
                return BAOutcome(decided, round_no, coins_used)
        return BAOutcome(decided, self.max_rounds, coins_used)


def run_randomized_ba(
    source: BootstrapCoinSource,
    inputs: Dict[int, int],
    executions: int = 1,
    byzantine_votes: Optional[ByzantineVotes] = None,
) -> List[BAOutcome]:
    """Run several BA executions back-to-back from one coin source.

    This is exactly the repeated-application setting of Section 1.2 — the
    source regenerates batches on demand while the application keeps
    consuming.
    """
    ba = CommonCoinBA(source)
    return [ba.agree(inputs, byzantine_votes) for _ in range(executions)]
