"""Applications built on shared coins — the paper's motivation.

"Shared coins are needed, amongst other things, for Byzantine agreement
(BA) and broadcast" (Section 1.1).  :mod:`repro.apps.randomized_ba` is a
coin-driven randomized BA that consumes coins from a
:class:`~repro.core.bootstrap.BootstrapCoinSource`, demonstrating the
bulk-consumption pattern the D-PRBG was designed for.
"""

from repro.apps.randomized_ba import CommonCoinBA, run_randomized_ba
from repro.apps.leader_election import LeaderElection, ElectionResult

__all__ = [
    "CommonCoinBA",
    "run_randomized_ba",
    "LeaderElection",
    "ElectionResult",
]
