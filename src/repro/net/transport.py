"""Transport layer: channel primitives and message expansion.

The bottom layer of the protocol runtime (see DESIGN.md, "Runtime
architecture").  A transport knows *what channels exist* — private
unicast, multicast fan-out, and (optionally) an ideal broadcast channel —
and turns a program's :class:`Send` instructions into concrete
``(dst, payload)`` deliveries, metering each one and (optionally)
round-tripping payloads through the binary wire codec.

Two concrete transports mirror the paper's two models:

* :class:`BroadcastTransport` — private channels *plus* the ideal
  broadcast channel assumed by the Section 3 protocols;
* :class:`PrivateChannelTransport` — point-to-point only, the Section 4
  model ("every time a player needs to announce a message, (s)he can
  only distribute it to each of the other players individually").

Delivery *timing* is not a transport concern — that is the scheduler
layer (:mod:`repro.net.scheduler`); message loss/delay is the fault
plane (:mod:`repro.net.faults`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

from repro.net.metrics import NetworkMetrics, payload_field_elements

#: destination sentinel: deliver to every player (n unicasts)
ALL = 0

#: channel-kind labels attached to deliveries by provenance capture
UNICAST = "unicast"
MULTICAST = "multicast"
BROADCAST = "broadcast"

Payload = Any
#: one concrete delivery produced by a transport: (dst, payload)
Delivery = Tuple[int, Payload]


@dataclass(frozen=True)
class Send:
    """One outgoing message: ``dst`` is a player id (1-based) or :data:`ALL`."""

    dst: int
    payload: Payload
    broadcast: bool = False


def unicast(dst: int, payload: Payload) -> Send:
    """Point-to-point message over a private channel."""
    return Send(dst, payload)


def multicast(payload: Payload) -> Send:
    """The same payload to every player as n point-to-point messages.

    This is the Section 4 substitute for broadcast: "every time a player
    needs to announce a message, (s)he can only distribute it to each of
    the other players individually."
    """
    return Send(ALL, payload)


def broadcast(payload: Payload) -> Send:
    """One use of the ideal broadcast channel (Section 3 model only)."""
    return Send(ALL, payload, broadcast=True)


class ProtocolViolation(Exception):
    """A program mis-used the runtime (honest-code bug, not a fault)."""


class Transport:
    """Base transport: expands sends into deliveries, metering each one.

    Parameters
    ----------
    n:
        Number of players (ids ``1..n``).
    metrics:
        The :class:`~repro.net.metrics.NetworkMetrics` that tallies every
        message at *send* time.  Fault-plane drops/duplicates happen
        after metering — the tallies count what honest code paid to
        transmit, matching the paper's accounting.
    enforce_codec:
        When set, every payload is round-tripped through the binary wire
        codec (:mod:`repro.net.codec`): unencodable payloads raise, and
        ``metrics.wire_bytes`` accumulates the exact wire byte count.
    """

    #: whether the ideal broadcast channel exists on this transport
    broadcast_available = True

    def __init__(
        self, n: int, metrics: NetworkMetrics, enforce_codec: bool = False
    ):
        self.n = n
        self.metrics = metrics
        self.enforce_codec = enforce_codec
        if enforce_codec and not hasattr(metrics, "wire_bytes"):
            metrics.wire_bytes = 0  # type: ignore[attr-defined]

    def expand(self, src: int, sends: List[Send]) -> List[Delivery]:
        """Validate and expand a program's sends into (dst, payload)."""
        deliveries: List[Delivery] = []
        for send in sends or []:
            if not isinstance(send, Send):
                raise ProtocolViolation(
                    f"player {src} yielded {type(send).__name__}, expected Send"
                )
            if self.enforce_codec:
                from repro.net import codec

                wire = codec.encode(send.payload)
                # one transmission per receiver for point-to-point fan-out;
                # the ideal broadcast channel is one transmission
                copies = (
                    self.n if (send.dst == ALL and not send.broadcast) else 1
                )
                self.metrics.wire_bytes += copies * len(wire)  # type: ignore[attr-defined]
                send = Send(send.dst, codec.decode(wire), send.broadcast)
            if send.broadcast:
                if not self.broadcast_available:
                    raise ProtocolViolation(
                        "broadcast channel not available in this model"
                    )
                if send.dst != ALL:
                    raise ProtocolViolation("broadcast must be addressed to ALL")
                self.metrics.record_broadcast(send.payload)
                deliveries.extend(
                    (dst, send.payload) for dst in range(1, self.n + 1)
                )
            elif send.dst == ALL:
                # size the payload once, not once per recipient
                self.metrics.record_unicast_elements(
                    payload_field_elements(send.payload), copies=self.n
                )
                deliveries.extend(
                    (dst, send.payload) for dst in range(1, self.n + 1)
                )
            else:
                if not 1 <= send.dst <= self.n:
                    raise ProtocolViolation(f"bad destination {send.dst}")
                self.metrics.record_unicast(send.payload)
                deliveries.append((send.dst, send.payload))
        return deliveries


def expansion_channels(n: int, sends: List[Send]) -> List[str]:
    """The channel kind of each delivery :meth:`Transport.expand` yields.

    A provenance companion to ``expand``: given the same ``sends``, the
    i-th returned label describes the i-th delivery (``broadcast`` for
    the ideal channel, ``multicast`` for an ALL fan-out, ``unicast``
    otherwise).  No validation or metering happens here — causality
    capture must never change what a run pays.
    """
    channels: List[str] = []
    for send in sends or []:
        if not isinstance(send, Send):
            continue
        if send.broadcast:
            channels.extend([BROADCAST] * n)
        elif send.dst == ALL:
            channels.extend([MULTICAST] * n)
        else:
            channels.append(UNICAST)
    return channels


class BroadcastTransport(Transport):
    """Private channels plus the ideal broadcast channel (Section 3)."""

    broadcast_available = True


class PrivateChannelTransport(Transport):
    """Point-to-point private channels only (Section 4, ``n >= 6t+1``)."""

    broadcast_available = False


def make_transport(
    n: int,
    metrics: NetworkMetrics,
    allow_broadcast: bool = True,
    enforce_codec: bool = False,
) -> Transport:
    """The transport matching the legacy ``allow_broadcast`` flag."""
    cls = BroadcastTransport if allow_broadcast else PrivateChannelTransport
    return cls(n, metrics, enforce_codec=enforce_codec)
