"""Fault-injection plane: message and player faults over any scheduler.

The paper's guarantees are earned under ``t`` *arbitrary* faults — not
just the happy path.  The :class:`FaultPlane` layers concrete, scriptable
fault scenarios over any scheduler without touching protocol code:

* **per-edge message faults** — drop, duplicate, or delay-by-rounds any
  ``src -> dst`` traffic, optionally restricted to a set of rounds;
* **player faults** — crash (permanently stop stepping and sending at a
  chosen round) or silence (suppress sends for chosen rounds while the
  program keeps running).

Faults apply *after* transport metering: the tallies count what honest
code paid to transmit, and the plane decides what actually arrives.

Soundness scope: the paper's synchronous model lets the adversary
interfere only with faulty players' traffic.  Injecting faults on edges
between *honest* players leaves the model (it simulates an unreliable
network the protocols were not designed for) — the regression suite
confines fault rules to at most ``t`` players, and so should you.

Example
-------
::

    plane = FaultPlane()
    plane.drop(src=3)                 # player 3's sends never arrive
    plane.duplicate(src=4, dst=1)     # 4 -> 1 messages arrive twice
    plane.delay(src=5, by=2)          # 5's sends arrive two rounds late
    plane.crash(6, at_round=2)        # 6 stops participating in round 2
    net = SynchronousNetwork(7, faults=plane, allow_broadcast=False)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.net.scheduler import RoutedDelivery

DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"


@dataclass(frozen=True)
class EdgeRule:
    """One per-edge fault rule; ``None`` src/dst/rounds mean "any"."""

    kind: str
    src: Optional[int] = None
    dst: Optional[int] = None
    rounds: Optional[frozenset] = None
    delay: int = 0

    def matches(self, round_no: int, src: int, dst: int) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.rounds is None or round_no in self.rounds)
        )


def _round_set(rounds: Optional[Iterable[int]]) -> Optional[frozenset]:
    return None if rounds is None else frozenset(rounds)


class FaultPlane:
    """Scriptable message/player faults, applied by the runtime each round.

    Rules are applied in registration order; the first matching rule
    decides a delivery's fate (drop / duplicate / delay).  Player crashes
    are tracked separately and also consulted by the runtime's stepping
    loop and termination check.
    """

    def __init__(self) -> None:
        self.rules: List[EdgeRule] = []
        #: player id -> round from which the player is crashed
        self.crashes: Dict[int, int] = {}
        #: player id -> rounds in which its sends are suppressed
        self.silences: Dict[int, frozenset] = {}
        # pending delayed deliveries: due round -> deliveries
        self._delayed: Dict[int, List[RoutedDelivery]] = {}
        #: event bus to publish "fault" events into; set by the runtime
        self.bus = None

    # -- rule registration (chainable) --------------------------------------
    def drop(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        rounds: Optional[Iterable[int]] = None,
    ) -> "FaultPlane":
        """Drop matching deliveries outright."""
        self.rules.append(EdgeRule(DROP, src, dst, _round_set(rounds)))
        return self

    def duplicate(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        rounds: Optional[Iterable[int]] = None,
    ) -> "FaultPlane":
        """Deliver matching messages twice in the same round."""
        self.rules.append(EdgeRule(DUPLICATE, src, dst, _round_set(rounds)))
        return self

    def delay(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        by: int = 1,
        rounds: Optional[Iterable[int]] = None,
    ) -> "FaultPlane":
        """Deliver matching messages ``by`` rounds later than scheduled."""
        if by < 1:
            raise ValueError("delay must be at least one round")
        self.rules.append(
            EdgeRule(DELAY, src, dst, _round_set(rounds), delay=by)
        )
        return self

    def crash(self, pid: int, at_round: int = 1) -> "FaultPlane":
        """Player ``pid`` stops stepping and sending from ``at_round`` on."""
        current = self.crashes.get(pid)
        self.crashes[pid] = at_round if current is None else min(current, at_round)
        return self

    def silence(self, pid: int, rounds: Iterable[int]) -> "FaultPlane":
        """Suppress ``pid``'s sends in ``rounds`` (program keeps stepping)."""
        previous = self.silences.get(pid, frozenset())
        self.silences[pid] = previous | frozenset(rounds)
        return self

    # -- runtime hooks -------------------------------------------------------
    def is_crashed(self, pid: int, round_no: int) -> bool:
        at = self.crashes.get(pid)
        return at is not None and round_no >= at

    def crashed_players(self) -> Set[int]:
        """Players with a scheduled crash (excluded from the wait set)."""
        return set(self.crashes)

    def is_silenced(self, pid: int, round_no: int) -> bool:
        return round_no in self.silences.get(pid, frozenset())

    def has_pending_delayed(self) -> bool:
        """Is any delayed delivery still waiting to mature?

        The runtimes consult this before declaring a quiet round truly
        stuck: a round with no traffic and no runnable player can still
        make progress if a ``delay`` rule holds matured-later messages.
        """
        return any(self._delayed.values())

    def _publish(self, round_no: int, kind: str, src: int, dst: int) -> None:
        if self.bus is not None:
            from repro.obs.bus import FAULT

            self.bus.publish(FAULT, round_no, kind, src, dst)

    def note_player_fault(self, round_no: int, kind: str, pid: int) -> None:
        """Publish a player-level fault (``"crash"``/``"silence"``).

        Called by the runtime once per round it suppresses a player, with
        ``dst=0`` meaning "all destinations"; flight recorders and
        forensics use these events as direct evidence of the injected
        player fault.
        """
        self._publish(round_no, kind, pid, 0)

    def apply(
        self, round_no: int, deliveries: List[RoutedDelivery]
    ) -> List[RoutedDelivery]:
        """Rewrite one round's deliveries; releases matured delayed traffic.

        Every rewrite is published as a ``"fault"`` event on the
        runtime's bus (when attached), so trace/span subscribers can
        record exactly which deliveries the plane touched.
        """
        out: List[RoutedDelivery] = []
        for delivery in deliveries:
            dst, src, _payload = delivery
            rule = next(
                (r for r in self.rules if r.matches(round_no, src, dst)), None
            )
            if rule is None:
                out.append(delivery)
            elif rule.kind == DROP:
                self._publish(round_no, DROP, src, dst)
                continue
            elif rule.kind == DUPLICATE:
                self._publish(round_no, DUPLICATE, src, dst)
                out.append(delivery)
                out.append(delivery)
            elif rule.kind == DELAY:
                self._publish(round_no, DELAY, src, dst)
                self._delayed.setdefault(round_no + rule.delay, []).append(
                    delivery
                )
        out.extend(self._delayed.pop(round_no, []))
        return out
