"""Fault-injection plane: message and player faults over any scheduler.

The paper's guarantees are earned under ``t`` *arbitrary* faults — not
just the happy path.  The :class:`FaultPlane` layers concrete, scriptable
fault scenarios over any scheduler without touching protocol code:

* **per-edge message faults** — drop, duplicate, or delay-by-rounds any
  ``src -> dst`` traffic, optionally restricted to a set of rounds;
* **player faults** — crash (permanently stop stepping and sending at a
  chosen round) or silence (suppress sends for chosen rounds while the
  program keeps running).

Faults apply *after* transport metering: the tallies count what honest
code paid to transmit, and the plane decides what actually arrives.

Soundness scope: the paper's synchronous model lets the adversary
interfere only with faulty players' traffic.  Injecting faults on edges
between *honest* players leaves the model (it simulates an unreliable
network the protocols were not designed for) — the regression suite
confines fault rules to at most ``t`` players, and so should you.

Example
-------
::

    plane = FaultPlane()
    plane.drop(src=3)                 # player 3's sends never arrive
    plane.duplicate(src=4, dst=1)     # 4 -> 1 messages arrive twice
    plane.delay(src=5, by=2)          # 5's sends arrive two rounds late
    plane.crash(6, at_round=2)        # 6 stops participating in round 2
    net = SynchronousNetwork(7, faults=plane, allow_broadcast=False)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set

from repro.net.scheduler import RoutedDelivery

DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"
CRASH = "crash"
SILENCE = "silence"

#: every fault-op kind :func:`parse_fault_op` accepts
FAULT_KINDS = (DROP, DUPLICATE, DELAY, CRASH, SILENCE)

#: keys each kind accepts in an op spec (beyond ``kind`` itself)
_OP_KEYS = {
    DROP: {"src", "dst", "rounds"},
    DUPLICATE: {"src", "dst", "rounds"},
    DELAY: {"src", "dst", "by", "rounds"},
    CRASH: {"pid", "at"},
    SILENCE: {"pid", "rounds"},
}


def parse_fault_op(op: str) -> Dict[str, Any]:
    """Parse one fault-op spec string into a parameter dict.

    The grammar is ``kind`` or ``kind:key=value,key=value`` where keys
    are integers except ``rounds``, a ``+``-joined round list::

        "drop:src=7"  "delay:src=5,by=2"  "duplicate:src=4,dst=1"
        "crash:pid=6,at=2"  "silence:pid=3,rounds=3+4"

    The compact string form keeps whole fault chains hashable and
    JSON-trivial, which is what lets campaign scenarios carry them in
    manifests, ledgers, and repro artifacts.
    """
    kind, _, rest = op.partition(":")
    kind = kind.strip()
    if kind not in _OP_KEYS:
        raise ValueError(f"unknown fault kind {kind!r} in op {op!r}")
    params: Dict[str, Any] = {"kind": kind}
    if rest.strip():
        for part in rest.split(","):
            key, eq, value = part.partition("=")
            key = key.strip()
            if not eq or key not in _OP_KEYS[kind]:
                raise ValueError(f"bad parameter {part!r} in fault op {op!r}")
            if key == "rounds":
                params[key] = tuple(int(x) for x in value.split("+"))
            else:
                params[key] = int(value)
    return params


def fault_targets(ops: Sequence[str]) -> Set[int]:
    """Player ids a fault chain interferes with (its "suspect set").

    A rule's target is the player whose participation it corrupts: the
    source of an edge rule (its traffic is dropped / duplicated /
    delayed), the destination for destination-only edge rules (nothing
    reaches it), and the pid of a crash / silence.  The campaign driver
    uses this to keep sampled chains inside the paper's ``t``-fault
    model and to exclude targeted players from unanimity oracles.
    """
    targets: Set[int] = set()
    for op in ops:
        params = parse_fault_op(op)
        if params["kind"] in (CRASH, SILENCE):
            if "pid" in params:
                targets.add(params["pid"])
        elif params.get("src") is not None:
            targets.add(params["src"])
        elif params.get("dst") is not None:
            targets.add(params["dst"])
    return targets


@dataclass(frozen=True)
class EdgeRule:
    """One per-edge fault rule; ``None`` src/dst/rounds mean "any"."""

    kind: str
    src: Optional[int] = None
    dst: Optional[int] = None
    rounds: Optional[frozenset] = None
    delay: int = 0

    def matches(self, round_no: int, src: int, dst: int) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.rounds is None or round_no in self.rounds)
        )


def _round_set(rounds: Optional[Iterable[int]]) -> Optional[frozenset]:
    return None if rounds is None else frozenset(rounds)


class FaultPlane:
    """Scriptable message/player faults, applied by the runtime each round.

    Rules are applied in registration order; the first matching rule
    decides a delivery's fate (drop / duplicate / delay).  Player crashes
    are tracked separately and also consulted by the runtime's stepping
    loop and termination check.
    """

    def __init__(self) -> None:
        self.rules: List[EdgeRule] = []
        #: player id -> round from which the player is crashed
        self.crashes: Dict[int, int] = {}
        #: player id -> rounds in which its sends are suppressed
        self.silences: Dict[int, frozenset] = {}
        # pending delayed deliveries: due round -> deliveries
        self._delayed: Dict[int, List[RoutedDelivery]] = {}
        #: event bus to publish "fault" events into; set by the runtime
        self.bus = None

    @classmethod
    def from_spec(cls, ops: Sequence[str]) -> "FaultPlane":
        """Build a fresh plane from a chain of op spec strings.

        Registration order follows the chain order, so first-match-wins
        semantics are exactly the chain's left-to-right order.  A plane
        is stateful (pending delayed deliveries, bus binding), so
        callers that re-run a scenario must build a fresh plane from the
        same spec rather than reuse one — this constructor is that
        guarantee.
        """
        plane = cls()
        for op in ops:
            params = parse_fault_op(op)
            kind = params["kind"]
            if kind == DROP:
                plane.drop(params.get("src"), params.get("dst"),
                           params.get("rounds"))
            elif kind == DUPLICATE:
                plane.duplicate(params.get("src"), params.get("dst"),
                                params.get("rounds"))
            elif kind == DELAY:
                plane.delay(params.get("src"), params.get("dst"),
                            params.get("by", 1), params.get("rounds"))
            elif kind == CRASH:
                plane.crash(params["pid"], params.get("at", 1))
            elif kind == SILENCE:
                plane.silence(params["pid"], params.get("rounds", ()))
        return plane

    # -- rule registration (chainable) --------------------------------------
    def drop(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        rounds: Optional[Iterable[int]] = None,
    ) -> "FaultPlane":
        """Drop matching deliveries outright."""
        self.rules.append(EdgeRule(DROP, src, dst, _round_set(rounds)))
        return self

    def duplicate(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        rounds: Optional[Iterable[int]] = None,
    ) -> "FaultPlane":
        """Deliver matching messages twice in the same round."""
        self.rules.append(EdgeRule(DUPLICATE, src, dst, _round_set(rounds)))
        return self

    def delay(
        self,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        by: int = 1,
        rounds: Optional[Iterable[int]] = None,
    ) -> "FaultPlane":
        """Deliver matching messages ``by`` rounds later than scheduled."""
        if by < 1:
            raise ValueError("delay must be at least one round")
        self.rules.append(
            EdgeRule(DELAY, src, dst, _round_set(rounds), delay=by)
        )
        return self

    def crash(self, pid: int, at_round: int = 1) -> "FaultPlane":
        """Player ``pid`` stops stepping and sending from ``at_round`` on."""
        current = self.crashes.get(pid)
        self.crashes[pid] = at_round if current is None else min(current, at_round)
        return self

    def silence(self, pid: int, rounds: Iterable[int]) -> "FaultPlane":
        """Suppress ``pid``'s sends in ``rounds`` (program keeps stepping)."""
        previous = self.silences.get(pid, frozenset())
        self.silences[pid] = previous | frozenset(rounds)
        return self

    # -- runtime hooks -------------------------------------------------------
    def is_crashed(self, pid: int, round_no: int) -> bool:
        at = self.crashes.get(pid)
        return at is not None and round_no >= at

    def crashed_players(self) -> Set[int]:
        """Players with a scheduled crash (excluded from the wait set)."""
        return set(self.crashes)

    def is_silenced(self, pid: int, round_no: int) -> bool:
        return round_no in self.silences.get(pid, frozenset())

    def has_pending_delayed(self) -> bool:
        """Is any delayed delivery still waiting to mature?

        The runtimes consult this before declaring a quiet round truly
        stuck: a round with no traffic and no runnable player can still
        make progress if a ``delay`` rule holds matured-later messages.
        """
        return any(self._delayed.values())

    def _publish(self, round_no: int, kind: str, src: int, dst: int) -> None:
        if self.bus is not None:
            from repro.obs.bus import FAULT

            self.bus.publish(FAULT, round_no, kind, src, dst)

    def note_player_fault(self, round_no: int, kind: str, pid: int) -> None:
        """Publish a player-level fault (``"crash"``/``"silence"``).

        Called by the runtime once per round it suppresses a player, with
        ``dst=0`` meaning "all destinations"; flight recorders and
        forensics use these events as direct evidence of the injected
        player fault.
        """
        self._publish(round_no, kind, pid, 0)

    def apply(
        self, round_no: int, deliveries: List[RoutedDelivery]
    ) -> List[RoutedDelivery]:
        """Rewrite one round's deliveries; releases matured delayed traffic.

        Every rewrite is published as a ``"fault"`` event on the
        runtime's bus (when attached), so trace/span subscribers can
        record exactly which deliveries the plane touched.
        """
        out: List[RoutedDelivery] = []
        for delivery in deliveries:
            dst, src, _payload = delivery
            rule = next(
                (r for r in self.rules if r.matches(round_no, src, dst)), None
            )
            if rule is None:
                out.append(delivery)
            elif rule.kind == DROP:
                self._publish(round_no, DROP, src, dst)
                continue
            elif rule.kind == DUPLICATE:
                self._publish(round_no, DUPLICATE, src, dst)
                out.append(delivery)
                out.append(delivery)
            elif rule.kind == DELAY:
                self._publish(round_no, DELAY, src, dst)
                self._delayed.setdefault(round_no + rule.delay, []).append(
                    delivery
                )
        out.extend(self._delayed.pop(round_no, []))
        return out
