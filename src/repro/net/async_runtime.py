"""Event-driven asynchronous runtime: one message delivered at a time.

The async sibling of :class:`repro.net.runtime.ProtocolRuntime` (see
DESIGN.md §11).  Instead of lock-step rounds, an :class:`AsyncRuntime`
keeps a single pool of in-flight messages and repeatedly asks its
scheduler to :meth:`~repro.net.scheduler.Scheduler.choose` the next one
to deliver — the adversary picks the order, the runtime guarantees only
*eventual* delivery.  **Logical time is the delivery count**: the
makespan of a run is how many deliveries it took for every waited
player to finish.

Programs are the same generators the lockstep runtime runs, written in
the guarded style of :mod:`repro.net.guards`: each ``yield`` carries a
``Wait(tags, quorum)`` guard and the player sleeps until its cumulative
inbox satisfies it (e.g. an ``n - t`` quorum on an echo tag).  Inboxes
are *cumulative* — every payload delivered to the player so far — so a
woken body re-derives its state idempotently from full history.  A
plain (unguarded) yield means "wake me on any new delivery".  Rushing
is rejected: the async adversary already controls every delivery.

Fault semantics: ``crash(pid, r)`` stops the player from logical time
``r`` on (its in-flight messages still deliver); ``silence`` suppresses
sends emitted at matching times; edge rules are applied once per
message when it is first picked — ``drop`` discards it, ``duplicate``
re-enqueues a copy, ``delay(by=k)`` makes it ineligible for the next
``k`` logical ticks (an idle tick is inserted when only immature
messages remain).

Observability rides the same EventBus topics as lockstep, with logical
time as the round index: each delivery publishes one ``SENT`` event
(provenance, pre-fault) immediately followed by one ``ROUND`` event
(the settled delivery), so causal recorders, flight logs, replay/diff,
and critical-path analysis work unchanged on async runs — one
happens-before edge per delivered message, and live and offline
(flight-log) causal graphs are canonically equal.

Liveness telemetry (see :mod:`repro.obs.liveness`) is published on the
``GUARD_ARMED`` / ``GUARD_PROGRESS`` / ``GUARD_FIRED`` / ``POOL``
topics with logical-time stamps — armed/fired when guarded programs
park and step, per-relevant-delivery quorum progress, and per-tick
in-flight pool depth with a per-channel backlog.  Every one of these is
gated on the topic having subscribers, so unmonitored runs stay
byte-identical (asserted by flight-log equality in the tests).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.fields.base import Field
from repro.net.faults import DELAY, DROP, DUPLICATE, FaultPlane
from repro.net.metrics import NetworkMetrics
from repro.net.runtime import Inbox, Program, RuntimeBase
from repro.net.scheduler import RandomOrderScheduler, Scheduler
from repro.net.trace import payload_tag
from repro.net.transport import (
    ProtocolViolation,
    Transport,
    expansion_channels,
    make_transport,
)
from repro.obs.bus import (
    GUARD_ARMED,
    GUARD_FIRED,
    GUARD_PROGRESS,
    POOL,
    ROUND,
    RUN,
    SENT,
    EventBus,
)
from repro.obs.phases import classify_tag


def _inbox_size(inbox: Inbox) -> int:
    return sum(len(payloads) for payloads in inbox.values())


class AsyncRuntime(RuntimeBase):
    """Runs player programs under adversarial message-at-a-time delivery.

    Construction mirrors :class:`~repro.net.simulator.SynchronousNetwork`
    (a transport is built for you from ``allow_broadcast`` /
    ``enforce_codec`` unless one is passed); the default scheduler is a
    :class:`~repro.net.scheduler.RandomOrderScheduler` with seed 0 —
    pass one with your own seed to sweep delivery schedules.

    ``max_deliveries`` bounds the logical clock; exhausting it (or
    draining the in-flight pool with waited players still asleep)
    raises :class:`~repro.net.runtime.RuntimeExhausted` naming the
    stuck players and their awaited tags.

    After ``run()``, ``logical_time`` holds the final clock (deliveries
    plus idle ticks) and ``delivery_count`` the number of messages
    actually delivered.
    """

    def __init__(
        self,
        n: int,
        field: Optional[Field] = None,
        metrics: Optional[NetworkMetrics] = None,
        transport: Optional[Transport] = None,
        scheduler: Optional[Scheduler] = None,
        faults: Optional[FaultPlane] = None,
        max_deliveries: int = 100_000,
        observer=None,
        tracer=None,
        recorder=None,
        bus: Optional[EventBus] = None,
        allow_broadcast: bool = True,
        enforce_codec: bool = False,
    ):
        metrics = metrics or NetworkMetrics(
            element_bits=field.bit_length if field is not None else 1
        )
        transport = transport or make_transport(
            n, metrics,
            allow_broadcast=allow_broadcast,
            enforce_codec=enforce_codec,
        )
        super().__init__(
            n,
            field=field,
            metrics=metrics,
            transport=transport,
            scheduler=scheduler or RandomOrderScheduler(),
            faults=faults,
            max_rounds=max_deliveries,
            observer=observer,
            tracer=tracer,
            recorder=recorder,
            bus=bus,
        )
        self.max_deliveries = max_deliveries
        #: final logical clock of the last run (deliveries + idle ticks)
        self.logical_time = 0
        #: messages actually delivered in the last run
        self.delivery_count = 0

    # -- main loop -----------------------------------------------------------
    def run(
        self,
        programs: Dict[int, Program],
        wait_for: Optional[Iterable[int]] = None,
    ) -> Dict[int, Any]:
        """Run programs until every waited player finishes; {pid: output}.

        Same contract as the lockstep
        :meth:`~repro.net.runtime.ProtocolRuntime.run`: ``wait_for``
        limits termination to the honest subset, scheduled crashes are
        never waited for, unfinished generators are closed at the end.
        """
        for pid in programs:
            if not 1 <= pid <= self.n:
                raise ValueError(f"program for unknown player {pid}")
        if self.scheduler.rushing:
            raise ProtocolViolation(
                "rushing is a synchronous-round notion; the async "
                "scheduler already controls every delivery"
            )
        recorder = self.recorder
        recording = recorder.enabled
        if recording:
            # the "t=0" span covers run() setup plus priming so that
            # coverage() sees the whole call attributed to round spans
            prime_span = recorder.begin("t=0", "round", round=0)
        waited = set(programs) if wait_for is None else set(wait_for) & set(programs)
        faults = self.faults
        if faults is not None:
            waited -= faults.crashed_players()
        self.bus.publish(RUN, self.n)
        self._reset_guard_state()
        self._step_spans = []
        outputs: Dict[int, Any] = {}
        done: Dict[int, bool] = {pid: False for pid in programs}
        cum: Dict[int, Inbox] = {pid: {} for pid in programs}
        self._cum = cum
        #: payload count a player had last time it stepped — drives the
        #: "wake on anything new" semantics of unguarded yields
        seen: Dict[int, int] = {pid: 0 for pid in programs}
        crash_noted: set = set()
        #: in-flight messages: [dst, src, payload, channel, ready_at,
        #: fault_processed] — ready_at gates delay-rule maturation
        pending: List[list] = []
        clock = 0
        steps = 0
        # one program may step several times per delivery (cascading
        # guards); bound total steps so a guard that re-fires without
        # making progress cannot spin forever
        step_budget = 4 * self.max_deliveries + 16 * self.n
        bus = self.bus
        capturing = bus.has_subscribers(SENT)
        # liveness telemetry is strictly opt-in, like the "sent" topic:
        # the flags are sampled once per run and every publish (and the
        # progress/backlog computation feeding it) is gated on them, so
        # unmonitored runs stay byte-identical
        lv_armed = bus.has_subscribers(GUARD_ARMED)
        lv_progress = bus.has_subscribers(GUARD_PROGRESS)
        lv_fired = bus.has_subscribers(GUARD_FIRED)
        lv_pool = bus.has_subscribers(POOL)
        self.delivery_count = 0
        self.logical_time = 0

        def pool_gauge(time: int) -> None:
            backlog: Dict[str, int] = {}
            for item in pending:
                backlog[item[3]] = backlog.get(item[3], 0) + 1
            bus.publish(POOL, time, len(pending), backlog)

        def crashed(pid: int, tick: int) -> bool:
            if faults is None or not faults.is_crashed(pid, max(tick, 1)):
                return False
            if pid not in crash_noted:
                faults.note_player_fault(max(tick, 1), "crash", pid)
                crash_noted.add(pid)
            return True

        def emit(pid: int, sends, tick: int) -> None:
            if faults is not None and faults.is_silenced(pid, max(tick, 1)):
                faults.note_player_fault(max(tick, 1), "silence", pid)
                return
            expanded = self._expand(pid, sends)
            channels = expansion_channels(self.n, sends)
            if len(channels) != len(expanded):
                channels = ["?"] * len(expanded)
            for (dst, payload), channel in zip(expanded, channels):
                pending.append([dst, pid, payload, channel, tick, False])

        def wake(pid: int, tick: int) -> None:
            nonlocal steps
            program = programs[pid]
            while not done[pid]:
                if crashed(pid, tick):
                    return
                inbox_now = cum.get(pid, {})
                guard = self._guards.get(pid)
                if guard is None:
                    if _inbox_size(inbox_now) <= seen[pid]:
                        return
                elif not guard.satisfied(inbox_now):
                    return
                if lv_fired and guard is not None:
                    bus.publish(GUARD_FIRED, tick, pid, guard,
                                guard.matched_senders(inbox_now))
                seen[pid] = _inbox_size(inbox_now)
                steps += 1
                if steps > step_budget:
                    raise self._exhausted(
                        waited, done,
                        f"exceeded {step_budget} program steps (a guard "
                        "keeps re-firing without the run finishing)",
                    )
                inbox = {src: list(msgs) for src, msgs in inbox_now.items()}
                # the step consuming the delivery settled at time `tick`
                # is critical-path node (tick + 1, pid) — record its op
                # delta there so async spans price like lockstep rounds
                sends = self._advance(
                    pid, program, inbox, outputs, done, round_no=tick + 1
                )
                if sends:
                    emit(pid, sends, tick)
                if lv_armed and not done[pid]:
                    armed = self._guards.get(pid)
                    if armed is not None:
                        bus.publish(GUARD_ARMED, tick, pid, armed)

        # priming: step every (non-crashed) program once at logical time
        # 0 to collect its initial sends and park its first guard.  The
        # ops land on critical-path node (1, pid) — the node first sends
        # originate from — hence round_no=1.
        if recording:
            self._step_spans = []
        for pid in sorted(programs):
            if crashed(pid, 1):
                continue
            sends = self._advance(pid, programs[pid], None, outputs, done,
                                  round_no=1)
            if sends:
                emit(pid, sends, 0)
            if lv_armed and not done[pid]:
                armed = self._guards.get(pid)
                if armed is not None:
                    bus.publish(GUARD_ARMED, 0, pid, armed)
        for pid in sorted(programs):
            if not done[pid]:
                wake(pid, 0)  # a quorum-0 guard may already be satisfied
        if lv_pool:
            pool_gauge(0)
        if recording:
            phase = (
                classify_tag(payload_tag(pending[0][2]))
                if pending else "other"
            )
            for step_span in self._step_spans:
                step_span.set(phase=phase)
            recorder.end(prime_span, phase=phase, messages=len(pending))
            # one "round" span per logical tick.  The next tick's span is
            # opened the instant the previous one ends (the final, unused
            # one is discarded after the loop) so no wall time falls
            # between round spans and coverage() attributes the whole
            # run; the steps a delivery wakes are recorded inside it so
            # ops_from_recorder prices async runs exactly like lockstep
            round_span = recorder.begin(
                f"t={clock + 1}", "round", round=clock + 1
            )
            self._step_spans = []

        while not all(done[pid] for pid in waited):
            if not pending:
                raise self._exhausted(
                    waited, done,
                    f"in-flight pool drained after {self.delivery_count} "
                    "deliveries with players still waiting",
                )
            if clock >= self.max_deliveries:
                raise self._exhausted(
                    waited, done,
                    f"exceeded max_deliveries={self.max_deliveries}",
                )
            eligible = [
                i for i, entry in enumerate(pending) if entry[4] <= clock
            ]
            if not eligible:
                clock += 1  # idle tick: only delayed traffic remains
                if lv_pool:
                    pool_gauge(clock)
                if recording:
                    recorder.end(round_span, phase="other", messages=0)
                    round_span = recorder.begin(
                        f"t={clock + 1}", "round", round=clock + 1
                    )
                    self._step_spans = []
                continue
            tick = clock + 1  # 1-based time of the delivery being decided
            if faults is not None:
                # note crashes taking effect by this tick *before* the
                # tick's SENT/ROUND publish — flight recorders expect
                # faults for time r ahead of r's round event
                for pid in programs:
                    if pid not in crash_noted and faults.is_crashed(pid, tick):
                        faults.note_player_fault(tick, "crash", pid)
                        crash_noted.add(pid)
            pick = self.scheduler.choose(clock, len(eligible))
            entry = pending.pop(eligible[pick % len(eligible)])
            dst, src, payload, channel, _ready, processed = entry
            if faults is not None and not processed:
                rule = next(
                    (r for r in faults.rules if r.matches(tick, src, dst)),
                    None,
                )
                if rule is not None:
                    faults._publish(tick, rule.kind, src, dst)
                    if rule.kind == DROP:
                        if capturing:
                            # provenance without a matching delivery: the
                            # causal recorder files it as a DroppedEmission
                            self.bus.publish(
                                SENT, tick, [(dst, src, payload, channel)]
                            )
                        if recording:
                            recorder.end(
                                round_span, messages=0,
                                phase=classify_tag(payload_tag(payload)),
                            )
                            round_span = recorder.begin(
                                f"t={clock + 1}", "round", round=clock + 1
                            )
                            self._step_spans = []
                        continue
                    if rule.kind == DELAY:
                        entry[4] = tick + rule.delay
                        entry[5] = True
                        pending.append(entry)
                        if recording:
                            recorder.end(
                                round_span, messages=0,
                                phase=classify_tag(payload_tag(payload)),
                            )
                            round_span = recorder.begin(
                                f"t={clock + 1}", "round", round=clock + 1
                            )
                            self._step_spans = []
                        continue
                    if rule.kind == DUPLICATE:
                        pending.append(
                            [dst, src, payload, channel, clock, True]
                        )
            clock += 1
            self.metrics.rounds += 1
            self.delivery_count += 1
            if capturing:
                bus.publish(SENT, clock, [(dst, src, payload, channel)])
            bus.publish(ROUND, clock, [(dst, src, payload)])
            if dst in cum:
                cum[dst].setdefault(src, []).append(payload)
                if lv_progress and not done[dst]:
                    guard = self._guards.get(dst)
                    if guard is not None and payload_tag(payload) in guard.tags:
                        count, quorum = guard.progress(cum[dst])
                        bus.publish(
                            GUARD_PROGRESS, clock, dst, src, count, quorum
                        )
                if not done[dst]:
                    wake(dst, clock)
            if lv_pool:
                pool_gauge(clock)
            if recording:
                phase = classify_tag(payload_tag(payload))
                for step_span in self._step_spans:
                    step_span.set(phase=phase)
                recorder.end(
                    round_span, phase=phase, messages=1, src=src, dst=dst,
                    tags={payload_tag(payload): 1},
                )
                round_span = recorder.begin(
                    f"t={clock + 1}", "round", round=clock + 1
                )
                self._step_spans = []

        if recording:
            recorder.discard(round_span)
        self.logical_time = clock
        for pid, program in programs.items():
            if not done.get(pid):
                program.close()
        return outputs
