"""Event-driven asynchronous runtime: one message delivered at a time.

The async sibling of :class:`repro.net.runtime.ProtocolRuntime` (see
DESIGN.md §11).  Instead of lock-step rounds, an :class:`AsyncRuntime`
keeps a single pool of in-flight messages and repeatedly asks its
scheduler to :meth:`~repro.net.scheduler.Scheduler.choose` the next one
to deliver — the adversary picks the order, the runtime guarantees only
*eventual* delivery.  **Logical time is the delivery count**: the
makespan of a run is how many deliveries it took for every waited
player to finish.

Programs are the same generators the lockstep runtime runs, written in
the guarded style of :mod:`repro.net.guards`: each ``yield`` carries a
``Wait(tags, quorum)`` guard and the player sleeps until its cumulative
inbox satisfies it (e.g. an ``n - t`` quorum on an echo tag).  Inboxes
are *cumulative* — every payload delivered to the player so far — so a
woken body re-derives its state idempotently from full history.  A
plain (unguarded) yield means "wake me on any new delivery".  Rushing
is rejected: the async adversary already controls every delivery.

Fault semantics: ``crash(pid, r)`` stops the player from logical time
``r`` on (its in-flight messages still deliver); ``silence`` suppresses
sends emitted at matching times; edge rules are applied once per
message when it is first picked — ``drop`` discards it, ``duplicate``
re-enqueues a copy, ``delay(by=k)`` makes it ineligible for the next
``k`` logical ticks (an idle tick is inserted when only immature
messages remain).

Observability rides the same EventBus topics as lockstep, with logical
time as the round index: each delivery publishes one ``SENT`` event
(provenance, pre-fault) immediately followed by one ``ROUND`` event
(the settled delivery), so causal recorders, flight logs, replay/diff,
and critical-path analysis work unchanged on async runs — one
happens-before edge per delivered message, and live and offline
(flight-log) causal graphs are canonically equal.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.fields.base import Field
from repro.net.faults import DELAY, DROP, DUPLICATE, FaultPlane
from repro.net.metrics import NetworkMetrics
from repro.net.runtime import Inbox, Program, RuntimeBase
from repro.net.scheduler import RandomOrderScheduler, Scheduler
from repro.net.transport import (
    ProtocolViolation,
    Transport,
    expansion_channels,
    make_transport,
)
from repro.obs.bus import ROUND, RUN, SENT, EventBus


def _inbox_size(inbox: Inbox) -> int:
    return sum(len(payloads) for payloads in inbox.values())


class AsyncRuntime(RuntimeBase):
    """Runs player programs under adversarial message-at-a-time delivery.

    Construction mirrors :class:`~repro.net.simulator.SynchronousNetwork`
    (a transport is built for you from ``allow_broadcast`` /
    ``enforce_codec`` unless one is passed); the default scheduler is a
    :class:`~repro.net.scheduler.RandomOrderScheduler` with seed 0 —
    pass one with your own seed to sweep delivery schedules.

    ``max_deliveries`` bounds the logical clock; exhausting it (or
    draining the in-flight pool with waited players still asleep)
    raises :class:`~repro.net.runtime.RuntimeExhausted` naming the
    stuck players and their awaited tags.

    After ``run()``, ``logical_time`` holds the final clock (deliveries
    plus idle ticks) and ``delivery_count`` the number of messages
    actually delivered.
    """

    def __init__(
        self,
        n: int,
        field: Optional[Field] = None,
        metrics: Optional[NetworkMetrics] = None,
        transport: Optional[Transport] = None,
        scheduler: Optional[Scheduler] = None,
        faults: Optional[FaultPlane] = None,
        max_deliveries: int = 100_000,
        observer=None,
        tracer=None,
        recorder=None,
        bus: Optional[EventBus] = None,
        allow_broadcast: bool = True,
        enforce_codec: bool = False,
    ):
        metrics = metrics or NetworkMetrics(
            element_bits=field.bit_length if field is not None else 1
        )
        transport = transport or make_transport(
            n, metrics,
            allow_broadcast=allow_broadcast,
            enforce_codec=enforce_codec,
        )
        super().__init__(
            n,
            field=field,
            metrics=metrics,
            transport=transport,
            scheduler=scheduler or RandomOrderScheduler(),
            faults=faults,
            max_rounds=max_deliveries,
            observer=observer,
            tracer=tracer,
            recorder=recorder,
            bus=bus,
        )
        self.max_deliveries = max_deliveries
        #: final logical clock of the last run (deliveries + idle ticks)
        self.logical_time = 0
        #: messages actually delivered in the last run
        self.delivery_count = 0

    # -- main loop -----------------------------------------------------------
    def run(
        self,
        programs: Dict[int, Program],
        wait_for: Optional[Iterable[int]] = None,
    ) -> Dict[int, Any]:
        """Run programs until every waited player finishes; {pid: output}.

        Same contract as the lockstep
        :meth:`~repro.net.runtime.ProtocolRuntime.run`: ``wait_for``
        limits termination to the honest subset, scheduled crashes are
        never waited for, unfinished generators are closed at the end.
        """
        for pid in programs:
            if not 1 <= pid <= self.n:
                raise ValueError(f"program for unknown player {pid}")
        if self.scheduler.rushing:
            raise ProtocolViolation(
                "rushing is a synchronous-round notion; the async "
                "scheduler already controls every delivery"
            )
        waited = set(programs) if wait_for is None else set(wait_for) & set(programs)
        faults = self.faults
        if faults is not None:
            waited -= faults.crashed_players()
        self.bus.publish(RUN, self.n)
        self._reset_guard_state()
        self._step_spans = []
        outputs: Dict[int, Any] = {}
        done: Dict[int, bool] = {pid: False for pid in programs}
        cum: Dict[int, Inbox] = {pid: {} for pid in programs}
        self._cum = cum
        #: payload count a player had last time it stepped — drives the
        #: "wake on anything new" semantics of unguarded yields
        seen: Dict[int, int] = {pid: 0 for pid in programs}
        crash_noted: set = set()
        #: in-flight messages: [dst, src, payload, channel, ready_at,
        #: fault_processed] — ready_at gates delay-rule maturation
        pending: List[list] = []
        clock = 0
        steps = 0
        # one program may step several times per delivery (cascading
        # guards); bound total steps so a guard that re-fires without
        # making progress cannot spin forever
        step_budget = 4 * self.max_deliveries + 16 * self.n
        capturing = self.bus.has_subscribers(SENT)
        self.delivery_count = 0
        self.logical_time = 0

        def crashed(pid: int, tick: int) -> bool:
            if faults is None or not faults.is_crashed(pid, max(tick, 1)):
                return False
            if pid not in crash_noted:
                faults.note_player_fault(max(tick, 1), "crash", pid)
                crash_noted.add(pid)
            return True

        def emit(pid: int, sends, tick: int) -> None:
            if faults is not None and faults.is_silenced(pid, max(tick, 1)):
                faults.note_player_fault(max(tick, 1), "silence", pid)
                return
            expanded = self._expand(pid, sends)
            channels = expansion_channels(self.n, sends)
            if len(channels) != len(expanded):
                channels = ["?"] * len(expanded)
            for (dst, payload), channel in zip(expanded, channels):
                pending.append([dst, pid, payload, channel, tick, False])

        def wake(pid: int, tick: int) -> None:
            nonlocal steps
            program = programs[pid]
            while not done[pid]:
                if crashed(pid, tick):
                    return
                inbox_now = cum.get(pid, {})
                guard = self._guards.get(pid)
                if guard is None:
                    if _inbox_size(inbox_now) <= seen[pid]:
                        return
                elif not guard.satisfied(inbox_now):
                    return
                seen[pid] = _inbox_size(inbox_now)
                steps += 1
                if steps > step_budget:
                    raise self._exhausted(
                        waited, done,
                        f"exceeded {step_budget} program steps (a guard "
                        "keeps re-firing without the run finishing)",
                    )
                inbox = {src: list(msgs) for src, msgs in inbox_now.items()}
                sends = self._advance(
                    pid, program, inbox, outputs, done, round_no=max(tick, 1)
                )
                if sends:
                    emit(pid, sends, tick)

        # priming: step every (non-crashed) program once at logical time
        # 0 to collect its initial sends and park its first guard
        for pid in sorted(programs):
            if crashed(pid, 1):
                continue
            sends = self._advance(pid, programs[pid], None, outputs, done,
                                  round_no=0)
            if sends:
                emit(pid, sends, 0)
        for pid in sorted(programs):
            if not done[pid]:
                wake(pid, 0)  # a quorum-0 guard may already be satisfied

        while not all(done[pid] for pid in waited):
            if not pending:
                raise self._exhausted(
                    waited, done,
                    f"in-flight pool drained after {self.delivery_count} "
                    "deliveries with players still waiting",
                )
            if clock >= self.max_deliveries:
                raise self._exhausted(
                    waited, done,
                    f"exceeded max_deliveries={self.max_deliveries}",
                )
            eligible = [
                i for i, entry in enumerate(pending) if entry[4] <= clock
            ]
            if not eligible:
                clock += 1  # idle tick: only delayed traffic remains
                continue
            tick = clock + 1  # 1-based time of the delivery being decided
            if faults is not None:
                # note crashes taking effect by this tick *before* the
                # tick's SENT/ROUND publish — flight recorders expect
                # faults for time r ahead of r's round event
                for pid in programs:
                    if pid not in crash_noted and faults.is_crashed(pid, tick):
                        faults.note_player_fault(tick, "crash", pid)
                        crash_noted.add(pid)
            pick = self.scheduler.choose(clock, len(eligible))
            entry = pending.pop(eligible[pick % len(eligible)])
            dst, src, payload, channel, _ready, processed = entry
            if faults is not None and not processed:
                rule = next(
                    (r for r in faults.rules if r.matches(tick, src, dst)),
                    None,
                )
                if rule is not None:
                    faults._publish(tick, rule.kind, src, dst)
                    if rule.kind == DROP:
                        if capturing:
                            # provenance without a matching delivery: the
                            # causal recorder files it as a DroppedEmission
                            self.bus.publish(
                                SENT, tick, [(dst, src, payload, channel)]
                            )
                        continue
                    if rule.kind == DELAY:
                        entry[4] = tick + rule.delay
                        entry[5] = True
                        pending.append(entry)
                        continue
                    if rule.kind == DUPLICATE:
                        pending.append(
                            [dst, src, payload, channel, clock, True]
                        )
            clock += 1
            self.metrics.rounds += 1
            self.delivery_count += 1
            if capturing:
                self.bus.publish(SENT, clock, [(dst, src, payload, channel)])
            self.bus.publish(ROUND, clock, [(dst, src, payload)])
            if dst in cum:
                cum[dst].setdefault(src, []).append(payload)
                if not done[dst]:
                    wake(dst, clock)

        self.logical_time = clock
        for pid, program in programs.items():
            if not done.get(pid):
                program.close()
        return outputs
