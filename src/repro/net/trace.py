"""Protocol execution tracing.

A :class:`Tracer` observes a protocol run and records, per round: which
players sent, message counts per tag prefix, and byte volumes.  Useful
for debugging protocol round structure and for the documentation's
round-by-round tables.

Attach a tracer through the runtime — ``SynchronousNetwork(tracer=...)``
or ``ProtocolContext(tracer=...)`` — rather than wrapping the network:
the runtime invokes it after the scheduler and fault plane have settled
each round's deliveries, so traces are produced identically under every
scheduler.  (The legacy ``observer=tracer.observe`` hook still works.)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, List, Tuple


def payload_tag(payload: Any) -> str:
    """A payload's trace tag.

    Conventional ``(tag, body)`` payloads are tagged by their string
    tag; dataclass payloads (e.g. structured adversary probes) by their
    class name; anything else by ``"?"``.
    """
    if isinstance(payload, tuple) and payload and isinstance(payload[0], str):
        return payload[0]
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        return type(payload).__name__
    return "?"


@dataclass
class RoundTrace:
    """What happened in one synchronous round."""

    number: int
    #: messages per (src, tag): count
    messages: Dict[Tuple[int, str], int] = dataclass_field(default_factory=dict)

    def record(self, src: int, payload: Any) -> None:
        key = (src, payload_tag(payload))
        self.messages[key] = self.messages.get(key, 0) + 1

    @property
    def total_messages(self) -> int:
        return sum(self.messages.values())

    def tags(self) -> List[str]:
        return sorted({tag for _, tag in self.messages})

    def senders(self) -> List[int]:
        return sorted({src for src, _ in self.messages})


class Tracer:
    """Collects per-round traces; attach via ``SynchronousNetwork(tracer=...)``."""

    def __init__(self) -> None:
        self.rounds: List[RoundTrace] = []

    def observe(self, round_number: int, deliveries) -> None:
        """Observer hook: called once per round with (dst, src, payload)."""
        trace = RoundTrace(round_number)
        for _dst, src, payload in deliveries:
            trace.record(src, payload)
        self.rounds.append(trace)

    # -- reporting -----------------------------------------------------------
    def phase_summary(self) -> List[Tuple[int, int, List[str]]]:
        """(round, message count, tags) per round — the protocol's shape."""
        return [(r.number, r.total_messages, r.tags()) for r in self.rounds]

    def timeline(self) -> str:
        """Human-readable round-by-round table."""
        lines = ["round | msgs | phases"]
        lines.append("------+------+-------")
        for r in self.rounds:
            tags = ", ".join(r.tags()) or "-"
            lines.append(f"{r.number:5d} | {r.total_messages:4d} | {tags}")
        return "\n".join(lines)

    def messages_by_tag(self) -> Dict[str, int]:
        """Total message counts aggregated by tag."""
        totals: Dict[str, int] = {}
        for r in self.rounds:
            for (_src, tag), count in r.messages.items():
                totals[tag] = totals.get(tag, 0) + count
        return totals
