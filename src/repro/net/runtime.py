"""Protocol runtimes: generator programs over transport + scheduler + faults.

The execution stack (see DESIGN.md, "Runtime architecture"):

* :mod:`repro.net.transport` — what channels exist and what a ``Send``
  costs (metering, codec enforcement);
* :mod:`repro.net.scheduler` — who steps when (rushing) and in what
  order deliveries land;
* :mod:`repro.net.faults` — an optional fault plane that drops,
  duplicates, or delays edges and crashes/silences players;
* this module — the machinery shared by both sibling runtimes
  (:class:`RuntimeBase`) and the synchronous round loop
  (:class:`ProtocolRuntime`).  The event-driven sibling lives in
  :mod:`repro.net.async_runtime`.

Players are Python generators.  Each step a player *yields* a list of
:class:`~repro.net.transport.Send` instructions (optionally wrapped in a
:class:`~repro.net.guards.Guarded` batch carrying a wake-up guard) and
is *sent* back an inbox — a dict mapping source player id to the list of
payloads received from that source.  A generator's ``return`` value is
the player's protocol output.  This shape makes honest protocol code
read like the paper's per-player pseudocode, and makes a Byzantine
player just a different generator.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Iterable, List, Optional, Tuple

from repro.fields.base import Field, OpCounter
from repro.net.faults import FaultPlane
from repro.net.guards import Guard, Guarded
from repro.net.metrics import NetworkMetrics
from repro.net.scheduler import LockstepScheduler, Scheduler
from repro.net.trace import payload_tag
from repro.net.transport import (
    ProtocolViolation,
    Send,
    Transport,
    expansion_channels,
    make_transport,
)
from repro.obs.bus import (
    FAULT,
    GUARD_ARMED,
    GUARD_FIRED,
    GUARD_PROGRESS,
    ROUND,
    RUN,
    SENT,
    EventBus,
)
from repro.obs.phases import classify_tags
from repro.obs.spans import NULL_RECORDER

Payload = Any
Inbox = Dict[int, List[Payload]]
Program = Generator[List[Send], Inbox, Any]

_ZERO_OPS = OpCounter()


class RuntimeExhausted(ProtocolViolation):
    """A run hit its scheduling limit with waited players still unfinished.

    Raised when the lockstep runtime exhausts ``max_rounds`` (or proves no
    further progress is possible: no runnable player, no in-flight or
    delayed traffic) and when the async runtime exhausts
    ``max_deliveries`` or drains its pending pool with guarded players
    still asleep.  ``stuck`` maps each unfinished waited player to the
    tags its current guard is waiting on (empty tuple for plain
    round-batched programs).  Subclasses :class:`ProtocolViolation` so
    existing ``max_rounds`` handling keeps working.
    """

    def __init__(
        self,
        message: str,
        stuck: Optional[Dict[int, Tuple[str, ...]]] = None,
    ) -> None:
        super().__init__(message)
        self.stuck: Dict[int, Tuple[str, ...]] = dict(stuck or {})


class RuntimeBase:
    """Machinery shared by the lockstep and async runtimes.

    Owns the layer wiring (transport, scheduler, fault plane, event
    bus), the program table bookkeeping (guard state, cumulative
    inboxes), per-player :class:`~repro.fields.base.OpCounter`
    attribution, and SENT/ROUND/FAULT publication plumbing.  Subclasses
    provide ``run()``: :class:`ProtocolRuntime` steps every program once
    per synchronous round; :class:`~repro.net.async_runtime.AsyncRuntime`
    wakes a program whenever a delivery satisfies its guard.

    Parameters
    ----------
    n:
        Number of players, with ids ``1..n``.
    field:
        Optional field whose operation counter is attributed per player
        (snapshots around each program step).
    metrics:
        Optional pre-existing metrics object to accumulate into.
    transport:
        The channel layer; defaults to a broadcast-capable transport
        over ``metrics``.
    scheduler:
        Stepping/delivery policy; defaults to :class:`LockstepScheduler`
        (the historical semantics, byte for byte).
    faults:
        Optional :class:`~repro.net.faults.FaultPlane` applied to every
        delivery and to the stepping loop.
    observer:
        Optional callable ``observer(round_number, deliveries)`` where
        deliveries is a list of (dst, src, payload).
    tracer:
        Optional :class:`~repro.net.trace.Tracer`; its ``observe`` hook
        is chained after ``observer``.  Attaching here (rather than
        wrapping the network) makes traces identical under every
        scheduler.
    recorder:
        Optional span recorder (:class:`repro.obs.spans.SpanRecorder`).
        Defaults to the no-op :data:`repro.obs.spans.NULL_RECORDER`, in
        which case all instrumentation is skipped (zero cost).
    bus:
        Optional :class:`repro.obs.bus.EventBus`.  One is created per
        runtime if not given.  ``observer`` and ``tracer`` are wired as
        subscribers of its ``"round"`` topic; the fault plane publishes
        ``"fault"`` events into it.
    """

    def __init__(
        self,
        n: int,
        field: Optional[Field] = None,
        metrics: Optional[NetworkMetrics] = None,
        transport: Optional[Transport] = None,
        scheduler: Optional[Scheduler] = None,
        faults: Optional[FaultPlane] = None,
        max_rounds: int = 100_000,
        observer=None,
        tracer=None,
        recorder=None,
        bus: Optional[EventBus] = None,
    ):
        if n < 1:
            raise ValueError("need at least one player")
        self.n = n
        self.field = field
        self.metrics = metrics or NetworkMetrics(
            element_bits=field.bit_length if field is not None else 1
        )
        self.transport = transport or make_transport(n, self.metrics)
        self.scheduler = scheduler or LockstepScheduler()
        self.faults = faults
        self.max_rounds = max_rounds
        self.observer = observer
        self.tracer = tracer
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.bus = bus if bus is not None else EventBus()
        if observer is not None:
            self.bus.subscribe(ROUND, observer)
        if tracer is not None:
            self.bus.subscribe(ROUND, tracer.observe)
        if self.recorder.enabled:
            self.bus.subscribe(FAULT, self.recorder.on_fault)
        if self.faults is not None:
            self.faults.bus = self.bus
        #: player-step spans of the in-flight round (phase backfilled)
        self._step_spans: List[Any] = []
        #: per-player guard state — see repro.net.guards.  ``_guard_mode``
        #: records the yield style fixed at a program's first yield (True
        #: = guarded / cumulative inboxes, False = plain round batches);
        #: ``_guards`` holds the guard of each guarded player's pending
        #: yield; ``_cum`` its cumulative inbox.
        self._guards: Dict[int, Optional[Guard]] = {}
        self._guard_mode: Dict[int, bool] = {}
        self._cum: Dict[int, Inbox] = {}

    # -- compatibility properties -------------------------------------------
    @property
    def rushing(self) -> frozenset:
        return self.scheduler.rushing

    @property
    def allow_broadcast(self) -> bool:
        return self.transport.broadcast_available

    @property
    def enforce_codec(self) -> bool:
        return self.transport.enforce_codec

    # -- helpers -------------------------------------------------------------
    def _reset_guard_state(self) -> None:
        self._guards = {}
        self._guard_mode = {}
        self._cum = {}

    def _expand(self, src: int, sends: List[Send]) -> List[tuple]:
        """Validate and expand a program's sends into (dst, payload).

        Kept as a method (delegating to the transport) so tests and
        adversarial harnesses can interpose on it.
        """
        return self.transport.expand(src, sends)

    def _advance(self, pid: int, program: Program, inbox: Optional[Inbox],
                 outputs: Dict[int, Any], done: Dict[int, bool],
                 round_no: int = 0):
        """Step one program; returns its sends (or None when finished).

        ``inbox=None`` primes a not-yet-started generator with ``next``.
        A :class:`~repro.net.guards.Guarded` yield is unwrapped here: the
        guard is parked in ``_guards[pid]`` and the plain sends returned.
        When a recorder is attached and this is a real round (not a
        rushing registration step), the step is recorded as a "player"
        span carrying the player's op-count delta.
        """
        if done.get(pid):
            return None
        recorder = self.recorder
        recording = recorder.enabled and round_no > 0
        t0 = recorder.clock() if recording else 0.0
        before = self.field.counter.snapshot() if self.field is not None else None
        try:
            if inbox is None:
                sends = next(program)
            else:
                sends = program.send(inbox)
        except StopIteration as stop:
            done[pid] = True
            outputs[pid] = stop.value
            sends = None
        finally:
            delta = None
            if before is not None:
                delta = self.field.counter.delta(before)
                self.metrics.add_player_ops(pid, delta)
            if recording:
                ops = delta if delta is not None else _ZERO_OPS
                span = recorder.record(
                    f"player {pid}", "player", t0, recorder.clock(),
                    player=pid, round=round_no,
                    adds=ops.adds, muls=ops.muls, invs=ops.invs,
                    interpolations=ops.interpolations,
                )
                self._step_spans.append(span)
        if isinstance(sends, Guarded):
            if self._guard_mode.get(pid) is False:
                raise ProtocolViolation(
                    f"player {pid} yielded a guarded batch after a plain "
                    "one; a program fixes its yield style at its first yield"
                )
            self._guard_mode[pid] = True
            self._guards[pid] = sends.wait
            sends = list(sends.sends)
        elif sends is not None:
            if self._guard_mode.get(pid):
                # plain yield inside a guarded program: wake on anything
                self._guards[pid] = None
            else:
                self._guard_mode.setdefault(pid, False)
        return sends

    def _collect(self, pid: int, program: Program, inbox, round_no: int,
                 outputs, done, deliveries: List[tuple],
                 emissions: Optional[List[tuple]] = None) -> int:
        """Step one player and append its (dst, src, payload) deliveries.

        Returns 1 when the program was actually advanced (not crashed),
        0 otherwise — the runtime's no-progress detection counts these.
        When ``emissions`` is a list (a causality recorder subscribed to
        the ``"sent"`` topic), each delivery is also appended there as
        ``(dst, src, payload, channel)`` — pre-fault, pre-scheduler
        provenance in exact expansion order.
        """
        faults = self.faults
        if faults is not None and faults.is_crashed(pid, round_no):
            faults.note_player_fault(round_no, "crash", pid)
            return 0
        sends = self._advance(pid, program, inbox, outputs, done, round_no)
        if sends:
            if faults is not None and faults.is_silenced(pid, round_no):
                faults.note_player_fault(round_no, "silence", pid)
                return 1
            expanded = self._expand(pid, sends)
            deliveries.extend(
                (dst, pid, payload) for dst, payload in expanded
            )
            if emissions is not None:
                channels = expansion_channels(self.n, sends)
                if len(channels) != len(expanded):
                    # a test double replaced _expand; fall back to unknown
                    channels = ["?"] * len(expanded)
                emissions.extend(
                    (dst, pid, payload, channel)
                    for (dst, payload), channel in zip(expanded, channels)
                )
        return 1

    def _exhausted(self, waited, done, reason: str) -> RuntimeExhausted:
        """Build the :class:`RuntimeExhausted` for an out-of-budget run,
        naming each stuck player and the tags its guard still awaits."""
        stuck: Dict[int, Tuple[str, ...]] = {}
        for pid in sorted(waited):
            if done.get(pid):
                continue
            guard = self._guards.get(pid)
            stuck[pid] = tuple(guard.tags) if guard is not None else ()
        detail = "; ".join(
            f"player {pid} awaiting {'/'.join(tags)}" if tags
            else f"player {pid}"
            for pid, tags in stuck.items()
        )
        message = f"protocol did not terminate: {reason}"
        if detail:
            message += f" (stuck: {detail})"
        return RuntimeExhausted(message, stuck=stuck)


class ProtocolRuntime(RuntimeBase):
    """Runs ``n`` player programs in synchronous rounds over the stack.

    The lockstep sibling: every program steps once per round and round
    ``r``'s deliveries become round ``r+1``'s inboxes.  Plain programs
    keep the historical byte-for-byte semantics; guarded programs (see
    :mod:`repro.net.guards`) receive cumulative inboxes and are stepped
    in the first round whose traffic satisfies their guard — trivially
    "at the round boundary", which is what lets one protocol body drive
    both this runtime and the async one.  Guards are ignored for rushing
    players (rushing is already the strongest synchronous scheduling).

    See :class:`RuntimeBase` for the constructor parameters.
    """

    # -- main loop -------------------------------------------------------------
    def run(
        self,
        programs: Dict[int, Program],
        wait_for: Optional[Iterable[int]] = None,
    ) -> Dict[int, Any]:
        """Run programs to completion; returns {player_id: output}.

        ``programs`` maps player ids to generators.  Missing ids are
        treated as crashed-from-the-start players (they send nothing).
        ``wait_for`` limits termination to a subset of players (the honest
        ones) so that never-terminating adversary generators cannot stall
        the simulation; the others are closed when the run ends.  Players
        with a scheduled fault-plane crash are never waited for.
        """
        for pid in programs:
            if not 1 <= pid <= self.n:
                raise ValueError(f"program for unknown player {pid}")
        waited = set(programs) if wait_for is None else set(wait_for) & set(programs)
        if self.faults is not None:
            waited -= self.faults.crashed_players()
        # run-boundary marker: flight recorders sharing a context bus use
        # it to delimit protocol runs (round numbers restart per run)
        self.bus.publish(RUN, self.n)
        self._reset_guard_state()
        outputs: Dict[int, Any] = {}
        done: Dict[int, bool] = {pid: False for pid in programs}
        inboxes: Dict[int, Inbox] = {pid: {} for pid in programs}
        started = False
        round_no = 0

        # Rushing programs are primed at registration: their first yield is
        # a registration step whose sends are discarded, so that every real
        # round — including the first — can hand them a peek at the
        # in-flight honest traffic before they commit to their messages.
        rushers = [p for p in programs if p in self.scheduler.rushing]
        ordinary = [p for p in programs if p not in self.scheduler.rushing]
        for pid in rushers:
            self._advance(pid, programs[pid], None, outputs, done)

        recorder = self.recorder
        recording = recorder.enabled
        # liveness telemetry: strictly opt-in (like the "sent" topic) so
        # unmonitored runs stay byte-identical; lockstep stamps events
        # with the round number as logical time
        bus = self.bus
        lv_armed = bus.has_subscribers(GUARD_ARMED)
        lv_progress = bus.has_subscribers(GUARD_PROGRESS)
        lv_fired = bus.has_subscribers(GUARD_FIRED)
        # phase of the deliveries currently sitting in the inboxes — the
        # work a round does is attributed to the phase it is *consuming*
        inbox_phase: Optional[str] = None

        for _ in range(self.max_rounds):
            if all(done[pid] for pid in waited):
                break
            self.metrics.rounds += 1
            round_no += 1
            if recording:
                round_span = recorder.begin(
                    f"round {round_no}", "round", round=round_no
                )
                snap_unicast = self.metrics.unicast_messages
                snap_broadcast = self.metrics.broadcast_messages
                snap_bits = self.metrics.bits
                self._step_spans = []
            deliveries: List[tuple] = []  # (dst, src, payload)
            # provenance capture is strictly opt-in: the list exists only
            # while a causality recorder subscribes to the "sent" topic
            capturing = self.bus.has_subscribers(SENT)
            emissions: Optional[List[tuple]] = [] if capturing else None
            stepped = 0

            for pid in ordinary:
                if started and self._guard_mode.get(pid):
                    if done[pid]:
                        continue
                    guard = self._guards.get(pid)
                    cum = self._cum.get(pid, {})
                    if guard is not None and not guard.satisfied(cum):
                        continue  # still asleep this round
                    if lv_fired and guard is not None:
                        bus.publish(GUARD_FIRED, round_no, pid, guard,
                                    guard.matched_senders(cum))
                    inbox: Optional[Inbox] = {
                        src: list(msgs) for src, msgs in cum.items()
                    }
                else:
                    inbox = None if not started else inboxes[pid]
                advanced = self._collect(
                    pid, programs[pid], inbox,
                    round_no, outputs, done, deliveries, emissions,
                )
                stepped += advanced
                if lv_armed and advanced and not done[pid]:
                    armed = self._guards.get(pid)
                    if armed is not None and self._guard_mode.get(pid):
                        bus.publish(GUARD_ARMED, round_no, pid, armed)

            # rushing players peek at this round's traffic addressed to them
            for pid in rushers:
                if self.faults is not None and self.faults.is_crashed(
                    pid, round_no
                ):
                    continue
                peek: Inbox = {}
                for dst, src, payload in deliveries:
                    if dst == pid:
                        peek.setdefault(src, []).append(payload)
                inbox = dict(inboxes[pid])
                inbox["rush_peek"] = peek  # type: ignore[index]
                stepped += self._collect(
                    pid, programs[pid], inbox, round_no, outputs, done,
                    deliveries, emissions,
                )

            if capturing:
                # pre-fault emissions: the causality layer needs the true
                # origin round even when the fault plane delays delivery
                self.bus.publish(SENT, self.metrics.rounds, emissions)

            if recording:
                # tag tallies are taken pre-fault: they count what honest
                # code paid to send, matching the metrics accounting
                tag_counts: Dict[str, int] = {}
                for _dst, _src, payload in deliveries:
                    tag = payload_tag(payload)
                    tag_counts[tag] = tag_counts.get(tag, 0) + 1

            if self.faults is not None:
                deliveries = self.faults.apply(round_no, deliveries)
            deliveries = self.scheduler.arrange(round_no, deliveries)

            self.bus.publish(ROUND, self.metrics.rounds, deliveries)

            if recording:
                phase = (
                    inbox_phase if inbox_phase is not None
                    else classify_tags(tag_counts)
                )
                for step_span in self._step_spans:
                    step_span.set(phase=phase)
                recorder.end(
                    round_span,
                    phase=phase,
                    messages=(
                        self.metrics.unicast_messages - snap_unicast
                        + self.metrics.broadcast_messages - snap_broadcast
                    ),
                    unicast=self.metrics.unicast_messages - snap_unicast,
                    broadcast=self.metrics.broadcast_messages - snap_broadcast,
                    bits=self.metrics.bits - snap_bits,
                    tags=tag_counts,
                )
                if tag_counts:
                    inbox_phase = classify_tags(tag_counts)

            if (
                not deliveries
                and stepped == 0
                and not (
                    self.faults is not None
                    and self.faults.has_pending_delayed()
                )
            ):
                # nobody ran, nothing is in flight, nothing is delayed:
                # the remaining guards can never fire, so fail fast
                # instead of spinning to max_rounds
                raise self._exhausted(
                    waited, done,
                    f"no runnable player and no in-flight traffic at "
                    f"round {round_no}",
                )

            started = True
            inboxes = {pid: {} for pid in programs}
            for dst, src, payload in deliveries:
                if dst in inboxes:
                    inboxes[dst].setdefault(src, []).append(payload)
                    if self._guard_mode.get(dst):
                        self._cum.setdefault(dst, {}).setdefault(
                            src, []
                        ).append(payload)
                        if lv_progress and not done.get(dst, True):
                            guard = self._guards.get(dst)
                            if (
                                guard is not None
                                and payload_tag(payload) in guard.tags
                            ):
                                count, quorum = guard.progress(
                                    self._cum[dst]
                                )
                                bus.publish(GUARD_PROGRESS, round_no,
                                            dst, src, count, quorum)
        else:
            raise self._exhausted(
                waited, done, f"exceeded max_rounds={self.max_rounds}"
            )
        for pid, program in programs.items():
            if not done.get(pid):
                program.close()
        return outputs
