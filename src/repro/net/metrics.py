"""Metering of communication and computation.

The paper states costs in three units: messages, bits (message size in
multiples of the security parameter ``k``), and field additions /
interpolations per player.  This module tallies all of them.

Bit accounting
--------------
A payload's size is ``k`` bits per field element it carries.  Payloads are
arbitrary nested tuples/lists/dicts; every ``int`` inside counts as one
field element (protocol tags are strings and count as free O(1) headers,
matching the paper's convention of measuring only the k-sized data).
This is exact for the int-element fields (GF(2^k), Z_p) that every metered
benchmark uses.

Broadcast accounting follows the paper: one use of the (assumed) broadcast
channel is one message of its size (Lemma 2 counts a round where every
player broadcasts as "n messages each of size k").  Physical unicast
fan-out is tallied separately so both accountings are available.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict

from repro.fields.base import OpCounter


def payload_field_elements(payload: Any) -> int:
    """Number of field elements (ints) carried by a payload.

    An explicit-stack walk rather than recursion: payload accounting
    runs once per simulated message, which profiling showed dominated
    coin_gen wall-clock, so the common shapes — ints, strings, and flat
    tuples of ints (share vectors) — are dispatched on exact types
    before the general traversal.
    """
    total = 0
    stack = [payload]
    while stack:
        item = stack.pop()
        tp = type(item)
        if tp is int:
            total += 1
        elif tp is tuple or tp is list:
            for sub in item:
                sub_tp = type(sub)
                if sub_tp is int:
                    total += 1
                elif sub_tp is not str:
                    stack.append(sub)
        elif tp is str or tp is bytes or item is None:
            pass
        elif tp is bool or isinstance(item, bool):
            pass
        elif isinstance(item, int):
            total += 1
        elif isinstance(item, (str, bytes)):
            pass
        elif isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif isinstance(item, (tuple, list, set, frozenset)):
            stack.extend(item)
        elif dataclasses.is_dataclass(item) and not isinstance(item, type):
            # explicit field walk: ``__slots__`` dataclasses have no
            # ``__dict__``, so the vars() fallback below would count them
            # as empty and under-report bits
            stack.extend(
                getattr(item, f.name) for f in dataclasses.fields(item)
            )
        elif hasattr(item, "__dict__"):
            stack.append(vars(item))
    return total


@dataclass
class NetworkMetrics:
    """Tallies for one protocol execution."""

    #: bits per field element (the security parameter k)
    element_bits: int = 1
    rounds: int = 0
    #: point-to-point messages (a multicast to n players counts n)
    unicast_messages: int = 0
    #: uses of the ideal broadcast channel (each counts once, per the paper)
    broadcast_messages: int = 0
    #: total bits under the paper's accounting
    bits: int = 0
    #: per-player field-operation counters (player id -> OpCounter)
    player_ops: Dict[int, OpCounter] = dataclass_field(default_factory=dict)

    def record_unicast(self, payload: Any) -> None:
        self.unicast_messages += 1
        self.bits += self.element_bits * payload_field_elements(payload)

    def record_unicast_elements(self, elements: int, copies: int = 1) -> None:
        """Record ``copies`` unicasts of a payload already measured at
        ``elements`` field elements — multicast fan-out sizes the payload
        once instead of re-walking it per recipient."""
        self.unicast_messages += copies
        self.bits += self.element_bits * elements * copies

    def record_broadcast(self, payload: Any) -> None:
        self.broadcast_messages += 1
        self.bits += self.element_bits * payload_field_elements(payload)

    def add_player_ops(self, player_id: int, delta: OpCounter) -> None:
        current = self.player_ops.setdefault(player_id, OpCounter())
        current.adds += delta.adds
        current.muls += delta.muls
        current.invs += delta.invs
        current.interpolations += delta.interpolations

    # -- summaries -----------------------------------------------------------
    @property
    def paper_messages(self) -> int:
        """Messages under the paper's accounting (broadcast = 1 message)."""
        return self.unicast_messages + self.broadcast_messages

    def ops(self, player_id: int) -> OpCounter:
        """Operation counter for one player (zeros if it never computed)."""
        return self.player_ops.get(player_id, OpCounter())

    def max_player_ops(self) -> OpCounter:
        """The busiest player's counter — the paper's "per player" cost.

        Ordered by total work across *all* op kinds: a player whose load
        is dominated by inversions or interpolations (each worth many
        additions, see :meth:`OpCounter.total_additions`) must not be
        reported as idle just because its add/mul tally is smaller.
        """
        best = OpCounter()
        for counter in self.player_ops.values():
            if (
                counter.adds + counter.muls
                + counter.invs + counter.interpolations
                >= best.adds + best.muls + best.invs + best.interpolations
            ):
                best = counter
        return best

    def total_ops(self) -> OpCounter:
        total = OpCounter()
        for counter in self.player_ops.values():
            total = total + counter
        return total

    def merged_from(self, other: "NetworkMetrics") -> None:
        """Accumulate another run's tallies into this one."""
        self.rounds += other.rounds
        self.unicast_messages += other.unicast_messages
        self.broadcast_messages += other.broadcast_messages
        self.bits += other.bits
        for pid, counter in other.player_ops.items():
            self.add_player_ops(pid, counter)

    def summary(self) -> Dict[str, int]:
        busiest = self.max_player_ops()
        return {
            "rounds": self.rounds,
            "messages": self.paper_messages,
            "unicast_messages": self.unicast_messages,
            "broadcast_messages": self.broadcast_messages,
            "bits": self.bits,
            "max_player_adds": busiest.adds,
            "max_player_muls": busiest.muls,
            "max_player_interpolations": busiest.interpolations,
        }
