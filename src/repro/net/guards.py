"""Guard-annotated yields: one protocol body, two runtimes.

The lockstep runtime hands every program a fresh inbox at every round
boundary; the async runtime delivers one message at a time and must know
*when a player has enough to act*.  A :class:`Wait` guard makes that
condition explicit protocol state instead of implicit round structure::

    inbox = yield guarded([multicast((tag + "/echo", v))],
                          tags=(tag + "/echo",), quorum=n - t)

reads "send my echo, then sleep until n-t distinct players have echoed".

Semantics shared by both runtimes
---------------------------------
* A program picks its yield style at its **first** yield: a
  :class:`Guarded` batch makes it a *guarded program*, a plain list of
  sends keeps the historical round-batched contract.  Mixing styles
  mid-program raises :class:`~repro.net.transport.ProtocolViolation`
  (a later plain yield inside a guarded program is allowed and means
  "wake me on anything new").
* A guarded program receives **cumulative** inboxes — every payload
  delivered to it since the run began, in ``{src: [payloads]}`` form —
  so a woken body re-derives its state idempotently from full history.
* The lockstep runtime satisfies guards trivially at round boundaries:
  a guarded player steps in the first round whose cumulative inbox
  satisfies its guard, which for quorum guards over honest traffic is
  the round after the quorum's messages were sent.  The async runtime
  re-checks the guard after every single delivery.  One body, two
  schedules, identical outputs (see ``tests/test_async_runtime.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.net.trace import payload_tag
from repro.net.transport import Send

Inbox = Dict[Any, List[Any]]


@dataclass(frozen=True)
class Wait:
    """Sleep until ``quorum`` distinct senders have sent a matching tag.

    A sender counts once when at least one of its pending payloads has a
    :func:`~repro.net.trace.payload_tag` in ``tags`` — matching the
    ``filter_tag`` convention protocol bodies use to read the inbox, so
    "the guard fired" implies "the body will see the quorum".
    """

    tags: Tuple[str, ...]
    quorum: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "tags", tuple(self.tags))
        if not self.tags:
            raise ValueError("a Wait needs at least one tag")
        if self.quorum < 0:
            raise ValueError("quorum must be non-negative")

    def satisfied(self, inbox: Inbox) -> bool:
        if self.quorum == 0:
            return True
        senders = 0
        for src, payloads in inbox.items():
            if not isinstance(src, int):
                continue  # e.g. the lockstep simulator's rush_peek entry
            if any(payload_tag(payload) in self.tags for payload in payloads):
                senders += 1
                if senders >= self.quorum:
                    return True
        return False

    def matched_senders(self, inbox: Inbox) -> Tuple[int, ...]:
        """Sorted distinct int senders with at least one matching payload."""
        senders = []
        for src, payloads in inbox.items():
            if not isinstance(src, int):
                continue
            if any(payload_tag(payload) in self.tags for payload in payloads):
                senders.append(src)
        return tuple(sorted(senders))

    def progress(self, inbox: Inbox) -> Tuple[int, int]:
        """``(count, quorum)``: distinct matching senders so far vs. needed."""
        return len(self.matched_senders(inbox)), self.quorum

    def missing_senders(self, inbox: Inbox, n: int) -> Tuple[int, ...]:
        """Players ``1..n`` that have not yet sent a matching payload."""
        matched = set(self.matched_senders(inbox))
        return tuple(pid for pid in range(1, n + 1) if pid not in matched)


@dataclass(frozen=True)
class AnyWait:
    """Disjunction of :class:`Wait` guards: wake when any one fires."""

    waits: Tuple[Wait, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "waits", tuple(self.waits))
        if not self.waits:
            raise ValueError("an AnyWait needs at least one Wait")

    @property
    def tags(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for wait in self.waits:
            for tag in wait.tags:
                if tag not in seen:
                    seen.append(tag)
        return tuple(seen)

    def satisfied(self, inbox: Inbox) -> bool:
        return any(wait.satisfied(inbox) for wait in self.waits)

    def _closest(self, inbox: Inbox) -> Wait:
        """The branch nearest to firing (fewest senders still needed)."""
        return max(
            self.waits,
            key=lambda wait: wait.progress(inbox)[0] - wait.quorum,
        )

    def matched_senders(self, inbox: Inbox) -> Tuple[int, ...]:
        """Matched senders of the branch nearest to firing."""
        return self._closest(inbox).matched_senders(inbox)

    def progress(self, inbox: Inbox) -> Tuple[int, int]:
        """``(count, quorum)`` of the branch nearest to firing."""
        return self._closest(inbox).progress(inbox)

    def missing_senders(self, inbox: Inbox, n: int) -> Tuple[int, ...]:
        """Missing senders of the branch nearest to firing."""
        return self._closest(inbox).missing_senders(inbox, n)


Guard = Union[Wait, AnyWait]


def wait_any(*waits: Wait) -> AnyWait:
    """OR-combine guards: ``yield guarded(sends, wait=wait_any(a, b))``."""
    return AnyWait(tuple(waits))


@dataclass(frozen=True)
class Guarded:
    """One guarded yield: emit ``sends``, then sleep until ``wait`` fires.

    ``wait=None`` means "wake me on any new delivery" (async) / "step me
    next round" (lockstep).
    """

    sends: Tuple[Send, ...]
    wait: Optional[Guard] = None


def guarded(
    sends: Iterable[Send],
    tags: Union[str, Iterable[str]] = (),
    quorum: int = 1,
    wait: Optional[Guard] = None,
) -> Guarded:
    """Build a :class:`Guarded` yield from sends plus a tag quorum.

    Either pass ``tags`` (a tag or tuple of tags) and ``quorum``, or a
    ready-made ``wait`` guard; with neither, the program wakes on any
    new delivery.
    """
    if wait is None:
        tag_tuple = (tags,) if isinstance(tags, str) else tuple(tags)
        if tag_tuple:
            wait = Wait(tag_tuple, quorum)
    return Guarded(tuple(sends), wait)
