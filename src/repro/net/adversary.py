"""Byzantine adversary framework.

The paper's adversary controls up to ``t`` players that "deviate
arbitrarily from the protocol, and even collude" (Section 2), and — for
the proactive setting of Section 1.2 — may *move* between protocol
executions ("intruders are allowed to move over time").

An :class:`Adversary` owns the corrupt set (possibly a schedule of sets),
a shared blackboard for collusion, and a program factory per corrupt
player.  Generic behaviours that apply to any protocol are provided here;
protocol-specific attacks (e.g. a cheating VSS dealer) live with their
protocols and in the test suite.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Sequence

from repro.net.simulator import ALL, Send

Program = Generator[List[Send], Dict[int, List[Any]], Any]
ProgramFactory = Callable[..., Program]


# ---------------------------------------------------------------------------
# generic faulty behaviours
# ---------------------------------------------------------------------------

def silent_program() -> Program:
    """A player that never sends anything (fail-silent forever)."""
    while True:
        yield []


def crash_program(crash_round: int, honest: Program) -> Program:
    """Follow ``honest`` behaviour, then crash at ``crash_round`` (1-based)."""
    rounds = 0
    inbox: Dict[int, List[Any]] = None  # type: ignore[assignment]
    try:
        sends = next(honest)
    except StopIteration:
        return
    while True:
        rounds += 1
        if rounds >= crash_round:
            while True:
                yield []
        inbox = yield sends
        try:
            sends = honest.send(inbox)
        except StopIteration:
            return


def echo_noise_program(n: int, rng: random.Random, noise_space: int = 1 << 16) -> Program:
    """Replays every received (tag, body) with random garbage bodies.

    Because honest sub-protocols filter inboxes by tag, this exercises the
    "arbitrary messages" part of the fault model without knowing any
    protocol's structure.
    """
    inbox: Dict[int, List[Any]] = yield []
    while True:
        sends: List[Send] = []
        seen_tags = []
        for payloads in inbox.values():
            for payload in payloads:
                if isinstance(payload, tuple) and len(payload) == 2:
                    seen_tags.append(payload[0])
        for tag in seen_tags[:4]:
            for dst in range(1, n + 1):
                sends.append(Send(dst, (tag, rng.randrange(noise_space))))
        inbox = yield sends


def equivocator_program(n: int, rng: random.Random, base: Program) -> Program:
    """Runs ``base`` but replaces each multicast with per-player garbage.

    Demonstrates equivocation: sending different values to different
    players where the protocol expects identical copies.
    """
    try:
        sends = next(base)
    except StopIteration:
        return
    while True:
        twisted: List[Send] = []
        for send in sends:
            if send.dst == ALL and not send.broadcast and isinstance(send.payload, tuple):
                tag, body = send.payload[0], send.payload[1:]
                for dst in range(1, n + 1):
                    mutated = (tag, rng.randrange(1 << 16)) if rng.random() < 0.5 \
                        else send.payload
                    twisted.append(Send(dst, mutated))
            else:
                twisted.append(send)
        inbox = yield twisted
        try:
            sends = base.send(inbox)
        except StopIteration:
            return


# ---------------------------------------------------------------------------
# the adversary object
# ---------------------------------------------------------------------------

class Adversary:
    """Owns the corrupt set and builds faulty programs.

    Parameters
    ----------
    corrupt:
        Player ids under adversarial control for the next execution.
    behaviour:
        ``"silent"``, ``"crash"``, ``"noise"``, or a custom factory
        ``f(player_id, n, blackboard, rng) -> Program``.
    rushing:
        Whether corrupt players should be registered as rushing with the
        simulator (they then see each round's incoming honest traffic
        before sending).
    seed:
        Seed for the adversary's own randomness.
    """

    def __init__(
        self,
        corrupt: Iterable[int],
        behaviour: Any = "silent",
        rushing: bool = False,
        seed: int = 0,
    ):
        self.corrupt = frozenset(corrupt)
        self.behaviour = behaviour
        self.rushing = rushing
        self.rng = random.Random(seed)
        #: shared mutable state for collusion between corrupt programs
        self.blackboard: Dict[str, Any] = {}

    def program(self, player_id: int, n: int) -> Optional[Program]:
        """Build the faulty program for one corrupt player."""
        if player_id not in self.corrupt:
            raise ValueError(f"player {player_id} is not corrupt")
        if callable(self.behaviour):
            return self.behaviour(player_id, n, self.blackboard, self.rng)
        if self.behaviour == "silent":
            return silent_program()
        if self.behaviour == "noise":
            return echo_noise_program(n, self.rng)
        raise ValueError(f"unknown behaviour {self.behaviour!r}")

    def programs(self, n: int) -> Dict[int, Program]:
        """Faulty programs for every corrupt player."""
        return {pid: self.program(pid, n) for pid in self.corrupt}


class MobileAdversary:
    """A proactive-security adversary whose corrupt set moves over time.

    Section 1.2: "one of the motivations and applications of our work is
    pro-active security ..., which deals with settings where intruders are
    allowed to move over time."  The corrupt set is fixed within one
    protocol execution (the paper assumes it fixed "for a constant number
    of rounds") and re-drawn between executions.
    """

    def __init__(self, n: int, t: int, behaviour: Any = "silent", seed: int = 0):
        self.n = n
        self.t = t
        self.behaviour = behaviour
        self.rng = random.Random(seed)
        self.history: List[frozenset] = []

    def next_epoch(self) -> Adversary:
        """Corrupt a fresh random subset of at most t players."""
        corrupt = frozenset(self.rng.sample(range(1, self.n + 1), self.t))
        self.history.append(corrupt)
        return Adversary(corrupt, self.behaviour, seed=self.rng.randrange(1 << 30))
