"""Binary wire codec for protocol payloads (substrate S31).

The simulator passes Python objects between player generators; a real
deployment would serialize them.  This codec pins down that wire format —
a compact, self-describing TLV encoding of the payload vocabulary the
protocols use (strings for tags, ints for field elements and ids, nested
tuples, None for absences) — and doubles as ground truth for the byte
sizes the metrics layer estimates.

Format (big-endian):

=========  ==============================================
type byte  encoding
=========  ==============================================
``N``      None
``T``      bool True        ``F``  bool False
``i``      varint-length + unsigned big-endian int
``j``      like ``i`` but negative (absolute value stored)
``s``      varint-length + UTF-8 bytes
``(``      varint count + that many encoded items (tuple)
=========  ==============================================

Varints are LEB128 (7 bits per byte, high bit = continuation).
"""

from __future__ import annotations

from typing import Any, Tuple


class CodecError(Exception):
    """Malformed wire data or unsupported payload type."""


def _write_varint(value: int, out: bytearray) -> None:
    if value < 0:
        raise CodecError("varint must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise CodecError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 10 * 7:
            raise CodecError("varint too long")


def _encode_into(payload: Any, out: bytearray) -> None:
    if payload is None:
        out.append(ord("N"))
    elif payload is True:
        out.append(ord("T"))
    elif payload is False:
        out.append(ord("F"))
    elif isinstance(payload, int):
        magnitude = abs(payload)
        raw = magnitude.to_bytes((magnitude.bit_length() + 7) // 8 or 1, "big")
        out.append(ord("i") if payload >= 0 else ord("j"))
        _write_varint(len(raw), out)
        out.extend(raw)
    elif isinstance(payload, str):
        raw = payload.encode("utf-8")
        out.append(ord("s"))
        _write_varint(len(raw), out)
        out.extend(raw)
    elif isinstance(payload, tuple):
        out.append(ord("("))
        _write_varint(len(payload), out)
        for item in payload:
            _encode_into(item, out)
    else:
        raise CodecError(
            f"unsupported payload type {type(payload).__name__}; the wire "
            f"vocabulary is None/bool/int/str/tuple"
        )


def encode(payload: Any) -> bytes:
    """Serialize a protocol payload to bytes."""
    out = bytearray()
    _encode_into(payload, out)
    return bytes(out)


def _decode_from(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise CodecError("truncated payload")
    kind = data[offset]
    offset += 1
    if kind == ord("N"):
        return None, offset
    if kind == ord("T"):
        return True, offset
    if kind == ord("F"):
        return False, offset
    if kind in (ord("i"), ord("j")):
        length, offset = _read_varint(data, offset)
        if offset + length > len(data):
            raise CodecError("truncated int")
        value = int.from_bytes(data[offset : offset + length], "big")
        offset += length
        return (value if kind == ord("i") else -value), offset
    if kind == ord("s"):
        length, offset = _read_varint(data, offset)
        if offset + length > len(data):
            raise CodecError("truncated string")
        try:
            text = data[offset : offset + length].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError("invalid UTF-8") from exc
        return text, offset + length
    if kind == ord("("):
        count, offset = _read_varint(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return tuple(items), offset
    raise CodecError(f"unknown type byte {kind:#x}")


def decode(data: bytes) -> Any:
    """Deserialize wire bytes back into a payload."""
    payload, offset = _decode_from(data, 0)
    if offset != len(data):
        raise CodecError(f"{len(data) - offset} trailing bytes")
    return payload


def encoded_size(payload: Any) -> int:
    """Exact wire size in bytes (the metrics layer's k-bit accounting is
    the paper's model; this is the engineering ground truth)."""
    return len(encode(payload))
