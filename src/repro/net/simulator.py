"""Lock-step synchronous network simulator (compatibility facade).

Historically this module held the whole execution engine; it is now a
thin facade over the layered runtime:

* :mod:`repro.net.transport` — channel primitives (:class:`Send`,
  :func:`unicast`, :func:`multicast`, :func:`broadcast`) and metered
  message expansion;
* :mod:`repro.net.scheduler` — stepping/delivery policy (lock-step,
  permuted delivery, rushing);
* :mod:`repro.net.faults` — optional fault injection;
* :mod:`repro.net.runtime` — the synchronous round loop.

:class:`SynchronousNetwork` keeps its historical constructor and
behaviour byte for byte (its default scheduler is the
:class:`~repro.net.scheduler.LockstepScheduler`), while accepting the
new ``scheduler``, ``faults``, and ``tracer`` layers as keyword
arguments.  See DESIGN.md, "Runtime architecture".

Fault model (paper Section 2):

* private channels — a player sees only payloads addressed to it;
* up to ``t`` arbitrarily faulty players — faulty programs may send
  different values to different players (equivocation) and go silent;
* optional *rushing* — a player registered as rushing receives, each
  round, the current round's honest traffic addressed to it *before*
  choosing its own messages (the strongest scheduling the synchronous
  model permits).  A rushing program's first ``yield`` is a registration
  step whose sends are discarded; every subsequent yield receives the
  usual inbox plus a ``"rush_peek"`` entry holding the in-flight traffic;
* an optional ideal broadcast channel (``Send(..., broadcast=True)``)
  which delivers one identical copy to every player — the Section 3
  protocols assume it, the Section 4 protocols never use it.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterable, Optional

from repro.fields.base import Field
from repro.net.faults import FaultPlane
from repro.net.metrics import NetworkMetrics
from repro.net.runtime import Inbox, Payload, Program, ProtocolRuntime
from repro.net.scheduler import LockstepScheduler, Scheduler
from repro.net.transport import (  # noqa: F401  (re-exported wire primitives)
    ALL,
    ProtocolViolation,
    Send,
    broadcast,
    make_transport,
    multicast,
    unicast,
)

__all__ = [
    "ALL",
    "Send",
    "unicast",
    "multicast",
    "broadcast",
    "ProtocolViolation",
    "Payload",
    "Inbox",
    "Program",
    "SynchronousNetwork",
    "run_protocol",
]


class SynchronousNetwork(ProtocolRuntime):
    """Runs ``n`` player programs in lock-step rounds.

    Parameters
    ----------
    n:
        Number of players, with ids ``1..n``.
    field:
        Optional field whose operation counter is attributed per player
        (snapshots around each program step).
    metrics:
        Optional pre-existing metrics object to accumulate into.
    rushing:
        Player ids that receive the current round's traffic addressed to
        them before emitting their own messages (merged into the
        scheduler's rushing set).
    allow_broadcast:
        Whether the ideal broadcast channel exists.  The Section 4 coin
        generation protocols set this to False, enforcing the paper's
        point-to-point-only model.
    scheduler:
        Delivery/stepping policy; default :class:`LockstepScheduler`
        reproduces the historical semantics exactly.
    faults:
        Optional :class:`~repro.net.faults.FaultPlane`.
    observer, tracer:
        Per-round delivery callbacks (see :class:`ProtocolRuntime`).
    enforce_codec:
        When set, every payload is round-tripped through the binary wire
        codec (net.codec): unencodable payloads raise, and the metrics
        object accumulates the exact wire byte count in ``wire_bytes``.
    """

    def __init__(
        self,
        n: int,
        field: Optional[Field] = None,
        metrics: Optional[NetworkMetrics] = None,
        rushing: Iterable[int] = (),
        allow_broadcast: bool = True,
        max_rounds: int = 100_000,
        observer=None,
        enforce_codec: bool = False,
        scheduler: Optional[Scheduler] = None,
        faults: Optional[FaultPlane] = None,
        tracer=None,
        recorder=None,
        bus=None,
    ):
        metrics = metrics or NetworkMetrics(
            element_bits=field.bit_length if field is not None else 1
        )
        if scheduler is None:
            scheduler = LockstepScheduler(rushing=rushing)
        elif rushing:
            # widen the rushing set on a per-network copy, so a scheduler
            # shared across runs (e.g. via ProtocolContext) is not mutated
            scheduler = copy.copy(scheduler)
            scheduler.rushing = scheduler.rushing | frozenset(rushing)
        super().__init__(
            n,
            field=field,
            metrics=metrics,
            transport=make_transport(
                n, metrics,
                allow_broadcast=allow_broadcast,
                enforce_codec=enforce_codec,
            ),
            scheduler=scheduler,
            faults=faults,
            max_rounds=max_rounds,
            observer=observer,
            tracer=tracer,
            recorder=recorder,
            bus=bus,
        )


def run_protocol(
    n: int,
    honest_factory: Callable[[int], Program],
    faulty: Optional[Dict[int, Program]] = None,
    **network_kwargs: Any,
) -> tuple:
    """Convenience: honest programs everywhere except ``faulty`` overrides.

    Returns ``(outputs, metrics)``.  ``faulty`` may map a player id to
    ``None`` for a crashed-from-the-start player.
    """
    faulty = faulty or {}
    network = SynchronousNetwork(n, **network_kwargs)
    programs: Dict[int, Program] = {}
    for pid in range(1, n + 1):
        if pid in faulty:
            if faulty[pid] is not None:
                programs[pid] = faulty[pid]
        else:
            programs[pid] = honest_factory(pid)
    outputs = network.run(programs)
    return outputs, network.metrics
