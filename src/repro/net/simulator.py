"""Lock-step synchronous network simulator.

Players are Python generators.  Each round a player *yields* a list of
:class:`Send` instructions and is *sent* back its inbox for that round — a
dict mapping source player id to the list of payloads received from that
source.  A generator's ``return`` value is the player's protocol output.

This shape makes honest protocol code read like the paper's per-player
pseudocode, and makes a Byzantine player just a different generator.

Fault model (paper Section 2):

* private channels — a player sees only payloads addressed to it;
* up to ``t`` arbitrarily faulty players — faulty programs may send
  different values to different players (equivocation) and go silent;
* optional *rushing* — a player registered as rushing receives, each
  round, the current round's honest traffic addressed to it *before*
  choosing its own messages (the strongest scheduling the synchronous
  model permits).  A rushing program's first ``yield`` is a registration
  step whose sends are discarded; every subsequent yield receives the
  usual inbox plus a ``"rush_peek"`` entry holding the in-flight traffic;
* an optional ideal broadcast channel (``Send(..., broadcast=True)``)
  which delivers one identical copy to every player — the Section 3
  protocols assume it, the Section 4 protocols never use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

from repro.fields.base import Field
from repro.net.metrics import NetworkMetrics

#: destination sentinel: deliver to every player (n unicasts)
ALL = 0

Payload = Any
Inbox = Dict[int, List[Payload]]
Program = Generator[List["Send"], Inbox, Any]


@dataclass(frozen=True)
class Send:
    """One outgoing message: ``dst`` is a player id (1-based) or :data:`ALL`."""

    dst: int
    payload: Payload
    broadcast: bool = False


def unicast(dst: int, payload: Payload) -> Send:
    """Point-to-point message over a private channel."""
    return Send(dst, payload)


def multicast(payload: Payload) -> Send:
    """The same payload to every player as n point-to-point messages.

    This is the Section 4 substitute for broadcast: "every time a player
    needs to announce a message, (s)he can only distribute it to each of
    the other players individually."
    """
    return Send(ALL, payload)


def broadcast(payload: Payload) -> Send:
    """One use of the ideal broadcast channel (Section 3 model only)."""
    return Send(ALL, payload, broadcast=True)


class ProtocolViolation(Exception):
    """A program mis-used the simulator (honest-code bug, not a fault)."""


class SynchronousNetwork:
    """Runs ``n`` player programs in lock-step rounds.

    Parameters
    ----------
    n:
        Number of players, with ids ``1..n``.
    field:
        Optional field whose operation counter is attributed per player
        (snapshots around each program step).
    metrics:
        Optional pre-existing metrics object to accumulate into.
    rushing:
        Player ids that receive the current round's traffic addressed to
        them before emitting their own messages.
    allow_broadcast:
        Whether the ideal broadcast channel exists.  The Section 4 coin
        generation protocols set this to False, enforcing the paper's
        point-to-point-only model.
    """

    def __init__(
        self,
        n: int,
        field: Optional[Field] = None,
        metrics: Optional[NetworkMetrics] = None,
        rushing: Iterable[int] = (),
        allow_broadcast: bool = True,
        max_rounds: int = 100_000,
        observer=None,
        enforce_codec: bool = False,
    ):
        if n < 1:
            raise ValueError("need at least one player")
        self.n = n
        self.field = field
        self.metrics = metrics or NetworkMetrics(
            element_bits=field.bit_length if field is not None else 1
        )
        self.rushing = frozenset(rushing)
        self.allow_broadcast = allow_broadcast
        self.max_rounds = max_rounds
        #: optional callable ``observer(round_number, deliveries)`` where
        #: deliveries is a list of (dst, src, payload) — see net.trace.Tracer
        self.observer = observer
        #: when set, every payload is round-tripped through the binary wire
        #: codec (net.codec): unencodable payloads raise, and the metrics
        #: object accumulates the exact wire byte count in ``wire_bytes``
        self.enforce_codec = enforce_codec
        if enforce_codec and not hasattr(self.metrics, "wire_bytes"):
            self.metrics.wire_bytes = 0  # type: ignore[attr-defined]

    # -- helpers -------------------------------------------------------------
    def _expand(self, src: int, sends: List[Send]) -> List[tuple]:
        """Validate and expand a program's sends into (dst, payload, bc)."""
        deliveries = []
        for send in sends or []:
            if not isinstance(send, Send):
                raise ProtocolViolation(
                    f"player {src} yielded {type(send).__name__}, expected Send"
                )
            if self.enforce_codec:
                from repro.net import codec

                wire = codec.encode(send.payload)
                # one transmission per receiver for point-to-point fan-out;
                # the ideal broadcast channel is one transmission
                copies = (
                    self.n if (send.dst == ALL and not send.broadcast) else 1
                )
                self.metrics.wire_bytes += copies * len(wire)  # type: ignore[attr-defined]
                send = Send(send.dst, codec.decode(wire), send.broadcast)
            if send.broadcast:
                if not self.allow_broadcast:
                    raise ProtocolViolation(
                        "broadcast channel not available in this model"
                    )
                if send.dst != ALL:
                    raise ProtocolViolation("broadcast must be addressed to ALL")
                self.metrics.record_broadcast(send.payload)
                deliveries.extend(
                    (dst, send.payload) for dst in range(1, self.n + 1)
                )
            elif send.dst == ALL:
                for dst in range(1, self.n + 1):
                    self.metrics.record_unicast(send.payload)
                    deliveries.append((dst, send.payload))
            else:
                if not 1 <= send.dst <= self.n:
                    raise ProtocolViolation(f"bad destination {send.dst}")
                self.metrics.record_unicast(send.payload)
                deliveries.append((send.dst, send.payload))
        return deliveries

    def _advance(self, pid: int, program: Program, inbox: Optional[Inbox],
                 outputs: Dict[int, Any], done: Dict[int, bool]):
        """Step one program; returns its sends (or None when finished).

        ``inbox=None`` primes a not-yet-started generator with ``next``.
        """
        if done.get(pid):
            return None
        before = self.field.counter.snapshot() if self.field is not None else None
        try:
            if inbox is None:
                sends = next(program)
            else:
                sends = program.send(inbox)
        except StopIteration as stop:
            done[pid] = True
            outputs[pid] = stop.value
            sends = None
        finally:
            if before is not None:
                delta = self.field.counter.delta(before)
                self.metrics.add_player_ops(pid, delta)
        return sends

    # -- main loop -------------------------------------------------------------
    def run(
        self,
        programs: Dict[int, Program],
        wait_for: Optional[Iterable[int]] = None,
    ) -> Dict[int, Any]:
        """Run programs to completion; returns {player_id: output}.

        ``programs`` maps player ids to generators.  Missing ids are
        treated as crashed-from-the-start players (they send nothing).
        ``wait_for`` limits termination to a subset of players (the honest
        ones) so that never-terminating adversary generators cannot stall
        the simulation; the others are closed when the run ends.
        """
        for pid in programs:
            if not 1 <= pid <= self.n:
                raise ValueError(f"program for unknown player {pid}")
        waited = set(programs) if wait_for is None else set(wait_for) & set(programs)
        outputs: Dict[int, Any] = {}
        done: Dict[int, bool] = {pid: False for pid in programs}
        inboxes: Dict[int, Inbox] = {pid: {} for pid in programs}
        started = False

        # Rushing programs are primed at registration: their first yield is
        # a registration step whose sends are discarded, so that every real
        # round — including the first — can hand them a peek at the
        # in-flight honest traffic before they commit to their messages.
        rushers = [p for p in programs if p in self.rushing]
        ordinary = [p for p in programs if p not in self.rushing]
        for pid in rushers:
            self._advance(pid, programs[pid], None, outputs, done)

        for _ in range(self.max_rounds):
            if all(done[pid] for pid in waited):
                break
            self.metrics.rounds += 1
            deliveries: List[tuple] = []  # (dst, src, payload)

            for pid in ordinary:
                sends = self._advance(
                    pid, programs[pid], None if not started else inboxes[pid],
                    outputs, done,
                )
                if sends:
                    deliveries.extend(
                        (dst, pid, payload)
                        for dst, payload in self._expand(pid, sends)
                    )

            # rushing players peek at this round's traffic addressed to them
            for pid in rushers:
                peek: Inbox = {}
                for dst, src, payload in deliveries:
                    if dst == pid:
                        peek.setdefault(src, []).append(payload)
                inbox = dict(inboxes[pid])
                inbox["rush_peek"] = peek  # type: ignore[index]
                sends = self._advance(pid, programs[pid], inbox, outputs, done)
                if sends:
                    deliveries.extend(
                        (dst, pid, payload)
                        for dst, payload in self._expand(pid, sends)
                    )

            if self.observer is not None:
                self.observer(self.metrics.rounds, deliveries)
            started = True
            inboxes = {pid: {} for pid in programs}
            for dst, src, payload in deliveries:
                if dst in inboxes:
                    inboxes[dst].setdefault(src, []).append(payload)
        else:
            raise ProtocolViolation(
                f"protocol did not terminate within {self.max_rounds} rounds"
            )
        for pid, program in programs.items():
            if not done.get(pid):
                program.close()
        return outputs


def run_protocol(
    n: int,
    honest_factory: Callable[[int], Program],
    faulty: Optional[Dict[int, Program]] = None,
    **network_kwargs: Any,
) -> tuple:
    """Convenience: honest programs everywhere except ``faulty`` overrides.

    Returns ``(outputs, metrics)``.  ``faulty`` may map a player id to
    ``None`` for a crashed-from-the-start player.
    """
    faulty = faulty or {}
    network = SynchronousNetwork(n, **network_kwargs)
    programs: Dict[int, Program] = {}
    for pid in range(1, n + 1):
        if pid in faulty:
            if faulty[pid] is not None:
                programs[pid] = faulty[pid]
        else:
            programs[pid] = honest_factory(pid)
    outputs = network.run(programs)
    return outputs, network.metrics
