"""Scheduler layer: who steps when, and in what order messages land.

The middle layer of the protocol runtime (see DESIGN.md, "Runtime
architecture").  A scheduler owns two policies that the lock-step
simulator used to hard-code:

* **rushing** — which players see the current round's in-flight honest
  traffic addressed to them *before* committing to their own messages
  (the strongest scheduling the synchronous model permits).  Previously
  a ``rush_peek`` special case of the network; now plain scheduler
  configuration.
* **delivery arrangement** — the order in which a round's deliveries are
  folded into next-round inboxes.  Honest protocol code must not depend
  on it (messages within a round are concurrent); the
  :class:`PermutedDeliveryScheduler` exists to *prove* that, by feeding
  every run a seeded random arrival order.  The scheduler-equivalence
  property suite (``tests/test_scheduler_equivalence.py``) asserts that
  honest outputs and Lemma 2/4/6 op counts are identical under any
  arrangement.

Writing a new scheduler = subclassing :class:`Scheduler` and overriding
:meth:`Scheduler.arrange` (and, for adversarial schedules, ``rushing``).
The synchronous-round barrier itself lives in the runtime; a scheduler
cannot leak a message across the round boundary — use the fault plane's
``delay`` rules for that.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Tuple

from repro.net.transport import Payload

#: a routed delivery as the runtime tracks it: (dst, src, payload)
RoutedDelivery = Tuple[int, int, Payload]


class Scheduler:
    """Base scheduler: lock-step semantics, no rushing.

    Parameters
    ----------
    rushing:
        Player ids that receive the current round's traffic addressed to
        them before emitting their own messages.
    """

    def __init__(self, rushing: Iterable[int] = ()):
        self.rushing = frozenset(rushing)

    def arrange(
        self, round_no: int, deliveries: List[RoutedDelivery]
    ) -> List[RoutedDelivery]:
        """Order a round's deliveries before inbox assembly.

        The default preserves emission order (player id order, sends in
        yield order) — byte-for-byte the historical lock-step behaviour.
        """
        return deliveries

    def choose(self, time: int, count: int) -> int:
        """Async delivery pick: index of the next message to deliver.

        Called by :class:`~repro.net.async_runtime.AsyncRuntime` with
        the current logical time and the number of eligible pending
        messages; the returned index is which of them lands next.  The
        default is FIFO (oldest eligible message first), making every
        synchronous scheduler a valid — if boring — async schedule.
        """
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rush = f", rushing={sorted(self.rushing)}" if self.rushing else ""
        return f"{type(self).__name__}({rush.lstrip(', ')})"


class LockstepScheduler(Scheduler):
    """The historical semantics: deliveries land in emission order.

    ``SynchronousNetwork`` without a ``scheduler`` argument uses exactly
    this scheduler, so existing runs are reproduced byte for byte.
    """


class PermutedDeliveryScheduler(Scheduler):
    """Seeded random per-round delivery order.

    Each round's deliveries are shuffled by a :class:`random.Random`
    seeded from ``(seed, round)``, independently of the protocol's own
    randomness.  Honest synchronous protocols must be insensitive to
    this (all round-r messages are concurrent); any divergence from
    :class:`LockstepScheduler` outputs is a protocol bug.
    """

    def __init__(self, seed: int = 0, rushing: Iterable[int] = ()):
        super().__init__(rushing)
        self.seed = seed

    def arrange(
        self, round_no: int, deliveries: List[RoutedDelivery]
    ) -> List[RoutedDelivery]:
        arranged = list(deliveries)
        random.Random((self.seed * 1_000_003 + round_no) & 0x7FFFFFFF).shuffle(
            arranged
        )
        return arranged


class RandomOrderScheduler(Scheduler):
    """Seeded adversary-chooseable delivery order (the async adversary).

    Under :class:`~repro.net.async_runtime.AsyncRuntime`, every
    :meth:`choose` picks uniformly among the eligible in-flight
    messages — i.e. the full space of eventual-delivery schedules,
    reproducible from one seed (in the style of the SVSS simulation's
    ``RandomOrderSimulator``).  Both ``choose`` and ``arrange`` derive
    their generator *statelessly* from ``(seed, time)``, so a schedule
    never depends on how many picks other runs consumed.

    On the lockstep runtime the same scheduler degrades to a seeded
    per-round shuffle (a different stream than
    :class:`PermutedDeliveryScheduler`), which is what lets the
    scheduler-equivalence property suite run one protocol under all
    three schedulers unchanged.
    """

    def __init__(self, seed: int = 0, rushing: Iterable[int] = ()):
        super().__init__(rushing)
        self.seed = seed

    def _rng(self, time: int) -> random.Random:
        return random.Random(
            (self.seed * 2_000_003 + time * 7_919) & 0x7FFFFFFF
        )

    def choose(self, time: int, count: int) -> int:
        return self._rng(time).randrange(count) if count > 1 else 0

    def arrange(
        self, round_no: int, deliveries: List[RoutedDelivery]
    ) -> List[RoutedDelivery]:
        arranged = list(deliveries)
        self._rng(round_no).shuffle(arranged)
        return arranged
