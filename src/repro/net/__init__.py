"""Synchronous-network substrate (the paper's model, Section 2).

"We consider a synchronous network of n players P_1,...,P_n ... which
communicate by sending messages.  We assume that private channels are
available between the players.  Of the n players, a subset of size at most
t of them is assumed to be able to deviate arbitrarily from the protocol,
and even collude."

:class:`~repro.net.simulator.SynchronousNetwork` provides lock-step rounds
over private point-to-point channels plus an optional ideal broadcast
channel (assumed by the Section 3 protocols, dropped in Section 4).
Message, bit, and per-player field-operation metering reproduce the
quantities the paper's lemmas count.
"""

from repro.net.simulator import (
    ALL,
    Send,
    SynchronousNetwork,
    broadcast,
    multicast,
    unicast,
)
from repro.net.transport import (
    BroadcastTransport,
    PrivateChannelTransport,
    ProtocolViolation,
    Transport,
    make_transport,
)
from repro.net.scheduler import (
    LockstepScheduler,
    PermutedDeliveryScheduler,
    RandomOrderScheduler,
    Scheduler,
)
from repro.net.faults import FaultPlane
from repro.net.guards import AnyWait, Guarded, Wait, guarded, wait_any
from repro.net.runtime import ProtocolRuntime, RuntimeBase, RuntimeExhausted
from repro.net.async_runtime import AsyncRuntime
from repro.net.trace import Tracer
from repro.net.metrics import NetworkMetrics, payload_field_elements
from repro.net.adversary import (
    Adversary,
    crash_program,
    echo_noise_program,
    silent_program,
)

__all__ = [
    "ALL",
    "Send",
    "SynchronousNetwork",
    "broadcast",
    "multicast",
    "unicast",
    "Transport",
    "BroadcastTransport",
    "PrivateChannelTransport",
    "make_transport",
    "ProtocolViolation",
    "Scheduler",
    "LockstepScheduler",
    "PermutedDeliveryScheduler",
    "RandomOrderScheduler",
    "FaultPlane",
    "Wait",
    "AnyWait",
    "Guarded",
    "guarded",
    "wait_any",
    "RuntimeBase",
    "ProtocolRuntime",
    "AsyncRuntime",
    "RuntimeExhausted",
    "Tracer",
    "NetworkMetrics",
    "payload_field_elements",
    "Adversary",
    "silent_program",
    "crash_program",
    "echo_noise_program",
]
