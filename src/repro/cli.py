"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``toss``      generate shared coin bits or k-ary coins from a bootstrapped
              source and print them;
``costs``     print the paper's cost formulas evaluated at given parameters
              (the lemma-by-lemma cheat sheet);
``vss``       run Protocol VSS once, honest or cheating, and report the
              unanimous verdict plus measured costs;
``beacon``    run a randomness beacon for a number of ticks;
``trace``     run one instrumented Coin-Gen, print the per-phase breakdown
              and the lemma-conformance audit;
``metrics``   run one instrumented Coin-Gen and print the Prometheus text
              exposition;
``replay``    re-drive a recorded flight log's decode paths offline, or
              diff two logs (``--diff``) for the first divergence, or
              rebuild the happens-before DAG (``--causal``);
``forensics`` analyze a flight log for Byzantine behaviour and print the
              per-player accusation report;
``health``    run a living coin source under the health monitor and gate
              the exit code on operational thresholds;
``critpath``  run one instrumented Coin-Gen, capture its happens-before
              DAG, and print per-run critical paths, per-phase latency
              attribution, and per-coin exposure latencies under a cost
              model; ``--what-if player=I,scale=S`` re-prices the graph
              with a straggler, ``--export`` writes the JSON analysis,
              ``--chrome`` writes a Perfetto trace with causal flow
              arrows, ``--assert-depth`` gates the exit code on the DAG
              depth matching the ``analysis.rounds`` prediction;
``waits``     run async coin exposures under the liveness observatory:
              per-guard quorum-latency table (armed/fired logical times,
              pivotal sender), in-flight pool gauges, the stall
              watchdog's crash-vs-withholding classification
              (``--watchdog TICKS`` gates the exit code on zero stalls),
              and ``--audit`` the liveness conformance audit;
``campaign``  sweep the joint scenario space (adversary × faults ×
              scheduler × runtime) under the composed violation oracle:
              ``run`` executes a space or ``--budget`` sampled slice
              with coverage/triage reports and optional ``--shrink``
              repro artifacts, ``report`` re-reads a campaign ledger,
              ``shrink`` minimizes a recorded violation, ``replay``
              re-runs a repro artifact and verifies it still trips.

Exit codes
----------
Every gate-bearing subcommand follows one convention:

* ``0`` — clean: the command ran and every requested gate passed;
* ``1`` — gate tripped: the run worked but a check failed (audit
  deviation, unanimity break, stall, regression, campaign violation,
  coverage below ``--min-coverage``, artifact no longer reproducing);
* ``2`` — usage or incompatible input: bad flag syntax, an unreadable /
  unrecognized input file, or options that cannot be combined.
  (argparse's own errors exit 2 as well.)

``toss``, ``trace``, and ``critpath`` accept ``--runtime lockstep|async``:
under ``async`` each coin is exposed on an event-driven
:class:`~repro.net.async_runtime.AsyncRuntime` where an adversarial
(seed-deterministic) scheduler delivers one message at a time — sweep
``--sched-seed`` to explore delivery orders, ``--crash PLAYERS`` to
crash players from the start.  ``trace --runtime async --audit`` gates
on unanimity plus live-vs-offline causal-graph equality; ``critpath
--runtime async`` prices the async happens-before DAG (logical time =
delivery count).

``toss``, ``trace``, and ``metrics`` accept ``--export chrome|jsonl|prom``
(+ ``--export-out PATH``) to write the recorded spans as a Chrome
trace-event JSON (open with Perfetto), newline-delimited JSON, or a
Prometheus exposition; the default export path derives from the
subcommand name (``toss.json``, ``trace.jsonl``, ``metrics.prom``, ...),
so concurrent exports from different commands never collide.  ``toss``
and ``trace`` also accept ``--flight-log PATH`` to record the delivered
message stream for later ``replay``/``forensics``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import complexity as cx
from repro.core import BootstrapCoinSource
from repro.fields import GF2k
from repro.net import PermutedDeliveryScheduler, RandomOrderScheduler
from repro.obs import SpanRecorder, to_chrome_trace, to_jsonl, to_prometheus
from repro.protocols.context import ProtocolContext
from repro.protocols.vss import run_vss


def _usage_error(message: str) -> "SystemExit":
    """Exit 2 (usage / incompatible input), per the CLI convention.

    ``raise SystemExit(str)`` would exit 1 — the *gate tripped* code —
    which misfiles bad flags as failed checks; every usage-error site
    funnels through here instead.
    """
    print(message, file=sys.stderr)
    return SystemExit(2)


def _load_flight_log(path: str):
    """A flight log off disk, or exit 2 when unreadable/unparseable."""
    from repro.obs.flight import FlightLog

    try:
        return FlightLog.load(path)
    except OSError as exc:
        raise _usage_error(f"{path}: cannot read flight log ({exc})")
    except ValueError as exc:
        raise _usage_error(f"{path}: not a flight log ({exc})")


def _add_system_arguments(parser: argparse.ArgumentParser, default_n: int = 7,
                          default_t: int = 1) -> None:
    parser.add_argument("--n", type=int, default=default_n, help="players")
    parser.add_argument("--t", type=int, default=default_t, help="faults tolerated")
    parser.add_argument("--k", type=int, default=32, help="security parameter (field GF(2^k))")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--scheduler",
                        choices=("lockstep", "permuted", "random"),
                        default="lockstep",
                        help="message delivery policy (permuted = seeded "
                             "random within-round arrival order, random = "
                             "seeded adversarial order, one message at a "
                             "time under --runtime async)")
    parser.add_argument("--sched-seed", type=int, default=0,
                        help="seed for the permuted/random scheduler "
                             "(sweep it to explore delivery orders)")
    parser.add_argument("--runtime", choices=("lockstep", "async"),
                        default="lockstep",
                        help="execution model: synchronous rounds, or "
                             "event-driven message-at-a-time delivery "
                             "(logical time = delivery count)")
    parser.add_argument("--crash", default=None, metavar="PLAYERS",
                        help="comma-separated player ids crashed from the "
                             "start (async runtime only)")
    parser.add_argument("--backend", choices=("auto", "python", "numpy"),
                        default="auto",
                        help="field bulk-kernel backend (auto = numpy when "
                             "installed, else pure python)")


def _add_export_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--export", choices=("chrome", "jsonl", "prom"),
                        default=None,
                        help="write recorded spans: Chrome trace-event JSON "
                             "(Perfetto), JSONL, or Prometheus text")
    parser.add_argument("--export-out", default=None, metavar="PATH",
                        help="export file (defaults to <command>.json / "
                             "<command>.jsonl / <command>.prom)")


def _add_flight_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--flight-log", default=None, metavar="PATH",
                        help="record the delivered message stream to a "
                             "flight log (see 'repro replay'/'forensics')")


#: file extension per export format; the default export path is
#: ``<subcommand>.<ext>`` so e.g. ``toss`` and ``trace`` never clobber
#: each other's exports when run from the same directory
_EXPORT_EXTENSIONS = {"chrome": "json", "jsonl": "jsonl", "prom": "prom"}


def _run_manifest(args: argparse.Namespace, ctx: ProtocolContext,
                  protocol: Optional[str] = None):
    """The :class:`~repro.obs.manifest.RunManifest` these flags describe."""
    from repro.obs.manifest import RunManifest

    return RunManifest.capture(
        field=ctx.field,
        protocol=protocol or getattr(args, "command", None),
        n=ctx.n, t=ctx.t,
        M=getattr(args, "M", None),
        seed=getattr(args, "seed", None),
        sched_seed=getattr(args, "sched_seed", None),
        scheduler=getattr(args, "scheduler", None),
        runtime=getattr(args, "runtime", None),
    )


def _attach_profiler(args: argparse.Namespace, ctx: ProtocolContext):
    """A round-sampled profiler when ``--profile`` was given.

    Ensures a live :class:`SpanRecorder` (the profiler samples its open
    stack) and subscribes to the unconditionally-published ``round``
    topic, so profiled runs stay byte-identical to unprofiled ones.
    """
    if not getattr(args, "profile", False):
        return None
    from repro.obs.profile import SamplingProfiler

    if not ctx.recorder.enabled:
        ctx.recorder = SpanRecorder()
    return SamplingProfiler(ctx.recorder).attach_rounds(ctx.ensure_bus())


def _make_context(args: argparse.Namespace) -> ProtocolContext:
    """The ProtocolContext the chosen CLI flags describe.

    Attaches a live :class:`SpanRecorder` when the command was invoked
    with ``--export`` (observability stays zero-cost otherwise).
    """
    scheduler = None
    if args.scheduler == "permuted":
        scheduler = PermutedDeliveryScheduler(seed=args.sched_seed)
    elif args.scheduler == "random":
        scheduler = RandomOrderScheduler(seed=args.sched_seed)
    recorder = (
        SpanRecorder() if getattr(args, "export", None) is not None
        else None
    )
    kwargs = {"recorder": recorder} if recorder is not None else {}
    field = GF2k(args.k, backend=getattr(args, "backend", "auto"))
    return ProtocolContext.create(
        field, args.n, args.t, seed=args.seed, scheduler=scheduler,
        **kwargs,
    )


def _write_export(args: argparse.Namespace, ctx: ProtocolContext,
                  health=None, graph=None) -> None:
    """Write the recorder's spans in the format ``--export`` selected.

    ``graph`` (a captured :class:`~repro.obs.causality.CausalGraph`)
    adds causal flow arrows to Chrome exports.
    """
    if getattr(args, "export", None) is None:
        return
    recorder = ctx.recorder
    manifest = _run_manifest(args, ctx)
    if args.export == "chrome":
        content = to_chrome_trace(recorder, graph=graph, manifest=manifest)
    elif args.export == "jsonl":
        content = to_jsonl(recorder, manifest=manifest)
    else:
        content = to_prometheus(metrics=ctx.metrics, recorder=recorder,
                                health=health)
    out = args.export_out or (
        f"{args.command}.{_EXPORT_EXTENSIONS[args.export]}"
    )
    with open(out, "w") as handle:
        handle.write(content)
    print(f"wrote {args.export} export to {out}", file=sys.stderr)


def _attach_flight_recorder(args: argparse.Namespace, ctx: ProtocolContext):
    """A FlightRecorder on the context bus when ``--flight-log`` was given."""
    if getattr(args, "flight_log", None) is None:
        return None
    from repro.obs.flight import FlightRecorder

    recorder = FlightRecorder(n=ctx.n, t=ctx.t, field=ctx.field,
                              seed=ctx.seed,
                              manifest=_run_manifest(args, ctx).to_dict())
    return recorder.attach(ctx.ensure_bus())


def _write_flight_log(args: argparse.Namespace, flight) -> None:
    if flight is None:
        return
    flight.dump(args.flight_log)
    log = flight.log()
    print(f"wrote flight log to {args.flight_log} "
          f"({len(log.rounds)} rounds, {len(log.faults)} faults)",
          file=sys.stderr)


def _crashed_players(args: argparse.Namespace) -> set:
    """The ``--crash`` flag parsed into a set of player ids."""
    spec = getattr(args, "crash", None)
    if spec is None or not spec.strip():
        return set()
    return {int(pid) for pid in spec.split(",")}


def _run_async_coins(args: argparse.Namespace, ctx, count: int):
    """Run ``count`` independent async coin exposures under ``ctx``.

    Coin ``i`` runs under ``RandomOrderScheduler(sched_seed + i)`` — so
    sweeping ``--sched-seed`` sweeps whole families of adversarial
    delivery orders — unless a non-default ``--scheduler`` asked for a
    specific policy.  Returns ``(values, runtimes, breaks)`` where
    ``breaks`` lists ``(coin_index, distinct_values)`` unanimity
    violations (which ≤ t crashes can never cause).
    """
    from repro.protocols.async_coin import run_async_coin

    crashed = _crashed_players(args)
    values, runtimes, breaks = [], [], []
    for index in range(count):
        scheduler = (
            ctx.scheduler if args.scheduler != "lockstep"
            else RandomOrderScheduler(seed=args.sched_seed + index)
        )
        outputs, _, runtime = run_async_coin(
            ctx, coin_id=f"async-{index}", scheduler=scheduler,
            crashed=crashed,
        )
        distinct = {ctx.field.to_int(v) for v in outputs.values()}
        if len(distinct) != 1:
            breaks.append((index, sorted(distinct)))
        values.append(next(iter(outputs.values())))
        runtimes.append(runtime)
    return values, runtimes, breaks


def _cmd_toss_async(args: argparse.Namespace) -> int:
    """``toss --runtime async``: one event-driven exposure per coin."""
    from repro.protocols.async_coin import async_coin_bit

    ctx = _make_context(args)
    flight = _attach_flight_recorder(args, ctx)
    profiler = _attach_profiler(args, ctx)
    watchdog = None
    if getattr(args, "watchdog", None) is not None:
        from repro.obs import StallWatchdog

        watchdog = StallWatchdog(
            ctx.n, threshold=args.watchdog
        ).attach(ctx.ensure_bus())
    root = ctx.recorder.begin("toss", "root")
    values, runtimes, breaks = _run_async_coins(args, ctx, args.count)
    ctx.recorder.end(root)
    for index, distinct in breaks:
        print(f"UNANIMITY BREAK: coin {index} exposed {len(distinct)} "
              f"distinct values {distinct}", file=sys.stderr)
    if breaks:
        return 1
    if args.elements:
        width = (args.k + 3) // 4
        lines = [f"0x{ctx.field.to_int(v):0{width}x}" for v in values]
    else:
        bits = [async_coin_bit(v, ctx.field) for v in values]
        lines = [
            "".join(map(str, bits[start : start + 64]))
            for start in range(0, len(bits), 64)
        ]
    for line in lines:
        print(line)
    if args.stats:
        crashed = _crashed_players(args)
        deliveries = sum(r.delivery_count for r in runtimes)
        makespan = sum(r.logical_time for r in runtimes)
        print()
        print(f"{'coins exposed':42s} {len(values)}")
        print(f"{'crashed players':42s} "
              f"{','.join(map(str, sorted(crashed))) or 'none'}")
        print(f"{'total deliveries':42s} {deliveries:,}")
        print(f"{'logical-time makespan (sum)':42s} {makespan:,}")
        print(f"{'mean logical time per coin':42s} "
              f"{makespan / max(len(values), 1):,.1f}")
    if profiler is not None:
        print()
        print(profiler.table())
    _write_export(args, ctx)
    _write_flight_log(args, flight)
    if watchdog is not None and watchdog.stalls:
        print(f"STALL: {len(watchdog.stalls)} guard(s) waited past "
              f"{watchdog.threshold} logical ticks "
              f"({len(watchdog.crash_induced())} crash-induced, "
              f"{len(watchdog.unexplained())} unexplained)", file=sys.stderr)
        print(watchdog.table(), file=sys.stderr)
        return 1
    return 0


def _cmd_toss(args: argparse.Namespace) -> int:
    if args.runtime == "async":
        return _cmd_toss_async(args)
    ctx = _make_context(args)
    flight = _attach_flight_recorder(args, ctx)
    profiler = _attach_profiler(args, ctx)
    root = ctx.recorder.begin("toss", "root")
    source = BootstrapCoinSource(context=ctx, batch_size=args.batch)
    if args.elements:
        width = (args.k + 3) // 4
        lines = [
            f"0x{source.system.field.to_int(source.toss_element()):0{width}x}"
            for _ in range(args.count)
        ]
    else:
        bits = source.tosses(args.count)
        lines = [
            "".join(map(str, bits[start : start + 64]))
            for start in range(0, len(bits), 64)
        ]
    ctx.recorder.end(root)
    for line in lines:
        print(line)
    if args.stats:
        print()
        for key, value in source.amortized_cost_summary().items():
            print(f"{key:42s} {value:,.2f}" if isinstance(value, float)
                  else f"{key:42s} {value}")
    if profiler is not None:
        print()
        print(profiler.table())
    _write_export(args, ctx)
    _write_flight_log(args, flight)
    return 0


def _cmd_costs(args: argparse.Namespace) -> int:
    n, t, k, M = args.n, args.t, args.k, args.M
    vss = cx.vss_single(n, k)
    batch = cx.batch_vss(n, k, M)
    bitgen = cx.bit_gen(n, t, k, M)
    print(f"paper cost formulas at n={n}, t={t}, k={k}, M={M}\n")
    print(f"Lemma 2  (VSS)      : {vss.additions:,.0f} additions, "
          f"{vss.interpolations:.0f} interpolations, {vss.messages:.0f} "
          f"messages, {vss.bits:,.0f} bits")
    print(f"Lemma 4  (Batch-VSS): {batch.additions:,.0f} additions, "
          f"{batch.interpolations:.0f} interpolations, {batch.bits:,.0f} bits "
          f"({cx.batch_vss_amortized_additions(k):,.0f} additions/secret)")
    print(f"Lemma 6  (Bit-Gen)  : {bitgen.additions:,.0f} additions, "
          f"{bitgen.bits:,.0f} bits "
          f"({cx.bit_gen_amortized_per_bit(n, k):,.1f} additions/bit)")
    print(f"Thm 2    (Coin-Gen) : {cx.coin_gen_additions(n, k, M):,.0f} "
          f"additions total, {cx.coin_gen_bits(n, t, k, M):,.0f} bits, "
          f"{cx.coin_gen_interpolations_per_player(n)} interpolations/player")
    print(f"Cor 3    (amortized): {cx.coin_gen_amortized_bits_per_bit(n, k, M):,.1f} "
          f"bits/coin-bit, {cx.coin_gen_amortized_ops_per_bit(n, k):,.1f} ops/coin-bit")
    print(f"Lemma 8  (liveness) : {cx.coin_gen_expected_iterations(n, t):.2f} "
          f"expected BA iterations")
    print(f"soundness           : VSS 1/p={cx.vss_soundness_bound(2**k):.2e}, "
          f"batch M/p={cx.batch_vss_soundness_bound(M, 2**k):.2e}, "
          f"unanimity {cx.coin_unanimity_error(M, n, k):.2e}")
    return 0


def _cmd_vss(args: argparse.Namespace) -> int:
    cheat = {args.cheat_player: 0xBAD} if args.cheat else None
    results, metrics = run_vss(_make_context(args), cheat_shares=cheat)
    verdicts = {r.accepted for r in results.values()}
    if len(verdicts) != 1:
        print("ERROR: players disagree", file=sys.stderr)
        return 1
    verdict = verdicts.pop()
    print(f"VSS over GF(2^{args.k}), n={args.n}, t={args.t}, "
          f"dealer {'CHEATING' if args.cheat else 'honest'}")
    print(f"unanimous verdict : {'ACCEPT' if verdict else 'REJECT'}")
    summary = metrics.summary()
    print(f"rounds            : {summary['rounds']}")
    print(f"messages          : {summary['messages']} (paper accounting)")
    print(f"bits              : {summary['bits']}")
    print(f"interpolations    : {summary['max_player_interpolations']} per player")
    return 0


def _cmd_beacon(args: argparse.Namespace) -> int:
    source = BootstrapCoinSource(
        context=_make_context(args), batch_size=args.batch, low_watermark=2
    )
    width = (args.k + 3) // 4
    for tick in range(1, args.ticks + 1):
        value = source.system.field.to_int(source.toss_element())
        print(f"tick {tick:4d}  0x{value:0{width}x}")
    return 0


def _run_instrumented_coin_gen(args: argparse.Namespace, causal: bool = False):
    """One Coin-Gen + batch exposure under a live recorder.

    ``causal`` additionally attaches a
    :class:`~repro.obs.causality.CausalRecorder` (which turns on the
    runtime's pre-fault provenance stream) and returns it third.
    """
    from repro.protocols.coin_gen import run_coin_gen, expose_coin

    ctx = _make_context(args)
    if not ctx.recorder.enabled:
        # trace/metrics are pointless without a recorder: attach one even
        # when no --export was requested (the terminal report needs it)
        ctx.recorder = SpanRecorder()
    causal_recorder = None
    if causal:
        from repro.obs.causality import CausalRecorder

        causal_recorder = CausalRecorder(n=ctx.n).attach(ctx.ensure_bus())
    flight = _attach_flight_recorder(args, ctx)
    outputs, _ = run_coin_gen(ctx, M=args.M, seed=args.seed)
    if all(o.success for o in outputs.values()):
        expose_coin(ctx, outputs=outputs, h=0)
    _write_flight_log(args, flight)
    return ctx, outputs, causal_recorder


def _cmd_trace_async(args: argparse.Namespace) -> int:
    """``trace --runtime async``: logical-time summary + async audit.

    The audit (gated by ``--audit``) checks what lockstep lemma
    conformance cannot cover asynchronously: every coin unanimous, and
    the live happens-before graph canonically equal to its offline
    reconstruction from the delivered-message stream.
    """
    from repro.obs.causality import CausalRecorder, graph_from_log
    from repro.obs.flight import FlightRecorder

    ctx = _make_context(args)
    if not ctx.recorder.enabled:
        ctx.recorder = SpanRecorder()
    causal = CausalRecorder(n=ctx.n).attach(ctx.ensure_bus())
    # always keep an in-memory flight recorder: live-vs-offline causal
    # equality is part of the audit even without --flight-log
    flight = FlightRecorder(n=ctx.n, t=ctx.t, field=ctx.field,
                            seed=ctx.seed).attach(ctx.ensure_bus())
    values, runtimes, breaks = _run_async_coins(args, ctx, args.M)

    print(f"async trace: n={ctx.n}, t={ctx.t}, k={args.k}, "
          f"coins={args.M}, sched-seed={args.sched_seed}")
    crashed = _crashed_players(args)
    if crashed:
        print(f"crashed players: {','.join(map(str, sorted(crashed)))}")
    print()
    graph = causal.graph()
    print(f"{'coin':<6} {'deliveries':>10} {'logical time':>13} "
          f"{'causal depth':>13}")
    print("-" * 45)
    for index, runtime in enumerate(runtimes):
        print(f"{index:<6} {runtime.delivery_count:>10} "
              f"{runtime.logical_time:>13} {graph.depth(index + 1):>13}")

    offline = graph_from_log(flight.log())
    unanimous = not breaks
    graphs_equal = graph == offline
    print()
    print(f"unanimity          : {'OK' if unanimous else 'BROKEN'} "
          f"({args.M - len(breaks)}/{args.M} coins)")
    for index, distinct in breaks:
        print(f"  coin {index}: {len(distinct)} distinct values "
              f"{distinct}")
    print(f"live == offline DAG: {'OK' if graphs_equal else 'DIVERGED'} "
          f"({len(graph.edges)} edges)")

    if args.flight_log is not None:
        _write_flight_log(args, flight)
    _write_export(args, ctx)
    if args.audit and not (unanimous and graphs_equal):
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.audit import audit_recorder, audit_rounds

    if args.runtime == "async":
        return _cmd_trace_async(args)
    ctx, outputs, _ = _run_instrumented_coin_gen(args)
    recorder = ctx.recorder

    print(f"Coin-Gen trace: n={ctx.n}, t={ctx.t}, k={args.k}, M={args.M}")
    print()
    print(f"{'phase':<12} {'rounds':>6} {'messages':>9} {'bits':>9} "
          f"{'wall ms':>9}")
    print("-" * 50)
    for span in recorder.phase_spans():
        print(f"{span.attrs['phase']:<12} {span.attrs['rounds']:>6} "
              f"{span.attrs['messages']:>9} {span.attrs['bits']:>9} "
              f"{span.duration * 1e3:>9.3f}")
    print()
    print(f"span coverage: {recorder.coverage():.1%}")

    reports = audit_recorder(recorder)
    all_ok = True
    for report in reports:
        all_ok = all_ok and report.ok
        print()
        print(f"conformance audit: {report.protocol} {report.params} -> "
              f"{'OK' if report.ok else 'DEVIATION'}"
              + (f" ({report.faults} faults observed)" if report.faults
                 else ""))
        print(report.table())

    round_checks = audit_rounds(recorder)
    if round_checks:
        print()
        print("round conformance (vs analysis.rounds predictions):")
        for check in round_checks:
            all_ok = all_ok and check.ok
            status = "ok" if check.ok else "DEVIATION"
            if not check.ok and check.faults:
                status += f" ({check.faults} faults observed)"
            print(f"  {check.protocol:<10} expected {check.expected:>3} "
                  f"measured {check.measured:>3} ({check.deviation:+d})  "
                  f"{status}")

    _write_export(args, ctx)
    if args.audit and not all_ok:
        return 1
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    ctx, _, _ = _run_instrumented_coin_gen(args)
    print(to_prometheus(metrics=ctx.metrics, recorder=ctx.recorder), end="")
    _write_export(args, ctx)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.obs.flight import diff, replay

    log = _load_flight_log(args.log)
    if args.diff is not None:
        other = _load_flight_log(args.diff)
        divergence = diff(log, other)
        if divergence is None:
            print("logs are equivalent (no divergent delivery)")
            return 0
        print(f"DIVERGENCE at {divergence}")
        return 1

    if args.causal:
        from repro.obs.causality import graph_from_log
        from repro.obs.critical_path import critical_path

        graph = graph_from_log(log)
        print(f"causal graph: n={graph.n}, runs={len(graph.runs())}, "
              f"edges={len(graph.edges)}")
        for run, depth in sorted(graph.depths().items()):
            print(f"  run {run}: depth {depth} "
                  f"(message-carrying round chain)")
        print()
        print(critical_path(graph).table())
        return 0

    result = replay(log)
    messages = sum(len(event.deliveries) for event in log.rounds)
    print(f"flight log: n={log.n}, t={log.t}, field={log.field}, "
          f"seed={log.seed}")
    print(f"runs              : {len(log.runs())}")
    print(f"rounds            : {len(log.rounds)}")
    print(f"deliveries        : {messages}")
    print(f"faults recorded   : {len(log.faults)}")
    decoded = result.decoded_values()
    print(f"exposed coins     : {len(decoded)}")
    disagreements = sum(
        1 for values in decoded.values() if len(set(values.values())) > 1
    )
    print(f"unanimity breaks  : {disagreements}")
    return 1 if disagreements else 0


def _cmd_forensics(args: argparse.Namespace) -> int:
    from repro.obs.forensics import analyze_log

    log = _load_flight_log(args.log)
    report = analyze_log(log)
    print(report.summary())
    if args.expect is not None:
        expected = (
            set() if not args.expect.strip()
            else {int(pid) for pid in args.expect.split(",")}
        )
        actual = report.corrupt_players()
        if actual != expected:
            print(f"MISMATCH: expected {sorted(expected)}, "
                  f"implicated {sorted(actual)}", file=sys.stderr)
            return 1
        return 0
    return 1 if report.corrupt_players() else 0


def _cmd_health(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs.health import HealthMonitor

    ctx = _make_context(args)
    source = BootstrapCoinSource(
        context=ctx, batch_size=args.batch, expose_retries=args.retries
    )
    monitor = HealthMonitor(source=source).attach(ctx.ensure_bus())
    for _ in range(args.coins):
        source.toss_element()
    print(json_module.dumps(monitor.snapshot(), indent=2, sort_keys=True))
    _write_export(args, ctx, health=monitor)
    healthy, reasons = monitor.check(
        max_bias=args.threshold,
        max_failures=args.max_failures,
        max_seed_depletion=args.max_seed_depletion,
        require_battery=args.battery,
    )
    for reason in reasons:
        print(f"UNHEALTHY: {reason}", file=sys.stderr)
    return 0 if healthy else 1


def _parse_what_if(text: str):
    """``"player=3,scale=10"`` -> ``(3, 10.0)`` (scale defaults to 10)."""
    player, scale = None, 10.0
    for part in text.split(","):
        key, _, value = part.partition("=")
        key = key.strip()
        if key == "player":
            player = int(value)
        elif key == "scale":
            scale = float(value)
        else:
            raise _usage_error(f"bad --what-if component {part!r} "
                               f"(expected player=I,scale=S)")
    if player is None:
        raise _usage_error("--what-if needs player=I")
    return player, scale


def _parse_op_costs(text: Optional[str]) -> dict:
    """``"add=1e-9,mul=2e-9,inv=5e-8,interp=1e-6"`` -> CostModel kwargs."""
    if not text:
        return {}
    names = {"add": "add", "mul": "mul", "inv": "inv",
             "interp": "interpolation", "interpolation": "interpolation"}
    out = {}
    for part in text.split(","):
        key, _, value = part.partition("=")
        field_name = names.get(key.strip())
        if field_name is None:
            raise _usage_error(f"bad --op-cost component {part!r} "
                               f"(expected add=A,mul=M,inv=I,interp=P)")
        out[field_name] = float(value)
    return out


def _cmd_critpath_async(args: argparse.Namespace) -> int:
    """``critpath --runtime async``: latency attribution on async DAGs.

    Logical time replaces the round index, so the same longest-path
    machinery prices adversarial delivery schedules; depth conformance
    against the synchronous round model is (correctly) not asserted.
    """
    import json as json_module

    from repro.obs.causality import CausalRecorder
    from repro.obs.critical_path import (
        CostModel, critical_path, ops_from_recorder, what_if,
    )

    ctx = _make_context(args)
    if not ctx.recorder.enabled:
        ctx.recorder = SpanRecorder()
    causal = CausalRecorder(n=ctx.n).attach(ctx.ensure_bus())
    flight = _attach_flight_recorder(args, ctx)
    values, runtimes, breaks = _run_async_coins(args, ctx, args.M)
    for index, distinct in breaks:
        print(f"UNANIMITY BREAK: coin {index} exposed {distinct}",
              file=sys.stderr)
    graph = causal.graph()
    # async round spans carry per-step op deltas exactly like lockstep
    # ones (the step settling delivery c is node (c+1, pid)), so the
    # same recorder->DAG pricing applies under adversarial schedules
    step_ops, run_labels = ops_from_recorder(ctx.recorder)
    model = CostModel(
        base_latency=args.base_latency,
        per_element_latency=args.per_element_latency,
        **_parse_op_costs(args.op_cost),
    )
    result = critical_path(graph, model, step_ops)

    print(f"async critical path: n={ctx.n}, t={ctx.t}, k={args.k}, "
          f"coins={args.M}, sched-seed={args.sched_seed} "
          f"(base latency {args.base_latency:g}s/link)")
    for index, runtime in enumerate(runtimes):
        label = run_labels.get(index + 1, "async_coin")
        print(f"  run {index + 1}: {label} — "
              f"{runtime.delivery_count} deliveries, "
              f"logical time {runtime.logical_time}, "
              f"causal depth {graph.depth(index + 1)}")
    print(f"  span coverage: {ctx.recorder.coverage():.1%} "
          f"({len(step_ops)} op-priced steps)")
    print()
    print(result.table())

    counterfactual = None
    if args.what_if is not None:
        player, scale = _parse_what_if(args.what_if)
        counterfactual = what_if(graph, model, player=player, scale=scale,
                                 step_ops=step_ops)
        print()
        print(counterfactual.table())

    if args.export is not None:
        payload = {
            "params": {"n": ctx.n, "t": ctx.t, "k": args.k, "M": args.M,
                       "seed": args.seed, "sched_seed": args.sched_seed,
                       "runtime": "async"},
            "deliveries": [r.delivery_count for r in runtimes],
            "logical_times": [r.logical_time for r in runtimes],
            "depths": {str(run): depth
                       for run, depth in graph.depths().items()},
            "critical_path": result.to_dict(),
        }
        if counterfactual is not None:
            payload["what_if"] = counterfactual.to_dict()
        with open(args.export, "w") as handle:
            json_module.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote critical-path JSON to {args.export}", file=sys.stderr)

    if args.chrome is not None:
        content = to_chrome_trace(ctx.recorder, graph=graph,
                                  flows=args.flows, model=model)
        with open(args.chrome, "w") as handle:
            handle.write(content)
        print(f"wrote Chrome trace (with {args.flows} flow arrows) to "
              f"{args.chrome}", file=sys.stderr)

    _write_flight_log(args, flight)
    return 1 if breaks else 0


def _cmd_critpath(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.analysis.rounds import predicted_rounds
    from repro.obs.critical_path import (
        CostModel, critical_path, op_profile, op_profile_table,
        ops_from_recorder, what_if,
    )

    if args.runtime == "async":
        return _cmd_critpath_async(args)
    ctx, _, causal = _run_instrumented_coin_gen(args, causal=True)
    graph = causal.graph()
    step_ops, run_labels = ops_from_recorder(ctx.recorder)
    model = CostModel(
        base_latency=args.base_latency,
        per_element_latency=args.per_element_latency,
        **_parse_op_costs(args.op_cost),
    )
    result = critical_path(graph, model, step_ops)

    print(f"critical path: n={ctx.n}, t={ctx.t}, k={args.k}, M={args.M} "
          f"(base latency {args.base_latency:g}s/link)")
    for run, label in sorted(run_labels.items()):
        print(f"  run {run}: {label}")
    print()
    print(result.table())

    profile_rows = None
    if args.op_profile:
        profile_rows = op_profile(graph, model, step_ops)
        print()
        print("op profile (critical-path contribution, heaviest first):")
        print(op_profile_table(profile_rows))

    counterfactual = None
    if args.what_if is not None:
        player, scale = _parse_what_if(args.what_if)
        counterfactual = what_if(graph, model, player=player, scale=scale,
                                 step_ops=step_ops)
        print()
        print(counterfactual.table())

    # fault-free structural gate: DAG depth == analysis.rounds prediction
    depth_checks = []
    spans = sorted(ctx.recorder.by_kind("protocol"), key=lambda s: s.t0)
    for run, protocol in enumerate(spans, start=1):
        expected = predicted_rounds(
            protocol.name,
            t=protocol.attrs.get("t", 0),
            iterations=protocol.attrs.get("iterations", 1),
        )
        if expected is None:
            continue
        depth_checks.append({
            "run": run, "protocol": protocol.name,
            "expected": expected, "measured": graph.depth(run),
            "ok": graph.depth(run) == expected,
        })
    if depth_checks:
        print()
        print("depth conformance (vs analysis.rounds predictions):")
        for check in depth_checks:
            print(f"  run {check['run']} {check['protocol']:<10} "
                  f"expected {check['expected']:>3} "
                  f"measured {check['measured']:>3}  "
                  f"{'ok' if check['ok'] else 'DEVIATION'}")

    if args.export is not None:
        payload = {
            "params": {"n": ctx.n, "t": ctx.t, "k": args.k, "M": args.M,
                       "seed": args.seed},
            "run_labels": {str(run): label
                           for run, label in run_labels.items()},
            "depths": {str(run): depth
                       for run, depth in graph.depths().items()},
            "depth_checks": depth_checks,
            "critical_path": result.to_dict(),
        }
        if profile_rows is not None:
            payload["op_profile"] = [row.to_dict() for row in profile_rows]
        if counterfactual is not None:
            payload["what_if"] = counterfactual.to_dict()
        with open(args.export, "w") as handle:
            json_module.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote critical-path JSON to {args.export}", file=sys.stderr)

    if args.chrome is not None:
        content = to_chrome_trace(ctx.recorder, graph=graph,
                                  flows=args.flows, model=model)
        with open(args.chrome, "w") as handle:
            handle.write(content)
        print(f"wrote Chrome trace (with {args.flows} flow arrows) to "
              f"{args.chrome}", file=sys.stderr)

    if args.assert_depth and not all(c["ok"] for c in depth_checks):
        print("DEPTH MISMATCH: happens-before depth deviates from the "
              "round model", file=sys.stderr)
        return 1
    return 0


def _cmd_waits(args: argparse.Namespace) -> int:
    """``repro waits``: the liveness observatory over async coin runs.

    Attaches a :class:`~repro.obs.liveness.QuorumLatencyRecorder` and a
    :class:`~repro.obs.liveness.StallWatchdog` to the context bus, runs
    ``--coins`` async exposures, and prints the per-guard wait table,
    the pool-depth gauges, and the stall classification.  ``--watchdog
    TICKS`` gates the exit code on zero stalls; ``--audit`` gates on the
    liveness conformance audit (fault-free runs must show zero stalls,
    zero unfired guards, and quorum-exact firing).
    """
    from repro.obs import (
        QuorumLatencyRecorder,
        StallWatchdog,
        audit_liveness,
        default_threshold,
        waits_to_chrome,
        waits_to_jsonl,
    )

    if args.runtime != "async":
        print("repro waits: guard wait-state telemetry is per-delivery — "
              "use --runtime async (the default here)", file=sys.stderr)
        return 2
    ctx = _make_context(args)
    bus = ctx.ensure_bus()
    latency = QuorumLatencyRecorder().attach(bus)
    threshold = (
        args.watchdog if args.watchdog is not None
        else default_threshold(ctx.n)
    )
    watchdog = StallWatchdog(ctx.n, threshold=threshold).attach(bus)
    values, runtimes, breaks = _run_async_coins(args, ctx, args.coins)
    for index, distinct in breaks:
        print(f"UNANIMITY BREAK: coin {index} exposed {distinct}",
              file=sys.stderr)

    crashed = _crashed_players(args)
    print(f"liveness observatory: n={ctx.n}, t={ctx.t}, k={args.k}, "
          f"coins={args.coins}, sched-seed={args.sched_seed}, "
          f"crashed={','.join(map(str, sorted(crashed))) or 'none'}, "
          f"watchdog threshold={threshold} logical ticks")
    print()
    print(latency.table())
    print()
    fired = latency.fired_records()
    print(f"{'waits armed / fired':42s} "
          f"{len(latency.waits())} / {len(fired)}")
    print(f"{'mean / max wait (logical ticks)':42s} "
          f"{latency.mean_wait():.1f} / {latency.max_wait()}")
    print(f"{'in-flight pool peak':42s} {latency.pool_peak}")
    for channel in sorted(latency.backlog_peak):
        print(f"{f'backlog peak [{channel}]':42s} "
              f"{latency.backlog_peak[channel]}")
    pivotal = latency.pivotal_counts()
    if pivotal:
        ranked = sorted(pivotal, key=lambda p: (-pivotal[p], p))
        print(f"{'pivotal senders (quorums completed)':42s} "
              + ", ".join(f"{p}:{pivotal[p]}" for p in ranked))
    print()
    print(watchdog.table())

    report = None
    if args.audit:
        report = audit_liveness(latency, watchdog)
        print()
        print(report.table())

    if args.export is not None:
        if args.export == "chrome":
            content = waits_to_chrome(latency, watchdog)
        elif args.export == "jsonl":
            content = waits_to_jsonl(latency, watchdog)
        else:
            content = to_prometheus(metrics=ctx.metrics, liveness=latency,
                                    watchdog=watchdog)
        out = args.export_out or (
            f"{args.command}.{_EXPORT_EXTENSIONS[args.export]}"
        )
        with open(out, "w") as handle:
            handle.write(content)
        print(f"wrote {args.export} export to {out}", file=sys.stderr)

    if breaks:
        return 1
    if args.watchdog is not None and watchdog.stalls:
        print(f"STALL: {len(watchdog.stalls)} guard(s) waited past "
              f"{watchdog.threshold} logical ticks "
              f"({len(watchdog.crash_induced())} crash-induced, "
              f"{len(watchdog.unexplained())} unexplained)", file=sys.stderr)
        return 1
    if args.audit and not report.ok:
        print("LIVENESS DEVIATION: see audit table above", file=sys.stderr)
        return 1
    return 0


def _default_history_path() -> str:
    import pathlib

    return str(pathlib.Path.cwd() / "BENCH_history.json")


def _cmd_runs(args: argparse.Namespace) -> int:
    """``repro runs``: the history ledger with provenance manifests."""
    import json as json_module

    from repro.obs.manifest import RunManifest

    path = args.history or _default_history_path()
    try:
        with open(path) as handle:
            rows = json_module.load(handle)["rows"]
    except (OSError, ValueError, KeyError):
        print(f"no readable history at {path}", file=sys.stderr)
        return 2
    if args.flavour != "all":
        want_smoke = args.flavour == "smoke"
        rows = [r for r in rows if bool(r.get("smoke")) == want_smoke]
    if args.limit:
        rows = rows[-args.limit:]
    if getattr(args, "json", False):
        # machine-readable: the filtered rows verbatim, plus the derived
        # fingerprint per manifest-bearing row (the cross-run join key)
        payload = []
        for row in rows:
            entry = dict(row)
            if row.get("manifest"):
                entry["fingerprint"] = (
                    RunManifest.from_dict(row["manifest"]).fingerprint()
                )
            payload.append(entry)
        print(json_module.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"{len(rows)} run(s) in {path}")
    for row in rows:
        schema = row.get("schema", 1)
        flavour = "smoke" if row.get("smoke") else "full"
        keys = len(row.get("speedups", {}))
        line = (f"  {row.get('timestamp', '?'):<26} v{schema} {flavour:<5} "
                f"{keys:>3} keys")
        if row.get("manifest"):
            manifest = RunManifest.from_dict(row["manifest"])
            line += f"  {manifest.summary()}"
        else:
            line += "  (no manifest: legacy v1 row)"
        print(line)
    return 0


def _load_diff_profiles(path: str):
    """``{label: RunProfile}`` out of any artifact ``repro diff`` accepts.

    Auto-detects the format: a span JSONL export (one profile, labelled
    ``run``), a bench payload (``BENCH_core.json`` / smoke baseline —
    one profile per profiled Coin-Gen configuration), or a history file
    (the most recent row carrying a schema-2 profile).
    """
    import json as json_module

    from repro.obs.diffing import (
        profile_from_bench_phases, profile_from_jsonl,
    )
    from repro.obs.manifest import RunManifest

    with open(path) as handle:
        text = handle.read()
    try:
        doc = json_module.loads(text)
    except ValueError:
        return {"run": profile_from_jsonl(text, source=path)}
    if not isinstance(doc, dict):
        raise _usage_error(f"{path}: not a recognized recording")
    if "flight" in doc:
        raise _usage_error(f"{path}: flight logs diff with "
                           "'repro replay LOG --diff OTHER'")
    manifest = (RunManifest.from_dict(doc["manifest"])
                if doc.get("manifest") else None)
    if "rows" in doc:  # history ledger: latest profiled row wins
        profiled = [r for r in doc["rows"] if r.get("profile")]
        if not profiled:
            raise _usage_error(f"{path}: no schema-2 history row carries a "
                               "profile (all legacy v1 rows)")
        row = profiled[-1]
        row_manifest = (RunManifest.from_dict(row["manifest"])
                        if row.get("manifest") else None)
        return {
            label: profile_from_bench_phases(
                phases, manifest=row_manifest,
                source=f"{path} @ {row.get('timestamp', '?')}",
            )
            for label, phases in row["profile"].items()
        }
    if "results" in doc:  # bench payload (BENCH_core / smoke baseline)
        out = {}
        for row in doc["results"]:
            if row.get("bench") == "coin_gen" and "phases" in row:
                label = (f"coin_gen_n{row['n']}_t{row['t']}"
                         f"_M{row['M']}")
                out.setdefault(label, profile_from_bench_phases(
                    row["phases"], manifest=manifest, source=path,
                ))
        if not out:
            raise _usage_error(f"{path}: bench payload has no profiled "
                               "coin_gen rows")
        return out
    raise _usage_error(f"{path}: not a recognized recording (expected a "
                       "span JSONL export, bench payload, or history file)")


def _cmd_diff(args: argparse.Namespace) -> int:
    """``repro diff A B``: per-phase × per-op deltas + priced attribution."""
    from repro.obs.critical_path import CostModel
    from repro.obs.diffing import DEFAULT_PRICING, diff_profiles

    profiles_a = _load_diff_profiles(args.a)
    profiles_b = _load_diff_profiles(args.b)
    common = sorted(set(profiles_a) & set(profiles_b))
    if not common:
        print(f"no common configurations: {sorted(profiles_a)} vs "
              f"{sorted(profiles_b)}", file=sys.stderr)
        return 2
    costs = _parse_op_costs(args.op_cost)
    model = CostModel(**costs) if costs else DEFAULT_PRICING
    sections = []
    all_empty = True
    for label in common:
        diff = diff_profiles(profiles_a[label], profiles_b[label])
        all_empty = all_empty and diff.is_empty()
        sections.append(
            f"== {label} ==\n"
            + diff.report(model=model, label_a=args.a, label_b=args.b)
        )
    report = "\n\n".join(sections) + "\n"
    print(report, end="")
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote attribution report to {args.out}", file=sys.stderr)
    if args.expect_empty and not all_empty:
        print("DIFF NOT EMPTY: deterministic deltas found (see above)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: sample one instrumented Coin-Gen session."""
    from repro.obs.profile import SamplingProfiler

    ctx = _make_context(args)
    if not ctx.recorder.enabled:
        ctx.recorder = SpanRecorder()
    profiler = SamplingProfiler(ctx.recorder, interval=args.interval)
    if args.sampler == "rounds":
        profiler.attach_rounds(ctx.ensure_bus())
    if args.runtime == "async":
        with profiler if args.sampler == "timer" else _null_context():
            values, runtimes, breaks = _run_async_coins(args, ctx, args.M)
        for index, distinct in breaks:
            print(f"UNANIMITY BREAK: coin {index} exposed {distinct}",
                  file=sys.stderr)
    else:
        from repro.protocols.coin_gen import expose_coin, run_coin_gen

        with profiler if args.sampler == "timer" else _null_context():
            outputs, _ = run_coin_gen(ctx, M=args.M, seed=args.seed)
            if all(o.success for o in outputs.values()):
                expose_coin(ctx, outputs=outputs, h=0)
    print(f"profile: n={ctx.n}, t={ctx.t}, k={args.k}, M={args.M}, "
          f"runtime={args.runtime}, sampler={args.sampler}")
    print()
    print(profiler.table(limit=args.top))
    manifest = _run_manifest(args, ctx, protocol="profile")
    if args.folded:
        with open(args.folded, "w") as handle:
            handle.write(profiler.folded())
        print(f"wrote folded stacks to {args.folded}", file=sys.stderr)
    if args.flame:
        with open(args.flame, "w") as handle:
            handle.write(profiler.to_flame_json())
        print(f"wrote flame JSON to {args.flame}", file=sys.stderr)
    if args.chrome:
        with open(args.chrome, "w") as handle:
            handle.write(profiler.to_chrome(manifest=manifest))
        print(f"wrote Chrome sample trace to {args.chrome}",
              file=sys.stderr)
    return 0


def _null_context():
    import contextlib

    return contextlib.nullcontext()


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.verifier import report, verify_all

    field = GF2k(args.k, backend=getattr(args, "backend", "auto"))
    checks = verify_all(field, n=args.n, t=args.t, M=args.M,
                        seed=args.seed)
    print(report(checks))
    return 0 if all(check.passed for check in checks) else 1


# ---------------------------------------------------------------------------
# campaign: scenario-space sweeps under the composed violation oracle
# ---------------------------------------------------------------------------

def _campaign_space(args: argparse.Namespace):
    from repro.campaign.space import default_space

    return default_space(
        runtime=args.runtime,
        seeds=tuple(range(args.seeds)),
        sched_seeds=tuple(range(args.sched_seeds)),
        clean_only=args.clean_only,
    )


def _campaign_report_text(args, coverage, clusters, space) -> str:
    from repro.campaign.triage import triage_table, triage_to_json
    import json as json_module

    if args.report == "json":
        doc = {
            "coverage": coverage.to_dict(space),
            "triage": [c.to_dict() for c in clusters],
        }
        return json_module.dumps(doc, indent=2, sort_keys=True) + "\n"
    if args.report == "prom":
        return coverage.to_prometheus(space)
    return (coverage.table(space) + "\n\n" + triage_table(clusters) + "\n"
            if clusters else coverage.table(space) + "\n")


def _emit_report(args, text: str) -> None:
    if getattr(args, "out", None):
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote campaign report to {args.out}", file=sys.stderr)
    else:
        print(text, end="")


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    import os

    from repro.campaign import CampaignLedger, run_campaign, shrink, \
        write_artifact
    from repro.campaign.space import known_bad_scenarios
    from repro.campaign.triage import triage

    space = _campaign_space(args)
    if args.budget is not None:
        # --budget 0 is meaningful: no space cells (e.g. --known-bad only)
        cells = space.sample(args.budget, seed=args.campaign_seed)
    else:
        cells = space.cells()
    if args.known_bad:
        cells = cells + known_bad_scenarios()
    if not cells:
        raise _usage_error("campaign space is empty under these options")
    ledger = None
    if args.ledger:
        ledger = CampaignLedger(args.ledger)
        ledger.write_header(campaign_seed=args.campaign_seed,
                            cells=len(cells), budget=args.budget,
                            known_bad=bool(args.known_bad))
    result = run_campaign(cells, ledger=ledger)

    shrunk_paths = []
    if args.shrink and result.violated:
        os.makedirs(args.artifacts, exist_ok=True)
        for outcome in result.violated:
            reduced = shrink(outcome.scenario, outcome)
            path = os.path.join(
                args.artifacts, f"repro-{reduced.minimal.cell_id()}.json"
            )
            write_artifact(path, reduced)
            shrunk_paths.append(path)

    clusters = triage([o.to_row() for o in result.violated])
    _emit_report(args, _campaign_report_text(args, result.coverage,
                                             clusters, space))
    counts = result.status_counts()
    coverage_pct = result.coverage.percentage(space)
    print(f"campaign: {len(cells)} cells — {counts['clean']} clean, "
          f"{counts['violated']} violated, {counts['error']} errors; "
          f"coverage {coverage_pct:.1f}%", file=sys.stderr)
    for path in shrunk_paths:
        print(f"repro artifact: {path}", file=sys.stderr)
    if result.violated:
        return 1
    if args.min_coverage is not None and coverage_pct < args.min_coverage:
        print(f"COVERAGE GATE: {coverage_pct:.1f}% < "
              f"{args.min_coverage:.1f}%", file=sys.stderr)
        return 1
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from repro.campaign import CoverageMap, read_ledger, violated_rows
    from repro.campaign.triage import triage

    try:
        _headers, rows = read_ledger(args.ledger)
    except OSError as exc:
        raise _usage_error(f"{args.ledger}: cannot read ledger ({exc})")
    except ValueError as exc:
        raise _usage_error(str(exc))
    coverage = CoverageMap()
    for row in rows:
        coverage.record_row(row)
    clusters = triage(violated_rows(rows))
    # coverage percentages are measured against the stock space the
    # run-side options describe (the ledger stores cells, not axes)
    _emit_report(args, _campaign_report_text(args, coverage, clusters,
                                             _campaign_space(args)))
    return 0


def _cmd_campaign_shrink(args: argparse.Namespace) -> int:
    import os

    from repro.campaign import read_ledger, shrink, violated_rows, \
        write_artifact
    from repro.campaign.space import Scenario

    try:
        _headers, rows = read_ledger(args.ledger)
    except OSError as exc:
        raise _usage_error(f"{args.ledger}: cannot read ledger ({exc})")
    except ValueError as exc:
        raise _usage_error(str(exc))
    rows = violated_rows(rows)
    if args.cell:
        rows = [row for row in rows if row["cell"] == args.cell]
        if not rows:
            raise _usage_error(
                f"{args.ledger}: no violated row with cell id {args.cell}"
            )
    if not rows:
        print("ledger has no violated cells; nothing to shrink")
        return 0
    os.makedirs(args.artifacts, exist_ok=True)
    stale = 0
    for row in rows:
        scenario = Scenario.from_dict(row["scenario"])
        try:
            reduced = shrink(scenario)
        except ValueError:
            print(f"STALE: cell {row['cell']} no longer trips its oracle",
                  file=sys.stderr)
            stale += 1
            continue
        path = os.path.join(
            args.artifacts, f"repro-{reduced.minimal.cell_id()}.json"
        )
        write_artifact(path, reduced)
        print(f"{row['cell']} -> {reduced.minimal.cell_id()} "
              f"({reduced.accepted} reduction(s) in {reduced.steps} "
              f"step(s)): {path}")
    return 1 if stale else 0


def _cmd_campaign_replay(args: argparse.Namespace) -> int:
    from repro.campaign import check_artifact, load_artifact

    try:
        data = load_artifact(args.artifact)
    except OSError as exc:
        raise _usage_error(f"{args.artifact}: cannot read artifact ({exc})")
    except ValueError as exc:
        raise _usage_error(str(exc))
    reproduced, detail = check_artifact(data)
    print(f"{args.artifact}: {detail}")
    return 0 if reproduced else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    handler = {
        "run": _cmd_campaign_run,
        "report": _cmd_campaign_report,
        "shrink": _cmd_campaign_shrink,
        "replay": _cmd_campaign_replay,
    }[args.campaign_command]
    return handler(args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Pseudo-Random Bit Generators (PODC 1996)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    toss = sub.add_parser("toss", help="generate shared coins")
    _add_system_arguments(toss)
    toss.add_argument("--count", type=int, default=64, help="bits (or elements)")
    toss.add_argument("--batch", type=int, default=16, help="coins per D-PRBG batch")
    toss.add_argument("--elements", action="store_true",
                      help="emit k-ary coins instead of bits")
    toss.add_argument("--stats", action="store_true",
                      help="print amortized cost summary")
    toss.add_argument("--watchdog", type=int, default=None, metavar="TICKS",
                      help="flag guards waiting past TICKS logical ticks "
                           "and exit non-zero on any stall "
                           "(--runtime async only)")
    toss.add_argument("--profile", action="store_true",
                      help="sample the open span stack once per settled "
                           "round and print the top frames (behaviour "
                           "is unchanged: the sampler subscribes to the "
                           "always-published round topic)")
    _add_export_arguments(toss)
    _add_flight_argument(toss)
    toss.set_defaults(func=_cmd_toss)

    costs = sub.add_parser("costs", help="evaluate the paper's cost formulas")
    _add_system_arguments(costs)
    costs.add_argument("--M", type=int, default=64, help="batch size")
    costs.set_defaults(func=_cmd_costs)

    vss = sub.add_parser("vss", help="run Protocol VSS once")
    _add_system_arguments(vss, default_t=2)
    vss.add_argument("--cheat", action="store_true", help="corrupt the dealing")
    vss.add_argument("--cheat-player", type=int, default=3,
                     help="whose share to corrupt")
    vss.set_defaults(func=_cmd_vss)

    beacon = sub.add_parser("beacon", help="run a randomness beacon")
    _add_system_arguments(beacon)
    beacon.add_argument("--ticks", type=int, default=10)
    beacon.add_argument("--batch", type=int, default=16)
    beacon.set_defaults(func=_cmd_beacon)

    verify = sub.add_parser(
        "verify", help="measure live runs against the paper's formulas"
    )
    _add_system_arguments(verify)
    verify.add_argument("--M", type=int, default=16, help="batch size")
    verify.set_defaults(func=_cmd_verify)

    trace = sub.add_parser(
        "trace",
        help="run one instrumented Coin-Gen and audit it against the lemmas",
    )
    _add_system_arguments(trace)
    trace.add_argument("--M", type=int, default=8, help="coins per batch")
    trace.add_argument("--audit", action="store_true",
                       help="exit non-zero if the conformance audit deviates")
    _add_export_arguments(trace)
    _add_flight_argument(trace)
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run one instrumented Coin-Gen and print Prometheus metrics",
    )
    _add_system_arguments(metrics)
    metrics.add_argument("--M", type=int, default=8, help="coins per batch")
    _add_export_arguments(metrics)
    metrics.set_defaults(func=_cmd_metrics)

    replay = sub.add_parser(
        "replay",
        help="re-drive a flight log's decode paths, or diff two logs",
    )
    replay.add_argument("log", help="flight log recorded with --flight-log")
    replay.add_argument("--diff", default=None, metavar="OTHER",
                        help="report the first divergence from OTHER "
                             "(exit 1 when the logs differ)")
    replay.add_argument("--causal", action="store_true",
                        help="rebuild the happens-before DAG from the log "
                             "and print per-run depths + critical paths")
    replay.set_defaults(func=_cmd_replay)

    critpath = sub.add_parser(
        "critpath",
        help="critical-path latency attribution for one instrumented "
             "Coin-Gen (happens-before DAG + cost model)",
    )
    _add_system_arguments(critpath)
    critpath.add_argument("--M", type=int, default=8, help="coins per batch")
    critpath.add_argument("--what-if", default=None,
                          metavar="player=I,scale=S",
                          help="re-price the same graph with player I's "
                               "links S x slower and report which coins' "
                               "exposure latency moves")
    critpath.add_argument("--export", default=None, metavar="PATH",
                          help="write the critical-path analysis as JSON")
    critpath.add_argument("--chrome", default=None, metavar="PATH",
                          help="write a Chrome/Perfetto trace with causal "
                               "flow arrows")
    critpath.add_argument("--flows", choices=("critical", "all", "none"),
                          default="critical",
                          help="which message edges --chrome draws as "
                               "arrows")
    critpath.add_argument("--base-latency", type=float, default=1.0,
                          help="seconds per message link (cost model)")
    critpath.add_argument("--per-element-latency", type=float, default=0.0,
                          help="extra seconds per field element carried")
    critpath.add_argument("--op-profile", action="store_true",
                          help="rank (phase, op) pairs by critical-path "
                               "contribution — the vectorization targets")
    critpath.add_argument("--op-cost", default=None,
                          metavar="add=A,mul=M,inv=I,interp=P",
                          help="per-op compute seconds (default: free)")
    critpath.add_argument("--assert-depth", action="store_true",
                          help="exit non-zero unless every run's DAG depth "
                               "matches the analysis.rounds prediction")
    _add_flight_argument(critpath)
    critpath.set_defaults(func=_cmd_critpath)

    waits = sub.add_parser(
        "waits",
        help="liveness observatory: guard wait-state telemetry, "
             "quorum-latency attribution, and the stall watchdog",
    )
    _add_system_arguments(waits, default_t=2)
    waits.add_argument("--coins", type=int, default=4,
                       help="async coin exposures to run")
    waits.add_argument("--watchdog", type=int, default=None, metavar="TICKS",
                       help="stall threshold in logical ticks (default "
                            "4*n^2); giving it gates the exit code on "
                            "zero stalls")
    waits.add_argument("--audit", action="store_true",
                       help="exit non-zero unless the liveness conformance "
                            "audit passes (fault-free runs: zero stalls, "
                            "every guard fired at exactly its quorum)")
    _add_export_arguments(waits)
    waits.set_defaults(func=_cmd_waits, runtime="async")

    runs = sub.add_parser(
        "runs",
        help="list the bench history ledger with provenance manifests",
    )
    runs.add_argument("--history", default=None, metavar="PATH",
                      help="history file (default ./BENCH_history.json)")
    runs.add_argument("--flavour", choices=("smoke", "full", "all"),
                      default="all", help="filter rows by bench flavour")
    runs.add_argument("--limit", type=int, default=0,
                      help="show only the most recent N rows (0 = all)")
    runs.add_argument("--json", action="store_true",
                      help="emit the filtered rows as JSON (with derived "
                           "manifest fingerprints) instead of the table")
    runs.set_defaults(func=_cmd_runs)

    diff_cmd = sub.add_parser(
        "diff",
        help="cross-run diff: per-phase x per-op deltas and CostModel-"
             "priced regression attribution between two recordings",
    )
    diff_cmd.add_argument("a", help="span JSONL export, bench payload, "
                                    "or history file (the 'before' run)")
    diff_cmd.add_argument("b", help="the 'after' run (same formats)")
    diff_cmd.add_argument("--out", default=None, metavar="PATH",
                          help="also write the attribution report to PATH")
    diff_cmd.add_argument("--op-cost", default=None,
                          metavar="add=A,mul=M,inv=I,interp=P",
                          help="per-op pricing for the attribution "
                               "(default: microbenchmark-derived weights)")
    diff_cmd.add_argument("--expect-empty", action="store_true",
                          help="exit non-zero if any deterministic metric "
                               "differs (identical-seed conformance gate)")
    diff_cmd.set_defaults(func=_cmd_diff)

    profile = sub.add_parser(
        "profile",
        help="sampling profiler over one instrumented Coin-Gen session "
             "(samples land on protocol/phase/round span frames)",
    )
    _add_system_arguments(profile)
    profile.add_argument("--M", type=int, default=8, help="coins per batch")
    profile.add_argument("--sampler", choices=("rounds", "timer"),
                         default="rounds",
                         help="rounds = one deterministic sample per "
                              "settled round; timer = wall-clock daemon "
                              "sampling every --interval seconds")
    profile.add_argument("--interval", type=float, default=0.001,
                         help="timer sampling period in seconds")
    profile.add_argument("--top", type=int, default=15,
                         help="frames shown in the table")
    profile.add_argument("--folded", default=None, metavar="PATH",
                         help="write collapsed stacks (flamegraph.pl input)")
    profile.add_argument("--flame", default=None, metavar="PATH",
                         help="write hierarchical flame-graph JSON")
    profile.add_argument("--chrome", default=None, metavar="PATH",
                         help="write sample instants as a Chrome trace")
    profile.set_defaults(func=_cmd_profile)

    forensics = sub.add_parser(
        "forensics",
        help="analyze a flight log for Byzantine behaviour",
    )
    forensics.add_argument("log", help="flight log recorded with --flight-log")
    forensics.add_argument("--expect", default=None, metavar="PLAYERS",
                           help="comma-separated player ids that must be "
                                "exactly the implicated set (exit 1 "
                                "otherwise); empty string = nobody")
    forensics.set_defaults(func=_cmd_forensics)

    health = sub.add_parser(
        "health",
        help="run a living coin source and judge its operational health",
    )
    _add_system_arguments(health)
    health.add_argument("--coins", type=int, default=8,
                        help="k-ary coins to toss")
    health.add_argument("--batch", type=int, default=16,
                        help="coins per D-PRBG batch")
    health.add_argument("--retries", type=int, default=0,
                        help="exposure retries before failing a toss")
    health.add_argument("--threshold", type=float, default=None,
                        metavar="BIAS",
                        help="max tolerated |rolling bias| (exit 1 beyond)")
    health.add_argument("--max-failures", type=int, default=None,
                        help="max tolerated exposure failures")
    health.add_argument("--max-seed-depletion", type=float, default=None,
                        help="max tolerated seed-stock depletion in [0,1]")
    health.add_argument("--battery", action="store_true",
                        help="also require the statistical battery to pass")
    _add_export_arguments(health)
    health.set_defaults(func=_cmd_health)

    campaign = sub.add_parser(
        "campaign",
        help="sweep the scenario space under the composed violation oracle",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)

    def _add_campaign_space_arguments(parser_: argparse.ArgumentParser):
        parser_.add_argument("--runtime", choices=("lockstep", "async",
                                                   "both"),
                             default="both", help="runtime axis of the space")
        parser_.add_argument("--seeds", type=int, default=3,
                             help="protocol seeds 0..N-1 on the seed axis")
        parser_.add_argument("--sched-seeds", type=int, default=2,
                             help="scheduler seeds 0..N-1 on that axis")
        parser_.add_argument("--clean-only", action="store_true",
                             help="honest cells only (no adversaries or "
                                  "fault chains)")

    def _add_campaign_report_arguments(parser_: argparse.ArgumentParser):
        parser_.add_argument("--report", choices=("table", "json", "prom"),
                             default="table",
                             help="coverage + triage output format")
        parser_.add_argument("--out", default=None, metavar="PATH",
                             help="write the report here instead of stdout")

    campaign_run = campaign_sub.add_parser(
        "run", help="execute a (sampled) slice of the scenario space",
    )
    _add_campaign_space_arguments(campaign_run)
    campaign_run.add_argument("--budget", type=int, default=None,
                              metavar="N",
                              help="run a seeded random sample of N cells "
                                   "instead of the full space (CI soak); "
                                   "0 skips the space entirely, e.g. for a "
                                   "--known-bad-only run")
    campaign_run.add_argument("--campaign-seed", type=int, default=0,
                              help="seed for the --budget sample")
    campaign_run.add_argument("--known-bad", action="store_true",
                              help="append the seeded known-bad scenarios "
                                   "(negative controls; exit 1 expected)")
    campaign_run.add_argument("--ledger", default=None, metavar="PATH",
                              help="append per-cell rows to this JSONL "
                                   "campaign ledger")
    campaign_run.add_argument("--shrink", action="store_true",
                              help="shrink every violated cell and write "
                                   "repro artifacts")
    campaign_run.add_argument("--artifacts", default="campaign-artifacts",
                              metavar="DIR",
                              help="directory for --shrink repro artifacts")
    campaign_run.add_argument("--min-coverage", type=float, default=None,
                              metavar="PCT",
                              help="exit 1 when scenario-space coverage "
                                   "lands below PCT percent")
    _add_campaign_report_arguments(campaign_run)

    campaign_report = campaign_sub.add_parser(
        "report", help="coverage map + violation triage from a ledger",
    )
    campaign_report.add_argument("--ledger", required=True, metavar="PATH",
                                 help="campaign ledger to read")
    _add_campaign_space_arguments(campaign_report)
    _add_campaign_report_arguments(campaign_report)

    campaign_shrink = campaign_sub.add_parser(
        "shrink", help="minimize recorded violations into repro artifacts",
    )
    campaign_shrink.add_argument("--ledger", required=True, metavar="PATH",
                                 help="campaign ledger holding the "
                                      "violations")
    campaign_shrink.add_argument("--cell", default=None, metavar="ID",
                                 help="shrink only this cell id")
    campaign_shrink.add_argument("--artifacts",
                                 default="campaign-artifacts", metavar="DIR",
                                 help="directory for repro artifacts")

    campaign_replay = campaign_sub.add_parser(
        "replay", help="re-run a repro artifact; exit 1 when it went stale",
    )
    campaign_replay.add_argument("artifact", help="repro artifact JSON file")

    campaign.set_defaults(func=_cmd_campaign)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Command handlers signal usage errors by raising ``SystemExit(2)``
    (see :func:`_usage_error`); those are normalized to a return value
    here so programmatic callers get the code instead of an exception.
    Argparse's own exits (bad flags) still propagate.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SystemExit as exc:
        if isinstance(exc.code, int):
            return exc.code
        print(exc.code, file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
