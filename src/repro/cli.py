"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``toss``      generate shared coin bits or k-ary coins from a bootstrapped
              source and print them;
``costs``     print the paper's cost formulas evaluated at given parameters
              (the lemma-by-lemma cheat sheet);
``vss``       run Protocol VSS once, honest or cheating, and report the
              unanimous verdict plus measured costs;
``beacon``    run a randomness beacon for a number of ticks;
``trace``     run one instrumented Coin-Gen, print the per-phase breakdown
              and the lemma-conformance audit;
``metrics``   run one instrumented Coin-Gen and print the Prometheus text
              exposition;
``replay``    re-drive a recorded flight log's decode paths offline, or
              diff two logs (``--diff``) for the first divergence;
``forensics`` analyze a flight log for Byzantine behaviour and print the
              per-player accusation report;
``health``    run a living coin source under the health monitor and gate
              the exit code on operational thresholds.

``toss``, ``trace``, and ``metrics`` accept ``--export chrome|jsonl|prom``
(+ ``--export-out PATH``) to write the recorded spans as a Chrome
trace-event JSON (open with Perfetto), newline-delimited JSON, or a
Prometheus exposition; the default export path derives from the
subcommand name (``toss.json``, ``trace.jsonl``, ``metrics.prom``, ...),
so concurrent exports from different commands never collide.  ``toss``
and ``trace`` also accept ``--flight-log PATH`` to record the delivered
message stream for later ``replay``/``forensics``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import complexity as cx
from repro.core import BootstrapCoinSource
from repro.fields import GF2k
from repro.net import PermutedDeliveryScheduler
from repro.obs import SpanRecorder, to_chrome_trace, to_jsonl, to_prometheus
from repro.protocols.context import ProtocolContext
from repro.protocols.vss import run_vss


def _add_system_arguments(parser: argparse.ArgumentParser, default_n: int = 7,
                          default_t: int = 1) -> None:
    parser.add_argument("--n", type=int, default=default_n, help="players")
    parser.add_argument("--t", type=int, default=default_t, help="faults tolerated")
    parser.add_argument("--k", type=int, default=32, help="security parameter (field GF(2^k))")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--scheduler", choices=("lockstep", "permuted"),
                        default="lockstep",
                        help="message delivery policy (permuted = seeded "
                             "random within-round arrival order)")
    parser.add_argument("--sched-seed", type=int, default=0,
                        help="seed for the permuted scheduler")


def _add_export_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--export", choices=("chrome", "jsonl", "prom"),
                        default=None,
                        help="write recorded spans: Chrome trace-event JSON "
                             "(Perfetto), JSONL, or Prometheus text")
    parser.add_argument("--export-out", default=None, metavar="PATH",
                        help="export file (defaults to <command>.json / "
                             "<command>.jsonl / <command>.prom)")


def _add_flight_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--flight-log", default=None, metavar="PATH",
                        help="record the delivered message stream to a "
                             "flight log (see 'repro replay'/'forensics')")


#: file extension per export format; the default export path is
#: ``<subcommand>.<ext>`` so e.g. ``toss`` and ``trace`` never clobber
#: each other's exports when run from the same directory
_EXPORT_EXTENSIONS = {"chrome": "json", "jsonl": "jsonl", "prom": "prom"}


def _make_context(args: argparse.Namespace) -> ProtocolContext:
    """The ProtocolContext the chosen CLI flags describe.

    Attaches a live :class:`SpanRecorder` when the command was invoked
    with ``--export`` (observability stays zero-cost otherwise).
    """
    scheduler = None
    if args.scheduler == "permuted":
        scheduler = PermutedDeliveryScheduler(seed=args.sched_seed)
    recorder = (
        SpanRecorder() if getattr(args, "export", None) is not None
        else None
    )
    kwargs = {"recorder": recorder} if recorder is not None else {}
    return ProtocolContext.create(
        GF2k(args.k), args.n, args.t, seed=args.seed, scheduler=scheduler,
        **kwargs,
    )


def _write_export(args: argparse.Namespace, ctx: ProtocolContext,
                  health=None) -> None:
    """Write the recorder's spans in the format ``--export`` selected."""
    if getattr(args, "export", None) is None:
        return
    recorder = ctx.recorder
    if args.export == "chrome":
        content = to_chrome_trace(recorder)
    elif args.export == "jsonl":
        content = to_jsonl(recorder)
    else:
        content = to_prometheus(metrics=ctx.metrics, recorder=recorder,
                                health=health)
    out = args.export_out or (
        f"{args.command}.{_EXPORT_EXTENSIONS[args.export]}"
    )
    with open(out, "w") as handle:
        handle.write(content)
    print(f"wrote {args.export} export to {out}", file=sys.stderr)


def _attach_flight_recorder(args: argparse.Namespace, ctx: ProtocolContext):
    """A FlightRecorder on the context bus when ``--flight-log`` was given."""
    if getattr(args, "flight_log", None) is None:
        return None
    from repro.obs.flight import FlightRecorder

    recorder = FlightRecorder(n=ctx.n, t=ctx.t, field=ctx.field,
                              seed=ctx.seed)
    return recorder.attach(ctx.ensure_bus())


def _write_flight_log(args: argparse.Namespace, flight) -> None:
    if flight is None:
        return
    flight.dump(args.flight_log)
    log = flight.log()
    print(f"wrote flight log to {args.flight_log} "
          f"({len(log.rounds)} rounds, {len(log.faults)} faults)",
          file=sys.stderr)


def _cmd_toss(args: argparse.Namespace) -> int:
    ctx = _make_context(args)
    flight = _attach_flight_recorder(args, ctx)
    root = ctx.recorder.begin("toss", "root")
    source = BootstrapCoinSource(context=ctx, batch_size=args.batch)
    if args.elements:
        width = (args.k + 3) // 4
        lines = [
            f"0x{source.system.field.to_int(source.toss_element()):0{width}x}"
            for _ in range(args.count)
        ]
    else:
        bits = source.tosses(args.count)
        lines = [
            "".join(map(str, bits[start : start + 64]))
            for start in range(0, len(bits), 64)
        ]
    ctx.recorder.end(root)
    for line in lines:
        print(line)
    if args.stats:
        print()
        for key, value in source.amortized_cost_summary().items():
            print(f"{key:42s} {value:,.2f}" if isinstance(value, float)
                  else f"{key:42s} {value}")
    _write_export(args, ctx)
    _write_flight_log(args, flight)
    return 0


def _cmd_costs(args: argparse.Namespace) -> int:
    n, t, k, M = args.n, args.t, args.k, args.M
    vss = cx.vss_single(n, k)
    batch = cx.batch_vss(n, k, M)
    bitgen = cx.bit_gen(n, t, k, M)
    print(f"paper cost formulas at n={n}, t={t}, k={k}, M={M}\n")
    print(f"Lemma 2  (VSS)      : {vss.additions:,.0f} additions, "
          f"{vss.interpolations:.0f} interpolations, {vss.messages:.0f} "
          f"messages, {vss.bits:,.0f} bits")
    print(f"Lemma 4  (Batch-VSS): {batch.additions:,.0f} additions, "
          f"{batch.interpolations:.0f} interpolations, {batch.bits:,.0f} bits "
          f"({cx.batch_vss_amortized_additions(k):,.0f} additions/secret)")
    print(f"Lemma 6  (Bit-Gen)  : {bitgen.additions:,.0f} additions, "
          f"{bitgen.bits:,.0f} bits "
          f"({cx.bit_gen_amortized_per_bit(n, k):,.1f} additions/bit)")
    print(f"Thm 2    (Coin-Gen) : {cx.coin_gen_additions(n, k, M):,.0f} "
          f"additions total, {cx.coin_gen_bits(n, t, k, M):,.0f} bits, "
          f"{cx.coin_gen_interpolations_per_player(n)} interpolations/player")
    print(f"Cor 3    (amortized): {cx.coin_gen_amortized_bits_per_bit(n, k, M):,.1f} "
          f"bits/coin-bit, {cx.coin_gen_amortized_ops_per_bit(n, k):,.1f} ops/coin-bit")
    print(f"Lemma 8  (liveness) : {cx.coin_gen_expected_iterations(n, t):.2f} "
          f"expected BA iterations")
    print(f"soundness           : VSS 1/p={cx.vss_soundness_bound(2**k):.2e}, "
          f"batch M/p={cx.batch_vss_soundness_bound(M, 2**k):.2e}, "
          f"unanimity {cx.coin_unanimity_error(M, n, k):.2e}")
    return 0


def _cmd_vss(args: argparse.Namespace) -> int:
    cheat = {args.cheat_player: 0xBAD} if args.cheat else None
    results, metrics = run_vss(_make_context(args), cheat_shares=cheat)
    verdicts = {r.accepted for r in results.values()}
    if len(verdicts) != 1:
        print("ERROR: players disagree", file=sys.stderr)
        return 1
    verdict = verdicts.pop()
    print(f"VSS over GF(2^{args.k}), n={args.n}, t={args.t}, "
          f"dealer {'CHEATING' if args.cheat else 'honest'}")
    print(f"unanimous verdict : {'ACCEPT' if verdict else 'REJECT'}")
    summary = metrics.summary()
    print(f"rounds            : {summary['rounds']}")
    print(f"messages          : {summary['messages']} (paper accounting)")
    print(f"bits              : {summary['bits']}")
    print(f"interpolations    : {summary['max_player_interpolations']} per player")
    return 0


def _cmd_beacon(args: argparse.Namespace) -> int:
    source = BootstrapCoinSource(
        context=_make_context(args), batch_size=args.batch, low_watermark=2
    )
    width = (args.k + 3) // 4
    for tick in range(1, args.ticks + 1):
        value = source.system.field.to_int(source.toss_element())
        print(f"tick {tick:4d}  0x{value:0{width}x}")
    return 0


def _run_instrumented_coin_gen(args: argparse.Namespace):
    """One Coin-Gen + batch exposure under a live recorder."""
    from repro.protocols.coin_gen import run_coin_gen, expose_coin

    ctx = _make_context(args)
    if not ctx.recorder.enabled:
        # trace/metrics are pointless without a recorder: attach one even
        # when no --export was requested (the terminal report needs it)
        ctx.recorder = SpanRecorder()
    flight = _attach_flight_recorder(args, ctx)
    outputs, _ = run_coin_gen(ctx, M=args.M, seed=args.seed)
    if all(o.success for o in outputs.values()):
        expose_coin(ctx, outputs=outputs, h=0)
    _write_flight_log(args, flight)
    return ctx, outputs


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.audit import audit_recorder

    ctx, outputs = _run_instrumented_coin_gen(args)
    recorder = ctx.recorder

    print(f"Coin-Gen trace: n={ctx.n}, t={ctx.t}, k={args.k}, M={args.M}")
    print()
    print(f"{'phase':<12} {'rounds':>6} {'messages':>9} {'bits':>9} "
          f"{'wall ms':>9}")
    print("-" * 50)
    for span in recorder.phase_spans():
        print(f"{span.attrs['phase']:<12} {span.attrs['rounds']:>6} "
              f"{span.attrs['messages']:>9} {span.attrs['bits']:>9} "
              f"{span.duration * 1e3:>9.3f}")
    print()
    print(f"span coverage: {recorder.coverage():.1%}")

    reports = audit_recorder(recorder)
    all_ok = True
    for report in reports:
        all_ok = all_ok and report.ok
        print()
        print(f"conformance audit: {report.protocol} {report.params} -> "
              f"{'OK' if report.ok else 'DEVIATION'}"
              + (f" ({report.faults} faults observed)" if report.faults
                 else ""))
        print(report.table())

    _write_export(args, ctx)
    if args.audit and not all_ok:
        return 1
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    ctx, _ = _run_instrumented_coin_gen(args)
    print(to_prometheus(metrics=ctx.metrics, recorder=ctx.recorder), end="")
    _write_export(args, ctx)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.obs.flight import FlightLog, diff, replay

    log = FlightLog.load(args.log)
    if args.diff is not None:
        other = FlightLog.load(args.diff)
        divergence = diff(log, other)
        if divergence is None:
            print("logs are equivalent (no divergent delivery)")
            return 0
        print(f"DIVERGENCE at {divergence}")
        return 1

    result = replay(log)
    messages = sum(len(event.deliveries) for event in log.rounds)
    print(f"flight log: n={log.n}, t={log.t}, field={log.field}, "
          f"seed={log.seed}")
    print(f"runs              : {len(log.runs())}")
    print(f"rounds            : {len(log.rounds)}")
    print(f"deliveries        : {messages}")
    print(f"faults recorded   : {len(log.faults)}")
    decoded = result.decoded_values()
    print(f"exposed coins     : {len(decoded)}")
    disagreements = sum(
        1 for values in decoded.values() if len(set(values.values())) > 1
    )
    print(f"unanimity breaks  : {disagreements}")
    return 1 if disagreements else 0


def _cmd_forensics(args: argparse.Namespace) -> int:
    from repro.obs.flight import FlightLog
    from repro.obs.forensics import analyze_log

    log = FlightLog.load(args.log)
    report = analyze_log(log)
    print(report.summary())
    if args.expect is not None:
        expected = (
            set() if not args.expect.strip()
            else {int(pid) for pid in args.expect.split(",")}
        )
        actual = report.corrupt_players()
        if actual != expected:
            print(f"MISMATCH: expected {sorted(expected)}, "
                  f"implicated {sorted(actual)}", file=sys.stderr)
            return 1
        return 0
    return 1 if report.corrupt_players() else 0


def _cmd_health(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs.health import HealthMonitor

    ctx = _make_context(args)
    source = BootstrapCoinSource(
        context=ctx, batch_size=args.batch, expose_retries=args.retries
    )
    monitor = HealthMonitor(source=source).attach(ctx.ensure_bus())
    for _ in range(args.coins):
        source.toss_element()
    print(json_module.dumps(monitor.snapshot(), indent=2, sort_keys=True))
    _write_export(args, ctx, health=monitor)
    healthy, reasons = monitor.check(
        max_bias=args.threshold,
        max_failures=args.max_failures,
        max_seed_depletion=args.max_seed_depletion,
        require_battery=args.battery,
    )
    for reason in reasons:
        print(f"UNHEALTHY: {reason}", file=sys.stderr)
    return 0 if healthy else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.analysis.verifier import report, verify_all

    checks = verify_all(GF2k(args.k), n=args.n, t=args.t, M=args.M,
                        seed=args.seed)
    print(report(checks))
    return 0 if all(check.passed for check in checks) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Pseudo-Random Bit Generators (PODC 1996)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    toss = sub.add_parser("toss", help="generate shared coins")
    _add_system_arguments(toss)
    toss.add_argument("--count", type=int, default=64, help="bits (or elements)")
    toss.add_argument("--batch", type=int, default=16, help="coins per D-PRBG batch")
    toss.add_argument("--elements", action="store_true",
                      help="emit k-ary coins instead of bits")
    toss.add_argument("--stats", action="store_true",
                      help="print amortized cost summary")
    _add_export_arguments(toss)
    _add_flight_argument(toss)
    toss.set_defaults(func=_cmd_toss)

    costs = sub.add_parser("costs", help="evaluate the paper's cost formulas")
    _add_system_arguments(costs)
    costs.add_argument("--M", type=int, default=64, help="batch size")
    costs.set_defaults(func=_cmd_costs)

    vss = sub.add_parser("vss", help="run Protocol VSS once")
    _add_system_arguments(vss, default_t=2)
    vss.add_argument("--cheat", action="store_true", help="corrupt the dealing")
    vss.add_argument("--cheat-player", type=int, default=3,
                     help="whose share to corrupt")
    vss.set_defaults(func=_cmd_vss)

    beacon = sub.add_parser("beacon", help="run a randomness beacon")
    _add_system_arguments(beacon)
    beacon.add_argument("--ticks", type=int, default=10)
    beacon.add_argument("--batch", type=int, default=16)
    beacon.set_defaults(func=_cmd_beacon)

    verify = sub.add_parser(
        "verify", help="measure live runs against the paper's formulas"
    )
    _add_system_arguments(verify)
    verify.add_argument("--M", type=int, default=16, help="batch size")
    verify.set_defaults(func=_cmd_verify)

    trace = sub.add_parser(
        "trace",
        help="run one instrumented Coin-Gen and audit it against the lemmas",
    )
    _add_system_arguments(trace)
    trace.add_argument("--M", type=int, default=8, help="coins per batch")
    trace.add_argument("--audit", action="store_true",
                       help="exit non-zero if the conformance audit deviates")
    _add_export_arguments(trace)
    _add_flight_argument(trace)
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="run one instrumented Coin-Gen and print Prometheus metrics",
    )
    _add_system_arguments(metrics)
    metrics.add_argument("--M", type=int, default=8, help="coins per batch")
    _add_export_arguments(metrics)
    metrics.set_defaults(func=_cmd_metrics)

    replay = sub.add_parser(
        "replay",
        help="re-drive a flight log's decode paths, or diff two logs",
    )
    replay.add_argument("log", help="flight log recorded with --flight-log")
    replay.add_argument("--diff", default=None, metavar="OTHER",
                        help="report the first divergence from OTHER "
                             "(exit 1 when the logs differ)")
    replay.set_defaults(func=_cmd_replay)

    forensics = sub.add_parser(
        "forensics",
        help="analyze a flight log for Byzantine behaviour",
    )
    forensics.add_argument("log", help="flight log recorded with --flight-log")
    forensics.add_argument("--expect", default=None, metavar="PLAYERS",
                           help="comma-separated player ids that must be "
                                "exactly the implicated set (exit 1 "
                                "otherwise); empty string = nobody")
    forensics.set_defaults(func=_cmd_forensics)

    health = sub.add_parser(
        "health",
        help="run a living coin source and judge its operational health",
    )
    _add_system_arguments(health)
    health.add_argument("--coins", type=int, default=8,
                        help="k-ary coins to toss")
    health.add_argument("--batch", type=int, default=16,
                        help="coins per D-PRBG batch")
    health.add_argument("--retries", type=int, default=0,
                        help="exposure retries before failing a toss")
    health.add_argument("--threshold", type=float, default=None,
                        metavar="BIAS",
                        help="max tolerated |rolling bias| (exit 1 beyond)")
    health.add_argument("--max-failures", type=int, default=None,
                        help="max tolerated exposure failures")
    health.add_argument("--max-seed-depletion", type=float, default=None,
                        help="max tolerated seed-stock depletion in [0,1]")
    health.add_argument("--battery", action="store_true",
                        help="also require the statistical battery to pass")
    _add_export_arguments(health)
    health.set_defaults(func=_cmd_health)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
