"""The paper's cost claims as executable formulas.

Every lemma/theorem that states a cost is transcribed here verbatim (in
the paper's units: additions per player, interpolations per player,
rounds, messages, bits).  Benchmarks compare measured metrics against
these functions; EXPERIMENTS.md records the outcomes.

The paper counts one multiplication in the special field as ``k log k``
additions (Section 2); helpers below expose both that conversion and the
naive ``k^2`` one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def log2k(k: int) -> float:
    """log2(k), guarded for tiny k."""
    return math.log2(max(k, 2))


def mul_cost_fast(k: int) -> float:
    """Additions per multiplication in the special field: O(k log k)."""
    return k * log2k(k)


def mul_cost_naive(k: int) -> float:
    """Additions per multiplication with naive GF(2^k) arithmetic: O(k^2)."""
    return float(k * k)


@dataclass(frozen=True)
class CostClaim:
    """A stated per-player / total cost."""

    additions: float
    interpolations: float
    rounds: int
    messages: float
    bits: float


# ---------------------------------------------------------------------------
# Lemma 2 — Protocol VSS (single secret)
# ---------------------------------------------------------------------------

def vss_single(n: int, k: int) -> CostClaim:
    """Lemma 2: "protocol VSS requires n + k log k + 1 additions and 2
    polynomial interpolations per player.  There are 2 rounds of
    communication, and the number of messages in each round is n, each of
    size k, for a total of 2nk bits."
    """
    return CostClaim(
        additions=n + mul_cost_fast(k) + 1,
        interpolations=2,
        rounds=2,
        messages=2 * n,
        bits=2 * n * k,
    )


def vss_soundness_bound(p: int) -> float:
    """Lemma 1: a cheating dealer is accepted with probability <= 1/p."""
    return 1.0 / p


# ---------------------------------------------------------------------------
# Lemma 3/4 + Corollary 1 — Protocol Batch-VSS
# ---------------------------------------------------------------------------

def batch_vss(n: int, k: int, M: int) -> CostClaim:
    """Lemma 4: "2 M k log k additions and 2 polynomial interpolations per
    player.  There are two rounds of communication, each with n messages
    ... for a total of 2nk bits."
    """
    return CostClaim(
        additions=2 * M * mul_cost_fast(k),
        interpolations=2,
        rounds=2,
        messages=2 * n,
        bits=2 * n * k,
    )


def batch_vss_amortized_additions(k: int) -> float:
    """Corollary 1: 2 k log k additions per verified secret."""
    return 2 * mul_cost_fast(k)


def batch_vss_soundness_bound(M: int, p: int) -> float:
    """Lemma 3: acceptance of a bad batch with probability <= M/p."""
    return M / p


# ---------------------------------------------------------------------------
# Lemma 5/6 + Corollary 2 — Protocol Bit-Gen
# ---------------------------------------------------------------------------

def bit_gen(n: int, t: int, k: int, M: int) -> CostClaim:
    """Lemma 6: "M t k log k + 2 M k log k additions and 2 polynomial
    interpolations per player.  There are 3 rounds ... n messages each of
    size Mk, in the second and third rounds n^2 messages of size k, for a
    total of nMk + 2 n^2 k bits."
    """
    return CostClaim(
        additions=M * t * mul_cost_fast(k) + 2 * M * mul_cost_fast(k),
        interpolations=2,
        rounds=3,
        messages=n + 2 * n * n,
        bits=n * M * k + 2 * n * n * k,
    )


def bit_gen_amortized_per_bit(n: int, k: int) -> float:
    """Corollary 2: n log k + O(log k) additions per generated bit."""
    return (n + 1) * log2k(k)


def bit_gen_soundness_bound(M: int, p: int) -> float:
    """Lemma 5: a bad dealing is accepted with probability <= M/p."""
    return M / p


# ---------------------------------------------------------------------------
# Theorem 2 + Corollary 3 — Protocol Coin-Gen
# ---------------------------------------------------------------------------

def coin_gen_additions(n: int, k: int, M: int) -> float:
    """Theorem 2 (computation): the n parallel Bit-Gens cost
    ``M n^2 k log k + 2 M n k log k`` additions in total (shared across n
    players), plus clique finding and an expected-O(1) number of further
    interpolations and BAs.
    """
    return M * n * n * mul_cost_fast(k) + 2 * M * n * mul_cost_fast(k)


def coin_gen_interpolations_per_player(n: int) -> int:
    """Theorem 2: n + 1 interpolations per player (one per Bit-Gen
    instance plus the shared challenge exposure) — "n polynomial
    interpolations have been saved by using the same coin for all the
    invocations"."""
    return n + 1


def coin_gen_bits(n: int, t: int, k: int, M: int) -> float:
    """Theorem 2 (communication): n messages of size Mnk, n^2 of size kn,
    n^2 of size ntk (clique distribution), n^2 of size k (BA), totalling
    ``M n^2 k + O(n^4 k)`` bits."""
    return (
        n * (M * n * k)      # dealings
        + n * n * (k * n)    # combination vectors
        + n * n * (n * t * k)  # grade-cast of cliques + polynomials
        + n * n * k          # leader election + BA traffic (per iteration)
    )


def coin_gen_amortized_bits_per_bit(n: int, k: int, M: int) -> float:
    """Corollary 3: n^2 + O(n^4 / M) bits of communication per coin bit.

    (A k-ary coin carries k bits, so per-element communication is k times
    this.)
    """
    return n * n + (n ** 4) / M


def coin_gen_amortized_ops_per_bit(n: int, k: int) -> float:
    """Corollary 3: O(n log k) operations per coin bit."""
    return n * log2k(k)


def coin_unanimity_error(M: int, n: int, k: int) -> float:
    """Section 1.1: coins are unanimous with probability 1 - M n 2^-k."""
    return M * n * (2.0 ** -k)


def coin_gen_expected_iterations(n: int, t: int) -> float:
    """Lemma 8: each iteration succeeds w.p. >= (n - t)/n, so the expected
    number of leader elections is at most n/(n-t)."""
    return n / (n - t)


# ---------------------------------------------------------------------------
# Per-phase renderings of Theorem 2's round accounting
# ---------------------------------------------------------------------------
# The lemmas state totals; the observability auditor (repro.obs.audit)
# needs them *per phase* of the Fig. 5 pipeline, rendered to the
# simulator's point-to-point expansion (a multicast to n players is n
# unicast messages — the Section 4 model has no broadcast channel).
# These are exact counts for a fault-free run, not O(.) bounds.

def coin_gen_phase_messages(n: int, t: int, iterations: int = 1) -> dict:
    """Exact unicast messages per Fig. 5 phase, fault-free run.

    * ``deal`` — step 1: every player unicasts a share tuple to every
      player: n^2 messages (Theorem 2's "n messages of size Mnk" under
      per-edge expansion);
    * ``expose`` — step 2's shared batching challenge plus one leader
      coin per iteration (steps 9): each is one Coin-Expose round of n
      multicasts = n^2 messages;
    * ``clique`` — step 3: every player multicasts its combination
      vector: n^2 messages ("n^2 messages of size kn");
    * ``gradecast`` — step 7: three multicast rounds (value, echo,
      re-echo): 3 n^2;
    * ``ba`` — step 10: phase-king over t+1 phases per iteration; each
      phase is one all-to-all vote round (n^2) plus one king multicast
      (n).
    """
    return {
        "deal": n * n,
        "expose": (1 + iterations) * n * n,
        "clique": n * n,
        "gradecast": 3 * n * n,
        "ba": iterations * (t + 1) * (n * n + n),
    }


def coin_gen_phase_interpolations(n: int, iterations: int = 1) -> dict:
    """Exact per-player polynomial interpolations per Fig. 5 phase.

    Theorem 2's ``n + 1`` per-player interpolations (plus one per extra
    BA iteration) break down as: one Berlekamp-Welch decode per exposed
    seed coin (the challenge and each leader coin, attributed to
    ``expose``) and one decode per Bit-Gen instance when the combination
    vectors are reconciled (attributed to ``clique``).  Dealing,
    grade-cast, and BA perform none.
    """
    return {
        "deal": 0,
        "expose": 1 + iterations,
        "clique": n,
        "gradecast": 0,
        "ba": 0,
    }


def expose_messages(senders_total: int, n: int) -> int:
    """Coin-Expose (Fig. 6) messages: every holder multicasts its share.

    ``senders_total`` sums the qualified-sender set sizes over the coins
    exposed together (Section 3.1: "|S| * n messages of size k").
    """
    return senders_total * n


def expose_interpolations(coins: int) -> int:
    """One decode per exposed coin per player (Theorem 1)."""
    return coins


# ---------------------------------------------------------------------------
# Section 1.4 — competitors
# ---------------------------------------------------------------------------

def feldman_micali_coin_ops(n: int) -> float:
    """[14]: O(n^4 log^2 n) computation steps per player per coin."""
    return n ** 4 * (math.log2(max(n, 2)) ** 2)


def feldman_micali_coin_messages(n: int) -> float:
    """[14]: O(n^5) messages per coin."""
    return float(n ** 5)


def ccd_vss_computation(n: int, k: int) -> float:
    """[9]: n^2 k log^2 n computation (cut-and-choose VSS)."""
    return n * n * k * (math.log2(max(n, 2)) ** 2)


def ccd_vss_bits(n: int, k: int) -> float:
    """[9]: O(n k log n) bits of communication."""
    return n * k * math.log2(max(n, 2))


def feldman_vss_computation(n: int, p_bits: int) -> float:
    """[12]: O(n^2 log^3 p) computation (t exponentiations of log-p-bit
    numbers by dealer and players)."""
    return float(n * n * p_bits ** 3)


def feldman_vss_messages(n: int) -> float:
    """[12]: O(n) communication."""
    return float(n)
