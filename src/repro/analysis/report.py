"""Assemble the measured-results report from the benchmark artifacts.

``pytest benchmarks/ --benchmark-only`` writes one row file per
experiment under ``benchmarks/results/``; this module stitches them into
a single markdown document (the regenerable core of EXPERIMENTS.md) and
renders ASCII sparklines for the amortization curves.
"""

from __future__ import annotations

import pathlib
import re
from typing import Dict, List, Optional, Sequence

#: display order and titles for the known experiments
EXPERIMENT_TITLES = {
    "vss_soundness": "E1/E3 — VSS and Batch-VSS soundness (Lemmas 1, 3)",
    "vss_single": "E2 — single-VSS cost (Lemma 2)",
    "batch_vss": "E4 — Batch-VSS amortization (Lemma 4, Corollary 1)",
    "vss_comparison": "E5 — VSS comparison: ours vs [9] vs [12]",
    "bit_gen": "E6 — Bit-Gen cost (Lemma 6, Corollary 2)",
    "coin_gen": "E7 — Coin-Gen amortization (Theorem 2, Corollary 3)",
    "ba_iterations": "E8 — expected BA iterations (Lemma 8)",
    "bootstrap": "E9 — bootstrapping (Fig. 1)",
    "from_scratch_vs_dprbg": "E10 — from-scratch vs D-PRBG",
    "field_arithmetic": "E11 — naive vs special field (Section 2 remark)",
    "coin_quality": "E12 — coin quality under attack",
    "coin_expose": "E13 — robust exposure (Theorem 1)",
    "proactive": "E14 — mobile adversary (Section 1.2)",
    "coin_sources": "E15 — coin-source comparison (Section 1.4)",
    "maintenance": "E16 — proactive maintenance costs",
    "substrates": "E17 — agreement-substrate ablation",
}

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """ASCII sparkline over ``values`` (empty-safe)."""
    points = [v for v in values if v == v]  # drop NaNs
    if not points:
        return ""
    low, high = min(points), max(points)
    if high == low:
        return _SPARK_LEVELS[0] * len(points)
    out = []
    for v in points:
        index = int((v - low) / (high - low) * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def extract_series(lines: Sequence[str], pattern: str) -> List[float]:
    """Pull the first float matching ``pattern`` from each line."""
    series = []
    regex = re.compile(pattern)
    for line in lines:
        match = regex.search(line)
        if match:
            series.append(float(match.group(1).replace(",", "")))
    return series


def load_results(results_dir: pathlib.Path) -> Dict[str, List[str]]:
    """Parse every ``<experiment>.txt`` row file."""
    results: Dict[str, List[str]] = {}
    if not results_dir.is_dir():
        return results
    for path in sorted(results_dir.glob("*.txt")):
        lines = [
            line
            for line in path.read_text().splitlines()
            if line.strip() and not line.startswith("#")
        ]
        results[path.stem] = lines
    return results


def render(results: Dict[str, List[str]]) -> str:
    """The full markdown report."""
    sections = ["# Measured results (regenerated)", ""]
    known = [key for key in EXPERIMENT_TITLES if key in results]
    unknown = sorted(set(results) - set(EXPERIMENT_TITLES))
    for key in known + unknown:
        title = EXPERIMENT_TITLES.get(key, key)
        sections.append(f"## {title}")
        sections.append("")
        sections.append("```")
        sections.extend(results[key])
        sections.append("```")
        extra = _curve_for(key, results[key])
        if extra:
            sections.append(extra)
        sections.append("")
    if not known and not unknown:
        sections.append(
            "_No benchmark artifacts found — run "
            "`pytest benchmarks/ --benchmark-only` first._"
        )
    return "\n".join(sections)


def _curve_for(key: str, lines: List[str]) -> Optional[str]:
    """Sparkline annotations for the experiments with a sweep."""
    if key == "batch_vss":
        series = extract_series(lines, r"bits/secret=\s*([\d,.]+)")
        if len(series) >= 3:
            return f"bits/secret vs M: `{sparkline(series)}` (1/M decay)"
    if key == "coin_gen":
        series = extract_series(lines, r"bits/coin-bit=\s*([\d,.]+)")
        if len(series) >= 3:
            return f"bits/coin-bit sweep: `{sparkline(series)}`"
    if key == "maintenance":
        series = extract_series(lines, r"bits/coin=\s*([\d,.]+)")
        if len(series) >= 3:
            return f"refresh bits/coin vs H: `{sparkline(series)}`"
    return None


def main(argv=None) -> int:  # pragma: no cover - thin CLI shim
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results",
        default=pathlib.Path(__file__).parents[3] / "benchmarks" / "results",
        type=pathlib.Path,
    )
    parser.add_argument("--out", type=pathlib.Path, default=None)
    args = parser.parse_args(argv)
    text = render(load_results(args.results))
    if args.out:
        args.out.write_text(text)
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
