"""Statistical quality tests for shared coin output.

The paper's coins must be "random binary output, not known to any of them
beforehand" (Section 1.1); these tests give the empirical side of that
claim for experiment E12.  All tests return a z-score or p-value style
statistic together with a boolean verdict at a configurable significance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class TestResult:
    name: str
    statistic: float
    passed: bool


def monobit(bits: Sequence[int], z_threshold: float = 4.0) -> TestResult:
    """Frequency test: #ones should be ~ n/2 (z-score of the deviation)."""
    n = len(bits)
    if n == 0:
        return TestResult("monobit", 0.0, True)
    ones = sum(bits)
    z = abs(2 * ones - n) / math.sqrt(n)
    return TestResult("monobit", z, z <= z_threshold)


def serial_correlation(bits: Sequence[int], z_threshold: float = 4.0) -> TestResult:
    """Lag-1 autocorrelation of the bit stream."""
    n = len(bits)
    if n < 2:
        return TestResult("serial", 0.0, True)
    matches = sum(1 for a, b in zip(bits, bits[1:]) if a == b)
    pairs = n - 1
    z = abs(2 * matches - pairs) / math.sqrt(pairs)
    return TestResult("serial", z, z <= z_threshold)


def longest_run(bits: Sequence[int], slack: float = 4.0) -> TestResult:
    """Longest run of equal bits should be ~ log2(n) + O(1)."""
    n = len(bits)
    if n == 0:
        return TestResult("longest_run", 0.0, True)
    longest = current = 1
    for a, b in zip(bits, bits[1:]):
        current = current + 1 if a == b else 1
        longest = max(longest, current)
    expected = math.log2(n) + 1
    return TestResult("longest_run", float(longest), longest <= expected + slack)


def chi_square_bytes(bits: Sequence[int], threshold_sigma: float = 5.0) -> TestResult:
    """Chi-square uniformity over consecutive 4-bit nibbles."""
    nibbles = [
        bits[i] | (bits[i + 1] << 1) | (bits[i + 2] << 2) | (bits[i + 3] << 3)
        for i in range(0, len(bits) - 3, 4)
    ]
    if len(nibbles) < 16:
        return TestResult("chi2_nibbles", 0.0, True)
    counts = [0] * 16
    for v in nibbles:
        counts[v] += 1
    expected = len(nibbles) / 16
    chi2 = sum((c - expected) ** 2 / expected for c in counts)
    # chi2 with 15 dof: mean 15, sd sqrt(30)
    z = (chi2 - 15) / math.sqrt(30)
    return TestResult("chi2_nibbles", chi2, z <= threshold_sigma)


def battery(bits: Sequence[int]) -> Dict[str, TestResult]:
    """Run the whole battery; keys are test names."""
    results = [
        monobit(bits),
        serial_correlation(bits),
        longest_run(bits),
        chi_square_bytes(bits),
    ]
    return {r.name: r for r in results}


def all_passed(bits: Sequence[int]) -> bool:
    return all(r.passed for r in battery(bits).values())


def bias(bits: Sequence[int]) -> float:
    """|P(1) - 1/2| of the stream."""
    if not bits:
        return 0.0
    return abs(sum(bits) / len(bits) - 0.5)
