"""Analytical companions to the experiments.

* :mod:`repro.analysis.complexity` — the paper's cost formulas (Lemmas 2,
  4, 6; Theorem 2; Corollaries 1-3) as executable functions, so benchmarks
  can check measured counts against the claimed asymptotics.
* :mod:`repro.analysis.stats` — statistical tests on coin output (bias,
  uniformity, serial correlation, runs).
"""

from repro.analysis import complexity, report, rounds, stats, verifier

__all__ = ["complexity", "report", "rounds", "stats", "verifier"]
