"""Round-complexity model of every protocol.

The synchronous model's other cost axis: how many lock-step rounds each
protocol occupies.  These formulas are checked against live traces in
``tests/test_rounds.py`` — they are what makes the protocols' honest
code data-independent (see docs/MODEL.md "Determinism and termination").
"""

from __future__ import annotations

from typing import Optional


def coin_expose_rounds() -> int:
    """Fig. 6: a single share-announcement round."""
    return 1


def vss_rounds() -> int:
    """Fig. 2: companion dealing, challenge expose, nu broadcast."""
    return 1 + coin_expose_rounds() + 1


def batch_vss_rounds() -> int:
    """Fig. 3: challenge expose, nu broadcast."""
    return coin_expose_rounds() + 1


def bit_gen_rounds() -> int:
    """Fig. 4 ("There are 3 rounds of communication") plus the challenge
    expose the paper accounts separately."""
    return 1 + coin_expose_rounds() + 1


def gradecast_rounds() -> int:
    """Feldman-Micali: value, echo, re-echo."""
    return 3


def phase_king_rounds(t: int) -> int:
    """t+1 phases of (vote, king)."""
    return 2 * (t + 1)


def eig_rounds(t: int) -> int:
    """t+1 relay rounds."""
    return t + 1


def broadcast_rounds(t: int) -> int:
    """Grade-cast then BA."""
    return gradecast_rounds() + phase_king_rounds(t)


def coin_gen_rounds(t: int, iterations: int = 1) -> int:
    """Fig. 5: dealing, challenge expose, nu exchange, grade-cast, then
    per iteration one leader expose plus one BA."""
    fixed = 1 + coin_expose_rounds() + 1 + gradecast_rounds()
    per_iteration = coin_expose_rounds() + phase_king_rounds(t)
    return fixed + iterations * per_iteration


def refresh_rounds(t: int, iterations: int = 1) -> int:
    """Same agreement core as Coin-Gen."""
    return coin_gen_rounds(t, iterations)


def recovery_rounds(t: int, iterations: int = 1) -> int:
    """Coin-Gen core plus the masked-share round."""
    return coin_gen_rounds(t, iterations) + 1


def predicted_rounds(
    protocol: str, t: int = 0, iterations: int = 1
) -> Optional[int]:
    """The round prediction for a protocol span name, or None.

    Maps the names runners stamp on protocol spans (``coin_gen``,
    ``expose``, ``batch_vss``, ``bit_gen``, ``vss``, ``refresh``,
    ``recovery``) to the formulas above.  This is what a fault-free
    happens-before DAG's depth — and the observed count of
    message-carrying rounds — must equal *exactly* (the runtime's
    trailing drain round carries no messages and is excluded on both
    sides).  Unknown protocols return None: "not auditable", never a
    spurious deviation.
    """
    formulas = {
        "coin_gen": lambda: coin_gen_rounds(t, iterations),
        "expose": coin_expose_rounds,
        "batch_vss": batch_vss_rounds,
        "bit_gen": bit_gen_rounds,
        "vss": vss_rounds,
        "refresh": lambda: refresh_rounds(t, iterations),
        "recovery": lambda: recovery_rounds(t, iterations),
    }
    formula = formulas.get(protocol)
    return formula() if formula is not None else None
