"""Automated paper-claim verification.

Runs small instances of each protocol, meters them, and checks the
measured counts against the executable formulas in
:mod:`repro.analysis.complexity`.  This is the programmatic form of
EXPERIMENTS.md — usable from tests, the CLI (``python -m repro verify``),
or a notebook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis import complexity as cx
from repro.fields.base import Field


@dataclass(frozen=True)
class Check:
    """One verified claim."""

    claim: str
    expected: float
    measured: float
    #: multiplicative slack allowed (1.0 = must match exactly)
    tolerance: float = 1.0

    @property
    def passed(self) -> bool:
        if self.tolerance == 1.0:
            return self.measured == self.expected
        low = self.expected / self.tolerance
        high = self.expected * self.tolerance
        return low <= self.measured <= high

    def row(self) -> str:
        status = "ok " if self.passed else "FAIL"
        return (
            f"[{status}] {self.claim:58s} expected {self.expected:>12,.1f}  "
            f"measured {self.measured:>12,.1f}"
        )


def verify_vss(field: Field, n: int, t: int, seed: int = 0) -> List[Check]:
    """Lemma 2's exact counts on a live run."""
    from repro.protocols.vss import run_vss

    results, metrics = run_vss(field, n, t, seed=seed)
    assert all(r.accepted for r in results.values())
    k = field.bit_length
    claim = cx.vss_single(n, k)
    return [
        Check("Lemma 2: interpolations per player",
              claim.interpolations, metrics.ops(2).interpolations),
        Check("Lemma 2: broadcast messages in the nu round", n,
              metrics.broadcast_messages),
        Check("Lemma 2: Fig.2 bits (2nk)", claim.bits, 2 * n * k),
    ]


def verify_batch_vss(field: Field, n: int, t: int, M: int, seed: int = 0) -> List[Check]:
    """Lemma 4 / Corollary 1 on a live run."""
    from repro.protocols.batch_vss import run_batch_vss

    _, m_one = run_batch_vss(field, n, t, M=1, seed=seed)
    _, m_many = run_batch_vss(field, n, t, M=M, seed=seed)
    return [
        Check("Lemma 4: interpolations per player (any M)", 2,
              m_many.ops(2).interpolations),
        Check("Corollary 1: total messages independent of M",
              m_one.paper_messages, m_many.paper_messages),
        Check("Corollary 1: total bits independent of M",
              m_one.bits, m_many.bits),
    ]


def verify_bit_gen(field: Field, n: int, t: int, M: int, seed: int = 0) -> List[Check]:
    """Lemma 6's exact bit formula on a live run."""
    from repro.protocols.bit_gen import run_bit_gen

    outputs, metrics = run_bit_gen(field, n, t, M=M, seed=seed, blinding=False)
    assert all(o.accepted for o in outputs.values())
    claim = cx.bit_gen(n, t, field.bit_length, M)
    return [
        Check("Lemma 6: total bits (nMk + 2n^2k)", claim.bits, metrics.bits),
        Check("Lemma 6: interpolations per player", 2,
              metrics.ops(2).interpolations),
    ]


def verify_coin_gen(field: Field, n: int, t: int, M: int, seed: int = 0) -> List[Check]:
    """Theorem 2 / Corollary 3 shape checks on a live run."""
    from repro.protocols.coin_gen import run_coin_gen

    outputs, metrics = run_coin_gen(field, n, t, M=M, seed=seed)
    assert all(o.success for o in outputs.values())
    iters = outputs[1].iterations
    k = field.bit_length
    return [
        Check("Theorem 2: interpolations per player (n+1 + per-iter O(1))",
              n + 1 + iters, metrics.ops(2).interpolations),
        # Corollary 3 is an O(.) claim; our constant is ~4-12x the leading
        # term because the grade-cast ships clique polynomials to everyone
        # and the BA runs t+1 full phases (see EXPERIMENTS.md E7).
        Check("Corollary 3: bits per coin-bit vs n^2 + n^4/M model",
              cx.coin_gen_amortized_bits_per_bit(n, k, M),
              metrics.bits / (M * k),
              tolerance=16.0),
        Check("Lemma 8: BA iterations (no faults -> 1)", 1, iters),
    ]


def verify_all(field: Field, n: int = 7, t: int = 1, M: int = 16,
               seed: int = 0) -> List[Check]:
    """Run every verification; returns the full check list."""
    checks: List[Check] = []
    checks += verify_vss(field, n, max(t, 2) if n >= 3 * max(t, 2) + 1 else t, seed)
    checks += verify_batch_vss(field, n, t, M, seed)
    checks += verify_bit_gen(field, n, t, M, seed)
    checks += verify_coin_gen(field, n, t, M, seed)
    return checks


def report(checks: List[Check]) -> str:
    lines = [check.row() for check in checks]
    failed = sum(1 for check in checks if not check.passed)
    lines.append(
        f"\n{len(checks) - failed}/{len(checks)} claims verified"
        + ("" if not failed else f" ({failed} FAILED)")
    )
    return "\n".join(lines)
