"""Comparison baselines from the paper's Section 1.4.

* :mod:`repro.baselines.from_scratch` — the "straightforward way": one
  verified dealing per fault to tolerate, t+1 interpolations per coin.
* :mod:`repro.baselines.cut_and_choose` — the Chaum-Crepeau-Damgard [9]
  style cut-and-choose VSS: k companion polynomials, k interpolations,
  error 2^-k.
* :mod:`repro.baselines.feldman` — Feldman's [12] non-interactive VSS via
  discrete-log commitments: t exponentiations (t log p multiplications)
  per party.
* :mod:`repro.baselines.rabin_dealer` — Rabin's [17] trusted dealer that
  must "continuously provide" pre-generated coins.
* :mod:`repro.baselines.beaver_so` — the Beaver-So [2] factoring-based
  generator shape: pre-set bit budget, big-modulus multiplications.
"""

from repro.baselines.from_scratch import run_from_scratch_coin
from repro.baselines.cut_and_choose import run_cut_and_choose_vss
from repro.baselines.feldman import run_feldman_vss
from repro.baselines.rabin_dealer import RabinDealerService
from repro.baselines.beaver_so import BeaverSoGenerator, BudgetExhausted

__all__ = [
    "run_from_scratch_coin",
    "run_cut_and_choose_vss",
    "run_feldman_vss",
    "RabinDealerService",
    "BeaverSoGenerator",
    "BudgetExhausted",
]
