"""Cut-and-choose VSS — the Chaum-Crepeau-Damgard [9] style baseline.

Section 3.1: "The method presented in [9] is a cut-and-choose protocol.
Roughly speaking, the dealer who shared the secret is asked to share k
additional polynomials g_1(x),...,g_k(x).  For each j, the players decide
whether to reconstruct g_j(x) or f(x)+g_j(x), and check if the
reconstructed polynomial is of degree <= t.  Thus, in this approach k
polynomial interpolations are computed in order to achieve a probability
of error less than 1/2^k."

If the dealt shares do not lie on a degree-t polynomial, then for every j
at most one of ``g_j`` and ``f + g_j`` can have degree <= t, so each
challenge bit catches the dealer with probability 1/2 and the total error
is 2^-k_challenges.  Computation: k interpolations per player (vs 2 for
Protocol VSS); communication: k broadcast values per player (vs 1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.fields.base import Element, Field
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import SynchronousNetwork, broadcast, unicast
from repro.poly.lagrange import interpolate
from repro.poly.polynomial import Polynomial
from repro.sharing.shamir import ShamirScheme
from repro.protocols.coin_expose import CoinShare, coin_expose, make_dealer_coin
from repro.protocols.common import filter_tag, valid_element, valid_element_tuple


@dataclass(frozen=True)
class CutAndChooseResult:
    accepted: bool


def cut_and_choose_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    dealer: int,
    alpha: Optional[Element],
    coin: CoinShare,
    challenges: int,
    companion_table=None,
    tag: str = "ccvss",
) -> Generator:
    """One player's side of cut-and-choose VSS with ``challenges`` rounds.

    The challenge bits come from one exposed k-ary coin (its low
    ``challenges`` bits), mirroring how the paper's own protocols source
    randomness.
    """
    scheme = ShamirScheme(field, n, t)

    # Round 1: dealer shares the k companion polynomials.
    sends = []
    if me == dealer:
        if companion_table is None:
            raise ValueError("dealer must supply the companion share table")
        sends = [
            unicast(j, (tag + "/g", tuple(companion_table[j])))
            for j in range(1, n + 1)
        ]
    inbox = yield sends
    raw = filter_tag(inbox, tag + "/g").get(dealer)
    betas = raw if valid_element_tuple(field, raw, challenges) else None

    # Round 2: expose the challenge coin -> k challenge bits.
    value = yield from coin_expose(field, me, coin)

    # Round 3: for each challenge j broadcast g_j(i) or f(i)+g_j(i).
    sends = []
    bits = None
    if value is not None:
        bits = [(field.to_int(value) >> j) & 1 for j in range(challenges)]
        if alpha is not None and betas is not None:
            opened = tuple(
                betas[j] if bits[j] == 0 else field.add(alpha, betas[j])
                for j in range(challenges)
            )
            sends = [broadcast((tag + "/open", opened))]
    inbox = yield sends
    if bits is None:
        return CutAndChooseResult(False)
    votes = {
        src: vec
        for src, vec in filter_tag(inbox, tag + "/open").items()
        if valid_element_tuple(field, vec, challenges)
    }
    if len(votes) < n:
        return CutAndChooseResult(False)

    # One interpolation per challenge (the cost the paper criticizes).
    for j in range(challenges):
        pts = [(scheme.point(src), votes[src][j]) for src in sorted(votes)]
        poly = interpolate(field, pts)
        if poly.degree > t:
            return CutAndChooseResult(False)
    return CutAndChooseResult(True)


def run_cut_and_choose_vss(
    field: Field,
    n: int,
    t: int,
    challenges: int = 16,
    seed: int = 0,
    cheat_shares: Optional[Dict[int, Element]] = None,
    cheat_offsets: Optional[Dict[int, Element]] = None,
    cheat_companion_shares: Optional[Dict[int, Dict[int, Element]]] = None,
    cheat_companion_offsets: Optional[Dict[int, Dict[int, Element]]] = None,
) -> Tuple[Dict[int, CutAndChooseResult], NetworkMetrics]:
    """Run the cut-and-choose baseline end to end.

    ``challenges`` plays the role of the soundness parameter k (error
    2^-challenges).  ``cheat_shares`` corrupts the dealing as in
    :func:`repro.protocols.vss.run_vss`; ``cheat_companion_shares`` maps
    a challenge index to per-player overrides of the companion shares,
    letting a cheating dealer craft companions that compensate for a bad
    ``f`` (it then survives a challenge exactly when it guesses that
    challenge's bit).
    """
    rng = random.Random(seed)
    scheme = ShamirScheme(field, n, t)
    _, shares = scheme.deal(field.random(rng), rng)
    alphas = {s.player_id: s.value for s in shares}
    if cheat_shares:
        alphas.update(cheat_shares)
    if cheat_offsets:
        for pid, offset in cheat_offsets.items():
            alphas[pid] = field.add(alphas[pid], offset)
    g_polys = [Polynomial.random(field, t, rng) for _ in range(challenges)]
    companion_values = {
        j: {pid: g_polys[j](scheme.point(pid)) for pid in range(1, n + 1)}
        for j in range(challenges)
    }
    if cheat_companion_shares:
        for j, overrides in cheat_companion_shares.items():
            companion_values[j].update(overrides)
    if cheat_companion_offsets:
        for j, offsets in cheat_companion_offsets.items():
            for pid, offset in offsets.items():
                companion_values[j][pid] = field.add(
                    companion_values[j][pid], offset
                )
    companion_table = {
        pid: tuple(companion_values[j][pid] for j in range(challenges))
        for pid in range(1, n + 1)
    }
    _, coin_shares = make_dealer_coin(field, n, t, "ccvss-challenge", rng)

    network = SynchronousNetwork(n, field=field)
    programs = {
        pid: cut_and_choose_program(
            field,
            n,
            t,
            pid,
            1,
            alphas[pid],
            coin_shares[pid],
            challenges,
            companion_table=companion_table if pid == 1 else None,
        )
        for pid in range(1, n + 1)
    }
    outputs = network.run(programs)
    return outputs, network.metrics
