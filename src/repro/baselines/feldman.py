"""Feldman VSS [12] — the discrete-log baseline.

Section 3.1: "Feldman's protocol depends on the unproven assumption of
the hardness of the discrete log problem.  After defining the polynomial
(a la Shamir) and computing all the private shares f(i) of the players,
the dealer generates public information which aids in the verification.
A consequence of this is that both the dealer and the players have to
carry out t exponentiations (i.e., t log p multiplications)."

Here: the dealer works over Z_q (q | p-1) and publishes commitments
``c_j = g^{a_j} mod p`` to each coefficient of the sharing polynomial;
player ``i`` accepts iff ``g^{share_i} = prod_j c_j^{i^j} (mod p)``.
Exponentiations are performed by explicit square-and-multiply through the
field object so that the multiplication counts the paper compares against
are metered, not estimated.

The protocol is non-interactive (no challenge coin) and its soundness is
*computational* rather than the paper's unconditional 1/p.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, Optional, Tuple

from repro.fields.gfp import GFp
from repro.fields.irreducible import is_prime
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import SynchronousNetwork, broadcast
from repro.protocols.common import filter_tag


@dataclass(frozen=True)
class FeldmanResult:
    accepted: bool


@dataclass(frozen=True)
class FeldmanGroup:
    """A Schnorr group: p prime, q prime dividing p-1, g of order q."""

    p: int
    q: int
    g: int

    @classmethod
    def generate(cls, q_bits: int = 32, seed: int = 0) -> "FeldmanGroup":
        """A (toy-sized) group: find q prime, p = m*q + 1 prime, g order q."""
        rng = random.Random(seed)
        while True:
            q = rng.getrandbits(q_bits) | (1 << (q_bits - 1)) | 1
            if not is_prime(q):
                continue
            for m in range(2, 2000, 2):
                p = m * q + 1
                if is_prime(p):
                    break
            else:
                continue
            for h in range(2, 100):
                g = pow(h, (p - 1) // q, p)
                if g != 1:
                    return cls(p, q, g)


def _metered_pow(group_field: GFp, base: int, exponent: int) -> int:
    """Square-and-multiply through the field so multiplications are counted."""
    result = group_field.one
    b = base % group_field.p
    e = exponent
    while e:
        if e & 1:
            result = group_field.mul(result, b)
        b = group_field.mul(b, b)
        e >>= 1
    return result


def feldman_program(
    group: FeldmanGroup,
    group_field: GFp,
    n: int,
    t: int,
    me: int,
    dealer: int,
    share: Optional[int],
    coefficients=None,
    tag: str = "feldman",
) -> Generator:
    """One player's side of Feldman VSS.

    The dealer passes its polynomial ``coefficients`` (over Z_q); each
    player holds its ``share`` = f(me) mod q.
    """
    # Round 1: dealer broadcasts the coefficient commitments.
    sends = []
    if me == dealer:
        if coefficients is None or len(coefficients) != t + 1:
            raise ValueError("dealer must supply t+1 coefficients")
        commitments = tuple(
            _metered_pow(group_field, group.g, a) for a in coefficients
        )
        sends = [broadcast((tag + "/commit", commitments))]
    inbox = yield sends
    commitments = filter_tag(inbox, tag + "/commit").get(dealer)
    if (
        not isinstance(commitments, tuple)
        or len(commitments) != t + 1
        or not all(isinstance(c, int) and 0 < c < group.p for c in commitments)
    ):
        return FeldmanResult(False)
    if share is None:
        return FeldmanResult(False)

    # Verification: g^share == prod_j c_j^(i^j) mod p.
    lhs = _metered_pow(group_field, group.g, share)
    rhs = group_field.one
    exponent = 1
    for c in commitments:
        rhs = group_field.mul(rhs, _metered_pow(group_field, c, exponent))
        exponent = exponent * me % group.q
    return FeldmanResult(lhs == rhs)


def run_feldman_vss(
    n: int,
    t: int,
    q_bits: int = 32,
    seed: int = 0,
    cheat_shares: Optional[Dict[int, int]] = None,
) -> Tuple[Dict[int, FeldmanResult], NetworkMetrics]:
    """Run Feldman VSS end to end over a fresh Schnorr group."""
    rng = random.Random(seed)
    group = FeldmanGroup.generate(q_bits, seed)
    group_field = GFp(group.p)
    coefficients = [rng.randrange(group.q) for _ in range(t + 1)]
    shares = {
        pid: sum(a * pow(pid, j, group.q) for j, a in enumerate(coefficients))
        % group.q
        for pid in range(1, n + 1)
    }
    if cheat_shares:
        shares.update(cheat_shares)

    network = SynchronousNetwork(n, field=group_field)
    programs = {
        pid: feldman_program(
            group,
            group_field,
            n,
            t,
            pid,
            1,
            shares[pid],
            coefficients=coefficients if pid == 1 else None,
        )
        for pid in range(1, n + 1)
    }
    outputs = network.run(programs)
    return outputs, network.metrics
