"""Beaver-So [2] style global bit generation — the complexity-assumption
baseline.

Section 1.4: "The global coin protocol of Beaver and So only needs a
majority of good players, but relies on complexity assumptions
(specifically, the intractability of factoring), which in turn makes it
inefficient.  Furthermore, the generation of bits is limited to a
pre-set size."

We model the *cost shape and trust profile* of that construction with a
Blum-Blum-Shub-style generator over a Blum integer N = p*q: a one-time
distributed seed x_0 (here drawn from a shared coin), bits produced by
repeated squaring modulo N.  The two properties the paper contrasts
against are made measurable:

* **pre-set size** — the construction fixes its bit budget at setup
  (:class:`BeaverSoGenerator` raises :class:`BudgetExhausted` beyond it),
  whereas the D-PRBG "generation process is endless";
* **cost under the assumption** — every bit costs a multiplication of
  log-N-sized numbers (1024+ bits for factoring hardness), metered here
  through a :class:`~repro.fields.gfp.GFp`-style counter.

This is a *shape* baseline, not a full MPC re-implementation of [2]:
the distributed-squaring subprotocol is collapsed into its per-bit
modular multiplication cost, which is the quantity Section 1.4 compares.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.fields.irreducible import is_prime


class BudgetExhausted(Exception):
    """The pre-set bit budget is spent ([2]'s fixed generation size)."""


def _random_prime_3mod4(bits: int, rng: random.Random) -> int:
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 3
        if candidate % 4 == 3 and is_prime(candidate):
            return candidate


@dataclass
class BeaverSoCosts:
    """Metered per-run costs."""

    modulus_bits: int = 0
    multiplications: int = 0

    def bit_weighted_work(self) -> int:
        """Multiplications weighted by naive big-int cost (bits^2 words)."""
        return self.multiplications * self.modulus_bits**2


class BeaverSoGenerator:
    """A pre-sized, factoring-based bit generator.

    Parameters
    ----------
    budget:
        Total bits the instance can ever produce (fixed at setup).
    modulus_bits:
        Size of the Blum integer; the paper-era security floor is 1024,
        kept smaller by default so tests stay fast.
    """

    def __init__(self, budget: int, modulus_bits: int = 128, seed: int = 0):
        rng = random.Random(seed)
        half = modulus_bits // 2
        p = _random_prime_3mod4(half, rng)
        q = _random_prime_3mod4(half, rng)
        while q == p:
            q = _random_prime_3mod4(half, rng)
        self.modulus = p * q
        self.budget = budget
        self.produced = 0
        self.costs = BeaverSoCosts(modulus_bits=self.modulus.bit_length())
        # the distributed seed: in [2] jointly generated; here drawn once
        # (e.g. from one shared coin) and squared into a quadratic residue
        self._state = pow(rng.randrange(2, self.modulus - 1), 2, self.modulus)
        self.costs.multiplications += 1

    def bit(self) -> int:
        """The next pseudo-random bit (one modular squaring)."""
        if self.produced >= self.budget:
            raise BudgetExhausted(
                f"pre-set size of {self.budget} bits exhausted — [2] requires "
                f"a fresh (distributed) setup to continue"
            )
        self._state = self._state * self._state % self.modulus
        self.costs.multiplications += 1
        self.produced += 1
        return self._state & 1

    def bits(self, count: int):
        return [self.bit() for _ in range(count)]
