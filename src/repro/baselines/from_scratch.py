"""From-scratch shared coin generation — the baseline Coin-Gen beats.

Section 4: "A straightforward way to generate a coin would be to
interpolate a number of polynomials which at least equals the number of
the faults to be tolerated.  Coins generated this way, however, would
still be highly expensive.  In this section we show how to achieve this
with just one polynomial interpolation."

The baseline here is deliberately *optimistic* for the competition: t+1
dealers each Shamir-share a fresh random secret; at expose time every
player announces its share of each dealing, each dealing is
Berlekamp-Welch-decoded separately (t+1 interpolations per player per
coin), and the coin is the sum of the t+1 secrets.  We charge nothing for
dealing verification, which any real from-scratch protocol (e.g.
Feldman-Micali [14]: O(n^4 log^2 n) computation, O(n^5) messages) must
add on top.  Even so, the D-PRBG's single interpolation per coin wins —
that is experiment E10.
"""

from __future__ import annotations

import random
from typing import Dict, Generator, Optional, Tuple

from repro.fields.base import Element, Field
from repro.net.metrics import NetworkMetrics
from repro.net.simulator import SynchronousNetwork, multicast, unicast
from repro.sharing.shamir import ShamirScheme
from repro.poly.berlekamp_welch import DecodingError, berlekamp_welch
from repro.protocols.common import filter_tag, valid_element, valid_element_tuple


def from_scratch_program(
    field: Field,
    n: int,
    t: int,
    me: int,
    rng: Optional[random.Random],
    tag: str = "fs",
) -> Generator:
    """One player's side of one from-scratch coin.

    Players 1..t+1 act as dealers.  Round 1: deal; round 2: everyone
    announces its share vector; each dealing is decoded separately.
    Returns the coin value (sum of the t+1 secrets) or None.
    """
    scheme = ShamirScheme(field, n, t)
    dealers = list(range(1, t + 2))

    # Round 1: dealers deal.
    sends = []
    if me in dealers:
        poly = scheme.share_polynomial(field.random(rng), rng)
        sends = [
            unicast(j, (tag + "/sh", poly(scheme.point(j))))
            for j in range(1, n + 1)
        ]
    inbox = yield sends
    got = filter_tag(inbox, tag + "/sh")
    my_shares = tuple(
        got.get(d) if valid_element(field, got.get(d)) else field.zero
        for d in dealers
    )

    # Round 2: announce the share vector; decode each dealing separately.
    inbox = yield [multicast((tag + "/open", my_shares))]
    announced = {
        src: vec
        for src, vec in filter_tag(inbox, tag + "/open").items()
        if valid_element_tuple(field, vec, len(dealers))
    }
    total = field.zero
    for index, dealer in enumerate(dealers):
        pts = [
            (scheme.point(src), vec[index])
            for src, vec in sorted(announced.items())
        ]
        if len(pts) < 3 * t + 1:
            return None
        try:
            poly, good = berlekamp_welch(field, pts, t, max_errors=t)
        except DecodingError:
            return None
        if len(good) < len(pts) - t:
            return None
        total = field.add(total, poly(field.zero))
    return total


def run_from_scratch_coin(
    field: Field,
    n: int,
    t: int,
    seed: int = 0,
    faulty_programs: Optional[Dict[int, Generator]] = None,
) -> Tuple[Dict[int, Optional[Element]], NetworkMetrics]:
    """Generate and immediately expose one from-scratch coin."""
    network = SynchronousNetwork(n, field=field, allow_broadcast=False)
    programs = {}
    faulty_programs = faulty_programs or {}
    for pid in range(1, n + 1):
        if pid in faulty_programs:
            if faulty_programs[pid] is not None:
                programs[pid] = faulty_programs[pid]
            continue
        programs[pid] = from_scratch_program(
            field, n, t, pid, random.Random(seed * 65_537 + pid)
        )
    honest = [pid for pid in programs if pid not in faulty_programs]
    outputs = network.run(programs, wait_for=honest)
    return outputs, network.metrics
