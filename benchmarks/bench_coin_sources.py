"""E15 (Section 1.4, coin-source comparison) — four ways to get coins.

The paper's Section 1.4 narrative, condensed to measurable columns:

* **D-PRBG (ours)** — unconditional, endless, 1 dealer interaction ever;
* **Rabin [17]** — unconditional, endless, but 1 dealer interaction *per
  coin*;
* **from-scratch** — unconditional, no dealer, t+1 interpolations/coin;
* **Beaver-So [2]** — computational (factoring), pre-set size, one
  big-modulus multiplication per bit.
"""

import pytest

from repro.baselines import (
    BeaverSoGenerator,
    BudgetExhausted,
    RabinDealerService,
    run_from_scratch_coin,
)
from repro.core import BootstrapCoinSource
from repro.fields import GF2k

K = 32
FIELD = GF2k(K)
N, T = 7, 1
COINS = 8


def test_dprbg_source(benchmark, report):
    def run():
        source = BootstrapCoinSource(FIELD, N, T, batch_size=COINS, seed=1)
        return [source.toss_element() for _ in range(COINS)], source

    values, source = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(set(values)) == COINS
    report.row(
        f"D-PRBG       : {COINS} coins, dealer interactions=1, "
        f"assumption=none, endless=yes"
    )


def test_rabin_source(benchmark, report):
    def run():
        service = RabinDealerService(FIELD, N, T, seed=2)
        return [service.toss_element() for _ in range(COINS)], service

    values, service = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(set(values)) == COINS
    assert service.dealer_invocations == COINS
    report.row(
        f"Rabin [17]   : {COINS} coins, dealer interactions={COINS}, "
        f"assumption=none, endless=only while the dealer lives"
    )


def test_from_scratch_source(benchmark, report):
    def run():
        return [
            run_from_scratch_coin(FIELD, N, T, seed=seed)[0][1]
            for seed in range(COINS)
        ]

    values = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(set(values)) >= COINS - 1
    report.row(
        f"from-scratch : {COINS} coins, dealer interactions=0, "
        f"assumption=none, {T + 1} interpolations/coin (vs ~1 for D-PRBG)"
    )


def test_beaver_so_source(benchmark, report):
    budget = COINS * K

    def run():
        gen = BeaverSoGenerator(budget=budget, modulus_bits=256, seed=3)
        return gen.bits(budget), gen

    bits, gen = benchmark.pedantic(run, rounds=2, iterations=1)
    assert len(bits) == budget
    with pytest.raises(BudgetExhausted):
        gen.bit()
    report.row(
        f"Beaver-So [2]: {COINS}x{K} bits, assumption=factoring, "
        f"PRE-SET size (budget exhausts), "
        f"{gen.costs.multiplications} big-int muls "
        f"({gen.costs.bit_weighted_work():,} bit-weighted work)"
    )


def test_shape_summary(report, benchmark):
    """The qualitative table Section 1.4 paints, asserted."""
    source = BootstrapCoinSource(FIELD, N, T, batch_size=COINS, seed=4)
    for _ in range(COINS):
        source.toss_element()
    rabin = RabinDealerService(FIELD, N, T, seed=5)
    for _ in range(COINS):
        rabin.toss_element()
    assert rabin.dealer_invocations == COINS > 1  # continuous dependence
    gen = BeaverSoGenerator(budget=4, modulus_bits=128, seed=6)
    gen.bits(4)
    with pytest.raises(BudgetExhausted):
        gen.bit()  # pre-set size
    # ours: endless (another batch regenerates transparently)
    more = [source.toss_element() for _ in range(COINS)]
    assert len(set(more)) == COINS
    report.row(
        "verdict: only the D-PRBG is simultaneously unconditional, "
        "endless, and dealer-free after setup"
    )
    benchmark(lambda: BootstrapCoinSource(FIELD, N, T, batch_size=4, seed=7).toss())
