"""E16 (Section 1.2, proactive maintenance) — refresh & recovery costs.

The proactive extension the paper motivates: refreshing H sealed coins'
shares between epochs, and re-provisioning a recovered player.  Both
reuse the Coin-Gen agreement machinery, so their cost should amortize in
H exactly like Coin-Gen's does in M.
"""

import random

import pytest

from repro.fields import GF2k
from repro.protocols.coin_expose import make_dealer_coin
from repro.protocols.recovery import run_recovery
from repro.protocols.refresh import run_refresh

K = 32
FIELD = GF2k(K)
N, T = 7, 1


def make_table(count, seed):
    rng = random.Random(seed)
    table = {pid: [] for pid in range(1, N + 1)}
    for index in range(count):
        _, shares = make_dealer_coin(FIELD, N, T, f"m{seed}-{index}", rng)
        for pid in range(1, N + 1):
            table[pid].append(shares[pid])
    return table


@pytest.mark.parametrize("H", [1, 8, 32])
def test_refresh_cost(benchmark, report, H):
    def run():
        table = make_table(H, seed=H)
        return run_refresh(FIELD, N, T, table, seed=H + 1)

    outputs, metrics = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(o.success for o in outputs.values())
    report.row(
        f"refresh H={H:3d}: bits/coin={metrics.bits / H:10.1f}, "
        f"interpolations/player={metrics.ops(2).interpolations} "
        f"(independent of H)"
    )


def test_refresh_amortizes_like_coin_gen(report, benchmark):
    table1 = make_table(1, seed=50)
    table32 = make_table(32, seed=51)
    _, m1 = run_refresh(FIELD, N, T, table1, seed=52)
    _, m32 = run_refresh(FIELD, N, T, table32, seed=53)
    per1 = m1.bits / 1
    per32 = m32.bits / 32
    assert per32 < per1 / 4
    assert m1.ops(2).interpolations == m32.ops(2).interpolations
    report.row(
        f"amortization: bits/coin H=1 -> {per1:,.0f}, H=32 -> {per32:,.0f} "
        f"(same 1/H knee as Coin-Gen)"
    )
    benchmark(lambda: run_refresh(FIELD, N, T, make_table(4, seed=54), seed=55))


def test_recovery_cost(benchmark, report):
    def run():
        table = make_table(4, seed=60)
        # blank player 5's shares (it lost them while corrupted)
        from repro.protocols.coin_expose import CoinShare

        table[5] = [
            CoinShare(c.coin_id, c.senders, c.t, None) for c in table[5]
        ]
        return run_recovery(FIELD, N, T, recovering=5, coin_table=table, seed=61)

    outputs, metrics = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(o.success for o in outputs.values())
    report.row(
        f"recovery of 4 coins: total bits={metrics.bits:,}, "
        f"interpolations/player={metrics.ops(2).interpolations} "
        f"(+1 masked-decode at the recovering player: "
        f"{metrics.ops(5).interpolations})"
    )
