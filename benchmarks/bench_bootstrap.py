"""E9 (Fig. 1 + Section 1.2) — bootstrapping amortizes the seed away.

Paper claims: "Since the cost of the initial seed can now effectively be
neglected, we get very fast coin generation" and, against Rabin [17],
"our method is self-sufficient once it gets kicked off" whereas "[17]
requires the dealer to continuously provide them."

Regenerated series: cumulative per-coin cost across batches (falling
toward the steady-state Coin-Gen cost) and the dealer-dependence
comparison with the Rabin service.
"""

import pytest

from repro.baselines import RabinDealerService
from repro.core import BootstrapCoinSource
from repro.fields import GF2k

K = 32
FIELD = GF2k(K)
N, T = 7, 1


def test_per_coin_cost_falls_across_batches(report, benchmark):
    source = BootstrapCoinSource(FIELD, N, T, batch_size=16, seed=21)
    series = []
    for batch in range(4):
        for _ in range(16):
            source.toss_element()
        summary = source.amortized_cost_summary()
        series.append(summary["bits_per_coin"])
        report.row(
            f"after batch {source.epoch}: bits/coin={summary['bits_per_coin']:,.0f}, "
            f"interpolations/coin={summary['interpolations_per_coin_busiest_player']:.2f}, "
            f"messages/coin={summary['messages_per_coin']:.1f}"
        )
    # steady state: later batches cost no more per coin than the first
    assert series[-1] <= series[0] * 1.25
    benchmark(lambda: BootstrapCoinSource(FIELD, N, T, batch_size=8, seed=22).tosses(8))


def test_dealer_dependence_vs_rabin(report, benchmark):
    """Fig. 1's qualitative win: dealer interactions stay at 1 forever,
    while Rabin's service needs one per coin."""
    coins = 12
    source = BootstrapCoinSource(FIELD, N, T, batch_size=8, seed=23)
    for _ in range(coins):
        source.toss_element()
    rabin = RabinDealerService(FIELD, N, T, seed=24)
    for _ in range(coins):
        rabin.toss_element()
    report.row(
        f"{coins} coins: bootstrap dealer interactions = 1 (initial seed), "
        f"Rabin [17] dealer interactions = {rabin.dealer_invocations}"
    )
    assert rabin.dealer_invocations == coins
    benchmark(lambda: RabinDealerService(FIELD, N, T, seed=25).toss_element())


def test_seed_cost_amortizes_away(report, benchmark):
    """The initial seed is O(k) coins; after B batches of M coins its
    share of the total cost is O(1/(BM))."""
    source = BootstrapCoinSource(FIELD, N, T, batch_size=32, seed=26)
    for _ in range(64):
        source.toss_element()
    generated = source.coins_generated
    initial = source.initial_seed_size
    ratio = initial / generated
    report.row(
        f"initial seed {initial} coins vs {generated} generated: "
        f"seed share = {ratio:.3f} (falls as 1/(BM))"
    )
    assert ratio < 0.25
    benchmark(lambda: BootstrapCoinSource(FIELD, N, T, batch_size=16, seed=27).toss())
