"""E17 (design ablation) — agreement-substrate choices.

DESIGN.md Section 6: Coin-Gen needs a deterministic BA and a graded
broadcast.  This bench quantifies the design space:

* phase-king BA (used): O(1)-size messages, 2(t+1) rounds, needs n > 4t;
* EIG BA (provided): optimal resilience n > 3t, but O(n^t)-size messages
  — the classic cost that motivates coin-based randomized BA;
* grade-cast: 3 rounds, the n^2 x ntk clique-distribution carrier;
* full Byzantine broadcast (grade-cast + BA): what replacing the Section
  3 ideal channel costs.
"""

import pytest

from repro.fields import GF2k
from repro.protocols.ba import run_phase_king
from repro.protocols.broadcast import run_broadcast
from repro.protocols.eig import run_eig
from repro.net.simulator import SynchronousNetwork
from repro.protocols.gradecast import parallel_gradecast

FIELD = GF2k(32)


@pytest.mark.parametrize("n,t", [(7, 1), (9, 2), (13, 3)])
def test_phase_king_cost(benchmark, report, n, t):
    inputs = {pid: pid % 2 for pid in range(1, n + 1)}
    outputs, metrics = benchmark.pedantic(
        lambda: run_phase_king(n, t, inputs), rounds=3, iterations=1
    )
    assert len(set(outputs.values())) == 1
    report.row(
        f"phase-king n={n:2d} t={t}: rounds={metrics.rounds}, "
        f"bits={metrics.bits:6d} (claim: 2(t+1) rounds, O(n^2) bits)"
    )


@pytest.mark.parametrize("n,t", [(4, 1), (7, 2)])
def test_eig_cost(benchmark, report, n, t):
    inputs = {pid: pid % 2 for pid in range(1, n + 1)}
    outputs, metrics = benchmark.pedantic(
        lambda: run_eig(n, t, inputs), rounds=3, iterations=1
    )
    assert len(set(outputs.values())) == 1
    report.row(
        f"EIG        n={n:2d} t={t}: rounds={metrics.rounds}, "
        f"bits={metrics.bits:6d} (claim: t+1 rounds, O(n^t) size)"
    )


def test_eig_vs_phase_king_tradeoff(report, benchmark):
    """The ablation verdict: at equal (n, t) = (9, 2), EIG pays far more
    bits for its extra resilience headroom."""
    n, t = 9, 2
    inputs = {pid: pid % 2 for pid in range(1, n + 1)}
    _, pk = run_phase_king(n, t, inputs)
    _, eig = run_eig(n, t, inputs)
    assert eig.bits > 3 * pk.bits
    assert eig.rounds <= pk.rounds
    report.row(
        f"ablation n={n} t={t}: EIG {eig.bits:,} bits vs phase-king "
        f"{pk.bits:,} bits ({eig.bits / pk.bits:.1f}x) — phase-king wins "
        f"whenever n > 4t, which Coin-Gen's n >= 6t+1 guarantees"
    )
    benchmark(lambda: run_phase_king(n, t, inputs))


def test_gradecast_cost(benchmark, report):
    n, t = 7, 1

    def run():
        net = SynchronousNetwork(n, field=FIELD, allow_broadcast=False)
        programs = {
            pid: parallel_gradecast(n, t, pid, ("v", pid))
            for pid in range(1, n + 1)
        }
        out = net.run(programs)
        return out, net.metrics

    outputs, metrics = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(graded[1][1] == 2 for graded in outputs.values())
    report.row(
        f"grade-cast x n: rounds={metrics.rounds}, "
        f"messages={metrics.paper_messages} (3 rounds of n^2={n * n})"
    )


def test_broadcast_vs_ideal_channel(report, benchmark):
    """What the Section 3 'assumed broadcast channel' really costs when
    built from scratch (Section 4's replacement)."""
    n, t = 9, 2
    outputs, metrics = run_broadcast(n, t, sender=1, value=12345, field=FIELD)
    assert set(outputs.values()) == {12345}
    report.row(
        f"real broadcast n={n} t={t}: {metrics.rounds} rounds, "
        f"{metrics.paper_messages} messages vs 1 ideal-channel use — the "
        f"gap Section 4's protocols avoid paying per announcement"
    )
    benchmark(lambda: run_broadcast(n, t, sender=1, value=7, field=FIELD))
