"""E5 (Section 1.4 / 3.1) — VSS head-to-head: ours vs [9] vs [12].

Paper claims, for one secret with security parameter k:

* ours: 2n messages / 2nk bits, 2 interpolations, error 1/p;
* cut-and-choose [9]: k interpolations for error 2^-k, O(nk log n) bits;
* Feldman [12]: O(n) communication but t exponentiations = t log p
  multiplications per party, under a discrete-log assumption.

Shape to reproduce: ours wins communication and interpolation counts at
equal (or better) soundness; Feldman pays orders of magnitude more
multiplications.
"""

import pytest

from repro.baselines import run_cut_and_choose_vss, run_feldman_vss
from repro.fields import GF2k
from repro.protocols.vss import run_vss

K = 32
FIELD = GF2k(K)
N, T = 7, 2
CHALLENGES = 16  # [9] at error 2^-16 (still weaker than our 2^-32)


def test_ours(benchmark, report):
    results, metrics = benchmark.pedantic(
        lambda: run_vss(FIELD, N, T, seed=1), rounds=3, iterations=1
    )
    assert all(r.accepted for r in results.values())
    report.row(
        f"ours (Fig.2)      : interp/player={metrics.ops(2).interpolations}, "
        f"muls/player={metrics.ops(2).muls}, bits={metrics.bits}, "
        f"error=1/2^{K}"
    )


def test_cut_and_choose(benchmark, report):
    results, metrics = benchmark.pedantic(
        lambda: run_cut_and_choose_vss(FIELD, N, T, challenges=CHALLENGES, seed=2),
        rounds=3,
        iterations=1,
    )
    assert all(r.accepted for r in results.values())
    report.row(
        f"cut-and-choose [9]: interp/player={metrics.ops(2).interpolations}, "
        f"muls/player={metrics.ops(2).muls}, bits={metrics.bits}, "
        f"error=1/2^{CHALLENGES}"
    )


def test_feldman(benchmark, report):
    results, metrics = benchmark.pedantic(
        lambda: run_feldman_vss(N, T, q_bits=K, seed=3), rounds=3, iterations=1
    )
    assert all(r.accepted for r in results.values())
    report.row(
        f"Feldman [12]      : interp/player={metrics.ops(2).interpolations}, "
        f"muls/player={metrics.ops(2).muls}, bits={metrics.bits}, "
        f"error=computational (dlog)"
    )


def test_shape_ours_wins(report, benchmark):
    """The comparison table's verdicts.

    Feldman's muls are over a cryptographic group ("a large prime p,
    length 1024 bits" in the paper); ours are over GF(2^32).  To compare
    computation fairly we weight each multiplication by its naive bit
    cost (bit_length^2 word operations), which is exactly the unit of the
    paper's addition-counting model.
    """
    _, ours = run_vss(FIELD, N, T, seed=4)
    _, cc = run_cut_and_choose_vss(FIELD, N, T, challenges=CHALLENGES, seed=4)
    _, feld = run_feldman_vss(N, T, q_bits=256, seed=4)

    # interpolations: 2 vs k+1 vs 0
    assert ours.ops(2).interpolations < cc.ops(2).interpolations
    # communication: ours beats cut-and-choose by ~the challenge factor
    assert ours.bits < cc.bits

    ours_work = ours.ops(2).muls * FIELD.bit_length**2
    feld_work = feld.ops(2).muls * feld.element_bits**2
    # Feldman's group-sized exponentiations dominate at real parameters —
    # and this is at 256-bit groups; the paper cites 1024-bit.
    assert feld_work > 5 * ours_work
    report.row(
        f"shape: bits ratio cc/ours = {cc.bits / ours.bits:.1f} (>1), "
        f"bit-weighted work ratio feldman(256b)/ours = "
        f"{feld_work / max(1, ours_work):.1f} (>>1; paper assumes 1024b)"
    )
    benchmark(lambda: run_vss(FIELD, N, T, seed=5))
