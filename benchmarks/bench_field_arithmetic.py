"""E11 (Section 2 remark) — naive GF(2^k) vs the special O(k log k) field.

Paper claim: "we note that in practice, when k is small, working over
GF(2^k) with the naive O(k^2) multiplication is faster than working over
our special field with the O(k log k) multiplication, because of the
sizes of the constants involved.  So an implementation should be careful
about which method it uses."

Regenerated series: wall-clock time per multiplication for (a) table-
based GF(2^k), (b) naive carry-less GF(2^k), (c) the NTT-based special
field, across k.
"""

import random

import pytest

from repro.fields import GF2k, build_special_field


def mul_workload(field, pairs):
    def run():
        total = field.zero
        for a, b in pairs:
            total = field.add(total, field.mul(a, b))
        return total

    return run


def make_pairs(field, count=256, seed=0):
    rng = random.Random(seed)
    return [(field.random(rng), field.random(rng)) for _ in range(count)]


@pytest.mark.parametrize("k", [8, 16])
def test_gf2k_tables(benchmark, report, k):
    field = GF2k(k, tables=True)
    pairs = make_pairs(field)
    benchmark(mul_workload(field, pairs))
    report.row(f"k={k:3d} GF(2^k) log/exp tables: see benchmark table")


@pytest.mark.parametrize("k", [8, 16, 32, 64, 128])
def test_gf2k_naive(benchmark, report, k):
    field = GF2k(k, tables=False)
    pairs = make_pairs(field)
    benchmark(mul_workload(field, pairs))
    report.row(f"k={k:3d} GF(2^k) naive clmul   : see benchmark table")


@pytest.mark.parametrize("k", [32, 64, 128])
def test_gf2k_karatsuba(benchmark, report, k):
    """Ablation arm: Karatsuba carry-less multiplication.  In pure
    Python the O(k^2) modular reduction dominates, so the interleaved
    naive loop keeps winning at protocol sizes — the paper's "be careful
    which method you use" remark, once more."""
    field = GF2k(k, karatsuba=True)
    pairs = make_pairs(field)
    benchmark(mul_workload(field, pairs))
    report.row(f"k={k:3d} GF(2^k) karatsuba     : see benchmark table")


@pytest.mark.parametrize("k", [8, 16, 32, 64, 128])
def test_special_field(benchmark, report, k):
    field = build_special_field(k)
    pairs = make_pairs(field)
    benchmark(mul_workload(field, pairs))
    report.row(
        f"k={k:3d} special GF({field.q}^{field.l}) NTT: see benchmark table"
    )


def test_small_k_naive_wins(report, benchmark):
    """The paper's explicit remark, measured: at k=16 the naive GF(2^k)
    multiplication beats the special field's NTT machinery."""
    import time

    def time_per_mul(field, pairs, reps=20):
        start = time.perf_counter()
        workload = mul_workload(field, pairs)
        for _ in range(reps):
            workload()
        return (time.perf_counter() - start) / (reps * len(pairs))

    for k in (16, 32):
        naive = GF2k(k, tables=False)
        special = build_special_field(k)
        t_naive = time_per_mul(naive, make_pairs(naive))
        t_special = time_per_mul(special, make_pairs(special))
        report.row(
            f"k={k}: naive {t_naive * 1e6:7.2f} us/mul vs special "
            f"{t_special * 1e6:7.2f} us/mul -> "
            f"{'naive' if t_naive < t_special else 'special'} wins"
        )
        assert t_naive < t_special  # the paper's small-k remark
    benchmark(mul_workload(GF2k(16, tables=False), make_pairs(GF2k(16))))
