"""E12 (Section 1.1) — coins are unanimous and unbiased under attack.

Paper claim: a shared coin gives "a random binary output, not known to
any of them beforehand.  All players in the system view the same coin
(unanimity), and no subset of players smaller than a given size would
have any influence on the outcome."

Regenerated series: bit bias and statistical battery verdicts for the
output stream under each adversary class (honest, silent, noise,
equivocating/rushing), plus a unanimity sweep.
"""

import pytest

from repro.analysis import stats
from repro.core import BootstrapCoinSource
from repro.fields import GF2k
from repro.net.adversary import Adversary

K = 32
FIELD = GF2k(K)
N, T = 7, 1

ADVERSARIES = {
    "honest": None,
    "silent": lambda epoch: Adversary({3}, behaviour="silent"),
    "noise": lambda epoch: Adversary({5}, behaviour="noise", seed=epoch),
    "rushing-noise": lambda epoch: Adversary(
        {2}, behaviour="noise", rushing=True, seed=epoch
    ),
}


@pytest.mark.parametrize("name", sorted(ADVERSARIES))
def test_bias_under_adversary(benchmark, report, name):
    schedule = ADVERSARIES[name]
    source = BootstrapCoinSource(
        FIELD, N, T, batch_size=16, seed=hash(name) % 1000,
        adversary_schedule=schedule,
    )
    bits = source.tosses(512)
    bias = stats.bias(bits)
    battery = stats.battery(bits)
    verdicts = ", ".join(
        f"{key}={'pass' if r.passed else 'FAIL'}" for key, r in battery.items()
    )
    report.row(f"{name:14s}: bias={bias:.4f}, {verdicts}")
    assert bias < 0.1
    assert battery["monobit"].passed
    benchmark(
        lambda: BootstrapCoinSource(
            FIELD, N, T, batch_size=8, seed=1, adversary_schedule=schedule
        ).tosses(32)
    )


def test_unanimity_sweep(report, benchmark):
    """Every exposed coin is seen identically by all honest players —
    the expose path raises UnanimityError otherwise, so a clean sweep
    IS the measurement.  Failure probability bound: Mn/2^k."""
    from repro.analysis import complexity as cx

    exposures = 0
    for seed in range(4):
        source = BootstrapCoinSource(
            FIELD, N, T, batch_size=8, seed=seed,
            adversary_schedule=lambda e: Adversary({6}, behaviour="noise", seed=e),
        )
        for _ in range(8):
            source.toss_element()
            exposures += 1
    bound = cx.coin_unanimity_error(exposures, N, K)
    report.row(
        f"{exposures} exposures under noise adversary: 0 unanimity "
        f"failures (paper bound {bound:.2e})"
    )
    benchmark(lambda: BootstrapCoinSource(FIELD, N, T, batch_size=4, seed=9).toss())
