"""E6 (Lemma 6 + Corollary 2) — Bit-Gen cost.

Paper claim: generating M shared secrets costs Mtk log k + 2Mk log k
additions and 2 interpolations per player, 3 rounds, nMk + 2n^2k bits —
amortized n log k + O(log k) additions and n + O(1) messages per bit.

Regenerated series: per-M interpolation counts and the bit-volume slope
(the nMk term), for two system sizes.
"""

import pytest

from repro.analysis import complexity as cx
from repro.fields import GF2k
from repro.protocols.bit_gen import run_bit_gen

K = 32
FIELD = GF2k(K)


@pytest.mark.parametrize("n,t", [(7, 1), (13, 2)])
@pytest.mark.parametrize("M", [4, 16, 64])
def test_bit_gen_cost(benchmark, report, n, t, M):
    outputs, metrics = benchmark.pedantic(
        lambda: run_bit_gen(FIELD, n, t, M=M, seed=3, blinding=False),
        rounds=3,
        iterations=1,
    )
    assert all(o.accepted for o in outputs.values())
    claim = cx.bit_gen(n, t, K, M)

    interp = metrics.ops(2).interpolations
    assert interp == claim.interpolations == 2

    report.row(
        f"n={n:2d} t={t} M={M:3d}: interp/player={interp} (claim 2), "
        f"measured_bits={metrics.bits}, claimed_bits={claim.bits:.0f}, "
        f"bits/coin-bit={metrics.bits / (M * K):6.2f} "
        f"(claim ~n+O(1)={n}+)"
    )


def test_bit_volume_slope_is_nk(report, benchmark):
    """Lemma 6's nMk term: each extra dealing adds exactly nk bits."""
    n, t = 7, 1
    _, m8 = run_bit_gen(FIELD, n, t, M=8, seed=4, blinding=False)
    _, m40 = run_bit_gen(FIELD, n, t, M=40, seed=4, blinding=False)
    slope = (m40.bits - m8.bits) / 32
    assert slope == n * K
    report.row(f"bit-volume slope per dealing = {slope:.0f} (claim nk = {n * K})")
    benchmark(lambda: run_bit_gen(FIELD, n, t, M=16, seed=5))


def test_amortized_additions_per_bit(report, benchmark):
    """Corollary 2: ~ (n+O(1)) log k additions per produced bit.  We check
    the *scaling*: per-bit computation is flat in M (perfect amortization)
    and the measured multiplication count per coin-bit is O(n/k)... i.e.
    tiny — dominated by the per-instance Horner step."""
    n, t = 7, 1
    per_bit = {}
    for M in (8, 64):
        _, metrics = run_bit_gen(FIELD, n, t, M=M, seed=6, blinding=False)
        per_bit[M] = metrics.max_player_ops().muls / (M * K)
    # amortization: per-bit computation must not grow with M
    assert per_bit[64] <= per_bit[8] + 0.05
    report.row(
        f"muls per coin-bit: M=8 -> {per_bit[8]:.3f}, M=64 -> {per_bit[64]:.3f} "
        f"(flat in M; Corollary 2)"
    )
    benchmark(lambda: run_bit_gen(FIELD, n, t, M=32, seed=7))
