"""E8 (Lemma 8) — Coin-Gen terminates in constant expected time.

Paper claim: "The protocol re-iterates BA only if the previous execution
has ended with a 0 outcome.  This can happen only if P_l is faulty.  As
the faulty players are set before l is exposed, there is a probability of
at least (n - t)/n that BA will terminate with a value of 1."

Regenerated series: the iteration histogram across many runs against a
worst-case adversary (faulty players stay silent, so any faulty leader's
proposal fails), compared with the geometric bound n/(n-t).
"""

import pytest

from repro.analysis import complexity as cx
from repro.fields import GF2k
from repro.net.adversary import silent_program
from repro.protocols.coin_gen import run_coin_gen

K = 32
FIELD = GF2k(K)


def iterations_for(seed, n=7, t=1, faulty_ids=(4,)):
    faulty = {pid: silent_program() for pid in faulty_ids}
    outputs, _ = run_coin_gen(
        FIELD, n, t, M=1, seed=seed, faulty_programs=faulty,
        max_iterations=12,
    )
    honest = {pid: o for pid, o in outputs.items() if pid not in faulty}
    iters = {o.iterations for o in honest.values()}
    assert len(iters) == 1
    assert all(o.success for o in honest.values())
    return iters.pop()


def test_expected_iterations_honest(report, benchmark):
    """No faults: the first leader always verifies -> exactly 1 BA."""
    counts = [
        run_coin_gen(FIELD, 7, 1, M=1, seed=s)[0][1].iterations
        for s in range(10)
    ]
    assert counts == [1] * 10
    report.row("no faults: iterations = 1 in 10/10 runs (claim: 1)")
    benchmark(lambda: run_coin_gen(FIELD, 7, 1, M=1, seed=99))


def test_expected_iterations_with_faults(report, benchmark):
    """t silent faults: iteration count is geometric-ish with success
    probability >= (n - t)/n per election."""
    n, t = 7, 1
    trials = 24
    counts = [iterations_for(seed) for seed in range(trials)]
    mean = sum(counts) / trials
    bound = cx.coin_gen_expected_iterations(n, t)
    histogram = {i: counts.count(i) for i in sorted(set(counts))}
    report.row(
        f"t=1 silent fault: iteration histogram {histogram}, "
        f"mean={mean:.2f}, paper bound n/(n-t)={bound:.2f}"
    )
    # mean should be near the geometric bound; always small-constant
    assert mean <= bound + 0.6
    assert max(counts) <= 5
    benchmark(lambda: iterations_for(0))


def test_rounds_constant_in_m(report, benchmark):
    """Round complexity independent of the batch size M."""
    _, m4 = run_coin_gen(FIELD, 7, 1, M=4, seed=1)
    _, m64 = run_coin_gen(FIELD, 7, 1, M=64, seed=1)
    assert m4.rounds == m64.rounds
    report.row(f"rounds: M=4 -> {m4.rounds}, M=64 -> {m64.rounds} (equal)")
    benchmark(lambda: run_coin_gen(FIELD, 7, 1, M=4, seed=2))
