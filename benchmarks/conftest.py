"""Shared fixtures for the benchmark harness.

Every benchmark writes its measured rows to ``benchmarks/results/<id>.txt``
so that EXPERIMENTS.md's paper-vs-measured tables can be regenerated from
a plain ``pytest benchmarks/ --benchmark-only`` run.
"""

import pathlib
import shutil

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_dir():
    """One results set per benchmark session (no cross-run accumulation)."""
    shutil.rmtree(RESULTS_DIR, ignore_errors=True)
    yield


class Reporter:
    """Collects table rows for one experiment and flushes them to disk."""

    def __init__(self, experiment_id: str):
        self.experiment_id = experiment_id
        self.lines = []

    def row(self, text: str) -> None:
        self.lines.append(text)

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.experiment_id}.txt"
        existing = path.read_text() if path.exists() else ""
        with path.open("a") as handle:
            if not existing:
                handle.write(f"# experiment {self.experiment_id}\n")
            for line in self.lines:
                handle.write(line + "\n")


@pytest.fixture()
def report(request):
    """Per-test reporter named after the test's module."""
    module = request.module.__name__.replace("bench_", "")
    reporter = Reporter(module)
    yield reporter
    reporter.flush()
