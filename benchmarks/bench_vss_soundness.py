"""E1 + E3 (Lemmas 1, 3) — soundness of VSS and Batch-VSS.

Paper claims: a cheating dealer is accepted with probability at most
1/p (single VSS) and at most M/p (Batch-VSS).  Over the deliberately
tiny field GF(2^4) (p=16) we run the *optimal* cheaters — which meet the
bounds with equality — and compare empirical acceptance rates.
"""

import random

import pytest

from repro.fields import GF2k
from repro.poly.polynomial import Polynomial
from repro.protocols.batch_vss import run_batch_vss
from repro.protocols.vss import run_vss

TINY = GF2k(4)  # p = 16
N = 7


def optimal_vss_cheater(seed, t=1):
    """Lemma 1's best strategy: guess r* and cancel the bad coefficient."""
    field = TINY
    rng = random.Random(seed + 10_000)
    d = field.random_nonzero(rng)
    r_star = field.random_nonzero(rng)
    offsets = {
        pid: field.mul(d, field.pow(field.element_point(pid), t + 1))
        for pid in range(1, N + 1)
    }
    g = Polynomial.random(field, t, rng) + Polynomial(
        field, [field.zero] * (t + 1) + [field.neg(field.div(d, r_star))]
    )
    results, _ = run_vss(field, N, t, seed=seed, cheat_offsets=offsets, cheat_g=g)
    return all(r.accepted for r in results.values())


def optimal_batch_cheater(seed, M=5, t=1):
    """Lemma 3's best strategy: plant M-1 roots plus r=0."""
    field = TINY
    roots = [field.from_int(v) for v in range(1, M)]
    poly = Polynomial.constant(field, field.one)
    for rho in roots:
        poly = poly * Polynomial(field, [field.neg(rho), field.one])
    cheat_offsets = {
        idx: {
            pid: field.mul(
                poly.coefficient(idx),
                field.pow(field.element_point(pid), t + 1),
            )
            for pid in range(1, N + 1)
        }
        for idx in range(M)
    }
    results, _ = run_batch_vss(
        field, N, t, M=M, seed=seed, cheat_offsets=cheat_offsets
    )
    return all(r.accepted for r in results.values())


def test_e1_vss_soundness(benchmark, report):
    trials = 320
    accepts = sum(optimal_vss_cheater(seed) for seed in range(trials))
    rate = accepts / trials
    bound = 1 / TINY.order
    report.row(
        f"E1 single VSS : empirical accept rate {rate:.4f} over {trials} "
        f"trials vs paper bound 1/p = {bound:.4f}"
    )
    # the optimal cheater should be near (and never far above) the bound
    assert rate <= 3 * bound + 0.02
    assert accepts > 0
    benchmark(lambda: optimal_vss_cheater(1))


@pytest.mark.parametrize("M", [2, 5, 8])
def test_e3_batch_vss_soundness(benchmark, report, M):
    trials = 192
    accepts = sum(optimal_batch_cheater(seed, M=M) for seed in range(trials))
    rate = accepts / trials
    bound = M / TINY.order
    report.row(
        f"E3 batch VSS M={M}: empirical accept rate {rate:.4f} over {trials} "
        f"trials vs paper bound M/p = {bound:.4f}"
    )
    assert rate <= bound + 0.09
    assert rate >= bound - 0.11
    benchmark(lambda: optimal_batch_cheater(1, M=M))


def test_soundness_grows_linearly_in_m(report, benchmark):
    """The shape claim behind Lemma 3: acceptance scales ~linearly in M."""
    trials = 160
    rates = {}
    for M in (2, 8):
        accepts = sum(
            optimal_batch_cheater(seed, M=M) for seed in range(trials)
        )
        rates[M] = accepts / trials
    report.row(f"E3 shape: rate(M=8)/rate(M=2) = "
               f"{rates[8] / max(rates[2], 1e-9):.2f} (claim ~4)")
    assert rates[8] > 1.5 * rates[2]
    benchmark(lambda: optimal_batch_cheater(0, M=2))
