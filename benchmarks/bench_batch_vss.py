"""E4 (Lemma 4 + Corollary 1) — Batch-VSS amortization.

Paper claim: verifying M secrets costs 2Mk log k additions and 2
interpolations per player with 2 rounds of n messages (2nk bits) —
i.e. the amortized cost per secret is 2k log k additions and O(1)
communication, *independent of M*.

The regenerated series: per-secret interpolations, messages, and bits as
M grows — the paper's amortization curve.
"""

import pytest

from repro.analysis import complexity as cx
from repro.fields import GF2k
from repro.protocols.batch_vss import run_batch_vss

K = 32
FIELD = GF2k(K)
N, T = 7, 2

M_SWEEP = [1, 4, 16, 64, 256]


@pytest.mark.parametrize("M", M_SWEEP)
def test_batch_vss_amortization(benchmark, report, M):
    results, metrics = benchmark.pedantic(
        lambda: run_batch_vss(FIELD, N, T, M=M, seed=7), rounds=3, iterations=1
    )
    assert all(r.accepted for r in results.values())

    interp = metrics.ops(2).interpolations
    assert interp == 2  # Lemma 4: independent of M

    per_secret_msgs = metrics.paper_messages / M
    per_secret_bits = metrics.bits / M
    claim = cx.batch_vss(N, K, M)
    report.row(
        f"M={M:4d}: interpolations/player={interp} (claim 2), "
        f"messages/secret={per_secret_msgs:8.2f}, "
        f"bits/secret={per_secret_bits:10.1f}, "
        f"claimed_total_bits={claim.bits:.0f}"
    )


def test_amortized_communication_constant(report, benchmark):
    """Corollary 1's headline: total communication independent of M, so
    the per-secret cost decays as 1/M."""
    _, m1 = run_batch_vss(FIELD, N, T, M=1, seed=8)
    _, m256 = run_batch_vss(FIELD, N, T, M=256, seed=8)
    assert m1.paper_messages == m256.paper_messages
    assert m1.bits == m256.bits
    report.row(
        f"total messages: M=1 -> {m1.paper_messages}, M=256 -> "
        f"{m256.paper_messages} (identical; per-secret cost decays 1/M)"
    )
    benchmark(lambda: run_batch_vss(FIELD, N, T, M=16, seed=9))


def test_computation_linear_in_m(report, benchmark):
    """Lemma 4's 2Mk log k: player multiplications grow by exactly one
    Horner step per extra secret."""
    run_batch_vss(FIELD, N, T, M=16, seed=10)  # warm interpolation caches
    _, m16 = run_batch_vss(FIELD, N, T, M=16, seed=10)
    _, m64 = run_batch_vss(FIELD, N, T, M=64, seed=10)
    delta = m64.max_player_ops().muls - m16.max_player_ops().muls
    assert delta == 48  # one multiplication per extra dealing
    report.row(f"extra muls per extra secret: {delta / 48:.0f} (claim 1)")
    benchmark(lambda: run_batch_vss(FIELD, N, T, M=64, seed=11))
