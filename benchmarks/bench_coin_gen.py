"""E7 (Theorem 2 + Corollary 3) — Coin-Gen amortized cost.

Paper claims: generating M k-ary coins costs n+1 interpolations per
player ("n polynomial interpolations have been saved by using the same
coin for all the invocations"), Mn^2 k + O(n^4 k) total bits — i.e.
n^2 + O(n^4/M) bits per coin bit, approaching n^2 as M grows.

Regenerated series: per-coin communication vs M (the amortization knee)
and the shared-challenge ablation.
"""

import pytest

from repro.analysis import complexity as cx
from repro.fields import GF2k
from repro.protocols.coin_gen import run_coin_gen

K = 32
FIELD = GF2k(K)


@pytest.mark.parametrize("n,t", [(7, 1), (13, 2)])
@pytest.mark.parametrize("M", [4, 16, 64])
def test_coin_gen_cost(benchmark, report, n, t, M):
    outputs, metrics = benchmark.pedantic(
        lambda: run_coin_gen(FIELD, n, t, M=M, seed=9),
        rounds=2,
        iterations=1,
    )
    assert all(o.success for o in outputs.values())

    bits_per_coin_bit = metrics.bits / (M * K)
    claimed = cx.coin_gen_amortized_bits_per_bit(n, K, M)
    interp = metrics.ops(2).interpolations
    report.row(
        f"n={n:2d} t={t} M={M:3d}: interp/player={interp} "
        f"(claim ~n+1={n + 1}+O(1) BA/expose), "
        f"bits/coin-bit={bits_per_coin_bit:9.1f} "
        f"(claim n^2+n^4/M={claimed:9.1f})"
    )


def test_amortization_knee(report, benchmark):
    """Corollary 3: per-coin communication decays toward n^2 as M grows."""
    n, t = 7, 1
    per_bit = {}
    for M in (4, 64):
        _, metrics = run_coin_gen(FIELD, n, t, M=M, seed=10)
        per_bit[M] = metrics.bits / (M * K)
    assert per_bit[64] < per_bit[4] / 4
    report.row(
        f"bits/coin-bit: M=4 -> {per_bit[4]:.1f}, M=64 -> {per_bit[64]:.1f} "
        f"(decaying toward n^2={n * n} as the n^4 term amortizes)"
    )
    benchmark(lambda: run_coin_gen(FIELD, n, t, M=16, seed=11))


def test_shared_challenge_ablation(report, benchmark):
    """Theorem 2's remark: reusing one challenge coin across all n
    Bit-Gen instances saves n-1 interpolations per player."""
    n, t = 7, 1
    _, shared = run_coin_gen(FIELD, n, t, M=4, seed=12, shared_challenge=True)
    _, separate = run_coin_gen(FIELD, n, t, M=4, seed=12, shared_challenge=False)
    saved = separate.ops(2).interpolations - shared.ops(2).interpolations
    assert saved == n - 1
    report.row(
        f"ablation shared_challenge: interpolations saved per player = "
        f"{saved} (claim n-1={n - 1})"
    )
    benchmark(lambda: run_coin_gen(FIELD, n, t, M=4, seed=13))


def test_computation_scales_linearly_in_m(report, benchmark):
    """Theorem 2's Mn^2 k log k: multiplications grow ~n per extra coin
    per player (one Horner step per dealer instance)."""
    n, t = 7, 1
    _, m4 = run_coin_gen(FIELD, n, t, M=4, seed=14)
    _, m36 = run_coin_gen(FIELD, n, t, M=36, seed=14)
    slope = (m36.max_player_ops().muls - m4.max_player_ops().muls) / 32
    assert n <= slope <= 3 * n
    report.row(
        f"muls per extra coin per player = {slope:.1f} (claim ~n={n} "
        f"Horner steps + share evaluation)"
    )
    benchmark(lambda: run_coin_gen(FIELD, n, t, M=8, seed=15))
