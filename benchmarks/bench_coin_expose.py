"""E13 (Theorem 1) — Coin-Expose decodes through t corrupted shares.

Paper claim: "We are guaranteed that since at most t of the players are
faulty, at least 2t+1 players in S ... have proper shares of the coin.
This enables us to use the Berlekamp-Welch decoder to compute the desired
polynomial."

Regenerated series: decode success and cost as the number of injected
share corruptions sweeps from 0 to beyond t.
"""

import random

import pytest

from repro.fields import GF2k
from repro.net.simulator import SynchronousNetwork, multicast
from repro.protocols.coin_expose import coin_expose, make_dealer_coin

K = 32
FIELD = GF2k(K)


def expose_with_liars(n, t, num_liars, seed):
    rng = random.Random(seed)
    secret, shares = make_dealer_coin(FIELD, n, t, f"qc{seed}", rng)
    liars = list(range(1, num_liars + 1))

    def liar_program(coin_id):
        def program():
            yield [multicast(("expose/" + coin_id, rng.randrange(FIELD.order)))]
        return program()

    net = SynchronousNetwork(n, field=FIELD, allow_broadcast=False)
    programs = {}
    for pid in range(1, n + 1):
        if pid in liars:
            programs[pid] = liar_program(f"qc{seed}")
        else:
            programs[pid] = coin_expose(FIELD, pid, shares[pid])
    outputs = net.run(programs, wait_for=[p for p in programs if p not in liars])
    honest_views = {outputs[p] for p in programs if p not in liars}
    return secret, honest_views, net.metrics


@pytest.mark.parametrize("num_liars", [0, 1, 2])
def test_decode_within_capacity(benchmark, report, num_liars):
    n, t = 13, 2
    secret, views, metrics = benchmark.pedantic(
        lambda: expose_with_liars(n, t, num_liars, seed=num_liars),
        rounds=3,
        iterations=1,
    )
    assert views == {secret}
    report.row(
        f"n={n} t={t} liars={num_liars}: decoded correctly, "
        f"one interpolation/player={metrics.ops(5).interpolations}"
    )


def test_beyond_capacity_refuses(report, benchmark):
    """More than t corruptions: the decoder must refuse (None), never
    return a wrong value silently."""
    n, t = 13, 2
    trials = 6
    for seed in range(trials):
        secret, views, _ = expose_with_liars(n, t, t + 2, seed=100 + seed)
        assert len(views) == 1
        view = views.pop()
        assert view is None or view == secret
    report.row(
        f"n={n} t={t} liars={t + 2}: decoder refuses or survives, never "
        f"returns a wrong unanimous value ({trials} trials)"
    )
    benchmark(lambda: expose_with_liars(13, 2, 1, seed=0))


def test_expose_cost_one_interpolation(report, benchmark):
    """Section 5: "the bottleneck for distributed coin generation in such
    a setting is the final interpolation of the coin" — exactly one per
    player per coin, and it cannot be amortized."""
    n, t = 7, 1
    _, _, metrics = expose_with_liars(n, t, 0, seed=200)
    for pid in range(2, n + 1):
        assert metrics.ops(pid).interpolations == 1
    report.row("exactly 1 interpolation per player per exposed coin")
    benchmark(lambda: expose_with_liars(7, 1, 0, seed=201))
