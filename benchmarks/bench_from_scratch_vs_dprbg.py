"""E10 (Section 4 intro) — from-scratch coins vs the D-PRBG.

Paper claim: "A straightforward way to generate a coin would be to
interpolate a number of polynomials which at least equals the number of
the faults to be tolerated.  Coins generated this way, however, would
still be highly expensive.  In this section we show how to achieve this
with just one polynomial interpolation."

Regenerated series: per-coin interpolations and wall time for both
methods as t grows.  The from-scratch baseline is the *optimistic* t+1
dealings variant (no verification charged); real competitors ([14]) are
polynomially worse — see bench_vss_comparison for that axis.
"""

import pytest

from repro.baselines import run_from_scratch_coin
from repro.core import BootstrapCoinSource
from repro.fields import GF2k

K = 32
FIELD = GF2k(K)

SYSTEMS = [(7, 1), (13, 2), (19, 3)]


@pytest.mark.parametrize("n,t", SYSTEMS)
def test_from_scratch_cost(benchmark, report, n, t):
    values, metrics = benchmark.pedantic(
        lambda: run_from_scratch_coin(FIELD, n, t, seed=31),
        rounds=2,
        iterations=1,
    )
    assert len(set(values.values())) == 1
    interp = metrics.ops(2).interpolations
    assert interp == t + 1
    report.row(
        f"from-scratch n={n:2d} t={t}: interpolations/coin={interp} "
        f"(t+1={t + 1}), bits/coin={metrics.bits}"
    )


@pytest.mark.parametrize("n,t", SYSTEMS)
def test_dprbg_cost(benchmark, report, n, t):
    M = 32

    def generate_batch():
        source = BootstrapCoinSource(FIELD, n, t, batch_size=M, seed=32)
        for _ in range(M):
            source.toss_element()
        return source

    source = benchmark.pedantic(generate_batch, rounds=1, iterations=1)
    summary = source.amortized_cost_summary()
    report.row(
        f"D-PRBG      n={n:2d} t={t}: interpolations/coin="
        f"{summary['interpolations_per_coin_busiest_player']:.2f} "
        f"(claim ~1 + (n+1)/M), bits/coin={summary['bits_per_coin']:,.0f}"
    )
    # the headline: ~1 interpolation per exposed coin vs t+1 from scratch
    assert summary["interpolations_per_coin_busiest_player"] < t + 1


def test_who_wins_and_by_how_much(report, benchmark):
    """Shape: the D-PRBG's per-coin interpolation count beats from-scratch
    by a factor ~(t+1), growing with t."""
    rows = []
    for n, t in SYSTEMS:
        _, scratch = run_from_scratch_coin(FIELD, n, t, seed=33)
        source = BootstrapCoinSource(FIELD, n, t, batch_size=32, seed=34)
        for _ in range(32):
            source.toss_element()
        dprbg_interp = source.amortized_cost_summary()[
            "interpolations_per_coin_busiest_player"
        ]
        factor = (t + 1) / dprbg_interp
        rows.append((n, t, factor))
        report.row(
            f"n={n:2d} t={t}: from-scratch {t + 1} vs D-PRBG "
            f"{dprbg_interp:.2f} interpolations/coin -> factor {factor:.1f}x"
        )
    # the advantage grows with t (crossover: never — D-PRBG always wins
    # on interpolations once the batch amortizes the n+1 setup decodes)
    factors = [f for _, _, f in rows]
    assert factors[-1] > factors[0]
    assert all(f > 1 for f in factors)
    benchmark(lambda: run_from_scratch_coin(FIELD, 7, 1, seed=35))
