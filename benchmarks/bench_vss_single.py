"""E2 (Lemma 2) — single-secret VSS cost.

Paper claim: "protocol VSS requires n + k log k + 1 additions and 2
polynomial interpolations per player.  There are 2 rounds of
communication, and the number of messages in each round is n, each of
size k, for a total of 2nk bits."

We regenerate the per-n cost rows and check the exact interpolation
count, the paper-accounted message count (2n for Fig. 2's two rounds;
our metering also shows the Coin-Expose traffic the paper accounts
separately), and the 2nk bit total for the Fig. 2 rounds proper.
"""

import pytest

from repro.analysis import complexity as cx
from repro.fields import GF2k
from repro.protocols.vss import run_vss

K = 32
FIELD = GF2k(K)


@pytest.mark.parametrize("n,t", [(4, 1), (7, 2), (10, 3), (13, 4)])
def test_vss_single_cost(benchmark, report, n, t):
    results, metrics = benchmark.pedantic(
        lambda: run_vss(FIELD, n, t, seed=42), rounds=3, iterations=1
    )
    assert all(r.accepted for r in results.values())

    claim = cx.vss_single(n, K)
    measured_interp = metrics.ops(2).interpolations
    measured_bc = metrics.broadcast_messages
    fig2_bits = (n + n) * K  # g-share unicasts + nu broadcasts, k bits each

    # Lemma 2 checks: exactly 2 interpolations per player; n broadcast
    # messages in the nu round; Fig. 2 bit volume == 2nk.
    assert measured_interp == claim.interpolations == 2
    assert measured_bc == n
    assert fig2_bits == claim.bits

    busiest = metrics.max_player_ops()
    report.row(
        f"n={n:2d} t={t} k={K}: interpolations/player=2 (claim 2), "
        f"fig2_bits={fig2_bits} (claim {claim.bits:.0f}), "
        f"total_measured_bits={metrics.bits}, "
        f"adds/player<={busiest.adds}, muls/player<={busiest.muls}"
    )


def test_vss_bits_scale_linearly_in_k(benchmark, report):
    """Lemma 2's 2nk: doubling k doubles the bit volume."""
    n, t = 7, 2
    _, m32 = run_vss(GF2k(32), n, t, seed=1)
    _, m64 = run_vss(GF2k(64), n, t, seed=1)
    assert m64.bits == 2 * m32.bits
    report.row(f"bits(k=64)/bits(k=32) = {m64.bits / m32.bits:.2f} (claim 2.0)")
    benchmark(lambda: run_vss(FIELD, n, t, seed=2))
