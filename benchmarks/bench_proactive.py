"""E14 (Section 1.2) — bootstrapping under a mobile adversary.

Paper claim: prior amortization efforts "work subject to the proviso that
the set of faulty players remain (relatively) fixed.  In contrast, this
is not required by our method.  In fact, one of the motivations ... is
pro-active security ..., which deals with settings where intruders are
allowed to move over time."

Regenerated series: batches completed, coins delivered, and output
quality while the corrupt set is redrawn before every batch.
"""

import pytest

from repro.analysis import stats
from repro.core import BootstrapCoinSource
from repro.fields import GF2k
from repro.net.adversary import MobileAdversary

K = 32
FIELD = GF2k(K)
N, T = 7, 1


@pytest.mark.parametrize("behaviour", ["silent", "noise"])
def test_mobile_adversary_pipeline(benchmark, report, behaviour):
    mobile = MobileAdversary(N, T, behaviour=behaviour, seed=41)
    source = BootstrapCoinSource(
        FIELD, N, T, batch_size=8, seed=42,
        adversary_schedule=lambda epoch: mobile.next_epoch(),
    )
    # 768 bits = 24 k-ary coins: forces several batches of 8
    bits = source.tosses(768)
    distinct_sets = len(set(mobile.history))
    bias = stats.bias(bits)
    report.row(
        f"mobile {behaviour:6s}: {source.epoch} batches, "
        f"{distinct_sets} distinct corrupt sets, 768 bits, bias={bias:.4f}"
    )
    assert source.epoch >= 2
    assert distinct_sets >= 2
    assert bias < 0.1

    def small_run():
        mob = MobileAdversary(N, T, behaviour=behaviour, seed=1)
        src = BootstrapCoinSource(
            FIELD, N, T, batch_size=4, seed=2,
            adversary_schedule=lambda e: mob.next_epoch(),
        )
        return src.tosses(32)

    benchmark(small_run)


def test_previously_corrupt_players_recover(report, benchmark):
    """A player corrupted during batch b holds no shares of batch-b coins
    but participates fully in batch b+1 — the pipeline heals."""
    schedule_log = []

    def schedule(epoch):
        from repro.net.adversary import Adversary

        corrupt = {(epoch % N) + 1}
        schedule_log.append(corrupt)
        return Adversary(corrupt, behaviour="silent")

    source = BootstrapCoinSource(
        FIELD, N, T, batch_size=4, seed=43, adversary_schedule=schedule,
    )
    values = [source.toss_element() for _ in range(40)]
    assert len(set(values)) == 40
    # corruption rotated across several players over the run
    touched = set().union(*schedule_log)
    report.row(
        f"corruption rotated over players {sorted(touched)}; "
        f"40/40 coins exposed unanimously"
    )
    assert len(touched) >= 4
    benchmark(lambda: source.toss())
