#!/usr/bin/env python
"""Machine-readable core benchmarks -> BENCH_core.json.

Runs the coin-generation, batch-VSS, coin-exposure, and field-arithmetic
benches and writes wall-clock + ops/sec per configuration, so the perf
trajectory of the hot path is tracked in one diffable artifact.

Each interpolation-heavy bench runs in three cache modes (see
``repro.poly.barycentric``):

* ``off``    — classic Lagrange / full Berlekamp-Welch (the baseline);
* ``fresh``  — Montgomery batch inversion but no cross-call reuse
  (isolates the batch-inversion speedup);
* ``shared`` — the full barycentric weight cache (adds cross-call reuse).

Orthogonally, every protocol bench runs once per available *field
backend* (``repro.fields.backends``): the pure-python reference and,
when numpy imports, the vectorized numpy kernels.  Python-backend rows
keep the historical speedup keys (``{bench}_{config}_{mode}_vs_off``);
numpy rows add ``{bench}_{config}_numpy_{mode}_vs_off`` keys measured
against the *python* off-mode wall, so each ratio is the end-to-end
uplift over the classic baseline.  A ``batch_vss_gfp`` arm over an
NTT-friendly prime field at n=33 adds the ``ntt`` interpolation mode
(transform-based evaluation/interpolation, see ``repro.poly.fast_eval``)
to the matrix.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench_json.py [--smoke] [--out PATH]
        [--baseline PATH] [--max-regression 0.20]

``--smoke`` shrinks every configuration for CI (a correctness/regression
smoke, not a rigorous measurement).  ``--baseline`` compares this run's
speedup ratios against a committed baseline JSON (same flavour:
smoke-vs-smoke or full-vs-full) and fails if any ratio regressed by more
than ``--max-regression`` (default 20%).  Ratios — not wall-clock — are
compared, so the guard is machine-independent: it catches "the cache
stopped helping", not "the CI runner is slower".

Every run also *appends* one timestamped summary row (flavour, python,
speedup ratios) to ``BENCH_history.json`` (override with ``--history``,
disable with ``--no-history``), so the performance trajectory across
commits accumulates in one artifact instead of each run overwriting the
last; CI uploads the file after its smoke run.  Rows are ``schema: 2``:
alongside the speedups they carry the run's provenance manifest
(:mod:`repro.obs.manifest`) and the op-enriched per-phase Coin-Gen
profile, so any two rows are diffable with ``repro diff``; legacy v1
rows (no ``schema`` key) are read unchanged.  ``--check-history``
additionally gates the run against that trajectory: each speedup ratio
must stay within ``--max-regression`` of the *median* of the last
``--history-window`` same-flavour rows (checked before the current row
is appended), so a slow drift the static baseline would absorb still
fails CI.  When that gate trips, the failure output ends with a priced
*attribution report* (:mod:`repro.obs.diffing`) naming the phase and op
class that moved versus the last profiled history row.  The guard also
warns about speedup keys with fewer than ``--history-window``
same-flavour samples once the history is deep enough — a renamed key
cannot quietly restart its median from scratch unnoticed.

``--only <prefix>[,<prefix>...]`` runs a subset of the bench families
(e.g. ``--only async_coin,async_liveness``) so CI legs emit only the
rows they gate; partial runs skip the history append (a partial row
would occupy a median-window slot without most keys) and the static
baseline guard skips keys belonging to families that did not run.

A ``critical_path`` row (per Coin-Gen configuration) records the
happens-before DAG's structural depth, unit-latency makespan, per-phase
critical-path attribution, per-coin exposure latencies, and a 10x
straggler what-if delta — all deterministic (graph-derived, not
wall-clock), so they are directly diffable across commits.  An
``async_coin`` row records the event-driven runtime's delivery-count
makespan and causal depth for the guarded coin exposure under seeded
adversarial schedules (DESIGN.md §11), with its ``delivery_efficiency``
ratio wired into the same ``--check-history`` gate.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.fields import GF2k, GFp  # noqa: E402
from repro.fields.backends import numpy_available  # noqa: E402
from repro.fields.ntt import find_ntt_prime  # noqa: E402
from repro.obs.manifest import RunManifest  # noqa: E402
from repro.poly.barycentric import interpolation_mode  # noqa: E402
from repro.protocols.batch_vss import run_batch_vss  # noqa: E402
from repro.protocols.coin_gen import expose_coin, run_coin_gen  # noqa: E402

MODES = ("off", "fresh", "shared")


def backends():
    """Field backends this interpreter can bench."""
    return ("python", "numpy") if numpy_available() else ("python",)


def timed(fn, repeats=1):
    """Best-of-``repeats`` wall-clock seconds and the last return value."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_field_arithmetic(results, smoke):
    """ops/sec for scalar and bulk field primitives, per backend."""
    import random

    count = 512 if smoke else 4096
    for backend in backends():
        for label, field in (
            ("gf2k16_tables", GF2k(16, backend=backend)),
            ("gf2k32_clmul", GF2k(32, backend=backend)),
        ):
            rng = random.Random(1)
            a = [field.random_nonzero(rng) for _ in range(count)]
            b = [field.random_nonzero(rng) for _ in range(count)]

            cases = {
                "mul_scalar": lambda: [field.mul(x, y) for x, y in zip(a, b)],
                "mul_many": lambda: field.mul_many(a, b),
                "inv_scalar": lambda: [field.inv(x) for x in a],
                "batch_inv": lambda: field.batch_inv(a),
                "dot": lambda: field.dot(a, b),
            }
            for op, fn in cases.items():
                wall, _ = timed(fn, repeats=3)
                results.append(
                    {
                        "bench": "field_arithmetic",
                        "backend": backend,
                        "field": label,
                        "op": op,
                        "elements": count,
                        "wall_s": wall,
                        "ops_per_s": count / wall if wall > 0 else None,
                    }
                )


def bench_batch_vss(results, smoke):
    n, t = 7, 2
    M = 16 if smoke else 64
    for backend in backends():
        field = GF2k(32, backend=backend)
        for mode in MODES:
            with interpolation_mode(mode):
                run_batch_vss(field, n, t, M=M, seed=3)  # warm-up / JIT caches
                wall, (out, _) = timed(
                    lambda: run_batch_vss(field, n, t, M=M, seed=3),
                    repeats=3,
                )
            assert all(r.accepted for r in out.values())
            results.append(
                {
                    "bench": "batch_vss",
                    "backend": backend,
                    "n": n,
                    "t": t,
                    "M": M,
                    "mode": mode,
                    "wall_s": wall,
                    "ops_per_s": M / wall if wall > 0 else None,
                }
            )


def bench_ntt_gfp(results, smoke):
    """Batch-VSS over an NTT-friendly prime field, wide enough (n=33)
    that the ``ntt`` interpolation mode actually takes the transform
    path — the only bench where all four modes differ."""
    q = find_ntt_prime(1 << 20, 4096)
    n, t = 33, 10
    M = 2 if smoke else 8
    for backend in backends():
        field = GFp(q, backend=backend)
        for mode in MODES + ("ntt",):
            with interpolation_mode(mode):
                run_batch_vss(field, n, t, M=M, seed=3)  # warm-up
                # best-of-3 even in smoke: at n=33 the cached modes run in
                # single-digit milliseconds, where a one-shot measurement
                # makes the regression-gate ratios too noisy
                wall, (out, _) = timed(
                    lambda: run_batch_vss(field, n, t, M=M, seed=3),
                    repeats=3,
                )
            assert all(r.accepted for r in out.values())
            results.append(
                {
                    "bench": "batch_vss_gfp",
                    "backend": backend,
                    "q": q,
                    "n": n,
                    "t": t,
                    "M": M,
                    "mode": mode,
                    "wall_s": wall,
                    "ops_per_s": M / wall if wall > 0 else None,
                }
            )


def coin_gen_conformance(n, t, M, field):
    """One *instrumented* Coin-Gen (separate from the timed runs): the
    per-phase wall/message/field-op breakdown plus the lemma-conformance
    audit.  The op counts (adds/muls/invs/interpolations, from the
    per-player step spans) are what ``repro diff`` prices when two rows
    disagree — they are seed-derived, so identical configurations yield
    identical counts."""
    from repro.obs import SpanRecorder
    from repro.obs.audit import audit_coin_gen
    from repro.obs.critical_path import OP_KEYS
    from repro.obs.diffing import profile_from_recorder
    from repro.protocols.context import ProtocolContext

    recorder = SpanRecorder()
    ctx = ProtocolContext.create(field, n, t, seed=5, recorder=recorder)
    out, _ = run_coin_gen(ctx, M=M)
    assert all(o.success for o in out.values())
    ops = profile_from_recorder(recorder).phases
    phases = [
        {
            "phase": span.attrs["phase"],
            "rounds": span.attrs["rounds"],
            "messages": span.attrs["messages"],
            "bits": span.attrs["bits"],
            **{key: ops.get(span.attrs["phase"], {}).get(key, 0)
               for key in OP_KEYS},
            "wall_s": span.duration,
        }
        for span in recorder.phase_spans()
    ]
    return phases, audit_coin_gen(recorder).to_dict()


def bench_coin_gen(results, smoke):
    configs = [(7, 1, 8)] if smoke else [(7, 1, 16), (13, 2, 64)]
    for n, t, M in configs:
        phases, conformance = coin_gen_conformance(n, t, M, GF2k(32))
        for backend in backends():
            field = GF2k(32, backend=backend)
            for mode in MODES:
                with interpolation_mode(mode):
                    run_coin_gen(field, n, t, M=M, seed=5)  # warm-up
                    wall, (out, _) = timed(
                        lambda: run_coin_gen(field, n, t, M=M, seed=5),
                        repeats=3,
                    )
                assert all(o.success for o in out.values())
                row = {
                    "bench": "coin_gen",
                    "backend": backend,
                    "n": n,
                    "t": t,
                    "M": M,
                    "mode": mode,
                    "wall_s": wall,
                    "ops_per_s": M / wall if wall > 0 else None,
                }
                if backend == "python":
                    # the instrumented breakdown/audit is backend-invariant
                    row["phases"] = phases
                    row["conformance"] = conformance
                results.append(row)


def bench_coin_expose(results, smoke):
    """The acceptance bench: expose M coins over one fixed qualified set."""
    n, t, M = (7, 1, 8) if smoke else (13, 2, 64)
    for backend in backends():
        field = GF2k(32, backend=backend)
        outputs, _ = run_coin_gen(field, n, t, M=M, seed=7)
        assert all(o.success for o in outputs.values())

        def expose_all():
            for h in range(M):
                values, _ = expose_coin(field, n, outputs, h, t)
                assert len(set(values.values())) == 1
                assert None not in values.values()

        for mode in MODES:
            with interpolation_mode(mode):
                expose_all()  # warm-up (pre-builds caches in "shared" mode)
                wall, _ = timed(expose_all, repeats=3)
            results.append(
                {
                    "bench": "coin_expose",
                    "backend": backend,
                    "n": n,
                    "t": t,
                    "M": M,
                    "mode": mode,
                    "wall_s": wall,
                    "ops_per_s": M / wall if wall > 0 else None,
                }
            )


def bench_critical_path(results, smoke):
    """Structural latency rows off the happens-before DAG (deterministic)."""
    from repro.analysis.rounds import predicted_rounds
    from repro.obs import SpanRecorder
    from repro.obs.causality import CausalRecorder
    from repro.obs.critical_path import (
        CostModel, critical_path, ops_from_recorder, what_if,
    )
    from repro.protocols.context import ProtocolContext

    configs = [(7, 1, 8)] if smoke else [(7, 1, 16), (13, 2, 16)]
    field = GF2k(32)
    for n, t, M in configs:
        recorder = SpanRecorder()
        ctx = ProtocolContext.create(field, n, t, seed=5, recorder=recorder)
        causal = CausalRecorder(n=n).attach(ctx.ensure_bus())
        out, _ = run_coin_gen(ctx, M=M)
        assert all(o.success for o in out.values())
        expose_coin(ctx, outputs=out, h=0)
        graph = causal.graph()
        step_ops, labels = ops_from_recorder(recorder)
        result = critical_path(graph, CostModel(), step_ops)
        straggler = n // 2 + 1
        counterfactual = what_if(graph, CostModel(), player=straggler,
                                 scale=10.0, step_ops=step_ops)
        spans = {s.name: s for s in recorder.by_kind("protocol")}
        iterations = spans["coin_gen"].attrs.get("iterations", 1)
        depths = {labels[run]: graph.depth(run) for run in graph.runs()}
        predicted = {
            label: predicted_rounds(label, t=t, iterations=iterations)
            for label in depths
        }
        assert depths == predicted, (
            f"fault-free DAG depth {depths} != round model {predicted}"
        )
        results.append({
            "bench": "critical_path",
            "n": n, "t": t, "M": M,
            "edges": len(graph.edges),
            "depths": depths,
            "predicted_depths": predicted,
            "makespan_unit_latency": result.makespan,
            "phase_attribution": result.phase_attribution(),
            "coin_exposures": {
                f"run{run}:{coin}": latency
                for (run, coin), latency
                in sorted(result.coin_exposures.items())
            },
            "what_if": {
                "player": straggler,
                "scale": 10.0,
                "makespan_delta": counterfactual.makespan_delta,
            },
        })


def bench_async_coin(results, smoke):
    """Deterministic async-runtime rows: the guarded coin exposure under
    seeded adversarial delivery schedules (DESIGN.md §11).

    Everything recorded is schedule-derived, not wall-clock — delivery
    counts, logical-time makespan, causal-DAG depth — so the row is
    byte-diffable across commits.  ``delivery_efficiency`` is the ratio
    of *necessary* deliveries (every live player needs an ``n - t``
    quorum of shares) to deliveries actually consumed before the run
    terminated; it is wired into the ``--check-history`` gate, so a
    guard-layer change that makes wakes lazier (more deliveries to
    finish the same exposure) fails CI as a regression.
    """
    from repro.net import RandomOrderScheduler
    from repro.obs.bus import EventBus
    from repro.obs.causality import CausalRecorder
    from repro.protocols.async_coin import run_async_coin

    field = GF2k(32)
    configs = [(7, 2, 4)] if smoke else [(7, 2, 8), (10, 3, 8)]
    for n, t, coins in configs:
        total_deliveries = 0
        total_logical = 0
        depths = []
        for index in range(coins):
            bus = EventBus()
            causal = CausalRecorder(n=n).attach(bus)
            outputs, secret, runtime = run_async_coin(
                field, n, t, seed=index,
                scheduler=RandomOrderScheduler(seed=100 + index),
                bus=bus,
            )
            assert set(outputs.values()) == {secret}, "async coin not unanimous"
            total_deliveries += runtime.delivery_count
            total_logical += runtime.logical_time
            depths.append(causal.graph().depth())
        necessary = n * (n - t)  # each player a quorum of expose shares
        results.append({
            "bench": "async_coin",
            "n": n, "t": t, "coins": coins,
            "scheduler": "random-order",
            "deliveries": total_deliveries,
            "logical_time": total_logical,
            "mean_causal_depth": round(sum(depths) / len(depths), 2),
            "delivery_efficiency": round(
                coins * necessary / total_deliveries, 4
            ),
        })


def bench_async_liveness(results, smoke):
    """Deterministic liveness-observatory rows (DESIGN.md §12).

    Guard wait-state gauges over the same seeded schedules as
    ``bench_async_coin``: waits armed, mean/max armed→fired latency in
    logical ticks, peak in-flight pool depth, and the stall count under
    the default watchdog threshold.  Everything is schedule-derived, so
    the rows are byte-diffable across commits; the history gate carries
    ``wait_headroom`` (threshold / max wait — shrinks when guards start
    waiting longer) and ``stall_free`` (1.0 while fault-free runs never
    stall), so a liveness regression in the guard or wake layer fails
    CI even when outputs stay correct.
    """
    from repro.net import RandomOrderScheduler
    from repro.obs import QuorumLatencyRecorder, StallWatchdog
    from repro.obs.bus import EventBus
    from repro.protocols.async_coin import run_async_coin

    field = GF2k(32)
    configs = [(7, 2, 4)] if smoke else [(7, 2, 8), (10, 3, 8)]
    for n, t, coins in configs:
        bus = EventBus()
        latency = QuorumLatencyRecorder().attach(bus)
        watchdog = StallWatchdog(n).attach(bus)
        for index in range(coins):
            outputs, secret, runtime = run_async_coin(
                field, n, t, seed=index,
                scheduler=RandomOrderScheduler(seed=100 + index),
                bus=bus,
            )
            assert set(outputs.values()) == {secret}, \
                "async coin not unanimous"
        assert len(latency.waits()) == coins * n, "guards missing waits"
        assert all(r.fired for r in latency.waits()), "unfired guard"
        results.append({
            "bench": "async_liveness",
            "n": n, "t": t, "coins": coins,
            "scheduler": "random-order",
            "waits": len(latency.waits()),
            "mean_guard_wait": round(latency.mean_wait(), 2),
            "max_guard_wait": latency.max_wait(),
            "max_pool_depth": latency.pool_peak,
            "watchdog_threshold": watchdog.threshold,
            "stalls": len(watchdog.stalls),
        })


def bench_campaign(results, smoke):
    """Deterministic campaign-observatory rows (DESIGN.md §14).

    Runs a seeded clean-only slice of the default scenario space plus
    the known-bad negative controls, and records cell counts, outcome
    tallies, and scenario-space coverage.  Everything is derived from
    seeded executions — no wall-clock — so the row is byte-diffable
    across commits.  Three ratios ride the ``--check-history`` gate,
    all pinned at 1.0 while the stack is healthy: ``clean_rate`` (a
    drop means an in-model scenario started tripping the oracle),
    ``coverage`` (a drop means enumeration lost reachable grid cells),
    and ``detection_rate`` (a drop means the oracle stopped catching a
    seeded breakage — a silent-regression alarm for the oracle itself).
    """
    from repro.campaign import (
        default_space, known_bad_scenarios, run_campaign,
    )

    seeds = (0,) if smoke else (0, 1)
    sched_seeds = (0,) if smoke else (0, 1)
    space = default_space(seeds=seeds, sched_seeds=sched_seeds,
                          clean_only=True)
    cells = space.cells()
    result = run_campaign(cells)
    counts = result.status_counts()
    known_bad = run_campaign(known_bad_scenarios())
    results.append({
        "bench": "campaign",
        "n": 7, "t": 1,
        "cells": len(cells),
        "clean": counts["clean"],
        "violated": counts["violated"],
        "errors": counts["error"],
        "coverage_percent": round(result.coverage.percentage(space), 2),
        "known_bad_cells": len(known_bad.outcomes),
        "known_bad_detected": len(known_bad.violated),
    })


#: bench families, keyed by the prefix their speedup keys start with —
#: the ``--only`` tokens and the baseline-guard skip both resolve here
BENCHES = {
    "field": bench_field_arithmetic,
    "batch_vss": bench_batch_vss,
    "batch_vss_gfp": bench_ntt_gfp,
    "coin_gen": bench_coin_gen,
    "coin_expose": bench_coin_expose,
    "critical_path": bench_critical_path,
    "async_coin": bench_async_coin,
    "async_liveness": bench_async_liveness,
    "campaign": bench_campaign,
}


def key_bench(key):
    """Which bench family a speedup key belongs to (longest prefix wins,
    so ``batch_vss_gfp_...`` resolves before ``batch_vss``)."""
    for name in sorted(BENCHES, key=len, reverse=True):
        if key.startswith(name):
            return name
    return None


def speedups(results):
    """Wall-clock ratios vs the python-backend off-mode baseline.

    Python-backend rows keep the historical key shape
    (``{bench}_n{n}_t{t}_M{M}_{mode}_vs_off``); numpy rows add
    ``..._numpy_{mode}_vs_off`` keys — every ratio's denominator is that
    configuration's *python off* wall, so numpy keys read as end-to-end
    uplift over the classic baseline, not over numpy-off.  Bulk field
    kernels additionally get direct cross-backend ratios
    (``field_{label}_{op}_numpy_vs_python``).
    """
    table = {}
    for row in results:
        if "mode" not in row:
            continue
        key = (row["bench"], row.get("n"), row.get("t"), row.get("M"))
        backend = row.get("backend", "python")
        table.setdefault(key, {})[(backend, row["mode"])] = row["wall_s"]
    out = {}
    for (bench, n, t, M), walls in table.items():
        base = walls.get(("python", "off"))
        if not base:
            continue
        label = f"{bench}_n{n}_t{t}_M{M}"
        for (backend, mode), wall in sorted(walls.items()):
            if mode == "off" and backend == "python":
                continue
            if wall <= 0:
                continue
            infix = "" if backend == "python" else f"_{backend}"
            out[f"{label}{infix}_{mode}_vs_off"] = round(base / wall, 2)
    kernels = {}
    for row in results:
        if row.get("bench") != "field_arithmetic":
            continue
        key = (row["field"], row["op"])
        kernels.setdefault(key, {})[row.get("backend", "python")] = \
            row["wall_s"]
    for (label, op), walls in sorted(kernels.items()):
        if op.endswith("_scalar"):
            continue  # scalar paths never dispatch to a backend
        if label != "gf2k32_clmul":
            # only the clmul kernels get gated ratios: the gf2k16 gather
            # kernels hover near parity at bench sizes and their
            # microsecond-scale walls are far too noisy for a 20% gate
            continue
        if "python" in walls and "numpy" in walls and walls["numpy"] > 0:
            out[f"field_{label}_{op}_numpy_vs_python"] = round(
                walls["python"] / walls["numpy"], 2
            )
    for row in results:
        if row.get("bench") != "async_coin":
            continue
        # deterministic (schedule-derived) ratio; in the history gate a
        # drop means the async runtime started needing more deliveries
        key = (f"async_coin_n{row['n']}_t{row['t']}"
               f"_c{row['coins']}_delivery_efficiency")
        out[key] = row["delivery_efficiency"]
    for row in results:
        if row.get("bench") != "async_liveness":
            continue
        # schedule-derived liveness ratios, bigger is better: headroom
        # shrinks when guards wait longer, stall_free drops to 0.0 the
        # moment a fault-free run trips the default watchdog
        label = f"async_liveness_n{row['n']}_t{row['t']}_c{row['coins']}"
        if row["max_guard_wait"] > 0:
            out[f"{label}_wait_headroom"] = round(
                row["watchdog_threshold"] / row["max_guard_wait"], 2
            )
        out[f"{label}_stall_free"] = 1.0 if row["stalls"] == 0 else 0.0
    for row in results:
        if row.get("bench") != "campaign":
            continue
        # deterministic observatory health ratios, all pinned at 1.0:
        # any drop is a protocol, enumeration, or oracle regression
        label = f"campaign_n{row['n']}_t{row['t']}_c{row['cells']}"
        out[f"{label}_clean_rate"] = round(row["clean"] / row["cells"], 4)
        out[f"{label}_coverage"] = round(row["coverage_percent"] / 100, 4)
        if row["known_bad_cells"]:
            out[f"{label}_detection_rate"] = round(
                row["known_bad_detected"] / row["known_bad_cells"], 4
            )
    return out


def append_history(payload, history_path):
    """Append one summary row to the running BENCH_history.json trajectory.

    The history file is a JSON object ``{"rows": [...]}``.  Rows are
    ``schema: 2``: timestamp + speedup ratios plus the run's provenance
    manifest and its op-enriched per-phase Coin-Gen profile, so any two
    rows feed ``repro diff`` directly.  Legacy v1 rows (no ``schema``
    key, no manifest/profile) coexist in the same file and are read
    unchanged by every consumer.  A corrupt or legacy *file* is reset
    rather than crashing the bench.
    """
    path = pathlib.Path(history_path)
    try:
        history = json.loads(path.read_text())
        rows = history["rows"]
        assert isinstance(rows, list)
    except (OSError, ValueError, KeyError, AssertionError):
        history, rows = {"rows": []}, []
        history["rows"] = rows
    row = {
        "schema": 2,
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "smoke": payload["smoke"],
        "python": payload["python"],
        "speedups": payload["speedups"],
    }
    if payload.get("manifest"):
        row["manifest"] = payload["manifest"]
    if payload.get("profile"):
        row["profile"] = payload["profile"]
    rows.append(row)
    path.write_text(json.dumps(history, indent=2) + "\n")
    return len(rows)


def check_regressions(payload, baseline_path, max_regression, only=None):
    """Compare speedup ratios against a committed baseline.

    Returns a list of human-readable failure strings (empty = pass).
    Keys are matched exactly: every baseline speedup key must exist in
    the current run (the configurations are deterministic per flavour),
    and each current ratio must be >= baseline * (1 - max_regression).
    Numpy-backend keys are skipped when the current run has no numpy —
    the pure-python CI leg checks only the python rows.  With ``only``
    (a ``--only`` bench-family list), baseline keys belonging to
    families that did not run are skipped instead of reported missing.
    """
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    failures = []
    if bool(baseline.get("smoke")) != bool(payload["smoke"]):
        return [
            "baseline flavour mismatch: baseline smoke="
            f"{baseline.get('smoke')} vs current smoke={payload['smoke']} "
            "(compare smoke-vs-smoke or full-vs-full only)"
        ]
    current = payload["speedups"]
    available = set(payload.get("backends", ("python",)))
    for key, base in sorted(baseline.get("speedups", {}).items()):
        if "_numpy" in key and "numpy" not in available:
            # the baseline is recorded with numpy installed; a pure-python
            # leg legitimately has no numpy rows to compare
            print(f"  {key}: skipped (numpy backend unavailable)")
            continue
        if only is not None and key_bench(key) not in only:
            print(f"  {key}: skipped (--only)")
            continue
        if key not in current:
            failures.append(f"{key}: present in baseline but missing from "
                            "this run (configuration drift?)")
            continue
        floor = base * (1 - max_regression)
        status = "ok" if current[key] >= floor else "REGRESSED"
        print(f"  {key}: {current[key]}x vs baseline {base}x "
              f"(floor {floor:.2f}x) {status}")
        if current[key] < floor:
            failures.append(
                f"{key}: {current[key]}x < floor {floor:.2f}x "
                f"(baseline {base}x, tolerance {max_regression:.0%})"
            )
    return failures


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def check_history(payload, history_path, window, max_regression):
    """Compare speedup ratios against the rolling history median.

    The static ``--baseline`` guard catches one bad commit; this guard
    catches slow drift.  Each current ratio must be >= ``(1 -
    max_regression)`` times the *median* of that key over the last
    ``window`` same-flavour history rows (median, not mean, so one noisy
    CI run cannot poison the reference).  Must run *before* the current
    row is appended, or the run would vouch for itself.  Returns failure
    strings (empty = pass); no same-flavour rows is a pass.
    """
    try:
        rows = json.loads(pathlib.Path(history_path).read_text())["rows"]
        assert isinstance(rows, list)
    except (OSError, ValueError, KeyError, AssertionError):
        print("history guard: no readable history, skipping")
        return []
    flavour = [r for r in rows
               if bool(r.get("smoke")) == bool(payload["smoke"])]
    recent = flavour[-window:]
    if not recent:
        print("history guard: no same-flavour rows yet, skipping")
        return []
    failures = []
    current = payload["speedups"]
    if len(flavour) >= window:
        # a key with a thin sample set in a *deep* history means it was
        # renamed or newly added — its median gate restarted from
        # scratch, so say so rather than letting a rename quietly
        # disable the guard for that configuration
        thin = sorted(
            key for key in current
            if sum(1 for r in recent
                   if key in r.get("speedups", {})) < window
        )
        if thin:
            print(f"history guard WARNING: fewer than {window} "
                  "same-flavour samples for: " + ", ".join(thin)
                  + " (renamed or newly added key? the median gate is "
                  "weak until the window refills)")
    for key in sorted(current):
        samples = [r["speedups"][key] for r in recent
                   if key in r.get("speedups", {})]
        if not samples:
            continue
        median = _median(samples)
        floor = median * (1 - max_regression)
        status = "ok" if current[key] >= floor else "REGRESSED"
        print(f"  {key}: {current[key]}x vs median {median:.2f}x of last "
              f"{len(samples)} (floor {floor:.2f}x) {status}")
        if current[key] < floor:
            failures.append(
                f"{key}: {current[key]}x < floor {floor:.2f}x (median of "
                f"last {len(samples)} runs {median:.2f}x, tolerance "
                f"{max_regression:.0%})"
            )
    return failures


def history_attribution(payload, history_path):
    """Attribute a history-gate failure to per-phase op deltas.

    Diffs the current run's op-enriched Coin-Gen profile against the
    most recent same-flavour history row that carries one, and returns
    the priced attribution report ("clique-phase muls +6615, 38% of the
    delta") — or ``None`` when no profiled (schema >= 2) reference row
    exists yet, e.g. over a purely legacy v1 history.
    """
    from repro.obs.diffing import diff_profiles, profile_from_bench_phases

    current = payload.get("profile") or {}
    if not current:
        return None
    try:
        rows = json.loads(pathlib.Path(history_path).read_text())["rows"]
        assert isinstance(rows, list)
    except (OSError, ValueError, KeyError, AssertionError):
        return None
    reference = None
    for row in reversed(rows):
        if bool(row.get("smoke")) != bool(payload["smoke"]):
            continue
        if row.get("profile"):
            reference = row
            break
    if reference is None:
        return None
    ref_manifest = (RunManifest.from_dict(reference["manifest"])
                    if reference.get("manifest") else None)
    cur_manifest = (RunManifest.from_dict(payload["manifest"])
                    if payload.get("manifest") else None)
    sections = []
    for label in sorted(set(current) & set(reference["profile"])):
        diff = diff_profiles(
            profile_from_bench_phases(reference["profile"][label],
                                      manifest=ref_manifest,
                                      source="history"),
            profile_from_bench_phases(current[label],
                                      manifest=cur_manifest,
                                      source="current"),
        )
        sections.append(f"== {label} ==\n"
                        + diff.report(label_a="history", label_b="current"))
    return "\n\n".join(sections) or None


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configurations for CI")
    parser.add_argument("--out", default=None,
                        help="output path (default: <repo>/BENCH_core.json)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to guard speedups against")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="max allowed fractional speedup regression "
                             "vs the baseline (default 0.20)")
    parser.add_argument("--history", default=None,
                        help="history file to append the summary row to "
                             "(default: <repo>/BENCH_history.json)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip appending to the history file")
    parser.add_argument("--check-history", action="store_true",
                        help="fail if any speedup regresses by more than "
                             "--max-regression vs the median of the last "
                             "--history-window same-flavour history rows")
    parser.add_argument("--history-window", type=int, default=5,
                        help="history rows the rolling median looks back "
                             "over (default 5)")
    parser.add_argument("--only", default=None,
                        help="comma-separated bench families to run "
                             f"(choose from: {', '.join(BENCHES)}); "
                             "partial runs skip the history append")
    args = parser.parse_args(argv)

    only = None
    if args.only:
        only = [token.strip() for token in args.only.split(",")
                if token.strip()]
        unknown = [token for token in only if token not in BENCHES]
        if unknown:
            parser.error(f"--only: unknown bench {', '.join(unknown)} "
                         f"(choose from: {', '.join(BENCHES)})")

    out_path = pathlib.Path(
        args.out
        if args.out
        else pathlib.Path(__file__).resolve().parent.parent / "BENCH_core.json"
    )

    results = []
    for name, bench in BENCHES.items():
        if only is None or name in only:
            bench(results, args.smoke)

    payload = {
        "generated_by": "benchmarks/emit_bench_json.py",
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "backends": list(backends()),
        "modes": {
            "off": "classic Lagrange + full Berlekamp-Welch (baseline)",
            "fresh": "Montgomery batch inversion, no cross-call cache",
            "shared": "batch inversion + cached barycentric weights",
            "ntt": "shared cache + transform-based eval/interpolation "
                   "where applicable (prime fields, >= 32 points)",
        },
        "results": results,
        "speedups": speedups(results),
        # provenance: one manifest for the whole matrix — interpolation
        # is omitted (every mode is swept) and backend lists all benched
        "manifest": RunManifest.capture(
            protocol="bench",
            backend=",".join(backends()),
            interpolation=None,
        ).to_dict(),
    }
    profile = {
        f"coin_gen_n{row['n']}_t{row['t']}_M{row['M']}": row["phases"]
        for row in results
        if row.get("bench") == "coin_gen" and "phases" in row
    }
    if profile:
        payload["profile"] = profile
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    history_path = pathlib.Path(
        args.history
        if args.history
        else pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_history.json"
    )
    history_failures = []
    if args.check_history:
        print(f"history guard vs last {args.history_window} rows of "
              f"{history_path} (tolerance {args.max_regression:.0%}):")
        history_failures = check_history(
            payload, history_path, args.history_window, args.max_regression
        )
    if not args.no_history:
        if only is not None:
            # a partial row would occupy a median-window slot while
            # missing most keys, thinning every other key's sample set
            print("history append skipped (--only partial run)")
        else:
            row_count = append_history(payload, history_path)
            print(f"appended history row {row_count} to {history_path}")

    print(f"wrote {out_path}")
    for key, factor in payload["speedups"].items():
        print(f"  {key}: {factor}x")
    expose_key = [k for k in payload["speedups"] if k.startswith("coin_expose")
                  and k.endswith("shared_vs_off")
                  and "numpy" not in k]
    if expose_key and not args.smoke:
        factor = payload["speedups"][expose_key[0]]
        status = "OK" if factor >= 2.0 else "BELOW TARGET"
        print(f"coin exposure cached-vs-uncached: {factor}x ({status}, target >= 2x)")
    best_gen = max(
        (row["ops_per_s"] for row in results
         if row["bench"] == "coin_gen" and row.get("n") == 13
         and row["ops_per_s"]),
        default=None,
    )
    if best_gen and not args.smoke:
        status = "OK" if best_gen >= 883.0 else "BELOW TARGET"
        print(f"coin_gen n=13 M=64 best: {best_gen:.0f} ops/s "
              f"({status}, target >= 883 = 10x the PR-5 off baseline)")

    if args.baseline:
        print(f"regression guard vs {args.baseline} "
              f"(tolerance {args.max_regression:.0%}):")
        failures = check_regressions(payload, args.baseline,
                                     args.max_regression, only=only)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression guard: all speedups within tolerance")

    if history_failures:
        for failure in history_failures:
            print(f"HISTORY REGRESSION: {failure}", file=sys.stderr)
        attribution = history_attribution(payload, history_path)
        if attribution:
            print("regression attribution (current vs last profiled "
                  "history row):", file=sys.stderr)
            print(attribution, file=sys.stderr)
        else:
            print("regression attribution unavailable: no profiled "
                  "(schema >= 2) same-flavour history row yet",
                  file=sys.stderr)
        return 1
    if args.check_history:
        print("history guard: all speedups within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
