#!/usr/bin/env python
"""Machine-readable core benchmarks -> BENCH_core.json.

Runs the coin-generation, batch-VSS, coin-exposure, and field-arithmetic
benches and writes wall-clock + ops/sec per configuration, so the perf
trajectory of the hot path is tracked in one diffable artifact.

Each interpolation-heavy bench runs in three cache modes (see
``repro.poly.barycentric``):

* ``off``    — classic Lagrange / full Berlekamp-Welch (the baseline);
* ``fresh``  — Montgomery batch inversion but no cross-call reuse
  (isolates the batch-inversion speedup);
* ``shared`` — the full barycentric weight cache (adds cross-call reuse).

Usage::

    PYTHONPATH=src python benchmarks/emit_bench_json.py [--smoke] [--out PATH]
        [--baseline PATH] [--max-regression 0.20]

``--smoke`` shrinks every configuration for CI (a correctness/regression
smoke, not a rigorous measurement).  ``--baseline`` compares this run's
speedup ratios against a committed baseline JSON (same flavour:
smoke-vs-smoke or full-vs-full) and fails if any ratio regressed by more
than ``--max-regression`` (default 20%).  Ratios — not wall-clock — are
compared, so the guard is machine-independent: it catches "the cache
stopped helping", not "the CI runner is slower".

Every run also *appends* one timestamped summary row (flavour, python,
speedup ratios) to ``BENCH_history.json`` (override with ``--history``,
disable with ``--no-history``), so the performance trajectory across
commits accumulates in one artifact instead of each run overwriting the
last; CI uploads the file after its smoke run.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.fields import GF2k  # noqa: E402
from repro.poly.barycentric import interpolation_mode  # noqa: E402
from repro.protocols.batch_vss import run_batch_vss  # noqa: E402
from repro.protocols.coin_gen import expose_coin, run_coin_gen  # noqa: E402

MODES = ("off", "fresh", "shared")


def timed(fn, repeats=1):
    """Best-of-``repeats`` wall-clock seconds and the last return value."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_field_arithmetic(results, smoke):
    """ops/sec for scalar and bulk field primitives."""
    import random

    count = 512 if smoke else 4096
    for label, field in (("gf2k16_tables", GF2k(16)), ("gf2k32_clmul", GF2k(32))):
        rng = random.Random(1)
        a = [field.random_nonzero(rng) for _ in range(count)]
        b = [field.random_nonzero(rng) for _ in range(count)]

        cases = {
            "mul_scalar": lambda: [field.mul(x, y) for x, y in zip(a, b)],
            "mul_many": lambda: field.mul_many(a, b),
            "inv_scalar": lambda: [field.inv(x) for x in a],
            "batch_inv": lambda: field.batch_inv(a),
            "dot": lambda: field.dot(a, b),
        }
        for op, fn in cases.items():
            wall, _ = timed(fn, repeats=3)
            results.append(
                {
                    "bench": "field_arithmetic",
                    "field": label,
                    "op": op,
                    "elements": count,
                    "wall_s": wall,
                    "ops_per_s": count / wall if wall > 0 else None,
                }
            )


def bench_batch_vss(results, smoke):
    n, t = 7, 2
    M = 16 if smoke else 64
    field = GF2k(32)
    for mode in MODES:
        with interpolation_mode(mode):
            run_batch_vss(field, n, t, M=M, seed=3)  # warm-up / JIT caches
            wall, (out, _) = timed(
                lambda: run_batch_vss(field, n, t, M=M, seed=3),
                repeats=1 if smoke else 3,
            )
        assert all(r.accepted for r in out.values())
        results.append(
            {
                "bench": "batch_vss",
                "n": n,
                "t": t,
                "M": M,
                "mode": mode,
                "wall_s": wall,
                "ops_per_s": M / wall if wall > 0 else None,
            }
        )


def coin_gen_conformance(n, t, M, field):
    """One *instrumented* Coin-Gen (separate from the timed runs): the
    per-phase wall/message breakdown plus the lemma-conformance audit."""
    from repro.obs import SpanRecorder
    from repro.obs.audit import audit_coin_gen
    from repro.protocols.context import ProtocolContext

    recorder = SpanRecorder()
    ctx = ProtocolContext.create(field, n, t, seed=5, recorder=recorder)
    out, _ = run_coin_gen(ctx, M=M)
    assert all(o.success for o in out.values())
    phases = [
        {
            "phase": span.attrs["phase"],
            "rounds": span.attrs["rounds"],
            "messages": span.attrs["messages"],
            "bits": span.attrs["bits"],
            "wall_s": span.duration,
        }
        for span in recorder.phase_spans()
    ]
    return phases, audit_coin_gen(recorder).to_dict()


def bench_coin_gen(results, smoke):
    configs = [(7, 1, 8)] if smoke else [(7, 1, 16), (13, 2, 64)]
    field = GF2k(32)
    for n, t, M in configs:
        phases, conformance = coin_gen_conformance(n, t, M, field)
        for mode in MODES:
            with interpolation_mode(mode):
                wall, (out, _) = timed(
                    lambda: run_coin_gen(field, n, t, M=M, seed=5)
                )
            assert all(o.success for o in out.values())
            results.append(
                {
                    "bench": "coin_gen",
                    "n": n,
                    "t": t,
                    "M": M,
                    "mode": mode,
                    "wall_s": wall,
                    "ops_per_s": M / wall if wall > 0 else None,
                    "phases": phases,
                    "conformance": conformance,
                }
            )


def bench_coin_expose(results, smoke):
    """The acceptance bench: expose M coins over one fixed qualified set."""
    n, t, M = (7, 1, 8) if smoke else (13, 2, 64)
    field = GF2k(32)
    outputs, _ = run_coin_gen(field, n, t, M=M, seed=7)
    assert all(o.success for o in outputs.values())

    def expose_all():
        for h in range(M):
            values, _ = expose_coin(field, n, outputs, h, t)
            assert len(set(values.values())) == 1
            assert None not in values.values()

    for mode in MODES:
        with interpolation_mode(mode):
            expose_all()  # warm-up (pre-builds caches in "shared" mode)
            wall, _ = timed(expose_all)
        results.append(
            {
                "bench": "coin_expose",
                "n": n,
                "t": t,
                "M": M,
                "mode": mode,
                "wall_s": wall,
                "ops_per_s": M / wall if wall > 0 else None,
            }
        )


def speedups(results):
    """mode=off wall-clock divided by fresh/shared, per (bench, config)."""
    table = {}
    for row in results:
        if "mode" not in row:
            continue
        key = (row["bench"], row.get("n"), row.get("t"), row.get("M"))
        table.setdefault(key, {})[row["mode"]] = row["wall_s"]
    out = {}
    for (bench, n, t, M), modes in table.items():
        if "off" not in modes:
            continue
        label = f"{bench}_n{n}_t{t}_M{M}"
        for mode in ("fresh", "shared"):
            if mode in modes and modes[mode] > 0:
                out[f"{label}_{mode}_vs_off"] = round(
                    modes["off"] / modes[mode], 2
                )
    return out


def append_history(payload, history_path):
    """Append one summary row to the running BENCH_history.json trajectory.

    The history file is a JSON object ``{"rows": [...]}``; each row is
    small (timestamp + speedup ratios, no raw results) so years of runs
    stay diffable.  A corrupt or legacy file is reset rather than
    crashing the bench.
    """
    path = pathlib.Path(history_path)
    try:
        history = json.loads(path.read_text())
        rows = history["rows"]
        assert isinstance(rows, list)
    except (OSError, ValueError, KeyError, AssertionError):
        history, rows = {"rows": []}, []
        history["rows"] = rows
    rows.append(
        {
            "timestamp": datetime.datetime.now(datetime.timezone.utc)
            .isoformat(timespec="seconds"),
            "smoke": payload["smoke"],
            "python": payload["python"],
            "speedups": payload["speedups"],
        }
    )
    path.write_text(json.dumps(history, indent=2) + "\n")
    return len(rows)


def check_regressions(payload, baseline_path, max_regression):
    """Compare speedup ratios against a committed baseline.

    Returns a list of human-readable failure strings (empty = pass).
    Keys are matched exactly: every baseline speedup key must exist in
    the current run (the configurations are deterministic per flavour),
    and each current ratio must be >= baseline * (1 - max_regression).
    """
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    failures = []
    if bool(baseline.get("smoke")) != bool(payload["smoke"]):
        return [
            "baseline flavour mismatch: baseline smoke="
            f"{baseline.get('smoke')} vs current smoke={payload['smoke']} "
            "(compare smoke-vs-smoke or full-vs-full only)"
        ]
    current = payload["speedups"]
    for key, base in sorted(baseline.get("speedups", {}).items()):
        if key not in current:
            failures.append(f"{key}: present in baseline but missing from "
                            "this run (configuration drift?)")
            continue
        floor = base * (1 - max_regression)
        status = "ok" if current[key] >= floor else "REGRESSED"
        print(f"  {key}: {current[key]}x vs baseline {base}x "
              f"(floor {floor:.2f}x) {status}")
        if current[key] < floor:
            failures.append(
                f"{key}: {current[key]}x < floor {floor:.2f}x "
                f"(baseline {base}x, tolerance {max_regression:.0%})"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configurations for CI")
    parser.add_argument("--out", default=None,
                        help="output path (default: <repo>/BENCH_core.json)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON to guard speedups against")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="max allowed fractional speedup regression "
                             "vs the baseline (default 0.20)")
    parser.add_argument("--history", default=None,
                        help="history file to append the summary row to "
                             "(default: <repo>/BENCH_history.json)")
    parser.add_argument("--no-history", action="store_true",
                        help="skip appending to the history file")
    args = parser.parse_args(argv)

    out_path = pathlib.Path(
        args.out
        if args.out
        else pathlib.Path(__file__).resolve().parent.parent / "BENCH_core.json"
    )

    results = []
    bench_field_arithmetic(results, args.smoke)
    bench_batch_vss(results, args.smoke)
    bench_coin_gen(results, args.smoke)
    bench_coin_expose(results, args.smoke)

    payload = {
        "generated_by": "benchmarks/emit_bench_json.py",
        "smoke": args.smoke,
        "python": sys.version.split()[0],
        "modes": {
            "off": "classic Lagrange + full Berlekamp-Welch (baseline)",
            "fresh": "Montgomery batch inversion, no cross-call cache",
            "shared": "batch inversion + cached barycentric weights",
        },
        "results": results,
        "speedups": speedups(results),
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    if not args.no_history:
        history_path = pathlib.Path(
            args.history
            if args.history
            else pathlib.Path(__file__).resolve().parent.parent
            / "BENCH_history.json"
        )
        row_count = append_history(payload, history_path)
        print(f"appended history row {row_count} to {history_path}")

    print(f"wrote {out_path}")
    for key, factor in payload["speedups"].items():
        print(f"  {key}: {factor}x")
    expose_key = [k for k in payload["speedups"] if k.startswith("coin_expose")
                  and k.endswith("shared_vs_off")]
    if expose_key and not args.smoke:
        factor = payload["speedups"][expose_key[0]]
        status = "OK" if factor >= 2.0 else "BELOW TARGET"
        print(f"coin exposure cached-vs-uncached: {factor}x ({status}, target >= 2x)")

    if args.baseline:
        print(f"regression guard vs {args.baseline} "
              f"(tolerance {args.max_regression:.0%}):")
        failures = check_regressions(payload, args.baseline,
                                     args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression guard: all speedups within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
