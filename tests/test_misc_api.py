"""Smaller API surfaces: edge cases across modules."""

import pytest

from repro.fields import GF2k, GFp
from repro.fields.base import OpCounter
from repro.poly import Polynomial
from repro.protocols.coin_expose import CoinShare
from repro.core import SharedCoin


class TestFieldMisc:
    def test_pow_zero_exponent(self, gf256):
        assert gf256.pow(0, 0) == gf256.one  # convention: x^0 = 1
        assert gf256.pow(7, 0) == gf256.one

    def test_pow_negative_exponent_gf2k(self, gf256):
        a = 77
        assert gf256.mul(gf256.pow(a, -3), gf256.pow(a, 3)) == gf256.one

    def test_elements_iterator(self):
        f = GF2k(3)
        elements = list(f.elements())
        assert len(elements) == 8
        assert elements[0] == f.zero
        assert len(set(elements)) == 8

    def test_div(self, gf256):
        assert gf256.div(gf256.mul(9, 13), 13) == 9
        with pytest.raises(ZeroDivisionError):
            gf256.div(1, 0)

    def test_gfp_coin_bits(self):
        f = GFp(101)
        bits = f.coin_bits(5)
        assert bits[:3] == [1, 0, 1]
        assert len(bits) == f.bit_length

    def test_generator_attribute_for_table_fields(self):
        f = GF2k(8)
        # the generator's multiplicative order is 2^8 - 1
        assert f.pow(f.generator, 255) == f.one
        assert f.pow(f.generator, 85) != f.one  # 255/3

    def test_repr(self):
        assert "GF2k" in repr(GF2k(8))
        assert "GFp" in repr(GFp(101))


class TestPolynomialMisc:
    def test_evaluate_many(self, gf256, rng):
        p = Polynomial.random(gf256, 3, rng)
        xs = [1, 2, 3]
        assert p.evaluate_many(xs) == [p(x) for x in xs]

    def test_neg_in_characteristic_two(self, gf256):
        p = Polynomial(gf256, [1, 2, 3])
        assert -p == p

    def test_repr(self, gf256):
        assert "deg=2" in repr(Polynomial(gf256, [1, 0, 3]))


class TestCoinShareMisc:
    def test_frozen(self):
        share = CoinShare("c", frozenset({1, 2}), 1, 5)
        with pytest.raises(Exception):
            share.my_value = 7  # type: ignore[misc]

    def test_equality(self):
        a = CoinShare("c", frozenset({1}), 1, 5)
        b = CoinShare("c", frozenset({1}), 1, 5)
        assert a == b

    def test_shared_coin_senders_property(self):
        shares = {
            pid: CoinShare("x", frozenset({1, 2, 3}), 1, pid)
            for pid in (1, 2, 3)
        }
        coin = SharedCoin("x", shares, 1)
        assert coin.senders == frozenset({1, 2, 3})


class TestOpCounterConversion:
    def test_inversions_charged_as_k_multiplications(self):
        counter = OpCounter(invs=2)
        assert counter.total_additions(16, naive=True) == 2 * 16 * 16 * 16

    def test_interpolations_not_double_counted(self):
        counter = OpCounter(interpolations=5)
        assert counter.total_additions(16) == 0  # interp internals are
        # already metered as their own adds/muls


class TestMetricsSummaryKeys:
    def test_summary_shape(self):
        from repro.net.metrics import NetworkMetrics

        keys = set(NetworkMetrics().summary())
        assert {
            "rounds",
            "messages",
            "unicast_messages",
            "broadcast_messages",
            "bits",
            "max_player_adds",
            "max_player_muls",
            "max_player_interpolations",
        } == keys
