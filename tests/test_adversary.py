"""Byzantine adversary behaviours."""

import random

import pytest

from repro.net.adversary import (
    Adversary,
    MobileAdversary,
    crash_program,
    echo_noise_program,
    equivocator_program,
    silent_program,
)
from repro.net.simulator import ALL, Send, SynchronousNetwork, multicast, unicast


def collector(rounds):
    """Honest program recording its inboxes for ``rounds`` rounds."""
    seen = []
    for _ in range(rounds):
        inbox = yield []
        seen.append(inbox)
    return seen


class TestBehaviours:
    def test_silent_never_sends(self):
        net = SynchronousNetwork(2, max_rounds=20)
        out = net.run({1: collector(3), 2: silent_program()}, wait_for=[1])
        assert all(inbox == {} for inbox in out[1])

    def test_crash_follows_then_stops(self):
        def chatty(me):
            while True:
                yield [multicast(("t", me))]

        net = SynchronousNetwork(2, max_rounds=30)
        out = net.run(
            {1: collector(5), 2: crash_program(3, chatty(2))}, wait_for=[1]
        )
        inboxes = out[1]
        assert 2 in inboxes[0] and 2 in inboxes[1]   # alive in rounds 1-2
        assert all(2 not in inbox for inbox in inboxes[2:])  # crashed

    def test_noise_replays_tags(self):
        def honest():
            inbox = yield [multicast(("proto/x", 42))]
            inbox = yield []
            inbox = yield []
            return inbox

        rng = random.Random(0)
        net = SynchronousNetwork(2, max_rounds=20)
        out = net.run(
            {1: honest(), 2: echo_noise_program(2, rng)}, wait_for=[1]
        )
        final = out[1]
        # the noise player replays the observed tag with garbage
        assert any(
            isinstance(p, tuple) and p[0] == "proto/x"
            for payloads in final.values()
            for p in payloads
        )

    def test_equivocator_sends_different_values(self):
        def base(me):
            while True:
                yield [multicast(("t", 1234))]

        rng = random.Random(1)
        received = {}

        def listener(me):
            for _ in range(6):
                inbox = yield []
                for p in inbox.get(3, []):
                    received.setdefault(me, set()).add(p)

        net = SynchronousNetwork(3, max_rounds=40)
        net.run(
            {
                1: listener(1),
                2: listener(2),
                3: equivocator_program(3, rng, base(3)),
            },
            wait_for=[1, 2],
        )
        all_values = set().union(*received.values())
        assert len(all_values) > 1  # equivocation happened


class TestAdversaryObject:
    def test_program_selection(self):
        adv = Adversary({2, 3}, behaviour="silent")
        progs = adv.programs(5)
        assert set(progs) == {2, 3}
        with pytest.raises(ValueError):
            adv.program(1, 5)

    def test_custom_factory(self):
        def factory(pid, n, blackboard, rng):
            blackboard["built"] = blackboard.get("built", 0) + 1
            return silent_program()

        adv = Adversary({1, 4}, behaviour=factory)
        adv.programs(5)
        assert adv.blackboard["built"] == 2

    def test_unknown_behaviour(self):
        with pytest.raises(ValueError):
            Adversary({1}, behaviour="teleport").program(1, 4)


class TestMobileAdversary:
    def test_moves_between_epochs(self):
        mob = MobileAdversary(10, 3, seed=5)
        sets = [mob.next_epoch().corrupt for _ in range(20)]
        assert all(len(s) == 3 for s in sets)
        assert len(set(sets)) > 1  # actually moves
        assert mob.history == sets
