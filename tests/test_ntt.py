"""Number-theoretic transform over Z_q."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.fields.ntt import (
    find_ntt_prime,
    intt,
    ntt,
    poly_mul_ntt,
    poly_mul_schoolbook,
    primitive_root,
    root_of_unity,
)

Q = find_ntt_prime(100, 64)


class TestSetup:
    def test_find_ntt_prime(self):
        q = find_ntt_prime(1000, 128)
        assert q >= 1000
        assert (q - 1) % 128 == 0

    def test_find_ntt_prime_power_of_two_required(self):
        with pytest.raises(ValueError):
            find_ntt_prime(100, 48)

    def test_primitive_root(self):
        g = primitive_root(Q)
        seen = set()
        value = 1
        for _ in range(Q - 1):
            value = value * g % Q
            seen.add(value)
        assert len(seen) == Q - 1

    def test_root_of_unity(self):
        omega = root_of_unity(Q, 64)
        assert pow(omega, 64, Q) == 1
        assert pow(omega, 32, Q) != 1

    def test_root_of_unity_bad_size(self):
        with pytest.raises(ValueError):
            root_of_unity(Q, Q + 3)


class TestTransform:
    @given(
        vec=st.lists(
            st.integers(min_value=0, max_value=Q - 1), min_size=8, max_size=8
        )
    )
    def test_round_trip(self, vec):
        omega = root_of_unity(Q, 8)
        assert intt(ntt(vec, omega, Q), omega, Q) == vec

    def test_power_of_two_required(self):
        omega = root_of_unity(Q, 8)
        with pytest.raises(ValueError):
            ntt([1, 2, 3], omega, Q)

    def test_ntt_of_delta_is_constant(self):
        omega = root_of_unity(Q, 8)
        assert ntt([1, 0, 0, 0, 0, 0, 0, 0], omega, Q) == [1] * 8


class TestPolyMul:
    @given(
        a=st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=1, max_size=12),
        b=st.lists(st.integers(min_value=0, max_value=Q - 1), min_size=1, max_size=12),
    )
    def test_matches_schoolbook(self, a, b):
        assert poly_mul_ntt(a, b, Q) == poly_mul_schoolbook(a, b, Q)

    def test_empty(self):
        assert poly_mul_ntt([], [1, 2], Q) == []
        assert poly_mul_schoolbook([1], [], Q) == []

    def test_fallback_when_no_root(self):
        # q=7: q-1=6 has no large power-of-two factor; falls back silently
        assert poly_mul_ntt([1, 2, 3], [4, 5], 7) == poly_mul_schoolbook(
            [1, 2, 3], [4, 5], 7
        )

    def test_omega_cache_used(self):
        cache = {}
        poly_mul_ntt([1, 2, 3, 4], [5, 6, 7, 8], Q, cache)
        assert cache
        # cached call must agree
        assert poly_mul_ntt([1, 2, 3, 4], [5, 6, 7, 8], Q, cache) == \
            poly_mul_schoolbook([1, 2, 3, 4], [5, 6, 7, 8], Q)
