"""Proactive share refresh: value preservation, re-randomization, safety."""

import random

import pytest

from repro.fields import GF2k
from repro.net.adversary import silent_program
from repro.net.simulator import SynchronousNetwork
from repro.protocols.coin_expose import CoinShare, coin_expose, make_dealer_coin
from repro.protocols.refresh import run_refresh

F = GF2k(32)
N, T = 7, 1


def make_coin_table(count, seed=0):
    rng = random.Random(seed)
    secrets = []
    table = {pid: [] for pid in range(1, N + 1)}
    for index in range(count):
        secret, shares = make_dealer_coin(F, N, T, f"lc{index}", rng)
        secrets.append(secret)
        for pid in range(1, N + 1):
            table[pid].append(shares[pid])
    return secrets, table


def expose_all(coin_table, h, exclude=()):
    net = SynchronousNetwork(N, field=F, allow_broadcast=False)
    programs = {
        pid: coin_expose(F, pid, coin_table[pid][h])
        for pid in range(1, N + 1)
        if pid not in exclude
    }
    out = net.run(programs)
    return set(out.values())


class TestValuePreservation:
    def test_refreshed_coins_expose_to_same_secrets(self):
        secrets, table = make_coin_table(3, seed=1)
        outputs, _ = run_refresh(F, N, T, table, seed=2)
        assert all(o.success for o in outputs.values())
        new_table = {pid: outputs[pid].coins for pid in outputs}
        for h, secret in enumerate(secrets):
            assert expose_all(new_table, h) == {secret}

    def test_multiple_refresh_rounds(self):
        secrets, table = make_coin_table(2, seed=3)
        for epoch in range(3):
            outputs, _ = run_refresh(
                F, N, T, table, seed=10 + epoch, tag=f"refresh{epoch}"
            )
            assert all(o.success for o in outputs.values())
            table = {pid: outputs[pid].coins for pid in outputs}
        for h, secret in enumerate(secrets):
            assert expose_all(table, h) == {secret}


class TestReRandomization:
    def test_shares_actually_change(self):
        _, table = make_coin_table(2, seed=4)
        outputs, _ = run_refresh(F, N, T, table, seed=5)
        changed = 0
        for pid in range(1, N + 1):
            for h in range(2):
                if outputs[pid].coins[h].my_value != table[pid][h].my_value:
                    changed += 1
        assert changed >= 2 * N - 1  # essentially all shares move

    def test_old_and_new_shares_do_not_mix(self):
        """The proactive property: t old shares + t new shares from
        different epochs do not interpolate the secret — combining them
        produces garbage, so a mobile adversary gains nothing."""
        from repro.poly.lagrange import interpolate_at

        secrets, table = make_coin_table(1, seed=6)
        outputs, _ = run_refresh(F, N, T, table, seed=7)
        new_table = {pid: outputs[pid].coins for pid in outputs}
        # mix t+1 = 2 shares: player 1 old, player 2 new
        mixed = [
            (F.element_point(1), table[1][0].my_value),
            (F.element_point(2), new_table[2][0].my_value),
        ]
        value = interpolate_at(F, mixed, F.zero)
        assert value != secrets[0]  # w.p. 1 - 1/2^32


class TestFaults:
    def test_refresh_with_silent_player(self):
        secrets, table = make_coin_table(2, seed=8)
        outputs, _ = run_refresh(
            F, N, T, table, seed=9, faulty_programs={4: silent_program()}
        )
        honest = {pid: o for pid, o in outputs.items() if pid != 4}
        assert all(o.success for o in honest.values())
        new_table = {pid: honest[pid].coins for pid in honest}
        for h, secret in enumerate(secrets):
            assert expose_all(new_table, h, exclude=(4,)) == {secret}

    def test_previously_corrupt_player_keeps_stale_share(self):
        """A player silent during the refresh ends with no usable share
        (it abstains), but reconstruction still works without it."""
        secrets, table = make_coin_table(1, seed=10)
        outputs, _ = run_refresh(
            F, N, T, table, seed=11, faulty_programs={2: silent_program()}
        )
        honest = {pid: o for pid, o in outputs.items() if pid != 2}
        # the refreshed coins exclude the faulty player's contribution:
        # its own old share no longer lies on the new polynomial
        new_table = {pid: honest[pid].coins for pid in honest}
        values = expose_all(new_table, 0, exclude=(2,))
        assert values == {secrets[0]}


class TestValidation:
    def test_rejects_clique_held_coins(self):
        from repro.protocols.refresh import refresh_program

        share = CoinShare("x", frozenset({1, 2, 3, 4, 5}), T, F.one)
        with pytest.raises(ValueError):
            gen = refresh_program(
                F, N, T, 1, [share], [], random.Random(0)
            )
            next(gen)

    def test_refresh_consumes_seed_coins(self):
        _, table = make_coin_table(1, seed=12)
        outputs, _ = run_refresh(F, N, T, table, seed=13)
        used = {o.seed_coins_used for o in outputs.values()}
        assert used == {2}  # 1 challenge + 1 leader election
