"""The Beaver-So [2] shape baseline."""

import pytest

from repro.analysis import stats
from repro.baselines.beaver_so import BeaverSoGenerator, BudgetExhausted


class TestGeneration:
    def test_bits_are_bits(self):
        gen = BeaverSoGenerator(budget=200, modulus_bits=64, seed=1)
        bits = gen.bits(200)
        assert set(bits) <= {0, 1}

    def test_statistical_quality(self):
        gen = BeaverSoGenerator(budget=3000, modulus_bits=128, seed=2)
        bits = gen.bits(3000)
        assert stats.monobit(bits).passed
        assert stats.serial_correlation(bits).passed

    def test_deterministic_per_seed(self):
        a = BeaverSoGenerator(budget=50, modulus_bits=64, seed=3).bits(50)
        b = BeaverSoGenerator(budget=50, modulus_bits=64, seed=3).bits(50)
        assert a == b

    def test_blum_modulus(self):
        gen = BeaverSoGenerator(budget=1, modulus_bits=64, seed=4)
        assert gen.modulus % 4 == 1  # product of two 3-mod-4 primes
        assert gen.modulus.bit_length() >= 60


class TestPreSetSize:
    def test_budget_enforced(self):
        """[2]: 'the generation of bits is limited to a pre-set size' —
        unlike the D-PRBG's endless bootstrap."""
        gen = BeaverSoGenerator(budget=10, modulus_bits=64, seed=5)
        gen.bits(10)
        with pytest.raises(BudgetExhausted):
            gen.bit()


class TestCostShape:
    def test_one_multiplication_per_bit(self):
        gen = BeaverSoGenerator(budget=100, modulus_bits=64, seed=6)
        before = gen.costs.multiplications
        gen.bits(40)
        assert gen.costs.multiplications - before == 40

    def test_work_scales_with_modulus(self):
        small = BeaverSoGenerator(budget=64, modulus_bits=64, seed=7)
        big = BeaverSoGenerator(budget=64, modulus_bits=256, seed=7)
        small.bits(64)
        big.bits(64)
        assert big.costs.bit_weighted_work() > 10 * small.costs.bit_weighted_work()
