"""Targeted adversarial strategies against Coin-Gen's weak points.

These attacks aim at the exact design decisions DESIGN.md Section 5
documents: view-splitting of the nu announcements (which motivated the
self-selecting expose rule) and leader-proposal sabotage (which motivated
the existence-style condition iii).
"""

import random

import pytest

from repro.fields import GF2k
from repro.net.simulator import Send, SynchronousNetwork
from repro.poly.polynomial import Polynomial, horner_batch
from repro.protocols.coin_expose import coin_expose_many
from repro.protocols.coin_gen import (
    coin_gen_program,
    expose_coin,
    make_seed_coins,
    run_coin_gen,
)
from repro.sharing.shamir import ShamirScheme

F = GF2k(32)
N, T = 7, 1


def nu_equivocator(n, t, seed_shares, rng):
    """Deals honestly, then announces a *different* nu vector to each
    player — the view-splitting attack on Fig. 4's point-to-point
    announcements."""
    scheme = ShamirScheme(F, n, t)

    def program():
        # round 1: honest dealing (degree-t polynomials, with blinder)
        polys = [Polynomial.random(F, t, rng) for _ in range(3)]
        yield [
            Send(j, ("cg/sh", tuple(p(scheme.point(j)) for p in polys)))
            for j in range(1, n + 1)
        ]
        yield []  # challenge-expose round: withholds its seed share
        # round 3: equivocate the nu vector per receiver
        sends = []
        for dst in range(1, n + 1):
            fake = tuple(rng.randrange(F.order) for _ in range(n))
            sends.append(Send(dst, ("cg/nu", fake)))
        yield sends
        while True:
            yield []

    return program()


class TestViewSplitting:
    @pytest.mark.parametrize("bad", [1, 4, 7])
    def test_nu_equivocation_does_not_break_pipeline(self, bad):
        rng = random.Random(bad)
        outputs, _ = run_coin_gen(
            F, N, T, M=2, seed=bad * 11,
            faulty_programs={bad: nu_equivocator(N, T, None, rng)},
        )
        honest = {pid: o for pid, o in outputs.items() if pid != bad}
        assert len({o.success for o in honest.values()}) == 1
        assert all(o.success for o in honest.values())
        assert len({o.clique for o in honest.values()}) == 1
        for h in range(2):
            values, _ = expose_coin(F, N, honest, h, T)
            vs = {v for pid, v in values.items() if pid != bad}
            assert len(vs) == 1 and None not in vs


def proposal_saboteur(n, rng):
    """Behaves silently except for grade-casting a *structurally valid
    but bogus* proposal — if elected leader, BA must reject it; if not,
    it must not disturb anyone."""
    def program():
        yield []  # dealing round: deals nothing
        yield []  # expose round
        yield []  # nu round
        bogus = (
            "prop",
            tuple(range(1, n - 1)),
            tuple((j, (rng.randrange(F.order), rng.randrange(F.order)))
                  for j in range(1, n - 1)),
        )
        yield [Send(dst, ("cg/gc/v", bogus)) for dst in range(1, n + 1)]
        # echo rounds + everything after: silent
        while True:
            yield []

    return program()


class TestProposalSabotage:
    def test_bogus_proposals_rejected_or_avoided(self):
        """Across seeds (hence leader draws), honest players always end
        in a common state; a bogus-proposal leader costs at most extra
        iterations, never a bad clique."""
        for seed in range(6):
            rng = random.Random(seed)
            outputs, _ = run_coin_gen(
                F, N, T, M=1, seed=seed,
                faulty_programs={3: proposal_saboteur(N, rng)},
            )
            honest = {pid: o for pid, o in outputs.items() if pid != 3}
            assert all(o.success for o in honest.values()), seed
            clique = next(iter(honest.values())).clique
            # the saboteur dealt nothing, so it can never be in the clique
            assert 3 not in clique
            values, _ = expose_coin(F, N, honest, 0, T)
            vs = {v for pid, v in values.items() if pid != 3}
            assert len(vs) == 1 and None not in vs


class TestSeparateChallengesUnderFaults:
    def test_ablation_mode_with_silent_fault(self):
        from repro.net.adversary import silent_program

        outputs, _ = run_coin_gen(
            F, N, T, M=2, seed=9, shared_challenge=False,
            faulty_programs={6: silent_program()},
        )
        honest = {pid: o for pid, o in outputs.items() if pid != 6}
        assert all(o.success for o in honest.values())
        values, _ = expose_coin(F, N, honest, 0, T)
        vs = {v for pid, v in values.items() if pid != 6}
        assert len(vs) == 1 and None not in vs
