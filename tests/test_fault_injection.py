"""Fault-injection regressions: Coin-Gen under scripted faults.

The paper's guarantees hold with up to ``t`` arbitrarily faulty players
(``n >= 6t+1``).  These tests script concrete fault scenarios with the
:class:`~repro.net.faults.FaultPlane` — message drops, duplication,
delays, and crashes confined to at most ``t`` players — and check the
end-to-end guarantees: every honest player still gets a coin, exposures
are unanimous, and a crashed dealer is excluded from the agreed clique
without aborting the run.
"""

import pytest

from repro.fields import GF2k
from repro.net import FaultPlane, PermutedDeliveryScheduler
from repro.protocols.coin_gen import expose_coin, run_coin_gen
from repro.protocols.context import ProtocolContext

N, T = 7, 1  # n = 6t+1
FIELD = GF2k(8)


def run_with_faults(faults, scheduler=None, M=2, seed=3, faulty_pids=()):
    ctx = ProtocolContext.create(
        FIELD, N, T, seed=seed, scheduler=scheduler, faults=faults
    )
    faulty_programs = {pid: None for pid in faulty_pids}
    outputs, _ = run_coin_gen(ctx, M=M, faulty_programs=faulty_programs)
    return ctx, outputs


def assert_unanimous_coins(ctx, outputs, M, exclude=()):
    honest = [pid for pid in outputs if pid not in exclude]
    assert honest, "no honest outputs"
    for pid in honest:
        assert outputs[pid].success, f"player {pid} failed"
    cliques = {outputs[pid].clique for pid in honest}
    assert len(cliques) == 1, f"clique disagreement: {cliques}"
    for h in range(M):
        results, _ = expose_coin(
            None, outputs=outputs, h=h, context=ctx,
            faulty_programs={pid: None for pid in exclude},
        )
        values = {results[pid] for pid in results if pid not in exclude}
        assert len(values) == 1, f"coin {h} not unanimous: {values}"
        assert values.pop() is not None, f"coin {h} undecodable"
    return cliques.pop()


class TestMessageFaults:
    def test_dropped_player_traffic_still_unanimous(self):
        """All of player 7's outgoing traffic is lost; coins still agree."""
        faults = FaultPlane().drop(src=7)
        ctx, outputs = run_with_faults(faults)
        clique = assert_unanimous_coins(ctx, outputs, M=2, exclude=(7,))
        assert 7 not in clique

    def test_duplicated_traffic_is_harmless(self):
        """Player 6's messages all arrive twice; outcome matches a clean run."""
        clean_ctx, clean_outputs = run_with_faults(None)
        faults = FaultPlane().duplicate(src=6)
        ctx, outputs = run_with_faults(faults)
        assert_unanimous_coins(ctx, outputs, M=2)
        assert {p: outputs[p].clique for p in outputs} == {
            p: clean_outputs[p].clique for p in clean_outputs
        }

    def test_delayed_edge_confined_to_t_players(self):
        """One player's traffic to one receiver lags a round.

        Stale tags are ignored by honest receive filters, so this is
        equivalent to dropping the edge — still within the t-fault budget.
        """
        faults = FaultPlane().delay(src=7, dst=1, by=1)
        ctx, outputs = run_with_faults(faults)
        assert_unanimous_coins(ctx, outputs, M=2, exclude=(7,))

    def test_mixed_faults_single_player_budget(self):
        """Drop+duplicate+delay all confined to player 7 (<= t players)."""
        faults = (
            FaultPlane()
            .drop(src=7, dst=2)
            .duplicate(src=7, dst=3)
            .delay(src=7, dst=4, by=2)
        )
        ctx, outputs = run_with_faults(faults)
        assert_unanimous_coins(ctx, outputs, M=2, exclude=(7,))

    def test_faults_compose_with_permuted_scheduler(self):
        """The fault plane works identically under a permuted scheduler."""
        faults = FaultPlane().drop(src=7)
        ctx, outputs = run_with_faults(
            faults, scheduler=PermutedDeliveryScheduler(seed=11)
        )
        clique = assert_unanimous_coins(ctx, outputs, M=2, exclude=(7,))
        assert 7 not in clique


class TestCrashFaults:
    @pytest.mark.parametrize("crash_round", [1, 2, 3])
    def test_crashed_dealer_excluded_without_abort(self, crash_round):
        """A dealer crashing at round r is dropped from the clique.

        The run must neither abort nor stall: the surviving 6 >= n - t
        players agree on a clique excluding the crashed dealer and their
        coins expose unanimously.
        """
        faults = FaultPlane().crash(7, at_round=crash_round)
        ctx, outputs = run_with_faults(faults)
        assert 7 not in outputs  # crashed mid-protocol, never finished
        clique = assert_unanimous_coins(ctx, outputs, M=2, exclude=(7,))
        assert 7 not in clique
        assert len(clique) >= N - 2 * T

    def test_crash_after_dealing_keeps_dealer_in_clique(self):
        """Crashing long after the dealing phase no longer hurts the clique.

        By then player 7's polynomials are decoded and grade-cast; its
        later silence cannot retract them.  (With t=1 the runtime still
        terminates: the wait set excludes the crashed player.)
        """
        faults = FaultPlane().crash(7, at_round=30)
        ctx, outputs = run_with_faults(faults)
        clique = assert_unanimous_coins(ctx, outputs, M=2, exclude=(7,))
        assert 7 in clique

    def test_silence_window_tolerated(self):
        """A t-sized player set silenced for a whole phase still converges."""
        faults = FaultPlane().silence(7, rounds=range(1, 6))
        ctx, outputs = run_with_faults(faults)
        assert_unanimous_coins(ctx, outputs, M=2, exclude=(7,))
